"""Actor-based PageRank (power iteration with message-passing).

Each iteration runs one finish scope: every PE scatters
``rank[v] / degree[v]`` along each undirected edge of its owned vertices;
the destination handler accumulates contributions.  Ranks are stored as
fixed-point integers (messages are int64 words), and dangling vertices'
mass is redistributed uniformly, matching the serial reference exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conveyors.conveyor import ConveyorConfig
from repro.graphs.distributions import Distribution, make_distribution
from repro.graphs.matrix import LowerTriangular
from repro.hclib.actor import Actor
from repro.hclib.world import RunResult, run_spmd
from repro.machine.spec import MachineSpec

#: Fixed-point scale for shipping ranks as int64 message payloads.
_FP = 1 << 32


@dataclass
class PageRankResult:
    """Outcome of a PageRank run."""

    ranks: np.ndarray
    iterations: int
    run: RunResult


def reference_pagerank(graph: LowerTriangular, iterations: int,
                       damping: float = 0.85) -> np.ndarray:
    """Serial fixed-point power iteration (the distributed oracle).

    Uses the same int64 fixed-point arithmetic as the distributed version
    so validation can demand exact equality.
    """
    n = graph.n_vertices
    indptr, indices = graph.symmetric_csr()
    deg = np.diff(indptr)
    ranks = np.full(n, _FP // n, dtype=np.int64)
    for _ in range(iterations):
        acc = np.zeros(n, dtype=np.int64)
        shares = np.zeros(n, dtype=np.int64)
        nz = deg > 0
        shares[nz] = ranks[nz] // deg[nz]
        for v in range(n):
            if deg[v]:
                acc[indices[indptr[v]:indptr[v + 1]]] += shares[v]
        dangling = int(ranks[~nz].sum()) // n
        base = int((1 - damping) * _FP) // n
        ranks = base + (damping * (acc + dangling)).astype(np.int64)
    return ranks


class _RankActor(Actor):
    def __init__(self, ctx, acc: np.ndarray, local_of: dict,
                 conveyor_config) -> None:
        super().__init__(ctx, payload_words=2, conveyor_config=conveyor_config)
        self.acc = acc
        self.local_of = local_of

    def process(self, payload, sender_rank: int) -> None:
        vertex, share = payload
        self.ctx.compute(ins=8, loads=2, stores=1)
        self.acc[self.local_of[int(vertex)]] += share

    def process_batch(self, payloads: np.ndarray, senders: np.ndarray) -> None:
        self.ctx.compute(ins=8 * len(payloads), loads=2 * len(payloads),
                         stores=len(payloads))
        idx = np.array([self.local_of[int(v)] for v in payloads[:, 0]])
        np.add.at(self.acc, idx, payloads[:, 1])


def pagerank(
    graph: LowerTriangular,
    iterations: int,
    machine: MachineSpec,
    distribution: str | Distribution = "cyclic",
    damping: float = 0.85,
    profiler=None,
    conveyor_config: ConveyorConfig | None = None,
    validate: bool = True,
    seed: int = 0,
) -> PageRankResult:
    """Distributed PageRank; validates bit-exactly against the reference."""
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if isinstance(distribution, str):
        dist = make_distribution(distribution, graph, machine.n_pes)
    else:
        dist = distribution
    indptr, indices = graph.symmetric_csr()
    deg = np.diff(indptr)
    n = graph.n_vertices

    def program(ctx):
        me = ctx.my_pe
        mine = dist.local_rows(me)
        local_of = {int(v): i for i, v in enumerate(mine)}
        ranks = np.full(len(mine), _FP // n, dtype=np.int64)
        owners_cache = {}
        for it in range(iterations):
            acc = np.zeros(len(mine), dtype=np.int64)
            actor = _RankActor(ctx, acc, local_of, conveyor_config)
            dangling_local = int(ranks[deg[mine] == 0].sum())
            with ctx.finish():
                actor.start()
                for i, v in enumerate(mine):
                    d = int(deg[v])
                    if d == 0:
                        continue
                    share = int(ranks[i]) // d
                    neigh = indices[indptr[v]:indptr[v + 1]]
                    cached = owners_cache.get(int(v))
                    if cached is None:
                        cached = dist.owner_array(neigh)
                        owners_cache[int(v)] = cached
                    ctx.compute(ins=6 * d, loads=2 * d)
                    payload = np.stack(
                        [neigh, np.full(d, share, dtype=np.int64)], axis=1
                    )
                    actor.send_batch(cached, payload)
                actor.done()
            dangling = ctx.shmem.allreduce(dangling_local, "sum") // n
            base = int((1 - damping) * _FP) // n
            ranks = base + (damping * (acc + dangling)).astype(np.int64)
        return {int(v): int(r) for v, r in zip(mine, ranks)}

    run = run_spmd(program, machine=machine, profiler=profiler,
                   conveyor_config=conveyor_config, seed=seed)
    ranks = np.zeros(n, dtype=np.int64)
    for local in run.results:
        for v, r in local.items():
            ranks[v] = r
    if validate:
        expected = reference_pagerank(graph, iterations, damping)
        if not np.array_equal(ranks, expected):
            bad = int((ranks != expected).sum())
            raise AssertionError(f"PageRank mismatch on {bad} vertices")
    return PageRankResult(ranks=ranks, iterations=iterations, run=run)
