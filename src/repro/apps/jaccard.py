"""Per-edge Jaccard similarity via wedge messages.

For every edge {u, v}, the Jaccard coefficient is
``|N(u) ∩ N(v)| / |N(u) ∪ N(v)|``.  The common-neighbor counts are
computed exactly like triangle counting — for every wedge (j, i, k) a
message asks the owner of row j whether edge ``l_jk`` exists — except the
handler credits the *edge* (j, k) instead of a global counter.  The union
size follows from full degrees: ``|N∪N| = deg(u) + deg(v) − |N∩N|``.

The paper cites its Jaccard similarity workload ([7], ISC'24) as one of
the applications actively profiled with ActorProf.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conveyors.conveyor import ConveyorConfig
from repro.graphs.distributions import Distribution, make_distribution
from repro.graphs.matrix import LowerTriangular
from repro.hclib.actor import Actor
from repro.hclib.world import RunResult, run_spmd
from repro.machine.spec import MachineSpec

from repro.apps.triangle import _wedges_for_rows


@dataclass
class JaccardResult:
    """Outcome of a Jaccard run: per-edge similarity."""

    edges: np.ndarray        # (m, 2) rows > cols, global edge list
    common: np.ndarray       # |N(u) ∩ N(v)| per edge
    similarity: np.ndarray   # Jaccard coefficient per edge
    run: RunResult


def reference_common_neighbors(graph: LowerTriangular) -> np.ndarray:
    """Exact per-edge common-neighbor counts: entries of (LᵀL + LLᵀ + ...).

    For an undirected graph, ``|N(u) ∩ N(v)|`` for edge (u, v) equals the
    number of triangles through that edge.  Computed with scipy on the
    symmetric adjacency: ``(A @ A)[u, v]`` masked to edges.
    """
    A = graph.to_scipy()
    S = A + A.T
    common = (S @ S).multiply(S)
    C = common.tocsr()
    if graph.nnz == 0:
        return np.empty(0, dtype=np.int64)
    return np.asarray(C[graph.rows, graph.cols]).ravel().astype(np.int64)


class _JaccardActor(Actor):
    def __init__(self, ctx, graph: LowerTriangular, edge_common: np.ndarray,
                 conveyor_config) -> None:
        super().__init__(ctx, payload_words=2, conveyor_config=conveyor_config)
        self.graph = graph
        self.edge_common = edge_common

    def _edge_index(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        g = self.graph
        keys = g._edge_keys()
        q = rows * g.n_vertices + cols
        pos = np.searchsorted(keys, q)
        pos_c = np.minimum(pos, g.nnz - 1)
        hit = (pos < g.nnz) & (keys[pos_c] == q)
        return np.where(hit, pos_c, -1)

    def process(self, payload, sender_rank: int) -> None:
        j, k = int(payload[0]), int(payload[1])
        self.ctx.compute(ins=16, loads=5, branches=2)
        idx = self._edge_index(np.array([j]), np.array([k]))[0]
        if idx >= 0:
            self.edge_common[idx] += 1

    def process_batch(self, payloads: np.ndarray, senders: np.ndarray) -> None:
        n = len(payloads)
        self.ctx.compute(ins=16 * n, loads=5 * n, branches=2 * n)
        idx = self._edge_index(payloads[:, 0], payloads[:, 1])
        hit = idx >= 0
        np.add.at(self.edge_common, idx[hit], 1)


def jaccard(
    graph: LowerTriangular,
    machine: MachineSpec,
    distribution: str | Distribution = "cyclic",
    profiler=None,
    conveyor_config: ConveyorConfig | None = None,
    batch: bool = True,
    validate: bool = True,
    seed: int = 0,
) -> JaccardResult:
    """Compute per-edge Jaccard similarity; validates common counts.

    A wedge (j, i, k) witnessed at vertex i contributes common neighbor i
    to edge (j, k); every common neighbor of an edge's endpoints with a
    higher index than both forms exactly one such wedge, and ones with
    lower or middle index are found through the wedges they form
    symmetrically — all three triangle rotations contribute, so the handler
    totals (over the three edges of each triangle) equal the per-edge
    triangle counts after summing the rotations.
    """
    if isinstance(distribution, str):
        dist = make_distribution(distribution, graph, machine.n_pes)
    else:
        dist = distribution
    indptr, indices = graph.symmetric_csr()
    full_deg = np.diff(indptr)

    def program(ctx):
        me = ctx.my_pe
        # shared-edge-array trick is not SPMD-safe: accumulate locally and
        # reduce at the end instead.
        edge_common = np.zeros(graph.nnz, dtype=np.int64)
        actor = _JaccardActor(ctx, graph, edge_common, conveyor_config)
        if not batch:
            actor.mb[0].process_batch = None
        # wedges from *full* neighborhoods: for each vertex i, every pair
        # of distinct neighbors (a > b) forms a wedge; ask owner of row a
        # whether edge (a, b) exists.
        mine = dist.local_rows(me)
        js_parts, ks_parts = [], []
        for i in mine:
            neigh = np.sort(indices[indptr[i]:indptr[i + 1]])
            d = len(neigh)
            if d < 2:
                continue
            a_idx, b_idx = np.triu_indices(d, k=1)
            js_parts.append(neigh[b_idx])  # larger endpoint (the row)
            ks_parts.append(neigh[a_idx])
        js = np.concatenate(js_parts) if js_parts else np.empty(0, np.int64)
        ks = np.concatenate(ks_parts) if ks_parts else np.empty(0, np.int64)
        with ctx.finish():
            actor.start()
            if len(js):
                ctx.compute(ins=8 * len(js), loads=2 * len(js))
                if batch:
                    actor.send_batch(dist.owner_array(js),
                                     np.stack([js, ks], axis=1))
                else:
                    for j, k in zip(js, ks):
                        actor.send((int(j), int(k)), dist.owner(int(j)))
            actor.done()
        total_common = ctx.shmem.allreduce(edge_common, "sum")
        return total_common

    run = run_spmd(program, machine=machine, profiler=profiler,
                   conveyor_config=conveyor_config, seed=seed)
    common = np.asarray(run.results[0], dtype=np.int64)
    if validate:
        expected = reference_common_neighbors(graph)
        if not np.array_equal(common, expected):
            bad = int((common != expected).sum())
            raise AssertionError(f"Jaccard common counts wrong on {bad} edges")
    u, v = graph.rows, graph.cols
    union = full_deg[u] + full_deg[v] - common
    union = np.maximum(union, 1)
    similarity = common / union
    edges = np.stack([u, v], axis=1)
    return JaccardResult(edges=edges, common=common, similarity=similarity, run=run)
