"""Influence spread estimation (Independent Cascade) over actors.

The paper lists Influence Maximization [19] among the workloads its group
actively profiles with ActorProf.  This module implements the core kernel
of that application: Monte-Carlo estimation of the *influence spread* of a
seed set under the Independent Cascade (IC) model.

Each simulation round is a stochastic cascade: an activated vertex ``u``
activates neighbor ``v`` with probability ``p``, decided by a
deterministic hash of (edge, round) so the distributed and serial runs see
identical coin flips.  The cascade is naturally asynchronous — activation
messages fan out as handlers fire and handlers send onward — making it the
repository's showcase for handler-initiated actor chains inside a single
finish scope.

``select_seeds`` adds greedy seed selection (the usual IM outer loop) on
top of the spread kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.conveyors.conveyor import ConveyorConfig
from repro.graphs.distributions import Distribution, make_distribution
from repro.graphs.matrix import LowerTriangular
from repro.hclib.actor import Actor
from repro.hclib.world import RunResult, run_spmd
from repro.machine.spec import MachineSpec


def _hash01(u: int, v: int, r: int, salt: int) -> float:
    """Deterministic uniform [0,1) for an (edge, round) coin flip.

    Edge identity is symmetric (min, max), so both directions of an
    undirected edge share one coin per round — the classic "live-edge"
    formulation of IC.
    """
    a, b = (u, v) if u < v else (v, u)
    x = (a * 0x9E3779B97F4A7C15 + b * 0xBF58476D1CE4E5B9 + r * 0x94D049BB133111EB
         + salt * 0xD6E8FEB86659FD93) & 0xFFFFFFFFFFFFFFFF
    # splitmix64 finalizer
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x / 2**64


@dataclass
class InfluenceResult:
    """Outcome of a spread estimation."""

    seeds: tuple[int, ...]
    rounds: int
    total_activations: int
    spread: float  # mean activated vertices per round
    per_round: np.ndarray
    run: RunResult


def reference_spread(graph: LowerTriangular, seeds: Sequence[int], rounds: int,
                     p: float, salt: int = 0) -> np.ndarray:
    """Serial IC cascades with the same coin flips (per-round activations)."""
    indptr, indices = graph.symmetric_csr()
    out = np.zeros(rounds, dtype=np.int64)
    for r in range(rounds):
        active = set(int(s) for s in seeds)
        frontier = list(active)
        while frontier:
            nxt = []
            for u in frontier:
                for v in indices[indptr[u]:indptr[u + 1]]:
                    v = int(v)
                    if v not in active and _hash01(u, v, r, salt) < p:
                        active.add(v)
                        nxt.append(v)
            frontier = nxt
        out[r] = len(active)
    return out


class _CascadeActor(Actor):
    """Handler: activate a vertex in a round, then cascade onward.

    Payload = (vertex, round).  The onward sends happen *inside the
    handler*, after the MAIN side has already called done() — exercising
    HClib-Actor's ability to keep messaging during the finish drain.
    """

    def __init__(self, ctx, dist, indptr, indices, p, salt, active, counts,
                 conveyor_config) -> None:
        super().__init__(ctx, payload_words=2, conveyor_config=conveyor_config)
        self.dist = dist
        self.indptr = indptr
        self.indices = indices
        self.p = p
        self.salt = salt
        self.active = active  # dict[(vertex, round)] -> True
        self.counts = counts  # per-round local activation counts

    def process(self, payload, sender_rank: int) -> None:
        v, r = int(payload[0]), int(payload[1])
        self.ctx.compute(ins=14, loads=4, branches=2)
        if (v, r) in self.active:
            return
        self.active[(v, r)] = True
        self.counts[r] += 1
        neigh = self.indices[self.indptr[v]:self.indptr[v + 1]]
        self.ctx.compute(ins=10 * len(neigh), loads=2 * len(neigh),
                         branches=len(neigh))
        for w in neigh:
            w = int(w)
            if _hash01(v, w, r, self.salt) < self.p:
                self.send((w, r), self.dist.owner(w))


def influence_spread(
    graph: LowerTriangular,
    seeds: Sequence[int],
    rounds: int,
    machine: MachineSpec,
    p: float = 0.1,
    distribution: str | Distribution = "cyclic",
    profiler=None,
    conveyor_config: ConveyorConfig | None = None,
    validate: bool = True,
    salt: int = 0,
    seed: int = 0,
) -> InfluenceResult:
    """Estimate IC influence spread of ``seeds`` over ``rounds`` cascades."""
    if rounds < 1:
        raise ValueError("need at least one simulation round")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"activation probability must be in [0, 1]: {p}")
    seeds = tuple(int(s) for s in seeds)
    for s in seeds:
        if not 0 <= s < graph.n_vertices:
            raise ValueError(f"seed {s} out of range")
    if isinstance(distribution, str):
        dist = make_distribution(distribution, graph, machine.n_pes)
    else:
        dist = distribution
    indptr, indices = graph.symmetric_csr()

    def program(ctx):
        me = ctx.my_pe
        active: dict[tuple[int, int], bool] = {}
        counts = np.zeros(rounds, dtype=np.int64)
        actor = _CascadeActor(ctx, dist, indptr, indices, p, salt, active,
                              counts, conveyor_config)
        with ctx.finish():
            actor.start()
            # every round's seed activations enter from the seeds' owners
            for r in range(rounds):
                for s in seeds:
                    if dist.owner(s) == me:
                        ctx.compute(ins=6, loads=2)
                        actor.send((s, r), me)
            actor.done()
        return ctx.shmem.allreduce(counts, "sum")

    run = run_spmd(program, machine=machine, profiler=profiler,
                   conveyor_config=conveyor_config, seed=seed)
    per_round = np.asarray(run.results[0], dtype=np.int64)
    if validate:
        expected = reference_spread(graph, seeds, rounds, p, salt)
        if not np.array_equal(per_round, expected):
            raise AssertionError(
                f"cascade mismatch: distributed {per_round.tolist()} vs "
                f"serial {expected.tolist()}"
            )
    total = int(per_round.sum())
    return InfluenceResult(
        seeds=seeds,
        rounds=rounds,
        total_activations=total,
        spread=total / rounds,
        per_round=per_round,
        run=run,
    )


def select_seeds(
    graph: LowerTriangular,
    k: int,
    rounds: int,
    machine: MachineSpec,
    p: float = 0.1,
    candidates: Sequence[int] | None = None,
    **kwargs,
) -> tuple[list[int], float]:
    """Greedy influence maximization over ``candidates``.

    Picks ``k`` seeds by repeatedly adding the candidate with the largest
    marginal spread (each evaluation is a full distributed run).  With no
    candidate list, the top-(4k) vertices by degree are considered — the
    standard degree-based pruning.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if candidates is None:
        deg = graph.full_degrees()
        candidates = np.argsort(deg)[::-1][: 4 * k].tolist()
    chosen: list[int] = []
    best_spread = 0.0
    for _ in range(k):
        best_cand, best_val = None, -1.0
        for cand in candidates:
            if cand in chosen:
                continue
            res = influence_spread(graph, chosen + [int(cand)], rounds,
                                   machine, p=p, **kwargs)
            if res.spread > best_val:
                best_cand, best_val = int(cand), res.spread
        assert best_cand is not None
        chosen.append(best_cand)
        best_spread = best_val
    return chosen, best_spread
