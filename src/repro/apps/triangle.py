"""Distributed triangle counting (the paper's Algorithm 1).

Each actor iterates over the lower-triangular rows it owns; for every pair
of distinct neighbors ``(j, k)`` with ``k < j`` of a local vertex ``i`` it
sends a non-blocking message to the rank owning row ``j``.  The handler
checks whether edge ``l_jk`` exists and, if so, increments that rank's
local triangle counter.  The total is an all-reduce of local counters,
validated against a serial reference — the paper's assertion validation.

The number of sends per vertex is O(d²) in its lower-triangular degree, so
an R-MAT power-law graph under a 1D Cyclic distribution concentrates both
sends and receives on the PEs owning hub vertices; the 1D Range
distribution balances sends but not receives.  Reproducing exactly that
contrast is the point of the paper's case study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.conveyors.conveyor import ConveyorConfig
from repro.graphs.distributions import Distribution, make_distribution
from repro.graphs.matrix import LowerTriangular
from repro.hclib.actor import Actor
from repro.hclib.world import RunResult, run_spmd
from repro.machine.cost import CostModel
from repro.machine.spec import MachineSpec

#: MAIN-side instructions charged per enumerated wedge (pair generation).
_PAIR_GEN_INS = 3
#: PROC-side instructions charged per edge-existence check — a binary
#: search over the row's neighbor list (several dependent loads).
_CHECK_INS = 30
_CHECK_LOADS = 8


@dataclass
class TriangleResult:
    """Outcome of a distributed triangle count."""

    triangles: int
    reference: int | None
    per_pe_counts: list[int]
    per_pe_sends: list[int]
    distribution: str
    run: RunResult

    @property
    def total_sends(self) -> int:
        return sum(self.per_pe_sends)


class _TriangleActor(Actor):
    """The message handler half of Algorithm 1 (ACTORPROCESS)."""

    def __init__(self, ctx, graph: LowerTriangular, counter: np.ndarray,
                 conveyor_config: ConveyorConfig | None) -> None:
        super().__init__(ctx, payload_words=2, conveyor_config=conveyor_config)
        self.graph = graph
        self.counter = counter

    def process(self, payload, sender_rank: int) -> None:
        j, k = payload
        # "if l_jk ∈ L_p and l_jk = 1 then c_p += 1"
        self.ctx.compute(ins=_CHECK_INS, loads=_CHECK_LOADS, branches=2)
        if self.graph.has_edge(int(j), int(k)):
            self.counter[0] += 1

    def process_batch(self, payloads: np.ndarray, senders: np.ndarray) -> None:
        n = len(payloads)
        self.ctx.compute(ins=_CHECK_INS * n, loads=_CHECK_LOADS * n, branches=2 * n)
        hits = self.graph.has_edges(payloads[:, 0], payloads[:, 1])
        self.counter[0] += int(hits.sum())


def _wedges_for_rows(graph: LowerTriangular, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All (j, k) neighbor pairs (k < j) for the given rows, concatenated.

    Returns (js, ks).  For each row's sorted neighbor list ``ns``, the
    pairs are ``(ns[b], ns[a])`` for every ``a < b``.
    """
    js_parts: list[np.ndarray] = []
    ks_parts: list[np.ndarray] = []
    triu_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for i in rows:
        ns = graph.neighbors(int(i))
        d = len(ns)
        if d < 2:
            continue
        pair = triu_cache.get(d)
        if pair is None:
            a, b = np.triu_indices(d, k=1)
            pair = (a, b)
            triu_cache[d] = pair
        a, b = pair
        js_parts.append(ns[b])
        ks_parts.append(ns[a])
    if not js_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(js_parts), np.concatenate(ks_parts)


def triangle_program(graph: LowerTriangular, dist: Distribution,
                     batch: bool = True,
                     conveyor_config: ConveyorConfig | None = None):
    """Build the per-PE SPMD program of Algorithm 1."""

    def program(ctx) -> dict[str, Any]:
        counter = np.zeros(1, dtype=np.int64)
        actor = _TriangleActor(ctx, graph, counter, conveyor_config)
        if not batch:
            # scalar mode: unhook the vectorized handler so every message
            # goes through process() exactly like the paper's listing
            actor.mb[0].process_batch = None
        rows = dist.local_rows(ctx.my_pe)
        sends = 0
        with ctx.finish():
            actor.start()
            if batch:
                js, ks = _wedges_for_rows(graph, rows)
                ctx.compute(ins=_PAIR_GEN_INS * len(js), loads=2 * len(js))
                owners = dist.owner_array(js)
                payloads = np.stack([js, ks], axis=1)
                actor.send_batch(owners, payloads)
                sends = len(js)
            else:
                for i in rows:
                    ns = graph.neighbors(int(i))
                    for b in range(1, len(ns)):
                        for a in range(b):
                            j, k = int(ns[b]), int(ns[a])
                            ctx.compute(ins=_PAIR_GEN_INS, loads=2)
                            actor.send((j, k), dist.owner(j))
                            sends += 1
            actor.done()
        total = ctx.shmem.allreduce(int(counter[0]), "sum")
        return {"local": int(counter[0]), "total": total, "sends": sends}

    return program


def count_triangles(
    graph: LowerTriangular,
    machine: MachineSpec,
    distribution: str | Distribution = "cyclic",
    profiler=None,
    conveyor_config: ConveyorConfig | None = None,
    cost: CostModel | None = None,
    batch: bool = True,
    validate: bool = True,
    seed: int = 0,
    shmem_observers=(),
    schedule_policy=None,
) -> TriangleResult:
    """Run distributed triangle counting; validates against the reference.

    Parameters mirror the paper's experiment: ``distribution`` selects 1D
    Cyclic or 1D Range (or block), ``machine`` the node/PE layout, and an
    optional attached :class:`~repro.core.profiler.ActorProf` collects the
    traces the case study visualizes.
    """
    if isinstance(distribution, str):
        dist = make_distribution(distribution, graph, machine.n_pes)
    else:
        dist = distribution
    program = triangle_program(graph, dist, batch=batch,
                               conveyor_config=conveyor_config)
    run = run_spmd(program, machine=machine, cost=cost, profiler=profiler,
                   conveyor_config=conveyor_config, seed=seed,
                   shmem_observers=shmem_observers,
                   schedule_policy=schedule_policy)
    totals = {r["total"] for r in run.results}
    if len(totals) != 1:
        raise AssertionError(f"PEs disagree on the triangle total: {totals}")
    total = totals.pop()
    reference = None
    if validate:
        reference = graph.triangle_count_reference()
        if total != reference:
            raise AssertionError(
                f"triangle count {total} != reference {reference} "
                f"(distribution={dist.name})"
            )
    return TriangleResult(
        triangles=total,
        reference=reference,
        per_pe_counts=[r["local"] for r in run.results],
        per_pe_sends=[r["sends"] for r in run.results],
        distribution=dist.name,
        run=run,
    )
