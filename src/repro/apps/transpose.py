"""Distributed sparse-matrix transpose (the bale "transpose" kernel).

Every PE owns the rows ``r`` of a sparse 0/1 matrix with ``r % P == me``
(1D cyclic).  To transpose, each PE sends every stored nonzero ``(r, c)``
as an entry ``(c, r)`` to the owner of row ``c`` of the transpose; the
handler appends to its local rows.  Validation compares against scipy's
transpose exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.conveyors.conveyor import ConveyorConfig
from repro.hclib.actor import Actor
from repro.hclib.world import RunResult, run_spmd
from repro.machine.spec import MachineSpec


@dataclass
class TransposeResult:
    """Outcome of a distributed transpose."""

    entries: np.ndarray  # (nnz, 2) rows of the transpose, sorted
    run: RunResult


class _TransposeActor(Actor):
    def __init__(self, ctx, collected: list, conveyor_config) -> None:
        super().__init__(ctx, payload_words=2, conveyor_config=conveyor_config)
        self.collected = collected

    def process(self, payload, sender_rank: int) -> None:
        self.ctx.compute(ins=6, stores=2)
        self.collected.append((int(payload[0]), int(payload[1])))

    def process_batch(self, payloads: np.ndarray, senders: np.ndarray) -> None:
        self.ctx.compute(ins=6 * len(payloads), stores=2 * len(payloads))
        self.collected.extend(map(tuple, payloads.tolist()))


def transpose(
    entries: np.ndarray,
    n_rows: int,
    n_cols: int,
    machine: MachineSpec,
    profiler=None,
    conveyor_config: ConveyorConfig | None = None,
    batch: bool = True,
    validate: bool = True,
    seed: int = 0,
) -> TransposeResult:
    """Transpose a sparse matrix given as (row, col) ``entries``.

    Entries are distributed by ``row % n_pes``; the result is gathered
    (and, when ``validate``, compared entry-for-entry with scipy).
    """
    entries = np.asarray(entries, dtype=np.int64)
    if entries.ndim != 2 or entries.shape[1] != 2:
        raise ValueError(f"entries must be (nnz, 2), got {entries.shape}")
    if len(entries) and (entries[:, 0].max() >= n_rows or entries[:, 1].max() >= n_cols):
        raise ValueError("entry index out of bounds")
    n_pes = machine.n_pes

    def program(ctx):
        me = ctx.my_pe
        mine = entries[entries[:, 0] % n_pes == me]
        collected: list[tuple[int, int]] = []
        actor = _TransposeActor(ctx, collected, conveyor_config)
        if not batch:
            actor.mb[0].process_batch = None
        with ctx.finish():
            actor.start()
            if len(mine):
                ctx.compute(ins=4 * len(mine), loads=2 * len(mine))
                owners = mine[:, 1] % n_pes
                flipped = mine[:, [1, 0]]
                if batch:
                    actor.send_batch(owners, flipped)
                else:
                    for (c, r), owner in zip(flipped, owners):
                        actor.send((int(c), int(r)), int(owner))
            actor.done()
        return sorted(collected)

    run = run_spmd(program, machine=machine, profiler=profiler,
                   conveyor_config=conveyor_config, seed=seed)
    gathered = sorted(t for local in run.results for t in local)
    out = (np.array(gathered, dtype=np.int64).reshape(-1, 2)
           if gathered else np.empty((0, 2), dtype=np.int64))
    if validate:
        data = np.ones(len(entries))
        m = sparse.coo_matrix((data, (entries[:, 0], entries[:, 1])),
                              shape=(n_rows, n_cols))
        t = m.transpose().tocoo()
        expected = sorted(zip(t.row.tolist(), t.col.tolist()))
        if gathered != expected:
            raise AssertionError("distributed transpose disagrees with scipy")
    return TransposeResult(entries=out, run=run)
