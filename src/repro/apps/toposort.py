"""Distributed toposort (the flagship bale kernel).

Given a sparse matrix that is a randomly row/column-permuted
upper-triangular matrix with full diagonal, recover row and column
permutations that make it upper triangular again.

The asynchronous actor algorithm (the form bale uses to showcase
aggregation): a row with exactly one remaining nonzero is a *pivot* —
its row and that column are assigned the highest unassigned position
(counting down from n−1 via a remote fetch-and-add), then the column is
"deleted": every other row with a nonzero in it gets a decrement message.
Rows reaching count one inside the handler become pivots immediately, so
the whole elimination cascades through message handlers within a single
finish scope — no level barriers at all.

Bookkeeping trick (also from bale): alongside each row's remaining count
keep the *sum* of its remaining column indices; when the count hits one,
the surviving column is exactly that sum.

Validated like bale: the returned permutations must be bijections and
place every original nonzero on or above the diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conveyors.conveyor import ConveyorConfig
from repro.hclib.actor import Selector
from repro.hclib.world import RunResult, run_spmd
from repro.machine.spec import MachineSpec
from repro.sim.rng import pe_rng

#: message kinds (word 0 of each payload)
_DELETE_COL = 0
_DECREMENT = 1


def make_toposort_input(n: int, extra_per_row: int = 3, seed: int = 0
                        ) -> np.ndarray:
    """A permuted unit-upper-triangular test matrix as (row, col) entries.

    Starts from U with full diagonal plus up to ``extra_per_row`` random
    entries above the diagonal per row, then applies independent random
    row and column permutations — the standard bale generator shape.
    """
    if n < 1:
        raise ValueError("matrix must have at least one row")
    rng = pe_rng(seed, 0)
    rows = [np.arange(n), ]
    cols = [np.arange(n), ]
    for _ in range(extra_per_row):
        r = rng.integers(0, n, n)
        off = rng.integers(1, n + 1, n)
        c = r + off
        keep = c < n
        rows.append(r[keep])
        cols.append(c[keep])
    entries = np.unique(
        np.stack([np.concatenate(rows), np.concatenate(cols)], axis=1), axis=0
    )
    rp = rng.permutation(n)
    cp = rng.permutation(n)
    permuted = np.stack([rp[entries[:, 0]], cp[entries[:, 1]]], axis=1)
    order = np.lexsort((permuted[:, 1], permuted[:, 0]))
    return permuted[order]


@dataclass
class ToposortResult:
    """Outcome: position of each row / column in the recovered ordering."""

    row_perm: np.ndarray
    col_perm: np.ndarray
    run: RunResult


def toposort(
    entries: np.ndarray,
    n: int,
    machine: MachineSpec,
    profiler=None,
    conveyor_config: ConveyorConfig | None = None,
    validate: bool = True,
    seed: int = 0,
) -> ToposortResult:
    """Recover upper-triangularizing permutations of an ``n × n`` matrix."""
    entries = np.asarray(entries, dtype=np.int64)
    if entries.ndim != 2 or entries.shape[1] != 2:
        raise ValueError(f"entries must be (nnz, 2), got {entries.shape}")
    n_pes = machine.n_pes
    # column → rows lookup, owned cyclically by column
    col_rows: dict[int, list[int]] = {}
    for r, c in entries.tolist():
        col_rows.setdefault(c, []).append(r)

    def program(ctx):
        me = ctx.my_pe
        # per-owned-row state
        my_rows = entries[entries[:, 0] % n_pes == me]
        rowcnt: dict[int, int] = {}
        rowsum: dict[int, int] = {}
        for r, c in my_rows.tolist():
            rowcnt[r] = rowcnt.get(r, 0) + 1
            rowsum[r] = rowsum.get(r, 0) + c
        row_pos: dict[int, int] = {}
        pos_counter = ctx.shmem.malloc(1, np.int64)  # lives on PE 0

        sel = Selector(ctx, mailboxes=1, payload_words=2,
                       conveyor_config=conveyor_config)

        def claim_position() -> int:
            # positions are handed out from n-1 downward
            k = ctx.shmem.atomic_fetch_add(pos_counter, 1, 0)
            return n - 1 - k

        def retire_pivot(r: int, c: int) -> None:
            """Row r's only remaining nonzero is column c: assign both."""
            pos = claim_position()
            row_pos[r] = pos
            rowcnt[r] = 0
            # ask the column's owner to broadcast the deletion
            sel.send(0, (_DELETE_COL, c), c % n_pes)

        def handler(payload, sender_rank):
            kind, x = int(payload[0]), int(payload[1])
            ctx.compute(ins=12, loads=4, branches=2)
            if kind == _DELETE_COL:
                c = x
                for r2 in col_rows.get(c, ()):
                    sel.send(0, (_DECREMENT, _encode(r2, c)), r2 % n_pes)
            else:
                r2, c = _decode(x)
                if rowcnt.get(r2, 0) == 0:
                    return  # row already retired (its own pivot entry)
                rowcnt[r2] -= 1
                rowsum[r2] -= c
                if rowcnt[r2] == 1:
                    retire_pivot(r2, rowsum[r2])

        sel.mb[0].process = handler
        with ctx.finish():
            sel.start()
            for r, cnt in list(rowcnt.items()):
                if cnt == 1:
                    retire_pivot(r, rowsum[r])
            sel.done(0)
        return row_pos

    # Column positions equal their pivot row's position; reconstruct them
    # from the row positions and the pivot pairing (the surviving column of
    # row r when it retired). Rather than thread that through messages, we
    # recompute it: row r's pivot column is rowsum at retirement — recover
    # by replaying assignment order. Simpler and robust: run the program,
    # then pair columns by the diagonal entries of the recovered ordering.
    run = run_spmd(program, machine=machine, profiler=profiler,
                   conveyor_config=conveyor_config, seed=seed)
    row_pos = np.full(n, -1, dtype=np.int64)
    for local in run.results:
        for r, p in local.items():
            row_pos[r] = p
    if validate and (row_pos < 0).any():
        missing = int((row_pos < 0).sum())
        raise AssertionError(
            f"toposort did not retire {missing} rows — input not a permuted "
            "upper-triangular matrix?"
        )
    # Each position was claimed by exactly one (row, col) pivot pair; the
    # column of row r's pivot is the one that makes the matrix triangular:
    # replay deterministically from the row order (highest position first).
    col_pos = np.full(n, -1, dtype=np.int64)
    remaining_cnt = np.zeros(n, dtype=np.int64)
    remaining_sum = np.zeros(n, dtype=np.int64)
    for r, c in entries.tolist():
        remaining_cnt[r] += 1
        remaining_sum[r] += c
    deleted = np.zeros(n, dtype=bool)
    for r in np.argsort(-row_pos):  # retirement order: position n-1 first
        c = int(remaining_sum[r])
        col_pos[c] = row_pos[r]
        deleted[c] = True
        for r2 in col_rows.get(c, ()):
            if remaining_cnt[r2] > 0 and r2 != r:
                remaining_cnt[r2] -= 1
                remaining_sum[r2] -= c
        remaining_cnt[r] = 0
    if validate:
        _validate(entries, row_pos, col_pos, n)
    return ToposortResult(row_perm=row_pos, col_perm=col_pos, run=run)


def _encode(r: int, c: int) -> int:
    return (r << 32) | c


def _decode(x: int) -> tuple[int, int]:
    return x >> 32, x & 0xFFFFFFFF


def _validate(entries: np.ndarray, row_pos: np.ndarray, col_pos: np.ndarray,
              n: int) -> None:
    if sorted(row_pos.tolist()) != list(range(n)):
        raise AssertionError("row positions are not a permutation")
    if sorted(col_pos.tolist()) != list(range(n)):
        raise AssertionError("column positions are not a permutation")
    rp = row_pos[entries[:, 0]]
    cp = col_pos[entries[:, 1]]
    if (rp > cp).any():
        bad = int((rp > cp).sum())
        raise AssertionError(
            f"{bad} entries land below the diagonal — not upper triangular"
        )
