"""Level-synchronous breadth-first search over actors.

One finish scope per BFS level: every PE expands its owned frontier
vertices, sending each undirected neighbor to its owner; the handler marks
unvisited vertices and adds them to the next frontier.  An all-reduce on
the next-frontier size decides termination.  Validated against a serial
numpy BFS.

BFS is one of the irregular applications the paper's introduction
motivates ("irregular applications like Breadth First Search ... face a
common challenge: sending large orders of small byte-sized messages").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conveyors.conveyor import ConveyorConfig
from repro.graphs.distributions import Distribution, make_distribution
from repro.graphs.matrix import LowerTriangular
from repro.hclib.actor import Actor
from repro.hclib.world import RunResult, run_spmd
from repro.machine.spec import MachineSpec


@dataclass
class BFSResult:
    """Outcome of a BFS run."""

    levels: np.ndarray  # global level per vertex (-1 = unreachable)
    n_levels: int
    source: int
    run: RunResult


def reference_bfs(graph: LowerTriangular, source: int) -> np.ndarray:
    """Serial BFS levels (-1 for unreachable vertices)."""
    indptr, indices = graph.symmetric_csr()
    levels = np.full(graph.n_vertices, -1, dtype=np.int64)
    levels[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        nxt = []
        for v in frontier:
            for u in indices[indptr[v] : indptr[v + 1]]:
                if levels[u] < 0:
                    levels[u] = level + 1
                    nxt.append(int(u))
        frontier = nxt
        level += 1
    return levels


class _BFSActor(Actor):
    def __init__(self, ctx, levels_local: dict, next_frontier: list,
                 level_box: list, conveyor_config) -> None:
        super().__init__(ctx, payload_words=1, conveyor_config=conveyor_config)
        self.levels_local = levels_local
        self.next_frontier = next_frontier
        self.level_box = level_box

    def process(self, vertex, sender_rank: int) -> None:
        self.ctx.compute(ins=10, loads=2, stores=1, branches=1)
        if self.levels_local.get(int(vertex), -1) < 0:
            self.levels_local[int(vertex)] = self.level_box[0] + 1
            self.next_frontier.append(int(vertex))


def bfs(
    graph: LowerTriangular,
    source: int,
    machine: MachineSpec,
    distribution: str | Distribution = "cyclic",
    profiler=None,
    conveyor_config: ConveyorConfig | None = None,
    validate: bool = True,
    seed: int = 0,
) -> BFSResult:
    """Distributed level-synchronous BFS from ``source``."""
    if not 0 <= source < graph.n_vertices:
        raise ValueError(f"source {source} out of range")
    if isinstance(distribution, str):
        dist = make_distribution(distribution, graph, machine.n_pes)
    else:
        dist = distribution
    indptr, indices = graph.symmetric_csr()

    def program(ctx):
        me = ctx.my_pe
        levels_local: dict[int, int] = {}
        frontier: list[int] = []
        level_box = [0]
        if dist.owner(source) == me:
            levels_local[source] = 0
            frontier.append(source)
        level = 0
        while True:
            next_frontier: list[int] = []
            actor = _BFSActor(ctx, levels_local, next_frontier, level_box,
                              conveyor_config)
            level_box[0] = level
            with ctx.finish():
                actor.start()
                for v in frontier:
                    neigh = indices[indptr[v] : indptr[v + 1]]
                    ctx.compute(ins=4 * len(neigh), loads=len(neigh))
                    if len(neigh):
                        actor.send_batch(dist.owner_array(neigh), neigh)
                actor.done()
            total_next = ctx.shmem.allreduce(len(next_frontier), "sum")
            frontier = next_frontier
            level += 1
            if total_next == 0:
                break
        return levels_local

    run = run_spmd(program, machine=machine, profiler=profiler,
                   conveyor_config=conveyor_config, seed=seed)
    levels = np.full(graph.n_vertices, -1, dtype=np.int64)
    for local in run.results:
        for v, lv in local.items():
            levels[v] = lv
    n_levels = int(levels.max()) + 1 if (levels >= 0).any() else 0
    if validate:
        expected = reference_bfs(graph, source)
        if not np.array_equal(levels, expected):
            bad = int((levels != expected).sum())
            raise AssertionError(f"BFS levels wrong for {bad} vertices")
    return BFSResult(levels=levels, n_levels=n_levels, source=source, run=run)
