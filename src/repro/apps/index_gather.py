"""Index gather — the bale "ig" kernel as a request/response selector.

A distributed table is spread cyclically over PEs; every PE gathers the
values at a list of random global indices.  The selector has two guarded
mailboxes: REQUEST carries ``(local_index, return_slot)`` to the owner,
whose handler responds on RESPONSE with ``(return_slot, value)`` back to
the requester.  Only REQUEST is explicitly ``done()``-ed — RESPONSE
terminates through HClib-Actor's chained mailbox termination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conveyors.conveyor import ConveyorConfig
from repro.hclib.actor import Selector
from repro.hclib.world import RunResult, run_spmd
from repro.machine.spec import MachineSpec

REQUEST = 0
RESPONSE = 1


@dataclass
class IndexGatherResult:
    """Outcome of an index-gather run."""

    gathered_per_pe: list[np.ndarray]
    run: RunResult


def _table_value(global_idx: np.ndarray | int):
    """The deterministic table contents (validation oracle)."""
    return global_idx * 3 + 1


def index_gather(
    table_size_per_pe: int,
    requests_per_pe: int,
    machine: MachineSpec,
    profiler=None,
    conveyor_config: ConveyorConfig | None = None,
    validate: bool = True,
    seed: int = 0,
) -> IndexGatherResult:
    """Gather ``requests_per_pe`` random table entries per PE."""
    if table_size_per_pe < 1:
        raise ValueError("table needs at least one entry per PE")
    n_pes = machine.n_pes
    global_size = table_size_per_pe * n_pes

    def program(ctx):
        me = ctx.my_pe
        # cyclic table layout: global g lives at (g % P, g // P)
        local_globals = np.arange(table_size_per_pe) * n_pes + me
        table = _table_value(local_globals).astype(np.int64)
        tgt = np.full(requests_per_pe, -1, dtype=np.int64)
        sel = Selector(ctx, mailboxes=2, payload_words=2,
                       conveyor_config=conveyor_config)

        def on_request(payload, requester):
            local_idx, slot = payload
            ctx.compute(ins=8, loads=2)
            sel.send(RESPONSE, (slot, int(table[local_idx])), requester)

        def on_response(payload, responder):
            slot, value = payload
            ctx.compute(ins=4, stores=1)
            tgt[slot] = value

        sel.mb[REQUEST].process = on_request
        sel.mb[RESPONSE].process = on_response

        indices = ctx.rng.integers(0, global_size, requests_per_pe)
        with ctx.finish():
            sel.start()
            for slot, g in enumerate(indices):
                owner = int(g % n_pes)
                local_idx = int(g // n_pes)
                sel.send(REQUEST, (local_idx, slot), owner)
            sel.done(REQUEST)  # RESPONSE terminates via chained done
        if validate:
            expected = _table_value(indices)
            if not np.array_equal(tgt, expected):
                bad = int((tgt != expected).sum())
                raise AssertionError(f"index gather returned {bad} wrong values")
        return tgt

    run = run_spmd(program, machine=machine, profiler=profiler,
                   conveyor_config=conveyor_config, seed=seed)
    return IndexGatherResult(gathered_per_pe=list(run.results), run=run)
