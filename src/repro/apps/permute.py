"""Random permutation — the bale "permute" kernel.

Each PE owns a block of a distributed array and a block of a global
permutation; every element is sent to the PE owning its permuted position.
One message per element: ``(local_slot_at_destination, value)``.
Validation reconstructs the permuted array and compares with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conveyors.conveyor import ConveyorConfig
from repro.hclib.actor import Actor
from repro.hclib.world import RunResult, run_spmd
from repro.machine.spec import MachineSpec
from repro.sim.rng import pe_rng


@dataclass
class PermuteResult:
    """Outcome of a permutation run."""

    output_per_pe: list[np.ndarray]
    run: RunResult


class _PermuteActor(Actor):
    def __init__(self, ctx, out: np.ndarray,
                 conveyor_config: ConveyorConfig | None) -> None:
        super().__init__(ctx, payload_words=2, conveyor_config=conveyor_config)
        self.out = out

    def process(self, payload, sender_rank: int) -> None:
        slot, value = payload
        self.ctx.compute(ins=5, stores=1)
        self.out[slot] = value

    def process_batch(self, payloads: np.ndarray, senders: np.ndarray) -> None:
        self.ctx.compute(ins=5 * len(payloads), stores=len(payloads))
        self.out[payloads[:, 0]] = payloads[:, 1]


def permute(
    elements_per_pe: int,
    machine: MachineSpec,
    profiler=None,
    conveyor_config: ConveyorConfig | None = None,
    batch: bool = True,
    validate: bool = True,
    seed: int = 0,
) -> PermuteResult:
    """Apply a random global permutation to a block-distributed array.

    Element ``g`` (value ``g * 7``) moves to position ``perm[g]``; position
    ``q`` lives on PE ``q // elements_per_pe`` at slot ``q % elements_per_pe``.
    """
    if elements_per_pe < 1:
        raise ValueError("need at least one element per PE")
    n_pes = machine.n_pes
    total = elements_per_pe * n_pes
    # The global permutation must be identical on every PE: derive it from
    # the run seed, independent of per-PE streams.
    perm = pe_rng(seed, 0).permutation(total)

    def program(ctx):
        me = ctx.my_pe
        out = np.zeros(elements_per_pe, dtype=np.int64)
        actor = _PermuteActor(ctx, out, conveyor_config)
        if not batch:
            actor.mb[0].process_batch = None
        my_globals = np.arange(elements_per_pe, dtype=np.int64) + me * elements_per_pe
        values = my_globals * 7
        targets = perm[my_globals]
        owners = targets // elements_per_pe
        slots = targets % elements_per_pe
        with ctx.finish():
            actor.start()
            if batch:
                actor.send_batch(owners, np.stack([slots, values], axis=1))
            else:
                for owner, slot, val in zip(owners, slots, values):
                    actor.send((int(slot), int(val)), int(owner))
            actor.done()
        if validate:
            # position q on this PE holds the value whose perm target is q
            inverse = np.argsort(perm)
            expected = inverse[my_globals] * 7
            if not np.array_equal(out, expected):
                raise AssertionError(f"PE {me}: permuted block mismatch")
        return out

    run = run_spmd(program, machine=machine, profiler=profiler,
                   conveyor_config=conveyor_config, seed=seed)
    return PermuteResult(output_per_pe=list(run.results), run=run)
