"""The histogram example — the paper's Listings 1 and 2.

Each PE sends ``n_updates`` asynchronous messages to random destinations;
the handler increments a slot of the destination's local array — with no
atomics, because the runtime processes incoming messages one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conveyors.conveyor import ConveyorConfig
from repro.hclib.actor import Actor
from repro.hclib.world import RunResult, run_spmd
from repro.machine.cost import CostModel
from repro.machine.spec import MachineSpec


@dataclass
class HistogramResult:
    """Outcome of a histogram run."""

    total_updates: int
    per_pe_received: list[int]
    run: RunResult


class _HistogramActor(Actor):
    """Listing 2's ``MyActor``: ``larray[idx] += 1``, no atomics."""

    def __init__(self, ctx, larray: np.ndarray,
                 conveyor_config: ConveyorConfig | None) -> None:
        super().__init__(ctx, payload_words=1, conveyor_config=conveyor_config)
        self.larray = larray

    def process(self, idx, sender_rank: int) -> None:
        self.ctx.compute(ins=6, loads=1, stores=1)
        self.larray[idx] += 1

    def process_batch(self, payloads: np.ndarray, senders: np.ndarray) -> None:
        n = len(payloads)
        self.ctx.compute(ins=6 * n, loads=n, stores=n)
        np.add.at(self.larray, payloads[:, 0], 1)


def histogram_exstack(
    updates_per_pe: list[int] | int,
    table_size: int,
    machine: MachineSpec,
    buffer_items: int = 64,
    validate: bool = True,
    seed: int = 0,
) -> HistogramResult:
    """The histogram over **exstack** (bulk-synchronous aggregation).

    Functionally identical to :func:`histogram` but with collective
    exchanges instead of Conveyors' asynchronous sends — the workload used
    to demonstrate exstack's global synchronization problem (paper §II-B).
    ``updates_per_pe`` may be a single count or per-PE counts (a skewed
    list exposes the problem: everyone synchronizes at the pace of the
    busiest PE).
    """
    from repro.conveyors.exstack import ExstackGroup
    from repro.hclib.world import run_spmd as _run

    if isinstance(updates_per_pe, int):
        updates_per_pe = [updates_per_pe] * machine.n_pes
    if len(updates_per_pe) != machine.n_pes:
        raise ValueError("updates_per_pe must have one entry per PE")
    if table_size < 1:
        raise ValueError("table must have at least one slot")
    counts = list(updates_per_pe)
    group_box: list = [None]

    def program(ctx):
        if group_box[0] is None:  # symmetric, first PE constructs
            group_box[0] = ExstackGroup(ctx.world.shmem, payload_words=1,
                                        buffer_items=buffer_items)
        ex = group_box[0].endpoints[ctx.my_pe]
        larray = np.zeros(table_size, dtype=np.int64)
        n = counts[ctx.my_pe]
        dsts = ctx.rng.integers(0, ctx.n_pes, n)
        idxs = ctx.rng.integers(0, table_size, n)
        i = 0
        alive = True
        while alive:
            while i < n and ex.push(int(idxs[i]), int(dsts[i])):
                ctx.compute(ins=8, loads=2, stores=1)
                i += 1
            alive = ex.exchange(done=(i == n))
            while (item := ex.pull()) is not None:
                _src, idx = item
                ctx.compute(ins=6, loads=1, stores=1)
                larray[idx] += 1
        received = int(larray.sum())
        total = ctx.shmem.allreduce(received, "sum")
        return {"received": received, "total": total}

    run = _run(program, machine=machine, seed=seed)
    total = run.results[0]["total"]
    if validate:
        expected = sum(counts)
        if total != expected:
            raise AssertionError(f"exstack histogram lost updates: "
                                 f"{total} != {expected}")
    return HistogramResult(
        total_updates=total,
        per_pe_received=[r["received"] for r in run.results],
        run=run,
    )


def histogram(
    n_updates: int,
    table_size: int,
    machine: MachineSpec,
    profiler=None,
    conveyor_config: ConveyorConfig | None = None,
    cost: CostModel | None = None,
    batch: bool = True,
    validate: bool = True,
    seed: int = 0,
    schedule_policy=None,
) -> HistogramResult:
    """Run the Listing 1–2 histogram: ``n_updates`` random sends per PE."""
    if n_updates < 0:
        raise ValueError(f"negative update count: {n_updates}")
    if table_size < 1:
        raise ValueError(f"table must have at least one slot: {table_size}")

    def program(ctx):
        larray = np.zeros(table_size, dtype=np.int64)  # Listing 1 line 2
        actor = _HistogramActor(ctx, larray, conveyor_config)
        if not batch:
            actor.mb[0].process_batch = None
        dsts = ctx.rng.integers(0, ctx.n_pes, n_updates)
        idxs = ctx.rng.integers(0, table_size, n_updates)
        with ctx.finish():  # Listing 1 line 4
            actor.start()
            if batch:
                actor.send_batch(dsts, idxs)
            else:
                for dst, idx in zip(dsts, idxs):
                    actor.send(int(idx), int(dst))  # asynchronous SEND
            actor.done()
        received = int(larray.sum())
        total = ctx.shmem.allreduce(received, "sum")
        return {"received": received, "total": total}

    run = run_spmd(program, machine=machine, cost=cost, profiler=profiler,
                   conveyor_config=conveyor_config, seed=seed,
                   schedule_policy=schedule_policy)
    total = run.results[0]["total"]
    if validate:
        expected = n_updates * machine.n_pes
        if total != expected:
            raise AssertionError(f"histogram lost updates: {total} != {expected}")
    return HistogramResult(
        total_updates=total,
        per_pe_received=[r["received"] for r in run.results],
        run=run,
    )
