"""FA-BSP applications.

The workloads the paper profiles or motivates:

* :mod:`~repro.apps.histogram` — the paper's Listings 1–2 (random remote
  increments), the canonical FA-BSP hello-world.
* :mod:`~repro.apps.triangle` — distributed triangle counting
  (Algorithm 1), the Section IV case study, with 1D Cyclic / 1D Range /
  block distributions.
* :mod:`~repro.apps.index_gather` — the bale "ig" kernel as a two-mailbox
  request/response selector.
* :mod:`~repro.apps.permute` — the bale random-permutation kernel.
* :mod:`~repro.apps.transpose` — the bale sparse-transpose kernel.
* :mod:`~repro.apps.toposort` — the bale toposort kernel (asynchronous
  pivot cascades through message handlers).
* :mod:`~repro.apps.bfs` — level-synchronous breadth-first search.
* :mod:`~repro.apps.pagerank` — actor-based PageRank iterations.
* :mod:`~repro.apps.jaccard` — per-edge Jaccard similarity via wedge
  checks (the paper cites its Jaccard workload [7] as an ActorProf user).
* :mod:`~repro.apps.influence` — Independent-Cascade influence spread +
  greedy seed selection (the paper cites Influence Maximization [19]).

Every application validates its answer against a serial reference,
mirroring the paper's assertion-based validation.
"""

from repro.apps.bfs import BFSResult, bfs
from repro.apps.histogram import HistogramResult, histogram
from repro.apps.index_gather import IndexGatherResult, index_gather
from repro.apps.influence import InfluenceResult, influence_spread, select_seeds
from repro.apps.jaccard import JaccardResult, jaccard
from repro.apps.pagerank import PageRankResult, pagerank
from repro.apps.permute import PermuteResult, permute
from repro.apps.toposort import ToposortResult, make_toposort_input, toposort
from repro.apps.transpose import TransposeResult, transpose
from repro.apps.triangle import TriangleResult, count_triangles

__all__ = [
    "BFSResult",
    "HistogramResult",
    "IndexGatherResult",
    "InfluenceResult",
    "JaccardResult",
    "PageRankResult",
    "PermuteResult",
    "ToposortResult",
    "TransposeResult",
    "TriangleResult",
    "bfs",
    "count_triangles",
    "histogram",
    "index_gather",
    "influence_spread",
    "jaccard",
    "pagerank",
    "permute",
    "select_seeds",
    "make_toposort_input",
    "toposort",
    "transpose",
]
