""":mod:`repro.api` — the single supported analysis entry surface.

PRs 1–9 grew one callable per capability (``run_query``, ``diff_runs``,
``diff_archives``, ``run_whatif``, raw :class:`Frame` plumbing, …), each
with its own spelling for "which run".  This facade replaces that
scatter with one handle::

    import repro.api as api

    with api.open_run("run.aptrc") as run:        # path or registry id
        run.query("sends where src == 0 group by dst")
        run.diff("other.aptrc")
        run.viz("heatmap")                        # LOD-backed SVG
        frame = run.frame("physical")

    api.diff("a.aptrc", "b.aptrc")                # module-level peers
    api.whatif(workload, sweeps=[("net", [0.5])])

The legacy functions still work but emit :class:`DeprecationWarning`
and delegate here; ``core/cli.py``, the serve handlers, and the
examples all go through this module.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.lod import DEFAULT_RES, LodView, open_lod
from repro.core.query import query_trace
from repro.core.store.archive import Archive, is_archive
from repro.core.store.frame import Frame
from repro.core.store.registry import RunRegistry, default_registry_root

__all__ = ["Run", "diff", "open_run", "whatif"]

_VIEWS = ("gantt", "heatmap", "timeline")


def _resolve(path_or_id: str | Path,
             registry: RunRegistry | str | Path | None) -> tuple[Path, str]:
    """Resolve a facade run reference to ``(archive path, run id)``.

    An existing file wins; anything else is treated as a registry run
    id (or unambiguous id prefix) against ``registry`` (defaulting to
    ``$ACTORPROF_RUNS`` / ``~/.actorprof/runs``).
    """
    path = Path(path_or_id)
    if path.is_file():
        return path, path.stem
    if registry is None or isinstance(registry, (str, Path)):
        registry = RunRegistry(registry if registry is not None
                               else default_registry_root())
    info = registry.resolve(str(path_or_id))
    return Path(info.path), info.run_id


class Run:
    """An opened run: one ``.aptrc`` archive plus every analysis verb.

    Obtained from :func:`open_run`; usable as a context manager.  All
    methods operate on the archive's columnar sections — no full trace
    objects are materialized unless a legacy path demands it.
    """

    def __init__(self, archive: Archive, *, run_id: str | None = None)\
            -> None:
        self._archive = archive
        self.run_id = run_id if run_id is not None else archive.path.stem
        self._lod: LodView | None = None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self._archive.close()

    def __enter__(self) -> "Run":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection --------------------------------------------------

    @property
    def path(self) -> Path:
        return self._archive.path

    @property
    def archive(self) -> Archive:
        """The underlying :class:`Archive` (escape hatch)."""
        return self._archive

    @property
    def meta(self) -> dict:
        return self._archive.meta

    @property
    def n_pes(self) -> int:
        return self._archive.n_pes

    @property
    def sections(self) -> tuple[str, ...]:
        return self._archive.sections

    # -- analysis verbs -------------------------------------------------

    def query(self, text: str, *, section: str = "logical",
              pushdown: bool = True):
        """Evaluate a trace query (see :mod:`repro.core.query` grammar)
        over one section; int for aggregates, ranked pairs for
        ``group by``."""
        return query_trace(self._archive.section(section), text,
                           pushdown=pushdown)

    def frame(self, section: str = "logical") -> Frame:
        """A pruned columnar :class:`Frame` over one section."""
        return Frame(self._archive.section(section))

    def diff(self, other: "Run | str | Path", *,
             label_a: str | None = None, label_b: str | None = None) -> str:
        """Side-by-side comparison report against another run."""
        from repro.core.diffing import _diff_runs

        other_path = other.path if isinstance(other, Run) else Path(other)
        return _diff_runs(self.path, other_path,
                          label_a=label_a if label_a is not None
                          else self.run_id,
                          label_b=label_b)

    def whatif(self, workload=None, **kwargs) -> dict:
        """Causal what-if analysis of this run's workload.

        The archive records which workload/seed/schedule produced it but
        not the full generator parameters, so ``workload`` must be the
        (reconstructible) :class:`~repro.check.workloads.Workload`; the
        run's metadata is checked against it when present.
        """
        from repro.whatif.engine import _run_whatif

        if workload is None:
            raise ValueError(
                "whatif() needs the Workload that produced this run "
                f"(archive meta: workload={self.meta.get('workload')!r}, "
                f"seed={self.meta.get('seed')!r})"
            )
        recorded = self.meta.get("workload")
        if recorded is not None and recorded != workload.name:
            raise ValueError(
                f"workload mismatch: archive was produced by {recorded!r}, "
                f"got {workload.name!r}"
            )
        return _run_whatif(workload, **kwargs)

    # -- LOD viz --------------------------------------------------------

    def lod(self) -> LodView:
        """The run's LOD pyramid view (built in-memory for archives
        that predate pyramid sections)."""
        if self._lod is None:
            self._lod = open_lod(self._archive)
        return self._lod

    def viz(self, view: str = "gantt", *, t0: int | None = None,
            t1: int | None = None, res: int | None = None) -> str:
        """Render one LOD-backed SVG view (``gantt``/``heatmap``/
        ``timeline``) for a viewport — O(res) work, never touching raw
        event columns when the archive carries a pyramid."""
        from repro.core.viz.lodviews import (
            lod_gantt_svg,
            lod_heatmap_svg,
            lod_timeline_svg,
        )

        if view not in _VIEWS:
            raise ValueError(f"unknown view {view!r}; want one of {_VIEWS}")
        lod = self.lod()
        if res is None:
            res = DEFAULT_RES[view]
        title = f"{self.run_id} {view}"
        if view == "heatmap":
            return lod_heatmap_svg(lod.edge_window(t0, t1, res), title=title)
        series = lod.pe_series(t0, t1, res)
        if view == "gantt":
            return lod_gantt_svg(series, title=title)
        return lod_timeline_svg(series, title=title)


def open_run(path_or_id: str | Path, *,
             registry: RunRegistry | str | Path | None = None) -> Run:
    """Open a run by archive path or registry run id → :class:`Run`."""
    path, run_id = _resolve(path_or_id, registry)
    if not is_archive(path):
        raise ValueError(f"{path} is not a .aptrc archive")
    return Run(Archive(path), run_id=run_id)


def diff(a: str | Path | Run, b: str | Path | Run, *,
         n_pes: int | None = None, label_a: str | None = None,
         label_b: str | None = None) -> str:
    """Compare two stored runs (archives or paper-format trace
    directories; ``n_pes`` only needed for directories)."""
    from repro.core.diffing import _diff_runs

    pa = a.path if isinstance(a, Run) else Path(a)
    pb = b.path if isinstance(b, Run) else Path(b)
    return _diff_runs(pa, pb, n_pes, label_a, label_b)


def whatif(workload, **kwargs) -> dict:
    """Causal what-if analysis of ``workload`` (see
    :mod:`repro.whatif.engine` for the knobs)."""
    from repro.whatif.engine import _run_whatif

    return _run_whatif(workload, **kwargs)
