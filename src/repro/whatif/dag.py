"""Happens-before DAG reconstruction and critical-path analysis.

One profiled run leaves behind (a) the MAIN/PROC region spans of the
timeline trace, (b) per-transfer ``(issue, arrival)`` pairs from the
Conveyors flush path, (c) wait intervals from the scheduler / ``quiet``
observation seams, and (d) collective join records.  :func:`build_dag`
stitches them into an event DAG whose nodes are ``(pe, timestamp)``
breakpoints:

* consecutive breakpoints on one PE are linked by an **intra** edge whose
  weight is the elapsed cycles, categorized MAIN / PROC(mailbox) / COMM —
  or **WAIT** with weight zero when the interval is covered by an
  observed wait (waits are *elastic*: they shrink when their cause does),
* each wire transfer adds a **net** edge from its issue breakpoint on the
  sender to its arrival breakpoint on the receiver, decomposed into
  latency + per-byte cycles (+ a rigid residue for injected fault delay),
* each collective adds a pseudo **join** node fed by every participant's
  arrival breakpoint and releasing every participant at the recorded
  release time,
* a ``quiet`` wait adds net edges from the waiter's own pending transfer
  issues to the wait's end (a PE's quiet completes when its *own* puts
  land).

A forward (longest-path) pass over this DAG with all scale factors at
1.0 reproduces every recorded timestamp exactly; re-running it under a
:class:`~repro.whatif.perturb.Scales` yields the *predicted* virtual
T_TOTAL without re-executing the program.  The backward pass extracts the
critical path and attributes its cycles to regions / mailboxes / network
components, which is what the bottleneck ranking is built from.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass, field

from repro.machine.cost import CostModel
from repro.whatif.perturb import Scales

#: Intra-edge categories (WAIT edges are elastic: always weight zero).
CATEGORIES = ("MAIN", "PROC", "COMM", "WAIT")


@dataclass(frozen=True)
class Transfer:
    """One wire transfer (a flushed conveyor buffer)."""

    kind: str  # "local_send" | "nonblock_send"
    nbytes: int
    src: int
    dst: int
    issue: int
    arrival: int
    #: Decomposition of ``arrival - issue``: scalable latency part,
    #: scalable per-byte part, rigid residue (injected fault delay).
    latency: int = 0
    byte_cycles: int = 0
    resid: int = 0


@dataclass(frozen=True)
class CollectiveJoin:
    """One rendezvous: all participants in, one release out."""

    kind: str
    seq: int
    arrivals: tuple[tuple[int, int], ...]  # (pe, arrival clock)
    release: int

    @property
    def weight(self) -> int:
        return self.release - max(t for _, t in self.arrivals)


class DagRecorder:
    """Collects the raw DAG events during one profiled run.

    The three ``note_*`` methods are the targets of the runtime's
    observation seams (scheduler ``wait_observer``, shmem ``wait_sink`` /
    ``coll_sink``, conveyor transfer sink); they only append to lists.
    """

    __slots__ = ("transfers", "waits", "collectives")

    def __init__(self) -> None:
        self.transfers: list[Transfer] = []
        self.waits: list[tuple[int, int, int, str]] = []
        self.collectives: list[CollectiveJoin] = []

    def note_transfer(self, kind: str, nbytes: int, src: int, dst: int,
                      issue: int, arrival: int) -> None:
        self.transfers.append(
            Transfer(kind, nbytes, src, dst, issue, arrival)
        )

    def note_wait(self, pe: int, start: int, end: int, reason: str) -> None:
        self.waits.append((pe, start, end, reason))

    def note_collective(self, kind: str, seq: int, arrivals: dict[int, int],
                        release: int) -> None:
        self.collectives.append(CollectiveJoin(
            kind, seq, tuple(sorted(arrivals.items())), release
        ))


def _merge_intervals(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Union of possibly-overlapping ``[start, end)`` intervals."""
    out: list[tuple[int, int]] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if out and start <= out[-1][1]:
            prev = out[-1]
            out[-1] = (prev[0], max(prev[1], end))
        else:
            out.append((start, end))
    return out


def _interval_label(point: float, starts: list[int],
                    intervals: list[tuple[int, int, str, int]]) -> tuple[str, int] | None:
    """Label of the interval containing ``point`` (bisect over starts)."""
    i = bisect.bisect_right(starts, point) - 1
    if i >= 0:
        start, end, label, mailbox = intervals[i]
        if start <= point < end:
            return label, mailbox
    return None


@dataclass
class PathEdge:
    """One edge of the extracted critical path, for reporting."""

    pe: int  # owning PE (dst PE for net edges, -1 for collectives)
    kind: str  # "intra" | "net" | "coll"
    category: str  # MAIN / PROC / COMM / WAIT / net / collective
    mailbox: int
    weight: int
    src_pe: int = -1  # net edges: the sender
    nbytes: int = 0


@dataclass
class EventDag:
    """The reconstructed happens-before DAG of one run."""

    n_pes: int
    cost: CostModel
    clocks: list[int]
    node_pe: list[int] = field(default_factory=list)  # -1 for join nodes
    node_time: list[int] = field(default_factory=list)
    #: edge specs: ("intra", pe, category, mailbox, dt) |
    #: ("net", transfer_idx) | ("coll", join_idx) | ("zero",)
    edges: list[tuple] = field(default_factory=list)
    edge_src: list[int] = field(default_factory=list)
    edge_dst: list[int] = field(default_factory=list)
    transfers: list[Transfer] = field(default_factory=list)
    collectives: list[CollectiveJoin] = field(default_factory=list)
    terminal: list[int] = field(default_factory=list)  # node id per pe
    _topo: list[int] | None = None
    _in_edges: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.node_time)

    def _incoming(self) -> list[list[int]]:
        if self._in_edges is None:
            incoming: list[list[int]] = [[] for _ in range(self.n_nodes)]
            for idx, dst in enumerate(self.edge_dst):
                incoming[dst].append(idx)
            self._in_edges = incoming
        return self._in_edges

    def _topo_order(self) -> list[int]:
        """Deterministic topological order (Kahn, ready-heap by time)."""
        if self._topo is not None:
            return self._topo
        n = self.n_nodes
        indeg = [0] * n
        for dst in self.edge_dst:
            indeg[dst] += 1
        succ: list[list[int]] = [[] for _ in range(n)]
        for idx, src in enumerate(self.edge_src):
            succ[src].append(idx)
        ready = [(self.node_time[i], i) for i in range(n) if indeg[i] == 0]
        heapq.heapify(ready)
        order: list[int] = []
        while ready:
            _, node = heapq.heappop(ready)
            order.append(node)
            for e in succ[node]:
                dst = self.edge_dst[e]
                indeg[dst] -= 1
                if indeg[dst] == 0:
                    heapq.heappush(ready, (self.node_time[dst], dst))
        if len(order) < n:
            # Degenerate zero-length tie loop (two simultaneous local
            # deliveries in both directions).  Break it by recorded time;
            # all edges involved have weight zero so timing is unaffected.
            seen = set(order)
            rest = sorted(
                (self.node_time[i], i) for i in range(n) if i not in seen
            )
            order.extend(i for _, i in rest)
        self._topo = order
        return order

    # ------------------------------------------------------------------
    # weights
    # ------------------------------------------------------------------

    def edge_weight(self, idx: int, scales: Scales) -> float:
        spec = self.edges[idx]
        kind = spec[0]
        if kind == "intra":
            _, pe, category, mailbox, dt = spec
            if category == "WAIT":
                return 0.0
            return dt * scales.region_factor(pe, category, mailbox)
        if kind == "net":
            t = self.transfers[spec[1]]
            w = (t.latency * scales.factor("net.latency")
                 + t.byte_cycles * scales.factor("net.bytes") + t.resid)
            return max(0.0, w)
        if kind == "coll":
            return self.collectives[spec[1]].weight * scales.factor("collective")
        return 0.0

    # ------------------------------------------------------------------
    # forward pass: predicted completion times under perturbed costs
    # ------------------------------------------------------------------

    def predict_times(self, scales: Scales | None = None) -> list[float]:
        """Longest-path completion time of every node under ``scales``."""
        scales = scales or Scales()
        if scales.replay_only:
            raise ValueError(
                "buffer-size scales reshape the event DAG and cannot be "
                "predicted from the baseline; replay them instead"
            )
        times = [0.0] * self.n_nodes
        incoming = self._incoming()
        for node in self._topo_order():
            best = 0.0
            for e in incoming[node]:
                t = times[self.edge_src[e]] + self.edge_weight(e, scales)
                if t > best:
                    best = t
            times[node] = best
        return times

    def predict_total(self, scales: Scales | None = None) -> float:
        """Predicted virtual T_TOTAL (max PE completion) under ``scales``."""
        times = self.predict_times(scales)
        return max((times[t] for t in self.terminal), default=0.0)

    # ------------------------------------------------------------------
    # critical path
    # ------------------------------------------------------------------

    def critical_path(self) -> list[PathEdge]:
        """The binding chain of edges ending at the slowest PE's finish.

        Computed at neutral scales, where the forward pass reproduces the
        recorded timestamps — so the path is the run's *actual* critical
        path, and its total weight equals the observed T_TOTAL.
        """
        neutral = Scales()
        times = [0.0] * self.n_nodes
        best_in = [-1] * self.n_nodes
        incoming = self._incoming()
        for node in self._topo_order():
            best = 0.0
            pick = -1
            for e in incoming[node]:
                t = times[self.edge_src[e]] + self.edge_weight(e, neutral)
                if t > best:
                    best, pick = t, e
            times[node] = best
            best_in[node] = pick
        sink = max(self.terminal, key=lambda n: (times[n], -self.node_pe[n]),
                   default=-1)
        path: list[PathEdge] = []
        node = sink
        while node >= 0 and best_in[node] >= 0:
            e = best_in[node]
            spec = self.edges[e]
            if spec[0] == "intra":
                _, pe, category, mailbox, dt = spec
                weight = 0 if category == "WAIT" else dt
                path.append(PathEdge(pe, "intra", category, mailbox, weight))
            elif spec[0] == "net":
                t = self.transfers[spec[1]]
                path.append(PathEdge(
                    t.dst, "net", "net", -1, t.arrival - t.issue,
                    src_pe=t.src, nbytes=t.nbytes,
                ))
            elif spec[0] == "coll":
                join = self.collectives[spec[1]]
                path.append(PathEdge(-1, "coll", "collective", -1, join.weight))
            node = self.edge_src[e]
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    def work(self) -> int:
        """Total cycles of all busy edges (compute + network + joins)."""
        total = self.cpu_work()
        for t in self.transfers:
            total += max(0, t.arrival - t.issue)
        for c in self.collectives:
            total += c.weight
        return total

    def cpu_work(self) -> int:
        """Total busy compute cycles across all PEs (no waits)."""
        total = 0
        for spec in self.edges:
            if spec[0] == "intra" and spec[2] != "WAIT":
                total += spec[4]
        return total

    def region_totals(self) -> dict[str, int]:
        """DAG-wide busy cycles per category (plus elastic WAIT cycles)."""
        out = {c: 0 for c in CATEGORIES}
        for spec in self.edges:
            if spec[0] != "intra":
                continue
            _, pe, category, mailbox, dt = spec
            out[category] += dt
        return out

    def mailbox_totals(self) -> dict[int, int]:
        """DAG-wide PROC cycles per mailbox id."""
        out: dict[int, int] = {}
        for spec in self.edges:
            if spec[0] == "intra" and spec[2] == "PROC":
                out[spec[3]] = out.get(spec[3], 0) + spec[4]
        return dict(sorted(out.items()))

    def parallelism_profile(self, buckets: int = 32) -> list[float]:
        """Average number of busy PEs per time bucket over [0, T_TOTAL)."""
        horizon = max(self.clocks, default=0)
        if horizon <= 0:
            return [0.0] * buckets
        width = horizon / buckets
        busy = [0.0] * buckets
        for idx, spec in enumerate(self.edges):
            if spec[0] != "intra" or spec[2] == "WAIT":
                continue
            start = self.node_time[self.edge_src[idx]]
            end = self.node_time[self.edge_dst[idx]]
            b0 = int(start // width)
            b1 = min(int((end - 1) // width), buckets - 1) if end > start else b0
            for b in range(max(0, b0), b1 + 1):
                lo = max(start, b * width)
                hi = min(end, (b + 1) * width)
                if hi > lo:
                    busy[b] += (hi - lo) / width
        return [round(x, 4) for x in busy]


def _decompose(kind: str, nbytes: int, weight: int,
               cost: CostModel) -> tuple[int, int, int]:
    """Split a transfer's recorded weight into (latency, bytes, residue)."""
    if kind != "nonblock_send" or weight <= 0:
        return 0, 0, max(0, weight)
    latency = min(cost.net_latency_cycles, weight)
    byte_part = min(round(nbytes * cost.net_cycles_per_byte), weight - latency)
    return latency, byte_part, weight - latency - byte_part


def build_dag(*, n_pes: int, clocks: list[int], timeline,
              recorder: DagRecorder,
              cost: CostModel | None = None) -> EventDag:
    """Assemble the :class:`EventDag` for one recorded run."""
    cost = cost or CostModel()
    transfers = [
        Transfer(t.kind, t.nbytes, t.src, t.dst, t.issue, t.arrival,
                 *_decompose(t.kind, t.nbytes, t.arrival - t.issue, cost))
        for t in recorder.transfers
    ]
    collectives = list(recorder.collectives)
    dag = EventDag(n_pes=n_pes, cost=cost, clocks=list(clocks),
                   transfers=transfers, collectives=collectives)

    # -- per-PE interval books -----------------------------------------
    spans: list[list[tuple[int, int, str, int]]] = [[] for _ in range(n_pes)]
    for pe in range(n_pes):
        for s in timeline.spans(pe):
            if s.region in ("MAIN", "PROC") and s.end > s.start:
                spans[pe].append((s.start, s.end, s.region, s.mailbox))
        spans[pe].sort()
    wait_raw: list[list[tuple[int, int]]] = [[] for _ in range(n_pes)]
    quiet_waits: list[list[tuple[int, int]]] = [[] for _ in range(n_pes)]
    for pe, start, end, reason in recorder.waits:
        wait_raw[pe].append((start, end))
        if reason == "quiet":
            quiet_waits[pe].append((start, end))
    for join in collectives:
        for pe, arrival in join.arrivals:
            wait_raw[pe].append((arrival, join.release))
    waits = [_merge_intervals(w) for w in wait_raw]

    # -- breakpoints → nodes -------------------------------------------
    final = [max(clocks[pe] if pe < len(clocks) else 0, 0)
             for pe in range(n_pes)]
    marks: list[set[int]] = [set() for _ in range(n_pes)]
    for t in transfers:
        marks[t.src].add(t.issue)
        marks[t.dst].add(t.arrival)
        final[t.src] = max(final[t.src], t.issue)
        final[t.dst] = max(final[t.dst], t.arrival)
    # Breakpoints come from the RAW wait records (and the collective
    # arrival/release stamps), not the merged intervals: a quiet wait
    # merged into a neighboring block wait must still have nodes at its
    # own endpoints, because quiet/collective cross edges target them.
    for pe, start, end, _reason in recorder.waits:
        marks[pe].add(start)
        marks[pe].add(end)
        final[pe] = max(final[pe], end)
    for join in collectives:
        for pe, arrival in join.arrivals:
            marks[pe].add(arrival)
            marks[pe].add(join.release)
            final[pe] = max(final[pe], join.release)
    for pe in range(n_pes):
        for start, end, _, _ in spans[pe]:
            marks[pe].add(start)
            marks[pe].add(end)
            final[pe] = max(final[pe], end)
        marks[pe].add(0)
        marks[pe].add(final[pe])

    node_of: list[dict[int, int]] = [{} for _ in range(n_pes)]
    for pe in range(n_pes):
        for t in sorted(marks[pe]):
            node_of[pe][t] = dag.n_nodes
            dag.node_pe.append(pe)
            dag.node_time.append(t)
    dag.terminal = [node_of[pe][final[pe]] for pe in range(n_pes)]

    def add_edge(src: int, dst: int, spec: tuple) -> None:
        dag.edge_src.append(src)
        dag.edge_dst.append(dst)
        dag.edges.append(spec)

    # -- intra edges ----------------------------------------------------
    for pe in range(n_pes):
        ordered = sorted(marks[pe])
        span_starts = [s[0] for s in spans[pe]]
        wait_iv = [(s, e, "WAIT", -1) for s, e in waits[pe]]
        wait_starts = [s for s, _ in waits[pe]]
        for prev, cur in zip(ordered, ordered[1:]):
            mid = (prev + cur) / 2
            hit = _interval_label(mid, wait_starts, wait_iv)
            if hit is None:
                hit = _interval_label(mid, span_starts, spans[pe])
            category, mailbox = hit if hit is not None else ("COMM", -1)
            add_edge(node_of[pe][prev], node_of[pe][cur],
                     ("intra", pe, category, mailbox, cur - prev))

    # -- transfer edges -------------------------------------------------
    # Local flushes deliver at their issue time, so their edges connect
    # equal-timestamp nodes with weight zero.  Lockstep PEs flush to each
    # other simultaneously, which would close A<->B cycles; since every
    # cycle must consist solely of such equal-time zero-weight edges
    # (positive weight would make the recorded times inconsistent),
    # keeping only the ascending-PE orientation makes the graph acyclic
    # without moving any baseline timestamp.  Self-sends (src == dst at
    # one time) are pure self-loops and are dropped entirely.
    for idx, t in enumerate(transfers):
        if t.issue == t.arrival and t.src >= t.dst:
            continue
        add_edge(node_of[t.src][t.issue], node_of[t.dst][t.arrival],
                 ("net", idx))

    # -- quiet completion edges ----------------------------------------
    for pe in range(n_pes):
        for start, end in quiet_waits[pe]:
            for idx, t in enumerate(transfers):
                if t.src == pe and start < t.arrival <= end:
                    src_node = node_of[pe][t.issue]
                    dst_node = node_of[pe][end]
                    if src_node != dst_node:
                        add_edge(src_node, dst_node, ("net", idx))

    # -- collective join nodes -----------------------------------------
    for idx, join in enumerate(collectives):
        jnode = dag.n_nodes
        dag.node_pe.append(-1)
        dag.node_time.append(join.release)
        for pe, arrival in join.arrivals:
            add_edge(node_of[pe][arrival], jnode, ("coll", idx))
            add_edge(jnode, node_of[pe][join.release], ("zero",))
    return dag
