"""The what-if engine: baseline → DAG analysis → replayed speedup points.

:func:`run_whatif` runs the workload once in-process with the DAG
recorder attached, builds the happens-before DAG, extracts the critical
path and a ranked set of *predicted* virtual speedups (each plausible
target sped up by ``candidate_factor``), then fans any requested replay
points out through :func:`repro.exec.execute` and diffs their measured
T_* totals against the baseline.

The report dict is deliberately free of wall-clock times, job counts and
scratch paths: its JSON serialization must be byte-identical whether the
sweep ran serially or on N workers, and across repeated runs.
"""

from __future__ import annotations

import itertools
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.check.workloads import Workload
from repro.exec import ResultCache, RunSpec, execute
from repro.machine.cost import CostModel
from repro.sim.faults import FaultPlan
from repro.whatif.dag import DagRecorder, EventDag, build_dag
from repro.whatif.perturb import Scales, parse_scale
from repro.whatif.replay import (
    execute_point,
    reject_crash_plans,
    run_totals,
)

_WORKER_FN = "repro.whatif.task:run_whatif_point"

#: How many critical-path transfer edges the report ranks.
TOP_EDGES = 5


def parse_sweep(text: str) -> tuple[str, list[float]]:
    """Parse one ``--sweep TARGET=F1,F2,...`` spec into its factor axis."""
    target, sep, values = text.partition("=")
    if not sep or not values.strip():
        raise ValueError(
            f"bad sweep {text!r}: expected TARGET=FACTOR1,FACTOR2,..."
        )
    factors = []
    for item in values.split(","):
        _, factor = parse_scale(f"{target}={item}")
        factors.append(factor)
    return target.strip().lower(), factors


def _pct(new: float, old: float) -> float:
    return round(100.0 * (new - old) / old, 2) if old else 0.0


def _analyze(dag: EventDag, baseline_total: int,
             candidate_factor: float) -> tuple[dict, dict[str, Scales]]:
    """Critical-path summary + ranked predicted candidates."""
    path = dag.critical_path()
    by_category: dict[str, int] = {}
    by_mailbox: dict[int, int] = {}
    by_pe: dict[int, int] = {}
    edge_weights: dict[tuple[int, int], dict[str, int]] = {}
    for edge in path:
        if edge.kind == "net":
            key = (edge.src_pe, edge.pe)
            agg = edge_weights.setdefault(key, {"cycles": 0, "count": 0})
            agg["cycles"] += edge.weight
            agg["count"] += 1
            by_category["net"] = by_category.get("net", 0) + edge.weight
        elif edge.kind == "coll":
            by_category["collective"] = (
                by_category.get("collective", 0) + edge.weight
            )
        else:
            by_category[edge.category] = (
                by_category.get(edge.category, 0) + edge.weight
            )
            if edge.category == "PROC" and edge.mailbox >= 0:
                by_mailbox[edge.mailbox] = (
                    by_mailbox.get(edge.mailbox, 0) + edge.weight
                )
            if edge.pe >= 0 and edge.category != "WAIT":
                by_pe[edge.pe] = by_pe.get(edge.pe, 0) + edge.weight

    def ranked(d: dict) -> list[dict]:
        return [
            {"target": str(k), "cycles": v,
             "share_pct": _share(v, baseline_total)}
            for k, v in sorted(d.items(), key=lambda kv: (-kv[1], str(kv[0])))
        ]

    top_edges = [
        {"src_pe": src, "dst_pe": dst, "cycles": agg["cycles"],
         "transfers": agg["count"]}
        for (src, dst), agg in sorted(
            edge_weights.items(), key=lambda kv: (-kv[1]["cycles"], kv[0])
        )[:TOP_EDGES]
    ]

    work = dag.work()
    cpu_work = dag.cpu_work()
    span = sum(e.weight for e in path)
    analysis = {
        "t_total": baseline_total,
        "work": work,
        "cpu_work": cpu_work,
        "span": span,
        "avg_parallelism": round(work / span, 4) if span else 0.0,
        "prediction_exact": round(dag.predict_total()) == baseline_total,
        "region_totals": dag.region_totals(),
        "mailbox_totals": {
            str(mb): c for mb, c in dag.mailbox_totals().items()
        },
        "parallelism_profile": dag.parallelism_profile(),
        "critical_path": {
            "by_category": ranked(by_category),
            "by_mailbox": [
                {"mailbox": mb, "cycles": c}
                for mb, c in sorted(by_mailbox.items(),
                                    key=lambda kv: (-kv[1], kv[0]))
            ],
            "by_pe": [
                {"pe": pe, "cycles": c}
                for pe, c in sorted(by_pe.items(),
                                    key=lambda kv: (-kv[1], kv[0]))
            ],
            "top_edges": top_edges,
        },
    }
    candidates = _candidate_scales(dag, candidate_factor)
    return analysis, candidates


def _share(cycles: int, total: int) -> float:
    return round(100.0 * cycles / total, 2) if total else 0.0


def _candidate_scales(dag: EventDag,
                      factor: float) -> dict[str, Scales]:
    """The default prediction set: every plausible single-target scale."""
    targets = ["main", "proc", "comm", "net.latency", "net.bytes"]
    if dag.collectives:
        targets.append("collective")
    targets.extend(f"mailbox:{mb}" for mb in dag.mailbox_totals())
    return {t: Scales({t: factor}) for t in targets}


def _predictions(dag: EventDag, baseline_total: int,
                 candidates: dict[str, Scales]) -> list[dict]:
    rows = []
    for target, scales in candidates.items():
        predicted = dag.predict_total(scales)
        rows.append({
            "target": target,
            # usually candidate_factor, but fault-plan slow-PE candidates
            # carry 1/multiplier — report what was actually predicted
            "factor": scales.factor(target),
            "predicted_t_total": int(round(predicted)),
            "predicted_speedup": round(
                baseline_total / predicted, 4) if predicted else 0.0,
            "predicted_delta_pct": _pct(predicted, baseline_total),
        })
    rows.sort(key=lambda r: (r["predicted_t_total"], r["target"]))
    return rows


def _run_whatif(workload: Workload, *,
                scale_sets: list[Scales] | None = None,
                sweeps: list[tuple[str, list[float]]] | None = None,
                jobs: int = 1,
                cache: ResultCache | str | Path | None = None,
                out_dir: str | Path | None = None,
                fault_plan: FaultPlan | None = None,
                candidate_factor: float = 0.5,
                dag_out: list | None = None) -> dict:
    """Full what-if analysis of one workload; returns the report dict.

    ``scale_sets`` are explicit replay points (one per ``--scale``
    group); ``sweeps`` contribute the cartesian product of their factor
    axes as additional points.  ``dag_out``, when given, receives the
    built :class:`EventDag` (for tests and programmatic callers).

    The supported entry points are :func:`repro.api.whatif` and
    :meth:`repro.api.Run.whatif`; :func:`run_whatif` is the deprecated
    legacy spelling.
    """
    reject_crash_plans(fault_plan)
    tmp: TemporaryDirectory | None = None
    if out_dir is None:
        tmp = TemporaryDirectory(prefix="actorprof-whatif-")
        out_dir = Path(tmp.name)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    try:
        # -- baseline, in-process, with the DAG recorder attached -------
        recorder = DagRecorder()
        baseline_art = execute_point(
            workload, Scales(), archive_path=out_dir / "baseline.aptrc",
            fault_plan=fault_plan, recorder=recorder,
        )
        baseline = run_totals(baseline_art)
        dag = build_dag(
            n_pes=workload.machine.n_pes,
            clocks=baseline_art.clocks,
            timeline=baseline_art.profiler.timeline,
            recorder=recorder,
            cost=CostModel(),
        )
        if dag_out is not None:
            dag_out.append(dag)

        analysis, candidates = _analyze(
            dag, baseline["t_total"], candidate_factor
        )
        # Fault-plan slow PEs are natural what-if targets: "what if the
        # slow PE ran at full speed?"
        if fault_plan is not None:
            for slow in getattr(fault_plan, "slow_pes", ()):
                if slow.multiplier > 0:
                    target = f"pe:{slow.pe}"
                    candidates[target] = Scales(
                        {target: 1.0 / slow.multiplier}
                    )
        predictions = _predictions(dag, baseline["t_total"], candidates)

        # -- replay points ----------------------------------------------
        points = list(scale_sets or [])
        for combo in itertools.product(
            *[[(t, f) for f in fs] for t, fs in (sweeps or [])]
        ):
            if combo:
                points.append(Scales(dict(combo)))
        descriptor = workload.descriptor()
        plan_dict = fault_plan.to_dict() if fault_plan is not None else None
        specs = []
        for i, sc in enumerate(points):
            tag = "p" + "-".join(
                f"{t.replace(':', '_').replace('.', '_')}{f:g}"
                for t, f in sc.to_dict().items()
            ) if not sc.neutral else f"p{i}-neutral"
            kwargs = {"workload": descriptor, "scales": sc.to_dict(),
                      "tag": f"{i}-{tag}"}
            if plan_dict is not None:
                kwargs["fault_plan"] = plan_dict
            specs.append(RunSpec(index=i, fn=_WORKER_FN, kwargs=kwargs,
                                 tag=tag).with_cache_key())
        records = execute(specs, jobs=jobs, scratch_dir=out_dir,
                          cache=cache)

        point_rows = []
        failures = 0
        for spec, rec, sc in zip(specs, records, points):
            row: dict = {"tag": spec.tag, "scales": sc.to_dict()}
            if not rec.ok:
                failures += 1
                row["error"] = rec.error
                point_rows.append(row)
                continue
            totals = rec.value["totals"]
            # Sorted keys: cache restores round-trip through JSON, which
            # may reorder dicts — the report must not depend on that.
            row["totals"] = {k: totals[k] for k in sorted(totals)}
            row["delta"] = {
                k: {
                    "cycles": totals[k] - baseline[k],
                    "pct": _pct(totals[k], baseline[k]),
                }
                for k in ("t_total", "t_main", "t_proc", "t_comm")
            }
            row["speedup"] = round(
                baseline["t_total"] / totals["t_total"], 4
            ) if totals["t_total"] else 0.0
            row["result_matches_baseline"] = (
                rec.value["result_fingerprint"]
                == baseline_art.result_fingerprint
            )
            if not sc.replay_only:
                predicted = dag.predict_total(sc)
                row["predicted_t_total"] = int(round(predicted))
                row["prediction_error_pct"] = _pct(
                    predicted, totals["t_total"]
                )
            point_rows.append(row)

        return {
            "workload_name": workload.name,
            "workload": descriptor,
            "fault_plan": plan_dict,
            "candidate_factor": candidate_factor,
            "baseline": baseline,
            "analysis": analysis,
            "predictions": predictions,
            "points": point_rows,
            "exit_code": 6 if failures else 0,
        }
    finally:
        if tmp is not None:
            tmp.cleanup()


def run_whatif(workload: Workload, **kwargs) -> dict:
    """Deprecated alias of the engine; use :func:`repro.api.whatif`."""
    import warnings

    warnings.warn(
        "run_whatif() is deprecated; use repro.api.whatif() or "
        "repro.api.open_run(...).whatif()",
        DeprecationWarning, stacklevel=2,
    )
    return _run_whatif(workload, **kwargs)
