"""The what-if engine's worker function (runs in spawned processes).

One call = one replay point.  All inputs arrive as JSON-serializable
kwargs — which is exactly what makes the :class:`repro.exec.ResultCache`
key correct for sweeps: the scale factors are *in* the kwargs, so two
points that differ only in ``--scale`` hash to different keys (the
regression the ISSUE calls out for ``apptask``-style keys that only
cover app params).
"""

from __future__ import annotations

from pathlib import Path

from repro.check.workloads import workload_from_descriptor
from repro.sim.faults import FaultPlan
from repro.whatif.perturb import Scales
from repro.whatif.replay import execute_point, run_totals


def run_whatif_point(out_dir: Path, *, workload: dict, scales: dict,
                     fault_plan: dict | None = None,
                     tag: str = "point") -> dict:
    """Replay one workload under one scale bundle; return its totals.

    ``workload`` is a :meth:`~repro.check.workloads.Workload.descriptor`
    dict, ``scales`` a ``{target: factor}`` mapping, ``fault_plan`` an
    optional :meth:`FaultPlan.to_dict` payload.  The traces land in
    ``out_dir/<tag>.aptrc``.
    """
    wl = workload_from_descriptor(workload)
    sc = Scales(scales)
    plan = FaultPlan.from_dict(fault_plan) if fault_plan else None
    archive = f"{tag}.aptrc"
    art = execute_point(wl, sc, archive_path=Path(out_dir) / archive,
                        fault_plan=plan)
    return {
        "scales": sc.to_dict(),
        "totals": run_totals(art),
        "result_fingerprint": art.result_fingerprint,
        "archive_sha256": art.archive_sha256,
        "artifacts": [archive],
    }
