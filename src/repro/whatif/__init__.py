"""``repro.whatif`` — causal what-if profiling.

Critical-path analysis over the happens-before DAG of one profiled run,
plus a virtual-speedup engine that *replays* the workload under
perturbed cost models and diffs the T_* totals against baseline.  See
``docs/WHATIF.md`` for the DAG model and the scaling semantics.
"""

from repro.whatif.dag import DagRecorder, EventDag, Transfer, build_dag
from repro.whatif.engine import parse_sweep, run_whatif
from repro.whatif.perturb import Scales, WhatifProfiler, parse_scale
from repro.whatif.replay import execute_point, run_totals
from repro.whatif.task import run_whatif_point

__all__ = [
    "DagRecorder",
    "EventDag",
    "Scales",
    "Transfer",
    "WhatifProfiler",
    "build_dag",
    "execute_point",
    "parse_scale",
    "parse_sweep",
    "run_totals",
    "run_whatif",
    "run_whatif_point",
]
