"""Scale specs and the cost-perturbing profiler for what-if replays.

A *scale* names one resource and a positive factor that multiplies its
**cost** (its time per unit of work).  Factors below 1.0 make the resource
faster: ``mailbox:2=0.5x`` means "handlers of mailbox 2 run in half the
time" — i.e. a 2x virtual *speedup* of that mailbox.  Factors above 1.0
slow the resource down.  Recognized targets:

``pe:<rank>``
    All busy work on one PE (multiplies :class:`PerfCore` cost).
``mailbox:<id>``
    PROC work while a PE is processing that mailbox's messages.
``main`` / ``proc`` / ``comm``
    All work attributed to that region, on every PE.
``net.latency`` / ``net.bytes``
    The per-message latency / per-byte cost of remote transfers
    (:class:`~repro.machine.cost.CostModel` ``net_latency_cycles`` /
    ``net_cycles_per_byte``).
``collective``
    Barrier/reduction rendezvous cost (``collective_base_cycles`` +
    ``collective_cycles_per_pe``).
``buffer``
    Conveyor ``buffer_items`` (replay-only: buffer size changes reshape
    the event DAG, so the analyzer refuses to *predict* them).

Region scales compose multiplicatively: ``pe:1=2x`` + ``proc=0.5x`` runs
PE 1's PROC work at 1.0x cost and its MAIN/COMM work at 2x.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.flags import ProfileFlags
from repro.core.profiler import ActorProf
from repro.machine.cost import CostModel

#: Targets that take no ``:<id>`` suffix.
GLOBAL_TARGETS = (
    "main", "proc", "comm", "net.latency", "net.bytes", "collective",
    "buffer",
)
#: Targets of the form ``prefix:<non-negative int>``.
PREFIXED_TARGETS = ("mailbox", "pe")

#: Targets whose effect cannot be predicted from the baseline DAG and is
#: only observable by replaying (they change the DAG's shape).
REPLAY_ONLY_TARGETS = frozenset({"buffer"})


def parse_scale(text: str) -> tuple[str, float]:
    """Parse one ``TARGET=FACTOR`` spec (``mailbox:0=2x``, ``main=0.5``).

    The factor may carry a trailing ``x``; it must be a positive finite
    number.  Raises :class:`ValueError` with an actionable message.
    """
    target, sep, value = text.partition("=")
    if not sep:
        raise ValueError(
            f"bad scale {text!r}: expected TARGET=FACTOR "
            f"(e.g. mailbox:0=2x, net.latency=0.5x)"
        )
    target = target.strip().lower()
    raw = value.strip().lower().removesuffix("x")
    try:
        factor = float(raw)
    except ValueError:
        raise ValueError(f"bad scale factor {value.strip()!r} in {text!r}: "
                         f"expected a number like 2, 0.5 or 1.5x") from None
    if not factor > 0 or factor != factor or factor == float("inf"):
        raise ValueError(f"scale factor must be a positive finite number, "
                         f"got {factor} in {text!r}")
    _validate_target(target, text)
    return target, factor


def _validate_target(target: str, context: str) -> None:
    if target in GLOBAL_TARGETS:
        return
    prefix, sep, suffix = target.partition(":")
    if sep and prefix in PREFIXED_TARGETS:
        try:
            idx = int(suffix)
        except ValueError:
            idx = -1
        if idx >= 0:
            return
        raise ValueError(
            f"bad scale target {target!r} in {context!r}: {prefix}: needs a "
            f"non-negative integer id (e.g. {prefix}:0)"
        )
    known = ", ".join(GLOBAL_TARGETS) + ", mailbox:<id>, pe:<rank>"
    raise ValueError(
        f"unknown scale target {target!r} in {context!r}; known targets: {known}"
    )


class Scales:
    """An immutable bundle of scale factors keyed by target name."""

    __slots__ = ("_factors",)

    def __init__(self, factors: Mapping[str, float] | None = None) -> None:
        clean: dict[str, float] = {}
        for target, factor in (factors or {}).items():
            target = target.strip().lower()
            _validate_target(target, target)
            factor = float(factor)
            if not factor > 0 or factor == float("inf") or factor != factor:
                raise ValueError(
                    f"scale factor for {target!r} must be a positive finite "
                    f"number, got {factor}"
                )
            clean[target] = factor
        self._factors = clean

    @classmethod
    def from_args(cls, items: Iterable[str]) -> Scales:
        """Build from repeated CLI ``--scale TARGET=FACTOR`` strings.

        A target repeated across items composes multiplicatively.
        """
        factors: dict[str, float] = {}
        for item in items:
            target, factor = parse_scale(item)
            factors[target] = factors.get(target, 1.0) * factor
        return cls(factors)

    # -- introspection -------------------------------------------------

    def to_dict(self) -> dict[str, float]:
        return {k: self._factors[k] for k in sorted(self._factors)}

    def describe(self) -> str:
        return " ".join(f"{k}={v:g}x" for k, v in self.to_dict().items()) or "1x"

    @property
    def neutral(self) -> bool:
        """True when every factor is exactly 1.0 (replay == baseline)."""
        return all(f == 1.0 for f in self._factors.values())

    @property
    def replay_only(self) -> bool:
        """True when prediction from the baseline DAG is impossible."""
        return any(
            t in REPLAY_ONLY_TARGETS and f != 1.0
            for t, f in self._factors.items()
        )

    def merged(self, other: Scales) -> Scales:
        """Compose two bundles (shared targets multiply)."""
        factors = dict(self._factors)
        for t, f in other._factors.items():
            factors[t] = factors.get(t, 1.0) * f
        return Scales(factors)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Scales) and self._factors == other._factors

    def __repr__(self) -> str:
        return f"Scales({self.to_dict()!r})"

    # -- factor lookups ------------------------------------------------

    def factor(self, target: str) -> float:
        return self._factors.get(target, 1.0)

    def region_factor(self, pe: int, region: str, mailbox: int = -1) -> float:
        """Combined busy-work cost factor for ``pe`` in ``region``."""
        f = self._factors.get(f"pe:{pe}", 1.0)
        if region == "MAIN":
            f *= self._factors.get("main", 1.0)
        elif region == "PROC":
            f *= self._factors.get("proc", 1.0)
            if mailbox >= 0:
                f *= self._factors.get(f"mailbox:{mailbox}", 1.0)
        else:
            f *= self._factors.get("comm", 1.0)
        return f

    def cost_overrides(self, base: CostModel) -> dict[str, float | int]:
        """``CostModel.scaled()`` overrides for the net/collective targets."""
        out: dict[str, float | int] = {}
        f = self._factors.get("net.latency", 1.0)
        if f != 1.0:
            out["net_latency_cycles"] = max(0, round(base.net_latency_cycles * f))
        f = self._factors.get("net.bytes", 1.0)
        if f != 1.0:
            out["net_cycles_per_byte"] = base.net_cycles_per_byte * f
        f = self._factors.get("collective", 1.0)
        if f != 1.0:
            out["collective_base_cycles"] = max(
                0, round(base.collective_base_cycles * f))
            out["collective_cycles_per_pe"] = max(
                0, round(base.collective_cycles_per_pe * f))
        return out

    def scaled_cost(self, base: CostModel | None = None) -> CostModel | None:
        """A perturbed :class:`CostModel`, or None when nothing changes.

        Returning None (rather than an identical copy) keeps the neutral
        replay path bit-for-bit the same call sequence as a plain run.
        """
        base = base or CostModel()
        overrides = self.cost_overrides(base)
        return base.scaled(**overrides) if overrides else None

    def buffer_items(self, base: int) -> int:
        """Perturbed conveyor ``buffer_items`` (min 1)."""
        f = self._factors.get("buffer", 1.0)
        if f == 1.0:
            return base
        return max(1, round(base * f))


class WhatifProfiler(ActorProf):
    """An :class:`ActorProf` that perturbs per-region compute cost live.

    On every region transition it sets the PE's :class:`PerfCore` ``rate``
    to ``base_rate * scales.region_factor(...)`` — where ``base_rate`` is
    whatever the rate was at attach time, so fault-plan slow-PE
    multipliers compose with what-if scales.  With neutral scales the
    rate is never touched at all, which keeps a 1.0x replay byte-identical
    to the baseline.

    When a ``recorder`` (:class:`~repro.whatif.dag.DagRecorder`) is given,
    the profiler also wires the runtime's observation seams — scheduler
    block intervals, quiet stalls, collective joins, and per-transfer
    (issue, arrival) pairs — into it.  Observation never charges cycles.
    """

    def __init__(self, scales: Scales | None = None, recorder=None,
                 flags: ProfileFlags | None = None) -> None:
        # The DAG needs region spans, so the timeline defaults ON here
        # (it charges no cycles and is not serialized into archives, so
        # replays stay byte-identical to plain profiled runs).
        super().__init__(flags or ProfileFlags.all(enable_timeline=True))
        self.scales = scales or Scales()
        self.recorder = recorder
        self._base_rates: list[float] = []
        self._scaling = not self.scales.neutral

    def attach(self, world):
        hooks, tracer = super().attach(world)
        self._base_rates = [perf.rate for perf in world.shmem.perf]
        if self._scaling:
            for pe in range(world.spec.n_pes):
                self._set_rate(pe, "COMM")
        rec = self.recorder
        if rec is not None:
            world.scheduler.wait_observer = rec.note_wait
            world.shmem.wait_sink = rec.note_wait
            world.shmem.coll_sink = rec.note_collective
        # Region hooks and the transfer sink must see this object even
        # when the base profiler would opt out via flags.
        return self, self

    # -- transfer seam (see Conveyor._flush_buffer) --------------------

    def record_transfer(self, kind: str, nbytes: int, src: int, dst: int,
                        issue: int, arrival: int) -> None:
        if self.recorder is not None:
            self.recorder.note_transfer(kind, nbytes, src, dst, issue, arrival)

    # -- region transitions --------------------------------------------

    def _set_rate(self, pe: int, region: str, mailbox: int = -1) -> None:
        if self._scaling:
            self.world.shmem.perf[pe].rate = (
                self._base_rates[pe]
                * self.scales.region_factor(pe, region, mailbox)
            )

    def main_enter(self, pe: int) -> None:
        self._set_rate(pe, "MAIN")
        super().main_enter(pe)

    def main_exit(self, pe: int) -> None:
        super().main_exit(pe)
        self._set_rate(pe, "COMM")

    def proc_enter(self, pe: int, mailbox: int) -> None:
        self._set_rate(pe, "PROC", mailbox)
        super().proc_enter(pe, mailbox)

    def proc_exit(self, pe: int, mailbox: int, n_items: int) -> None:
        super().proc_exit(pe, mailbox, n_items)
        self._set_rate(pe, "COMM")
