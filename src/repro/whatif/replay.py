"""Execute one workload under perturbed costs and summarize its totals."""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.check.policies import make_schedules
from repro.check.workloads import RunArtifacts, Workload
from repro.sim.faults import FaultPlan, use_plan
from repro.whatif.dag import DagRecorder
from repro.whatif.perturb import Scales, WhatifProfiler

#: Mirrors the ActorCheck auditor: a what-if comparison needs complete
#: runs on both sides, so crash plans are rejected eagerly.
CRASH_PLAN_ERROR = (
    "what-if analysis needs complete runs; fault plans with PE crashes "
    "cannot be replayed (drop/delay/duplicate/slow are fine)"
)


def reject_crash_plans(plan: FaultPlan | None) -> None:
    if plan is not None and getattr(plan, "crashes", ()):
        raise ValueError(CRASH_PLAN_ERROR)


def execute_point(workload: Workload, scales: Scales, *,
                  archive_path: Path,
                  fault_plan: FaultPlan | None = None,
                  recorder: DagRecorder | None = None) -> RunArtifacts:
    """Run ``workload`` once under ``scales`` on its default schedule.

    Compute scales ride on a :class:`WhatifProfiler`; network/collective
    scales become a perturbed :class:`~repro.machine.cost.CostModel`;
    buffer scales resize the conveyor config before the run.  A neutral
    ``scales`` takes the exact same code path as a plain profiled run and
    produces a byte-identical archive.
    """
    reject_crash_plans(fault_plan)
    schedule = make_schedules(workload.seed, 1)[0]
    buffer_items = scales.buffer_items(workload.base_config.buffer_items)
    if buffer_items != workload.base_config.buffer_items:
        workload.base_config = replace(
            workload.base_config, buffer_items=buffer_items
        )
    profiler = WhatifProfiler(scales=scales, recorder=recorder)
    with use_plan(fault_plan):
        return workload.run(
            schedule, archive_path, profiler=profiler,
            cost=scales.scaled_cost(),
        )


def run_totals(art: RunArtifacts) -> dict[str, int]:
    """The T_* summary the what-if report diffs across points.

    ``t_total`` is the run's virtual makespan (max final PE clock) — the
    quantity the DAG analyzer predicts; ``finish_max`` is the slowest
    PE's outermost finish span; the region sums come straight from the
    TCOMM profile (``t_comm`` derived, as always).
    """
    overall = art.profiler.overall
    assert overall is not None
    return {
        "t_total": int(max(art.clocks, default=0)),
        "finish_max": int(overall.t_total.max()),
        "t_main": int(overall.t_main.sum()),
        "t_proc": int(overall.t_proc.sum()),
        "t_comm": int(overall.t_comm().sum()),
    }
