"""Virtual per-PE cycle clocks.

Every simulated PE owns a :class:`CycleClock`; it is the simulated
equivalent of the x86 ``rdtsc`` time-stamp counter that ActorProf's overall
profiling reads.  Clocks only move forward.  All simulated costs — compute
instructions, memcpys, network transfers, waiting — are expressed in cycles
and applied through :meth:`CycleClock.advance` / :meth:`CycleClock.advance_to`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class CycleClock:
    """A monotonically non-decreasing virtual cycle counter.

    Parameters
    ----------
    start:
        Initial cycle count.  Defaults to 0.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start negative: {start}")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current cycle count (the simulated ``rdtsc()`` value)."""
        return self._now

    def rdtsc(self) -> int:
        """Alias for :attr:`now`, mirroring the paper's use of ``rdtsc``."""
        return self._now

    def advance(self, cycles: int) -> int:
        """Move the clock forward by ``cycles`` (must be >= 0).

        Returns the new time.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance clock by negative cycles: {cycles}")
        self._now += int(cycles)
        return self._now

    def advance_to(self, t: int) -> int:
        """Move the clock forward to absolute time ``t`` if ``t`` is ahead.

        A ``t`` in the past is a no-op (clocks never rewind).  Returns the
        new time.
        """
        if t > self._now:
            self._now = int(t)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CycleClock(now={self._now})"


def collect_now(clocks: Sequence[CycleClock]) -> np.ndarray:
    """Snapshot many clocks into an int64 vector.

    Bulk phases (collective release accounting, the scheduler's candidate
    index seed) read whole clock sets at once; one ``fromiter`` beats n
    property lookups plus list building.
    """
    return np.fromiter(
        (c._now for c in clocks), dtype=np.int64, count=len(clocks)
    )


def advance_all_to(clocks: Sequence[CycleClock], t: int) -> None:
    """Advance every clock in ``clocks`` to absolute time ``t``.

    Clocks already past ``t`` are untouched (clocks never rewind).  Used by
    collective release, where all participants leave at the same virtual
    time.
    """
    for c in clocks:
        if t > c._now:
            c._now = int(t)
