"""Deterministic fault injection for the simulated FA-BSP stack.

Real clusters kill FA-BSP runs in ways a profiler must survive: PEs are
OOM-killed mid-finish, NICs drop or duplicate packets, a throttled socket
runs every instruction slower.  This module makes those scenarios
**first-class, deterministic, and profilable**:

* :class:`FaultPlan` — a declarative, JSON-serializable description of
  the faults to inject: PE crashes at a virtual time, per-edge message
  drop / duplicate / delay probabilities, and slow-PE cycle multipliers.
* :class:`FaultInjector` — the runtime object built from a plan.  Every
  stochastic decision is drawn from a **per-edge** RNG stream derived
  from the plan seed via :class:`numpy.random.SeedSequence` (the same
  derivation :mod:`repro.sim.rng` uses for per-PE streams), so the n-th
  send on an edge sees the same fate regardless of how sends on *other*
  edges interleave.  The same seed + plan therefore yields byte-identical
  fault schedules across runs.
* :func:`use_plan` — a context manager installing a plan as the default
  for every :func:`~repro.hclib.world.run_spmd` in its scope, which turns
  any app in :mod:`repro.apps` into a robustness testbed without touching
  its signature.

Injection points (wired in by :class:`~repro.hclib.world.World`):

=================  ====================================================
crash              :meth:`~repro.sim.scheduler.CoopScheduler.schedule_crash`
                   — the PE's thread unwinds at its next scheduling
                   point past the crash cycle; the rest of the
                   simulation continues.
drop/dup/delay     the Conveyors buffer-send boundary
                   (:meth:`repro.conveyors.conveyor.Conveyor._flush_buffer`)
                   — dropped buffer puts are retried with exponential
                   backoff, duplicates are delivered twice and deduped
                   at the receiver, delays push the arrival time out.
slow PE            :attr:`repro.machine.perf.PerfCore.rate` — every
                   charged cycle of work is multiplied.
=================  ====================================================
"""

from __future__ import annotations

import contextlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator

import numpy as np

#: Domain tag mixed into per-edge seed derivations so fault streams never
#: collide with the per-PE application streams of :mod:`repro.sim.rng`.
_EDGE_STREAM_TAG = 0xFA117


@dataclass(frozen=True)
class CrashFault:
    """Kill PE ``pe`` at virtual cycle ``at_cycle``.

    The crash takes effect at the PE's first scheduling point (yield,
    block, send-side conveyor progress, collective) at or after
    ``at_cycle`` — exactly when a SIGKILL would interrupt a real PE
    between system calls.
    """

    pe: int
    at_cycle: int


@dataclass(frozen=True)
class EdgeFault:
    """Message faults on conveyor buffer sends matching ``src`` → ``dst``.

    ``src`` / ``dst`` are PE ranks, or ``None`` as a wildcard.  The first
    matching rule in :attr:`FaultPlan.edges` wins.  ``drop`` and
    ``duplicate`` are mutually exclusive outcomes of one transfer
    (``drop + duplicate <= 1``); ``delay`` is an independent probability
    of adding ``delay_cycles`` to the buffer's arrival time.
    """

    src: int | None = None
    dst: int | None = None
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_cycles: int = 0

    def matches(self, src: int, dst: int) -> bool:
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))


@dataclass(frozen=True)
class SlowPE:
    """Multiply every cycle of work PE ``pe`` charges by ``multiplier``."""

    pe: int
    multiplier: float


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, reproducible description of the faults to inject."""

    crashes: tuple[CrashFault, ...] = ()
    edges: tuple[EdgeFault, ...] = ()
    slow_pes: tuple[SlowPE, ...] = ()
    seed: int = 0
    #: Bounded retry budget for dropped buffer puts; exceeding it raises
    #: :class:`~repro.sim.errors.FaultError`.
    max_retries: int = 8
    #: Base backoff after a dropped buffer put; doubles per retry.
    backoff_cycles: int = 1_000

    def __post_init__(self) -> None:
        for edge in self.edges:
            for name in ("drop", "duplicate", "delay"):
                p = getattr(edge, name)
                if not 0.0 <= p <= 1.0:
                    raise ValueError(f"edge fault {name} probability {p} "
                                     f"outside [0, 1]")
            if edge.drop + edge.duplicate > 1.0:
                raise ValueError(
                    f"edge fault drop ({edge.drop}) + duplicate "
                    f"({edge.duplicate}) exceeds 1"
                )
            if edge.delay_cycles < 0:
                raise ValueError(f"negative delay_cycles: {edge.delay_cycles}")
        for crash in self.crashes:
            if crash.at_cycle < 0:
                raise ValueError(f"crash cycle must be >= 0: {crash.at_cycle}")
        for slow in self.slow_pes:
            if slow.multiplier <= 0:
                raise ValueError(
                    f"slow-PE multiplier must be positive: {slow.multiplier}"
                )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_cycles < 0:
            raise ValueError(f"backoff_cycles must be >= 0: {self.backoff_cycles}")

    @property
    def empty(self) -> bool:
        return not (self.crashes or self.edges or self.slow_pes)

    def validate(self, n_pes: int) -> "FaultPlan":
        """Check every PE reference against the job size; returns self."""
        for crash in self.crashes:
            if not 0 <= crash.pe < n_pes:
                raise ValueError(f"crash PE {crash.pe} out of range "
                                 f"for {n_pes} PEs")
        for slow in self.slow_pes:
            if not 0 <= slow.pe < n_pes:
                raise ValueError(f"slow PE {slow.pe} out of range "
                                 f"for {n_pes} PEs")
        for edge in self.edges:
            for end, name in ((edge.src, "src"), (edge.dst, "dst")):
                if end is not None and not 0 <= end < n_pes:
                    raise ValueError(f"edge fault {name} PE {end} out of "
                                     f"range for {n_pes} PEs")
        return self

    # -- convenience constructors ---------------------------------------

    @classmethod
    def single_crash(cls, pe: int, at_cycle: int, **kwargs) -> "FaultPlan":
        """The most common plan: one PE dies at one virtual time."""
        return cls(crashes=(CrashFault(pe, at_cycle),), **kwargs)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "max_retries": self.max_retries,
            "backoff_cycles": self.backoff_cycles,
            "crashes": [{"pe": c.pe, "at_cycle": c.at_cycle}
                        for c in self.crashes],
            "edges": [
                {
                    "src": "*" if e.src is None else e.src,
                    "dst": "*" if e.dst is None else e.dst,
                    "drop": e.drop,
                    "duplicate": e.duplicate,
                    "delay": e.delay,
                    "delay_cycles": e.delay_cycles,
                }
                for e in self.edges
            ],
            "slow_pes": [{"pe": s.pe, "multiplier": s.multiplier}
                         for s in self.slow_pes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, "
                             f"got {type(data).__name__}")
        known = {"seed", "max_retries", "backoff_cycles", "crashes",
                 "edges", "slow_pes"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown fault plan key(s): {', '.join(unknown)}")

        def end(value) -> int | None:
            if value in (None, "*"):
                return None
            return int(value)

        return cls(
            seed=int(data.get("seed", 0)),
            max_retries=int(data.get("max_retries", 8)),
            backoff_cycles=int(data.get("backoff_cycles", 1_000)),
            crashes=tuple(
                CrashFault(pe=int(c["pe"]), at_cycle=int(c["at_cycle"]))
                for c in data.get("crashes", ())
            ),
            edges=tuple(
                EdgeFault(
                    src=end(e.get("src", "*")),
                    dst=end(e.get("dst", "*")),
                    drop=float(e.get("drop", 0.0)),
                    duplicate=float(e.get("duplicate", 0.0)),
                    delay=float(e.get("delay", 0.0)),
                    delay_cycles=int(e.get("delay_cycles", 0)),
                )
                for e in data.get("edges", ())
            ),
            slow_pes=tuple(
                SlowPE(pe=int(s["pe"]), multiplier=float(s["multiplier"]))
                for s in data.get("slow_pes", ())
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ValueError(f"cannot read fault plan {path}: {exc}") from exc
        try:
            return cls.from_json(text)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from exc

    def describe(self) -> str:
        """Human-readable one-plan summary (``actorprof faults check``)."""
        lines = [f"fault plan (seed {self.seed}, max_retries "
                 f"{self.max_retries}, backoff {self.backoff_cycles} cyc):"]
        for c in self.crashes:
            lines.append(f"  crash  PE {c.pe} at cycle {c.at_cycle:,}")
        for e in self.edges:
            src = "*" if e.src is None else e.src
            dst = "*" if e.dst is None else e.dst
            lines.append(
                f"  edge   {src}->{dst}: drop {e.drop:g}, "
                f"duplicate {e.duplicate:g}, delay {e.delay:g} "
                f"(+{e.delay_cycles:,} cyc)"
            )
        for s in self.slow_pes:
            lines.append(f"  slow   PE {s.pe} x{s.multiplier:g}")
        if self.empty:
            lines.append("  (no faults)")
        return "\n".join(lines)


@dataclass(frozen=True)
class FaultEvent:
    """One realized injected fault (the unit of the fault *schedule*)."""

    kind: str  # "crash" | "drop" | "duplicate" | "delay" | "slow"
    pe: int
    dst: int  # -1 when not edge-scoped
    cycle: int
    detail: str = ""

    def as_tuple(self) -> tuple[str, int, int, int, str]:
        return (self.kind, self.pe, self.dst, self.cycle, self.detail)

    def describe(self) -> str:
        edge = f" -> PE {self.dst}" if self.dst >= 0 else ""
        text = f"{self.kind:<9} PE {self.pe}{edge} at cycle {self.cycle:,}"
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass(frozen=True)
class SendOutcome:
    """The fate the injector assigns to one buffer send attempt."""

    action: str  # "deliver" | "drop" | "duplicate"
    extra_delay: int = 0


_DELIVER = SendOutcome("deliver")


class FaultInjector:
    """Runtime fault decisions + the realized fault schedule.

    One injector serves one simulation run.  All stochastic choices come
    from per-edge generator streams seeded as ``SeedSequence((seed, tag,
    src, dst))`` so the decision for the n-th transfer on an edge is a
    pure function of ``(plan, src, dst, n)``.
    """

    def __init__(self, plan: FaultPlan, n_pes: int) -> None:
        self.plan = plan.validate(n_pes)
        self.n_pes = n_pes
        #: Every injected fault, in injection order.
        self.events: list[FaultEvent] = []
        self._edge_rngs: dict[tuple[int, int], np.random.Generator] = {}
        self._edge_rules: dict[tuple[int, int], EdgeFault | None] = {}

    # -- edge faults ------------------------------------------------------

    def _rule_for(self, src: int, dst: int) -> EdgeFault | None:
        key = (src, dst)
        if key not in self._edge_rules:
            self._edge_rules[key] = next(
                (e for e in self.plan.edges if e.matches(src, dst)), None
            )
        return self._edge_rules[key]

    def _rng_for(self, src: int, dst: int) -> np.random.Generator:
        key = (src, dst)
        rng = self._edge_rngs.get(key)
        if rng is None:
            ss = np.random.SeedSequence((self.plan.seed, _EDGE_STREAM_TAG,
                                         src, dst))
            rng = np.random.default_rng(ss)
            self._edge_rngs[key] = rng
        return rng

    def send_outcome(self, src: int, dst: int, cycle: int) -> SendOutcome:
        """Decide the fate of one buffer transfer ``src`` → ``dst``.

        Always consumes the same number of random draws per call so the
        edge stream position is the transfer ordinal, whatever the
        outcomes were.
        """
        rule = self._rule_for(src, dst)
        if rule is None:
            return _DELIVER
        fate, delay = self._rng_for(src, dst).random(2)
        extra = rule.delay_cycles if delay < rule.delay else 0
        if fate < rule.drop:
            self.note("drop", src, dst, cycle)
            return SendOutcome("drop", extra)
        if fate < rule.drop + rule.duplicate:
            self.note("duplicate", src, dst, cycle)
            if extra:
                self.note("delay", src, dst, cycle, f"+{extra} cycles")
            return SendOutcome("duplicate", extra)
        if extra:
            self.note("delay", src, dst, cycle, f"+{extra} cycles")
        return SendOutcome("deliver", extra)

    # -- the schedule -----------------------------------------------------

    def note(self, kind: str, pe: int, dst: int, cycle: int,
             detail: str = "") -> None:
        """Append one realized fault to the schedule."""
        self.events.append(FaultEvent(kind, pe, dst, cycle, detail))

    def note_crash(self, pe: int, cycle: int) -> None:
        """Crash callback handed to the scheduler (runs under its lock)."""
        self.note("crash", pe, -1, cycle)

    def schedule_rows(self) -> list[tuple[str, int, int, int, str]]:
        """The fault schedule as plain tuples (archive metadata)."""
        return [ev.as_tuple() for ev in self.events]

    def describe_schedule(self) -> str:
        """Multi-line schedule report (appended to DeadlockError)."""
        lines = ["injected-fault schedule:"]
        if not self.events:
            lines.append("  (plan active, no fault fired yet)")
        for ev in self.events:
            lines.append(f"  {ev.describe()}")
        planned = [c for c in self.plan.crashes]
        fired = {(ev.pe, ev.cycle) for ev in self.events if ev.kind == "crash"}
        pending = [c for c in planned if (c.pe, c.at_cycle) not in fired]
        for c in pending:
            lines.append(f"  (pending) crash PE {c.pe} at cycle {c.at_cycle:,}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# ambient default plan (`with use_plan(...): any_app(...)`)
# ----------------------------------------------------------------------

_ACTIVE_PLANS: list[FaultPlan] = []


@contextlib.contextmanager
def use_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` as the default fault plan for nested ``run_spmd``.

    Every :class:`~repro.hclib.world.World` constructed inside the
    ``with`` block (without an explicit ``fault_plan``) picks it up —
    including the ones apps in :mod:`repro.apps` build internally.
    """
    _ACTIVE_PLANS.append(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLANS.pop()


def current_plan() -> FaultPlan | None:
    """The innermost active :func:`use_plan` plan, or None."""
    return _ACTIVE_PLANS[-1] if _ACTIVE_PLANS else None
