"""Discrete-event simulation kernel.

This package provides the execution substrate every simulated runtime layer
(:mod:`repro.shmem`, :mod:`repro.conveyors`, :mod:`repro.hclib`) is built on:

* :class:`~repro.sim.clock.CycleClock` — per-PE virtual cycle counters
  (the simulated ``rdtsc``).
* :class:`~repro.sim.events.EventQueue` — a timed event queue used for
  message arrivals and other future actions.
* :class:`~repro.sim.scheduler.CoopScheduler` — a deterministic cooperative
  scheduler that runs one Python thread per simulated PE, with exactly one
  thread executing at a time, selected by (virtual clock, rank).

The kernel is deliberately independent of any networking or SPMD semantics;
those live in the layers above.
"""

from repro.sim.clock import CycleClock
from repro.sim.errors import (
    DeadlockError,
    FaultError,
    PECrashed,
    PEFailure,
    SimulationError,
)
from repro.sim.events import Event, EventQueue
from repro.sim.faults import (
    CrashFault,
    EdgeFault,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    SlowPE,
    current_plan,
    use_plan,
)
from repro.sim.rng import pe_rng, spawn_rngs
from repro.sim.scheduler import (
    CoopScheduler,
    PEState,
    SchedStats,
    SchedulePolicy,
    WaitChannel,
)

__all__ = [
    "CrashFault",
    "CycleClock",
    "CoopScheduler",
    "DeadlockError",
    "EdgeFault",
    "Event",
    "EventQueue",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "PECrashed",
    "PEFailure",
    "PEState",
    "SchedStats",
    "SchedulePolicy",
    "SimulationError",
    "SlowPE",
    "WaitChannel",
    "current_plan",
    "pe_rng",
    "spawn_rngs",
    "use_plan",
]
