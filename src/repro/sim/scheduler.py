"""Deterministic cooperative scheduler for simulated PEs.

Each simulated PE runs in its own Python thread, but **exactly one thread
executes at a time**: control is passed baton-style at explicit scheduling
points (``yield_pe`` / ``block`` / PE completion).  This gives SPMD layer
code the luxury of writing straight-line blocking operations (barriers,
conveyor advances, finish scopes) while keeping execution fully
deterministic.

Scheduling rule
---------------
At every handoff the scheduler picks, among

* RUNNABLE PEs (key = their virtual clock),
* BLOCKED PEs whose wait predicate is already true (key = their clock),
* BLOCKED PEs with a timed wakeup (key = max(clock, wakeup)),
* pending events in the :class:`~repro.sim.events.EventQueue`,

the candidate with the smallest (time, rank) key.  Firing an event runs its
action inline (actions are plain data mutations — typically a message
delivery — and may make predicates true).  If nothing is runnable, no
predicate holds, no timed wakeups exist and the event queue is empty while
some PE is still blocked, a :class:`~repro.sim.errors.DeadlockError` is
raised with a per-PE wait report.

Indexed core
------------
The default (``indexed``) core keeps every candidate's key in a flat numpy
``int64`` vector (``_NO_KEY`` marks non-candidates), so one SIMD ``min`` +
``flatnonzero`` replaces the historical O(n_pes) Python scan per handoff.
Blocked predicates are **epoch-gated**: a PE that blocks on a predicate
registers with the :class:`WaitChannel` s covering the state it waits on,
and the predicate is only re-evaluated when one of those channels is
notified (a conveyor buffer landed, a conveyor group's quiescence flipped,
a collective released) or an event fired.  Blocks that pass no channels
fall back to the historical conservative behaviour — re-evaluation at
every handoff.  Due events are drained in batches
(:meth:`~repro.sim.events.EventQueue.pop_due`): every event at the firing
timestamp — including events an action posts *at that same cycle* — fires
in one pass before candidates are re-examined.

The pre-index linear scan survives verbatim as ``core="linear"``
(env ``ACTORPROF_SIM_CORE=linear``): it is the differential-testing oracle
and the baseline the weak-scaling benchmark measures against.  Both cores
produce byte-identical traces; the golden-archive suite pins this.

Virtual time
------------
Every PE owns a :class:`~repro.sim.clock.CycleClock`.  Picking the
minimum-clock candidate approximates parallel execution: a PE that has done
little simulated work runs before one that is far ahead.  Message
visibility is enforced by the layers above (items carry arrival
timestamps), so the global ordering here only needs to be *fair*, not
strictly conservative.
"""

from __future__ import annotations

import enum
import os
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.sim.clock import CycleClock, collect_now
from repro.sim.errors import DeadlockError, PECrashed, PEFailure, SimulationError
from repro.sim.events import EventQueue

#: Candidate-key sentinel: this PE is not currently selectable.
_NO_KEY = np.iinfo(np.int64).max


class SchedulePolicy:
    """Pluggable resolution of the scheduler's *don't-care* choices.

    The FA-BSP semantics only pin the selection rule down to a partial
    order: among the candidates sharing the minimum virtual time, any
    pick is a legal schedule (real SHMEM jobs resolve such ties by OS
    noise).  The same freedom exists in the order a PE flushes its
    per-hop conveyor buffers.  ActorCheck (:mod:`repro.check`) exploits
    this seam to re-execute a workload under systematically perturbed
    but legal schedules and diff the traces.

    The base class is the default policy and reproduces the historical
    behavior byte-for-byte: lowest rank wins ties, buffers flush in
    ascending hop order.
    """

    def tie_break(self, time: int, ranks: Sequence[int]) -> int:
        """Pick the PE to run among ``ranks`` (ascending, all eligible
        at virtual ``time``).  Must return one of ``ranks``."""
        return ranks[0]

    def flush_order(self, pe: int, hops: Sequence[int]) -> Sequence[int]:
        """Order in which PE ``pe`` flushes its non-empty per-hop
        buffers.  ``hops`` arrives ascending; return a permutation."""
        return hops


#: Shared default policy instance (stateless, so sharing is safe).
DEFAULT_POLICY = SchedulePolicy()


class PEState(enum.Enum):
    """Lifecycle of a simulated PE within the scheduler."""

    NEW = "new"
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"
    CRASHED = "crashed"


class _Abort(BaseException):
    """Internal: unwinds a PE thread when the simulation is torn down."""


class _CrashUnwind(BaseException):
    """Internal: unwinds a PE thread killed by an injected crash fault.

    Unlike :class:`_Abort` this does not abort the simulation — the
    remaining PEs keep running.
    """


_MAIN = -1  # sentinel "rank" for the coordinating main thread


class WaitChannel:
    """A notification channel gating blocked-predicate re-evaluation.

    Layers that own waitable state (a conveyor group's quiescence, a PE's
    inbound buffer list, a collective rendezvous) create one channel per
    unit of state via :meth:`CoopScheduler.channel` and call
    :meth:`notify` whenever that state changes in a way that could flip a
    wait predicate — in either direction.  A PE that blocks with
    ``channels=(ch, ...)`` is only re-examined after one of its channels
    fires; missing a notification would make the indexed core diverge
    from the linear oracle, which the differential tests and golden
    archives guard.

    ``notify`` is safe to call without the scheduler lock: only one PE
    thread executes at a time (the baton invariant), and event actions —
    the other mutation source — run under the lock inside selection.
    """

    __slots__ = ("_sched", "_waiters")

    def __init__(self, sched: "CoopScheduler") -> None:
        self._sched = sched
        self._waiters: set[int] = set()

    def notify(self) -> None:
        """Mark every waiting PE's predicate dirty (cheap if none wait)."""
        if self._waiters:
            self._sched._dirty.update(self._waiters)


@dataclass
class SchedStats:
    """Operation counters for the scheduler hot path (benchmark food)."""

    selections: int = 0       # _select calls (every scheduling point)
    handoffs: int = 0         # baton transfers to a different PE thread
    yield_fast: int = 0       # yields resolved without a thread handoff
    events_fired: int = 0     # event actions executed
    event_batches: int = 0    # batched drains (indexed core)
    pred_evals: int = 0       # blocked-predicate evaluations
    wall_s: float = 0.0       # wall-clock seconds spent inside run()


class _Baton:
    """One-token thread parking primitive (a pre-acquired raw lock).

    Semantically a ``threading.Event`` whose :meth:`wait` also consumes the
    signal, but built on one uncontended lock acquire/release pair instead
    of the Event/Condition machinery — the baton handoff is the scheduler's
    per-context-switch floor, so the cheap primitive is worth having.
    ``set`` is idempotent like ``Event.set`` (the abort broadcast in
    ``_fail_locked`` may signal a PE the selection loop already woke).
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._lock.acquire()  # start unsignalled

    def set(self) -> None:
        try:
            self._lock.release()
        except RuntimeError:
            pass  # already signalled

    def wait(self) -> None:
        self._lock.acquire()


class _PERecord:
    __slots__ = (
        "rank",
        "state",
        "wake",
        "predicate",
        "wakeup_time",
        "reason",
        "thread",
        "channels",
    )

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.state = PEState.NEW
        self.wake = _Baton()
        self.predicate: Callable[[], bool] | None = None
        self.wakeup_time: int | None = None
        self.reason = ""
        self.thread: threading.Thread | None = None
        self.channels: tuple[WaitChannel, ...] = ()


class CoopScheduler:
    """Runs ``n_pes`` copies of an SPMD entry point cooperatively.

    Parameters
    ----------
    n_pes:
        Number of simulated processing elements.
    policy:
        Tie-break / flush-order resolution; None means the default
        (byte-identical to historical behaviour).
    core:
        ``"indexed"`` (default) selects via the numpy candidate-key
        vector with channel-gated predicate re-evaluation; ``"linear"``
        is the pre-index full scan, kept as the differential oracle and
        benchmark baseline.  Overridable via ``ACTORPROF_SIM_CORE``.

    Notes
    -----
    The scheduler is single-use: construct one per simulation run.
    """

    def __init__(
        self,
        n_pes: int,
        policy: SchedulePolicy | None = None,
        core: str | None = None,
    ) -> None:
        if n_pes <= 0:
            raise ValueError(f"need at least one PE, got {n_pes}")
        if core is None:
            core = os.environ.get("ACTORPROF_SIM_CORE", "indexed")
        if core not in ("indexed", "linear"):
            raise ValueError(
                f"unknown scheduler core {core!r}; want 'indexed' or 'linear'"
            )
        self.n_pes = n_pes
        self.core = core
        self._indexed = core == "indexed"
        self.policy: SchedulePolicy = policy if policy is not None else DEFAULT_POLICY
        self.clocks: list[CycleClock] = [CycleClock() for _ in range(n_pes)]
        self.events = EventQueue()
        self.stats = SchedStats()
        self._pes = [_PERecord(r) for r in range(n_pes)]
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._failure: PEFailure | None = None
        self._aborting = False
        self._started = False
        # Indexed-core state.  _keys[r] is PE r's current candidate key
        # (_NO_KEY when not selectable); _dirty holds ranks whose blocked
        # predicate must be re-evaluated before the next selection;
        # _always_dirty holds blocked ranks that gave no channels (the
        # conservative fallback); _blocked_pred tracks every blocked rank
        # with a predicate (event firings dirty them all).
        self._keys = np.full(n_pes, _NO_KEY, dtype=np.int64)
        self._dirty: set[int] = set()
        self._always_dirty: set[int] = set()
        self._blocked_pred: set[int] = set()
        self._n_blocked = 0
        #: rank -> virtual crash time for PEs killed by injected faults.
        self.crashed: dict[int, int] = {}
        #: Optional callable appended to deadlock reports (the fault
        #: injector's schedule, when a fault plan is active).
        self.fault_context: Callable[[], str] | None = None
        #: Optional ``(rank, start, end, reason)`` callback fired whenever a
        #: :meth:`block` call resumes with the PE's clock advanced (i.e. the
        #: PE genuinely waited).  Pure observation: it runs on the PE's own
        #: thread after the baton handoff and must not charge cycles.
        self.wait_observer: Callable[[int, int, int, str], None] | None = None

    # ------------------------------------------------------------------
    # Public API used by layer code running *inside* PE threads
    # ------------------------------------------------------------------

    def now(self, rank: int) -> int:
        """Current virtual time of PE ``rank``."""
        return self.clocks[rank].now

    def channel(self) -> WaitChannel:
        """Create a :class:`WaitChannel` bound to this scheduler."""
        return WaitChannel(self)

    def yield_pe(self, rank: int) -> None:
        """Offer the baton to any PE that is further behind in virtual time.

        Returns immediately (without a thread handoff) when the caller is
        still the minimum-time candidate.
        """
        with self._lock:
            self._check_abort()
            rec = self._pes[rank]
            rec.state = PEState.RUNNABLE
            if self._indexed:
                self._keys[rank] = self.clocks[rank].now
            nxt = self._select_locked()
            if nxt is rec:
                rec.state = PEState.RUNNING
                if self._indexed:
                    self._keys[rank] = _NO_KEY
                self.stats.yield_fast += 1
                return
            # nxt can be None (everything else DONE) only when an event
            # fired during selection crashed this very PE; _sleep below
            # then unwinds it.
            if nxt is not None:
                self._wake_locked(nxt)
        self._sleep(rank)

    def block(
        self,
        rank: int,
        predicate: Callable[[], bool] | None = None,
        wakeup_time: int | None = None,
        reason: str = "",
        channels: Iterable[WaitChannel] = (),
    ) -> None:
        """Suspend PE ``rank`` until ``predicate()`` holds or ``wakeup_time``.

        At least one of ``predicate`` / ``wakeup_time`` must be given —
        blocking with neither can never end and is rejected eagerly.  When
        resumed because of the timed wakeup, the PE's clock has been
        advanced to ``wakeup_time``; when resumed because the predicate
        turned true, the clock is unchanged (the unblocking layer is
        responsible for arrival-time accounting).

        ``channels`` names the :class:`WaitChannel` s covering every piece
        of state the predicate reads that *other* PEs (or events) can
        mutate; the indexed core then re-evaluates the predicate only when
        one of them notifies.  An empty ``channels`` keeps the historical
        conservative behaviour (re-evaluation at every handoff).
        """
        if predicate is None and wakeup_time is None:
            raise SimulationError(
                f"PE {rank} tried to block forever ({reason or 'no reason given'})"
            )
        entered_at = self.clocks[rank].now
        with self._lock:
            self._check_abort()
            rec = self._pes[rank]
            rec.state = PEState.BLOCKED
            rec.predicate = predicate
            rec.wakeup_time = wakeup_time
            rec.reason = reason
            self._n_blocked += 1
            if self._indexed:
                self._index_block_locked(rec, channels)
            nxt = self._select_locked()
            if nxt is rec:
                self._resume_locked(rec)
                self._note_wait(rank, entered_at, reason)
                return
            if nxt is not None:
                self._wake_locked(nxt)
        self._sleep(rank)
        self._note_wait(rank, entered_at, reason)

    def _note_wait(self, rank: int, entered_at: int, reason: str) -> None:
        """Report a completed :meth:`block` interval to the wait observer."""
        observer = self.wait_observer
        if observer is None:
            return
        now = self.clocks[rank].now
        if now > entered_at:
            observer(rank, entered_at, now, reason)

    def wait_until(
        self,
        rank: int,
        predicate: Callable[[], bool],
        wakeup_fn: Callable[[], int | None] | None = None,
        reason: str = "",
        channels: Iterable[WaitChannel] = (),
    ) -> None:
        """Block repeatedly until ``predicate`` is true.

        ``wakeup_fn``, when given, supplies a timed fallback wakeup for each
        blocking round (e.g. the arrival time of the earliest in-flight
        message).  ``channels`` is forwarded to every :meth:`block` round.
        """
        while not predicate():
            wk = wakeup_fn() if wakeup_fn is not None else None
            self.block(rank, predicate=predicate, wakeup_time=wk,
                       reason=reason, channels=channels)

    def post(self, time: int, action: Callable[[], None]) -> None:
        """Schedule ``action`` to fire at virtual ``time``.

        Actions run inline during scheduling, under the scheduler lock:
        they must be quick, non-blocking data mutations.
        """
        with self._lock:
            self.events.schedule(time, action)

    def schedule_crash(
        self,
        rank: int,
        at_cycle: int,
        on_crash: Callable[[int, int], None] | None = None,
    ) -> None:
        """Kill PE ``rank`` at its first scheduling point >= ``at_cycle``.

        The crash does **not** abort the simulation: the victim's thread
        unwinds silently and every other PE keeps running (to completion,
        to a broken collective, or to a deadlock).  :meth:`run` raises
        :class:`~repro.sim.errors.PECrashed` afterwards so callers know
        the run is degraded; collected traces stay readable.

        A PE that reaches DONE/FAILED before cycle ``at_cycle`` survives —
        the same way a SIGKILL delivered after ``exit()`` changes nothing.
        ``on_crash(rank, cycle)`` (if given) runs under the scheduler lock
        the moment the crash fires; it must be a quick data mutation.
        """
        if not 0 <= rank < self.n_pes:
            raise ValueError(f"cannot crash PE {rank}: only {self.n_pes} PEs")
        if at_cycle < 0:
            raise ValueError(f"crash cycle must be >= 0, got {at_cycle}")
        self.post(at_cycle, lambda: self._crash_locked(rank, at_cycle, on_crash))

    def _crash_locked(
        self,
        rank: int,
        at_cycle: int,
        on_crash: Callable[[int, int], None] | None,
    ) -> None:
        """Event action: mark ``rank`` crashed (runs under the lock).

        Event actions only ever fire inside selection, at which point no
        PE is RUNNING — the victim is RUNNABLE or BLOCKED, i.e. its
        thread is parked in :meth:`_sleep`.  Setting its wake event makes
        that thread resume, observe the CRASHED state, and unwind via
        :class:`_CrashUnwind` without ever re-entering user code; the
        selection loop simply skips it from now on.
        """
        rec = self._pes[rank]
        if rec.state in (PEState.DONE, PEState.FAILED, PEState.CRASHED):
            return  # finished (or already dead) before the crash landed
        self.clocks[rank].advance_to(at_cycle)
        if rec.state is PEState.BLOCKED:
            self._n_blocked -= 1
        if self._indexed:
            self._index_unblock_locked(rec)
            self._keys[rank] = _NO_KEY
        rec.state = PEState.CRASHED
        rec.predicate = None
        rec.wakeup_time = None
        rec.reason = f"crashed at cycle {at_cycle} (injected fault)"
        self.crashed[rank] = at_cycle
        if on_crash is not None:
            on_crash(rank, at_cycle)
        rec.wake.set()

    # ------------------------------------------------------------------
    # Running the simulation
    # ------------------------------------------------------------------

    def run(self, entry: Callable[[int], None], join_timeout: float = 30.0) -> None:
        """Execute ``entry(rank)`` once per PE to completion.

        Raises :class:`PEFailure` if any PE's program raised, and
        :class:`DeadlockError` if the simulation wedged.  ``join_timeout``
        bounds the *total* teardown wait for PE threads; threads still
        alive afterwards are a leak and raise :class:`SimulationError`.
        """
        if self._started:
            raise SimulationError("CoopScheduler.run may only be called once")
        self._started = True
        run_t0 = time.perf_counter()
        if self._indexed:
            self._keys[:] = collect_now(self.clocks)
        for rec in self._pes:
            rec.state = PEState.RUNNABLE
            rec.thread = threading.Thread(
                target=self._pe_main,
                args=(rec.rank, entry),
                name=f"sim-pe-{rec.rank}",
                daemon=True,
            )
        for rec in self._pes:
            assert rec.thread is not None
            rec.thread.start()
        # Hand the baton to the first PE.
        with self._lock:
            try:
                nxt = self._select_locked()
            except SimulationError as exc:
                self._fail_locked(_MAIN, exc)
                nxt = None
            if nxt is not None:
                self._wake_locked(nxt)
        self._done.wait()
        self.stats.wall_s = time.perf_counter() - run_t0
        deadline = time.monotonic() + join_timeout
        for rec in self._pes:
            assert rec.thread is not None
            rec.thread.join(timeout=max(0.0, deadline - time.monotonic()))
        if self._failure is not None:
            raise self._failure
        leaked = [rec.thread.name for rec in self._pes
                  if rec.thread is not None and rec.thread.is_alive()]
        if leaked:
            shown = ", ".join(leaked[:8])
            if len(leaked) > 8:
                shown += f", ... ({len(leaked) - 8} more)"
            raise SimulationError(
                f"simulation ended but {len(leaked)} PE thread(s) failed to "
                f"exit within {join_timeout:g}s: {shown}"
            )
        if self.crashed:
            # The run completed around the dead PE(s); report the first
            # crash so callers know the result is degraded.  Traces
            # collected so far remain readable (salvageable).
            rank = min(self.crashed)
            extra = ""
            if len(self.crashed) > 1:
                others = ", ".join(
                    f"PE {r} at {t}" for r, t in sorted(self.crashed.items())[1:]
                )
                extra = f"also crashed: {others}"
            raise PECrashed(rank, self.crashed[rank], extra)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _pe_main(self, rank: int, entry: Callable[[int], None]) -> None:
        rec = self._pes[rank]
        try:
            self._sleep(rank)  # wait until the baton first reaches us
            entry(rank)
        except _Abort:
            return
        except _CrashUnwind:
            # Injected crash: this thread just dies.  The crash action
            # already removed us from scheduling; whoever holds the baton
            # carries on.
            return
        except BaseException as exc:  # noqa: BLE001 - report any PE failure
            with self._lock:
                self._fail_locked(rank, exc)
            return
        # Normal completion: mark done and pass the baton on.
        with self._lock:
            rec.state = PEState.DONE
            if self._aborting:
                return
            try:
                nxt = self._select_locked()
            except SimulationError as exc:
                self._fail_locked(rank, exc)
                return
            if nxt is not None:
                self._wake_locked(nxt)

    def _sleep(self, rank: int) -> None:
        rec = self._pes[rank]
        rec.wake.wait()  # consumes the signal
        if rec.state is PEState.CRASHED:
            raise _CrashUnwind()
        if self._aborting and rec.state is not PEState.RUNNING:
            raise _Abort()

    def _check_abort(self) -> None:
        if self._aborting:
            raise _Abort()

    def _wake_locked(self, rec: _PERecord) -> None:
        self._resume_locked(rec)
        self.stats.handoffs += 1
        rec.wake.set()

    def _resume_locked(self, rec: _PERecord) -> None:
        """Transition a selected PE to RUNNING, applying timed-wakeup time.

        A blocked PE whose predicate is (still) true resumes with its
        clock **unchanged** even when a timed wakeup was set — the
        unblocking layer owns arrival accounting; only a pure timed
        wakeup advances the clock.
        """
        if rec.state is PEState.BLOCKED:
            if rec.wakeup_time is not None:
                pred_ok = rec.predicate is not None and self._safe_pred(rec)
                if not pred_ok:
                    self.clocks[rec.rank].advance_to(rec.wakeup_time)
            self._n_blocked -= 1
            if self._indexed:
                self._index_unblock_locked(rec)
        rec.state = PEState.RUNNING
        rec.predicate = None
        rec.wakeup_time = None
        rec.reason = ""
        if self._indexed:
            self._keys[rec.rank] = _NO_KEY

    def _safe_pred(self, rec: _PERecord) -> bool:
        assert rec.predicate is not None
        self.stats.pred_evals += 1
        return bool(rec.predicate())

    # --- indexed-core bookkeeping ---------------------------------------

    def _index_block_locked(
        self, rec: _PERecord, channels: Iterable[WaitChannel]
    ) -> None:
        """Register a freshly blocked PE with the candidate index."""
        rank = rec.rank
        if rec.predicate is not None:
            self._blocked_pred.add(rank)
            chans = tuple(channels)
            if chans:
                rec.channels = chans
                for ch in chans:
                    ch._waiters.add(rank)
                now = self.clocks[rank].now
                if self._safe_pred(rec):
                    self._keys[rank] = now
                elif rec.wakeup_time is not None:
                    w = rec.wakeup_time
                    self._keys[rank] = now if now > w else w
                else:
                    self._keys[rank] = _NO_KEY
            else:
                # No channels: conservative fallback.  The refresh at the
                # top of every selection computes the key.
                self._always_dirty.add(rank)
                self._keys[rank] = _NO_KEY
        else:
            now = self.clocks[rank].now
            w = rec.wakeup_time
            assert w is not None  # enforced by block()
            self._keys[rank] = now if now > w else w

    def _index_unblock_locked(self, rec: _PERecord) -> None:
        """Deregister a PE leaving the BLOCKED state from the index."""
        rank = rec.rank
        if rec.channels:
            for ch in rec.channels:
                ch._waiters.discard(rank)
            rec.channels = ()
        self._blocked_pred.discard(rank)
        self._always_dirty.discard(rank)
        self._dirty.discard(rank)

    def _refresh_dirty_locked(self) -> None:
        """Re-evaluate dirtied blocked predicates and update their keys."""
        if self._dirty:
            ranks = self._dirty
            if self._always_dirty:
                ranks = ranks | self._always_dirty
            self._dirty = set()
        elif self._always_dirty:
            ranks = self._always_dirty
        else:
            return
        keys = self._keys
        for rank in ranks:
            rec = self._pes[rank]
            if rec.state is not PEState.BLOCKED or rec.predicate is None:
                continue
            now = self.clocks[rank].now
            if self._safe_pred(rec):
                keys[rank] = now
            elif rec.wakeup_time is not None:
                w = rec.wakeup_time
                keys[rank] = now if now > w else w
            else:
                keys[rank] = _NO_KEY

    def _fire_due_locked(self, ev_time: int) -> None:
        """Batched event drain: fire every event due at ``ev_time``.

        Events an action posts *at the same cycle* join the same drain
        (the repeated :meth:`~repro.sim.events.EventQueue.pop_due`);
        later-cycle events wait for the next selection pass, preserving
        the events-fire-strictly-before-candidates rule across
        timestamps.  Actions are arbitrary mutations, so every blocked
        predicate is dirtied afterwards.
        """
        self.stats.event_batches += 1
        batch = self.events.pop_due(ev_time)
        while batch:
            for ev in batch:
                ev.action()
                self.stats.events_fired += 1
            batch = self.events.pop_due(ev_time)
        if self._blocked_pred:
            self._dirty.update(self._blocked_pred)

    # --- selection ------------------------------------------------------

    def _select_locked(self) -> _PERecord | None:
        """Pick the next PE to run; fire due events as needed.

        Returns None when every PE is DONE (simulation complete — the done
        event is signalled).  Raises :class:`DeadlockError` when blocked
        PEs remain but nothing can make progress.
        """
        self.stats.selections += 1
        if self._indexed:
            return self._select_indexed_locked()
        return self._select_linear_locked()

    def _select_indexed_locked(self) -> _PERecord | None:
        keys = self._keys
        while True:
            if self._dirty or self._always_dirty:
                self._refresh_dirty_locked()
            best = int(np.argmin(keys))  # position of the FIRST minimum
            m = int(keys[best])
            ev_time = self.events.next_time()
            if ev_time is not None and (m == _NO_KEY or ev_time < m):
                self._fire_due_locked(ev_time)
                continue  # re-examine: actions may have changed the world
            if m != _NO_KEY:
                if int(np.count_nonzero(keys == m)) == 1:
                    return self._pes[best]
                ranks = [int(r) for r in np.flatnonzero(keys == m)]
                chosen = self.policy.tie_break(m, ranks)
                for r in ranks:
                    if r == chosen:
                        return self._pes[r]
                raise SimulationError(
                    f"schedule policy {self.policy!r} picked PE {chosen}, "
                    f"which is not among the tied candidates {ranks}"
                )
            if self._n_blocked:
                raise DeadlockError(self._deadlock_report_locked())
            # No runnable, no blocked, no events: everything is DONE/FAILED.
            self._done.set()
            return None

    def _select_linear_locked(self) -> _PERecord | None:
        """The pre-index selection loop, byte-for-byte (oracle/baseline)."""
        while True:
            best_time: int | None = None
            tied: list[_PERecord] = []  # candidates at best_time, rank-ascending
            any_blocked = False
            for rec in self._pes:
                if rec.state is PEState.RUNNABLE:
                    t = self.clocks[rec.rank].now
                elif rec.state is PEState.BLOCKED:
                    any_blocked = True
                    if rec.predicate is not None and self._safe_pred(rec):
                        t = self.clocks[rec.rank].now
                    elif rec.wakeup_time is not None:
                        t = max(self.clocks[rec.rank].now, rec.wakeup_time)
                    else:
                        continue
                else:
                    continue
                if best_time is None or t < best_time:
                    best_time, tied = t, [rec]
                elif t == best_time:
                    tied.append(rec)
            ev_time = self.events.next_time()
            if ev_time is not None and (best_time is None or ev_time < best_time):
                ev = self.events.pop_next()
                assert ev is not None
                ev.action()
                self.stats.events_fired += 1
                continue  # re-evaluate: the action may have changed the world
            if tied:
                if len(tied) == 1:
                    return tied[0]
                assert best_time is not None
                ranks = [rec.rank for rec in tied]
                chosen = self.policy.tie_break(best_time, ranks)
                for rec in tied:
                    if rec.rank == chosen:
                        return rec
                raise SimulationError(
                    f"schedule policy {self.policy!r} picked PE {chosen}, "
                    f"which is not among the tied candidates {ranks}"
                )
            if any_blocked:
                raise DeadlockError(self._deadlock_report_locked())
            # No runnable, no blocked, no events: everything is DONE/FAILED.
            self._done.set()
            return None

    def _deadlock_report_locked(self) -> str:
        lines = ["simulation deadlocked; per-PE wait state:"]
        for rec in self._pes:
            if rec.state is PEState.BLOCKED:
                desc = rec.reason or "no reason"
                if rec.wakeup_time is not None:
                    desc += f"; timed wakeup at cycle {rec.wakeup_time}"
                lines.append(
                    f"  PE {rec.rank}: blocked at cycle "
                    f"{self.clocks[rec.rank].now} ({desc})"
                )
            elif rec.state is PEState.CRASHED:
                lines.append(
                    f"  PE {rec.rank}: crashed at cycle "
                    f"{self.crashed.get(rec.rank, 0)} (injected fault)"
                )
            else:
                lines.append(f"  PE {rec.rank}: {rec.state.value}")
        ev_time = self.events.next_time()
        if ev_time is not None:
            lines.append(f"  earliest pending event: cycle {ev_time}")
        else:
            lines.append("  pending events: none")
        if self.fault_context is not None:
            lines.append(self.fault_context())
        return "\n".join(lines)

    def _fail_locked(self, rank: int, exc: BaseException) -> None:
        if self._failure is None:
            tb = "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
            # rank < 0 is the coordinating main thread (_MAIN), not a PE;
            # PEFailure labels it accordingly instead of blaming PE 0.
            failure = PEFailure(rank, f"{exc!r}\n{tb}")
            failure.__cause__ = exc
            self._failure = failure
        self._aborting = True
        if 0 <= rank < self.n_pes:
            self._pes[rank].state = PEState.FAILED
        for rec in self._pes:
            if rec.state not in (PEState.DONE, PEState.FAILED, PEState.CRASHED):
                rec.wake.set()
        self._done.set()

    # Debug helpers -----------------------------------------------------

    def states(self) -> Sequence[PEState]:
        """Snapshot of every PE's lifecycle state (for tests/diagnostics)."""
        return [rec.state for rec in self._pes]
