"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for all simulation-kernel failures."""


class DeadlockError(SimulationError):
    """All PEs are blocked and no future event can unblock any of them.

    Raised by the scheduler when every PE thread is waiting on a predicate
    that is false, there are no timed wakeups, and the event queue is empty.
    The message includes a per-PE description of what each PE was waiting
    for, which is usually enough to diagnose a missing ``done()`` call or an
    unbalanced collective.
    """


class PEFailure(SimulationError):
    """An exception escaped a PE's program.

    The original exception is available as ``__cause__`` and the failing
    rank as :attr:`rank`.  A negative rank is the scheduler's sentinel for
    the coordinating main thread (e.g. the initial selection failed before
    any PE ran) — labelled as such rather than blamed on a real PE.
    """

    def __init__(self, rank: int, message: str) -> None:
        label = f"PE {rank}" if rank >= 0 else "main thread (simulation coordinator)"
        super().__init__(f"{label} failed: {message}")
        self.rank = rank


class PECrashed(PEFailure):
    """A PE was killed by an injected crash fault.

    Unlike an ordinary :class:`PEFailure`, an injected crash does **not**
    abort the simulation: surviving PEs keep running (to completion, to a
    broken collective, or to a deadlock), and the scheduler raises this
    afterwards.  The crash site is available as :attr:`rank` /
    :attr:`at_cycle`.
    """

    def __init__(self, rank: int, at_cycle: int, extra: str = "") -> None:
        message = f"injected crash at cycle {at_cycle}"
        if extra:
            message += f"; {extra}"
        super().__init__(rank, message)
        self.at_cycle = at_cycle


class FaultError(SimulationError):
    """An injected fault could not be absorbed by the runtime.

    Raised e.g. when a buffer send is dropped more times than the fault
    plan's retry budget allows.
    """
