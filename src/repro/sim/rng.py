"""Deterministic random-number utilities.

Simulated SPMD programs frequently need per-PE random streams (e.g. the
histogram example sends to random destinations).  These helpers derive
independent, reproducible :class:`numpy.random.Generator` streams from a
single seed using ``SeedSequence.spawn``, so results do not depend on
scheduling order or PE count changes elsewhere in the program.
"""

from __future__ import annotations

import numpy as np


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from ``seed``."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def pe_rng(seed: int, rank: int) -> np.random.Generator:
    """Return the generator PE ``rank`` would receive from :func:`spawn_rngs`.

    Equivalent to ``spawn_rngs(seed, rank + 1)[rank]`` but only materializes
    the one stream.
    """
    if rank < 0:
        raise ValueError(f"rank must be non-negative: {rank}")
    ss = np.random.SeedSequence(seed)
    child = ss.spawn(rank + 1)[rank]
    return np.random.default_rng(child)
