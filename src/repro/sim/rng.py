"""Deterministic random-number utilities.

Simulated SPMD programs frequently need per-PE random streams (e.g. the
histogram example sends to random destinations).  These helpers derive
independent, reproducible :class:`numpy.random.Generator` streams from a
single seed using ``SeedSequence.spawn``, so results do not depend on
scheduling order or PE count changes elsewhere in the program.
"""

from __future__ import annotations

import hashlib

import numpy as np


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from ``seed``."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def _path_word(part: int | str) -> int:
    """Map one substream-path component to a 32-bit spawn-key word.

    Integers pass through (mod 2**32 — SeedSequence keys are uint32
    words); strings hash via SHA-256 so the mapping is stable across
    Python processes (``hash()`` is salted) and platforms.
    """
    if isinstance(part, bool):  # bool is an int subclass; reject explicitly
        raise TypeError(f"substream path component must be int or str, not bool: {part}")
    if isinstance(part, int):
        return part % (1 << 32)
    if isinstance(part, str):
        digest = hashlib.sha256(part.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "little")
    raise TypeError(
        f"substream path component must be int or str, not {type(part).__name__}: {part!r}"
    )


def substream_seed(root: int, *path: int | str) -> np.random.SeedSequence:
    """Derive a named, collision-resistant sub-seed from ``root``.

    Every independent consumer of randomness names its stream by a path —
    ``substream_seed(root, "actorcheck", "tiebreak", k)`` — so adding a new
    consumer (or re-ordering calls) can never shift another's stream.  The
    same ``(root, path)`` always yields the same stream.
    """
    return np.random.SeedSequence(root % (1 << 64), spawn_key=tuple(_path_word(p) for p in path))


def substream_rng(root: int, *path: int | str) -> np.random.Generator:
    """A :class:`numpy.random.Generator` over :func:`substream_seed`."""
    return np.random.default_rng(substream_seed(root, *path))


def pe_rng(seed: int, rank: int) -> np.random.Generator:
    """Return the generator PE ``rank`` would receive from :func:`spawn_rngs`.

    Equivalent to ``spawn_rngs(seed, rank + 1)[rank]`` but only materializes
    the one stream.
    """
    if rank < 0:
        raise ValueError(f"rank must be non-negative: {rank}")
    ss = np.random.SeedSequence(seed)
    child = ss.spawn(rank + 1)[rank]
    return np.random.default_rng(child)
