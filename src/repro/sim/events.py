"""A timed event queue for the simulation kernel.

Events carry a callback plus an absolute virtual time.  The scheduler fires
events that are due strictly before the best runnable candidate — draining
everything at the firing timestamp in one :meth:`EventQueue.pop_due` batch;
layers above (the fault injector, the network model) use it to make things
happen at an absolute virtual time.

Ordering is deterministic: events fire in (time, sequence-number) order,
where the sequence number is assigned at scheduling time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute virtual cycle at which the event fires.
    seq:
        Tie-breaking sequence number (scheduling order).
    action:
        Zero-argument callable executed when the event fires.
    """

    time: int
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, seq)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run at virtual ``time``.

        Returns the :class:`Event`, which can be used for identity checks.
        """
        if time < 0:
            raise ValueError(f"cannot schedule event in negative time: {time}")
        ev = Event(time=int(time), seq=next(self._counter), action=action)
        heapq.heappush(self._heap, ev)
        return ev

    def next_time(self) -> int | None:
        """Virtual time of the earliest pending event, or None if empty."""
        return self._heap[0].time if self._heap else None

    def pop_next(self) -> Event | None:
        """Remove and return the earliest event, or None if empty."""
        return heapq.heappop(self._heap) if self._heap else None

    def pop_due(self, now: int) -> list[Event]:
        """Remove and return every event with ``time <= now``, in order."""
        due: list[Event] = []
        while self._heap and self._heap[0].time <= now:
            due.append(heapq.heappop(self._heap))
        return due

    def clear(self) -> None:
        self._heap.clear()
