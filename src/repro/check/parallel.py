"""The ActorCheck run recorder: one schedule's run as plain data.

:func:`record_run` executes one ``(workload, schedule)`` pair, runs the
invariant engine, and flattens everything the auditor needs into a
JSON-serializable dict.  :func:`run_audit_schedule` is the same thing
behind the :mod:`repro.exec` worker contract — it additionally rebuilds
the workload from its descriptor, so it can execute in a spawned
process.

Both the serial (``jobs=1``) and the pooled audit paths go through
:func:`record_run`, which is what makes ``actorprof check --jobs N``
byte-identical to ``--jobs 1``: the per-run values are computed by one
function, and the auditor merges them in schedule order either way.
"""

from __future__ import annotations

import contextlib
from pathlib import Path

from repro.check.invariants import run_invariants
from repro.check.policies import PerturbedSchedule, make_schedules
from repro.check.workloads import Workload, workload_from_descriptor


def record_run(
    workload: Workload,
    schedule: PerturbedSchedule,
    out_dir: Path,
    tag: str,
    *,
    store_equivalence: bool = True,
    fault_plan=None,
) -> dict:
    """Run once under ``schedule``; return the flattened run record.

    ``fault_plan`` is a live :class:`~repro.sim.faults.FaultPlan` (or
    None).  The archive lands at ``out_dir/<tag>.aptrc`` and is listed
    under ``"artifacts"`` so the result cache can carry it.
    """
    from repro.sim.faults import use_plan

    scope = (use_plan(fault_plan) if fault_plan is not None
             else contextlib.nullcontext())
    with scope:
        art = workload.run(schedule, Path(out_dir) / f"{tag}.aptrc")
    violations = run_invariants(art, store_equivalence=store_equivalence)
    return {
        "schedule": schedule.index,
        "tag": tag,
        "description": schedule.describe(),
        "result_fingerprint": art.result_fingerprint,
        "logical_fingerprint": art.logical_fingerprint,
        "archive_sha256": art.archive_sha256,
        "violations": [{"invariant": v.invariant, "detail": v.detail}
                       for v in violations],
        "artifacts": [f"{tag}.aptrc"],
    }


def run_audit_schedule(
    out_dir: Path,
    *,
    workload: dict,
    schedule_index: int,
    schedules: int,
    tag: str,
    store_equivalence: bool = True,
    fault_plan: dict | None = None,
) -> dict:
    """:mod:`repro.exec` worker: one audited run from pure data.

    ``workload`` is a :meth:`~repro.check.workloads.Workload.descriptor`
    dict; the schedule is rebuilt as ``make_schedules(seed, K)[index]``
    — exactly how the serial auditor derives it, so a worker's run is
    indistinguishable from an in-process one.
    """
    from repro.sim.faults import FaultPlan

    wl = workload_from_descriptor(workload)
    if not 0 <= schedule_index < schedules:
        raise ValueError(f"schedule index {schedule_index} outside "
                         f"[0, {schedules})")
    schedule = make_schedules(wl.seed, schedules)[schedule_index]
    plan = FaultPlan.from_dict(fault_plan) if fault_plan else None
    return record_run(wl, schedule, Path(out_dir), tag,
                      store_equivalence=store_equivalence, fault_plan=plan)
