"""Perturbed-but-legal schedules for the ActorCheck auditor.

An FA-BSP execution only constrains a *partial* order: the scheduler may
break virtual-time ties among runnable PEs in any order, and a PE may
flush its full per-hop aggregation buffers in any order.  Everything a
correct program computes must be invariant under those don't-care
choices.  This module enumerates K concrete resolutions of them:

* schedule 0 is the default (byte-identical to historical behaviour) and
  is *replayed* to prove bit-stability,
* schedules 1..K-1 draw tie-breaks and flush permutations from named
  :func:`~repro.sim.rng.substream_rng` streams, so each schedule is
  itself perfectly reproducible from ``(root_seed, index)``,
* even-indexed jittered schedules additionally sweep the conveyor
  ``buffer_items`` capacity, changing aggregation batching (and thereby
  arrival interleavings) without changing any logical send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sim.rng import substream_rng
from repro.sim.scheduler import DEFAULT_POLICY, SchedulePolicy

#: ``buffer_items`` capacities swept by even-indexed jittered schedules.
BUFFER_SWEEP: tuple[int, ...] = (4, 16, 128)


class JitterPolicy(SchedulePolicy):
    """Seeded random resolution of the scheduler's don't-care choices.

    Each instance owns two private RNG streams derived from
    ``(root_seed, "actorcheck", index, ...)``, so two policies built with
    the same arguments replay the exact same run, while distinct indices
    explore distinct interleavings.  Instances are stateful (streams are
    consumed as the run asks questions) — build a fresh one per run.
    """

    def __init__(self, root_seed: int, index: int) -> None:
        if index < 1:
            raise ValueError(f"jitter index must be >= 1 (0 is the default "
                             f"schedule): {index}")
        self.root_seed = root_seed
        self.index = index
        self._tie = substream_rng(root_seed, "actorcheck", index, "tiebreak")
        self._flush = substream_rng(root_seed, "actorcheck", index, "flush")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JitterPolicy(root_seed={self.root_seed}, index={self.index})"

    def tie_break(self, time: int, ranks: Sequence[int]) -> int:
        return ranks[int(self._tie.integers(len(ranks)))]

    def flush_order(self, pe: int, hops: Sequence[int]) -> Sequence[int]:
        order = list(hops)
        self._flush.shuffle(order)
        return order


@dataclass(frozen=True)
class PerturbedSchedule:
    """One legal schedule the auditor executes a workload under."""

    index: int
    root_seed: int
    jitter: bool
    #: Conveyor ``buffer_items`` override; None keeps the workload default.
    buffer_items: int | None = None

    def policy(self) -> SchedulePolicy:
        """A fresh policy instance for one run under this schedule."""
        if not self.jitter:
            return DEFAULT_POLICY
        return JitterPolicy(self.root_seed, self.index)

    def describe(self) -> str:
        parts = ["default" if not self.jitter else "jitter"]
        if self.buffer_items is not None:
            parts.append(f"buffer_items={self.buffer_items}")
        return f"schedule {self.index} ({', '.join(parts)})"


def make_schedules(root_seed: int, k: int) -> list[PerturbedSchedule]:
    """The K schedules ``actorprof check --schedules K`` audits.

    Index 0 is always the default schedule (the determinism baseline);
    the rest jitter tie-breaks and flush order, with every second
    jittered schedule also sweeping ``buffer_items`` through
    :data:`BUFFER_SWEEP`.
    """
    if k < 1:
        raise ValueError(f"need at least one schedule: {k}")
    schedules = [PerturbedSchedule(index=0, root_seed=root_seed, jitter=False)]
    for i in range(1, k):
        buffer_items = None
        if i % 2 == 0:
            buffer_items = BUFFER_SWEEP[(i // 2 - 1) % len(BUFFER_SWEEP)]
        schedules.append(PerturbedSchedule(
            index=i, root_seed=root_seed, jitter=True,
            buffer_items=buffer_items,
        ))
    return schedules
