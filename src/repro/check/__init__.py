""":mod:`repro.check` — ActorCheck, the determinism & conservation auditor.

ActorProf's traces are only trustworthy if a profiled run is a faithful,
reproducible record: reruns must be bit-stable and every logical send must
be conserved through the physical conveyor layer.  ActorCheck audits both
claims by re-executing a workload under K systematically perturbed — but
*legal* — schedules (scheduler tie-break permutation, conveyor flush-order
jitter, buffer-size sweeps, via the :class:`~repro.sim.scheduler
.SchedulePolicy` seam) and diffing the resulting traces, classifying every
divergence as benign reordering or a confirmed nondeterminism bug.

* :mod:`~repro.check.policies` — the perturbed-schedule plans and seeded
  jitter policies,
* :mod:`~repro.check.invariants` — the trace-invariant engine (send
  conservation, the T_TOTAL = T_MAIN + T_COMM + T_PROC identity, monotone
  clocks, archive/CSV equivalence),
* :mod:`~repro.check.workloads` — auditable workloads: the two case
  studies plus a generative random actor-program builder,
* :mod:`~repro.check.auditor` — the differential audit loop and the
  machine-readable :class:`~repro.check.auditor.CheckReport`,
* :mod:`~repro.check.parallel` — the per-schedule run recorder, shared
  by the serial path and the :mod:`repro.exec` process-pool workers so
  ``--jobs N`` verdicts are byte-identical to ``--jobs 1``.

CLI: ``actorprof check <workload> --schedules K [--jobs N]`` (exit 0 =
deterministic, 4 = confirmed nondeterminism, 5 = invariant violation,
6 = a run failed or its worker died).
"""

from repro.check.auditor import CheckReport, Divergence, audit
from repro.check.invariants import Violation, run_invariants
from repro.check.policies import (
    JitterPolicy,
    PerturbedSchedule,
    make_schedules,
)
from repro.check.workloads import (
    GeneratedWorkload,
    HistogramWorkload,
    ProgramSpec,
    RunArtifacts,
    TriangleWorkload,
    Workload,
    generate_spec,
    workload_from_descriptor,
)

__all__ = [
    "CheckReport",
    "Divergence",
    "GeneratedWorkload",
    "HistogramWorkload",
    "JitterPolicy",
    "PerturbedSchedule",
    "ProgramSpec",
    "RunArtifacts",
    "TriangleWorkload",
    "Violation",
    "Workload",
    "audit",
    "generate_spec",
    "make_schedules",
    "run_invariants",
    "workload_from_descriptor",
]
