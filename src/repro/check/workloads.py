"""Auditable workloads: the case studies plus a generative program builder.

A :class:`Workload` is anything ActorCheck can re-execute under a
:class:`~repro.check.policies.PerturbedSchedule` and fingerprint.  The two
paper case studies (histogram, triangle counting) are wrapped directly;
:func:`generate_spec` additionally synthesizes random-but-*correct-by-
construction* actor programs — random mailbox chains, handler forwarding
rules, and message-size distributions whose every forwarding decision is a
pure function of ``(payload, sender)``, never of arrival order — so the
auditor and the hypothesis property tests can sweep program shapes no
hand-written example covers.

The one deliberate exception is :attr:`ProgramSpec.planted_race`: a
test-only fixture whose handler folds the *receive order* into shared
state without any guard.  A correct auditor must flag it; the test suite
asserts ActorCheck does.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.check.policies import PerturbedSchedule
from repro.conveyors.conveyor import ConveyorConfig
from repro.core.flags import ProfileFlags
from repro.core.profiler import ActorProf
from repro.hclib.actor import Selector
from repro.hclib.world import RunResult, run_spmd
from repro.machine.cost import CostModel
from repro.machine.spec import MachineSpec
from repro.sim.rng import substream_rng


def fingerprint(data: Any) -> str:
    """Stable sha256 over a JSON-serializable result structure."""
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _file_sha256(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass
class RunArtifacts:
    """Everything one audited run leaves behind for the invariant engine."""

    workload: str
    schedule: PerturbedSchedule
    #: sha256 over the application's own result (counts, sums, ...).
    result_fingerprint: str
    #: sha256 over the logical send matrix — schedule-invariant by design.
    logical_fingerprint: str
    profiler: ActorProf
    run: RunResult
    archive_path: Path
    archive_sha256: str
    #: Handler-counted (src, dst) receipt matrix; None for workloads whose
    #: handlers do not track senders (then only aggregate checks apply).
    receipts: np.ndarray | None = None
    #: Per-PE receive totals, when the app reports them (histogram).
    received_per_pe: list[int] | None = None
    #: Per-conveyor-group {pushes, pulls, forwarded, dups_discarded} sums.
    group_stats: list[dict[str, int]] = field(default_factory=list)
    clocks: list[int] = field(default_factory=list)

    @property
    def n_pes(self) -> int:
        return self.run.world.spec.n_pes


def _collect_group_stats(run: RunResult) -> list[dict[str, int]]:
    stats = []
    for slot in run.world._slots:
        for group in slot.groups:
            stats.append({
                "pushes": sum(e.stats.pushes for e in group.endpoints),
                "pulls": sum(e.stats.pulls for e in group.endpoints),
                "forwarded": sum(e.stats.forwarded for e in group.endpoints),
                "dups_discarded": sum(e.stats.dups_discarded
                                      for e in group.endpoints),
            })
    return stats


def _logical_fingerprint(profiler: ActorProf) -> str:
    assert profiler.logical is not None
    m = profiler.logical.matrix()
    return hashlib.sha256(
        repr(m.shape).encode() + m.astype(np.int64).tobytes()
    ).hexdigest()


class Workload:
    """One auditable workload.  Subclasses implement :meth:`execute`."""

    name: str = "workload"

    def __init__(self, machine: MachineSpec | None = None, seed: int = 0,
                 conveyor_config: ConveyorConfig | None = None) -> None:
        self.machine = machine or MachineSpec(1, 4)
        self.seed = seed
        self.base_config = conveyor_config or ConveyorConfig()

    def descriptor(self) -> dict:
        """A JSON-serializable description a worker process can rebuild
        this workload from (see :func:`workload_from_descriptor`).

        Parallel audits (``jobs > 1``) and the result cache both need
        one; a workload without it can still be audited serially.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not describe itself for parallel "
            f"execution; implement descriptor() or audit with jobs=1 and "
            f"no cache"
        )

    def _base_descriptor(self) -> dict:
        from dataclasses import asdict

        return {
            "nodes": self.machine.nodes,
            "pes_per_node": self.machine.pes_per_node,
            "seed": self.seed,
            "conveyor": asdict(self.base_config),
        }

    def _config_for(self, schedule: PerturbedSchedule) -> ConveyorConfig:
        if schedule.buffer_items is None:
            return self.base_config
        return replace(self.base_config, buffer_items=schedule.buffer_items)

    def execute(self, schedule: PerturbedSchedule, profiler: ActorProf,
                config: ConveyorConfig,
                cost: CostModel | None = None) -> tuple[Any, RunResult,
                                                        np.ndarray | None,
                                                        list[int] | None]:
        """Run once; return (result-data, run, receipts, received_per_pe)."""
        raise NotImplementedError

    def run(self, schedule: PerturbedSchedule, archive_path: Path, *,
            profiler: ActorProf | None = None,
            cost: CostModel | None = None) -> RunArtifacts:
        """Execute under ``schedule``, archive the traces, fingerprint.

        ``profiler`` and ``cost`` default to a fresh full-flags
        :class:`ActorProf` and the stock :class:`CostModel`; the what-if
        engine passes perturbed replacements for both.
        """
        profiler = profiler or ActorProf(ProfileFlags.all())
        config = self._config_for(schedule)
        result_data, run, receipts, received = self.execute(
            schedule, profiler, config, cost
        )
        path = profiler.export_archive(archive_path, meta={
            "workload": self.name,
            "seed": self.seed,
            "schedule": schedule.index,
        })
        return RunArtifacts(
            workload=self.name,
            schedule=schedule,
            result_fingerprint=fingerprint(result_data),
            logical_fingerprint=_logical_fingerprint(profiler),
            profiler=profiler,
            run=run,
            archive_path=path,
            archive_sha256=_file_sha256(path),
            receipts=receipts,
            received_per_pe=received,
            group_stats=_collect_group_stats(run),
            clocks=run.clocks,
        )


class HistogramWorkload(Workload):
    """The paper's Listing 1–2 histogram under audit."""

    name = "histogram"

    def __init__(self, updates: int = 400, table_size: int = 64,
                 machine: MachineSpec | None = None, seed: int = 0,
                 conveyor_config: ConveyorConfig | None = None) -> None:
        super().__init__(machine=machine or MachineSpec(2, 2), seed=seed,
                         conveyor_config=conveyor_config)
        self.updates = updates
        self.table_size = table_size

    def descriptor(self) -> dict:
        return {"kind": "histogram", "updates": self.updates,
                "table_size": self.table_size, **self._base_descriptor()}

    def execute(self, schedule, profiler, config, cost=None):
        from repro.apps.histogram import histogram

        res = histogram(
            self.updates, self.table_size, machine=self.machine,
            profiler=profiler, conveyor_config=config, cost=cost,
            seed=self.seed, schedule_policy=schedule.policy(),
        )
        data = {
            "total": res.total_updates,
            "received": list(res.per_pe_received),
        }
        return data, res.run, None, list(res.per_pe_received)


class TriangleWorkload(Workload):
    """The case-study triangle counter under audit."""

    name = "triangle"

    def __init__(self, scale: int = 6, distribution: str = "cyclic",
                 machine: MachineSpec | None = None, seed: int = 0,
                 conveyor_config: ConveyorConfig | None = None) -> None:
        super().__init__(machine=machine or MachineSpec(2, 2), seed=seed,
                         conveyor_config=conveyor_config)
        self.scale = scale
        self.distribution = distribution

    def descriptor(self) -> dict:
        return {"kind": "triangle", "scale": self.scale,
                "distribution": self.distribution,
                **self._base_descriptor()}

    def execute(self, schedule, profiler, config, cost=None):
        from repro.apps.triangle import count_triangles
        from repro.experiments.casestudy import case_study_graph

        graph = case_study_graph(self.scale, seed=self.seed)
        res = count_triangles(
            graph, self.machine, self.distribution, profiler=profiler,
            conveyor_config=config, cost=cost, seed=self.seed,
            schedule_policy=schedule.policy(),
        )
        data = {
            "triangles": res.triangles,
            "per_pe_counts": list(res.per_pe_counts),
            "per_pe_sends": list(res.per_pe_sends),
        }
        return data, res.run, None, None


# ----------------------------------------------------------------------
# generative actor programs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ProgramSpec:
    """Shape of one generated actor program.

    Handlers form a mailbox chain: a message landing in mailbox ``i``
    is (a) accumulated commutatively and (b) possibly forwarded to
    mailbox ``i + 1`` — the forwarding predicate and destination are pure
    functions of ``(value, sender)``, so the program's results and its
    logical send matrix are invariant under every legal schedule.
    """

    mailboxes: int = 2
    #: int64 words per mailbox payload (>= 2: value + hop count; extra
    #: words are padding that exercises the message-size distribution).
    payload_words: tuple[int, ...] = (2, 2)
    sends_per_pe: int = 64
    #: Destination mixer: ``dst = (value * mult + sender) % n_pes``.
    mult: int = 7
    #: Forward when ``(value + sender) % forward_mod == 0``.
    forward_mod: int = 2
    max_hops: int = 2
    #: TEST-ONLY planted handler-order race: fold the receive order into
    #: shared state with no guard.  ActorCheck must flag this.
    planted_race: bool = False

    def __post_init__(self) -> None:
        if self.mailboxes < 1:
            raise ValueError(f"need at least one mailbox: {self.mailboxes}")
        if len(self.payload_words) != self.mailboxes:
            raise ValueError(
                f"payload_words has {len(self.payload_words)} entries for "
                f"{self.mailboxes} mailboxes"
            )
        if any(w < 2 for w in self.payload_words):
            raise ValueError("every mailbox payload needs >= 2 words "
                             "(value + hop count)")
        if self.sends_per_pe < 0:
            raise ValueError(f"negative send count: {self.sends_per_pe}")
        if self.forward_mod < 1:
            raise ValueError(f"forward_mod must be >= 1: {self.forward_mod}")


def generate_spec(root_seed: int, index: int) -> ProgramSpec:
    """Draw one random program shape from a named substream.

    The same ``(root_seed, index)`` always yields the same spec, so a
    failed audit of ``generated`` workload #i is reproducible from the
    report alone.
    """
    rng = substream_rng(root_seed, "actorcheck", "genprog", index)
    mailboxes = int(rng.integers(1, 4))
    payload_words = tuple(int(rng.integers(2, 5)) for _ in range(mailboxes))
    return ProgramSpec(
        mailboxes=mailboxes,
        payload_words=payload_words,
        sends_per_pe=int(rng.integers(32, 160)),
        mult=int(rng.integers(1, 64)) * 2 + 1,
        forward_mod=int(rng.integers(2, 5)),
        max_hops=int(rng.integers(1, 4)),
    )


class GeneratedWorkload(Workload):
    """A generated mailbox-chain program, fully instrumented for audit.

    Handlers count every receipt into a shared ``(src, dst)`` matrix
    (safe: the simulator runs one handler at a time on one OS thread), so
    the invariant engine can check *exact* per-PE-pair conservation of
    logical sends into physical deliveries.
    """

    def __init__(self, spec: ProgramSpec, machine: MachineSpec | None = None,
                 seed: int = 0, name: str | None = None,
                 conveyor_config: ConveyorConfig | None = None) -> None:
        super().__init__(machine=machine or MachineSpec(1, 4), seed=seed,
                         conveyor_config=conveyor_config)
        self.spec = spec
        self.name = name or "generated"

    def descriptor(self) -> dict:
        from dataclasses import asdict

        spec = asdict(self.spec)
        spec["payload_words"] = list(spec["payload_words"])
        return {"kind": "generated", "spec": spec, "name": self.name,
                **self._base_descriptor()}

    def execute(self, schedule, profiler, config, cost=None):
        spec = self.spec
        n_pes = self.machine.n_pes
        receipts = np.zeros((n_pes, n_pes), dtype=np.int64)
        acc = np.zeros(n_pes, dtype=np.int64)
        order_state = np.zeros(n_pes, dtype=np.int64)

        def program(ctx):
            me = ctx.rank
            sel = Selector(ctx, mailboxes=spec.mailboxes,
                           payload_words=list(spec.payload_words),
                           conveyor_config=config)

            def make_handler(mb_id: int):
                forward = mb_id + 1 < spec.mailboxes
                pad = (0,) * (spec.payload_words[mb_id + 1] - 2) if forward else ()

                def process(payload, sender: int) -> None:
                    # payloads are >= 2 words, so they arrive as tuples
                    value, hop = int(payload[0]), int(payload[1])
                    ctx.compute(ins=12, loads=3, stores=3)
                    receipts[sender, me] += 1
                    acc[me] += value * (mb_id + 1)
                    if spec.planted_race:
                        # The planted bug: a hash of the RECEIVE ORDER,
                        # mutated with no guard — any legal reordering
                        # changes it.
                        order_state[me] = (
                            int(order_state[me]) * 1000003
                            + sender * 31 + value
                        ) % (1 << 61)
                    if (forward and hop < spec.max_hops
                            and (value + sender) % spec.forward_mod == 0):
                        dst = (value * spec.mult + sender) % n_pes
                        sel.send(mb_id + 1, (value + 1, hop + 1) + pad, dst)

                return process

            for i in range(spec.mailboxes):
                sel.mb[i].process = make_handler(i)
            values = ctx.rng.integers(0, 1 << 20, spec.sends_per_pe)
            pad0 = (0,) * (spec.payload_words[0] - 2)
            with ctx.finish():
                sel.start()
                for v in values:
                    value = int(v)
                    dst = (value * spec.mult + me) % n_pes
                    sel.send(0, (value, 0) + pad0, dst)
                sel.done(0)
            total = ctx.shmem.allreduce(int(acc[me]), "sum")
            return {"local": int(acc[me]), "total": total}

        run = run_spmd(program, machine=self.machine, cost=cost,
                       conveyor_config=config, profiler=profiler,
                       seed=self.seed, schedule_policy=schedule.policy())
        data = {
            "total": run.results[0]["total"],
            "locals": [r["local"] for r in run.results],
            "receipts": receipts.tolist(),
        }
        if spec.planted_race:
            data["order_state"] = order_state.tolist()
        received = receipts.sum(axis=0)
        return data, run, receipts, [int(x) for x in received]


def workload_from_descriptor(data: dict) -> Workload:
    """Rebuild a workload in a worker process from its :meth:`descriptor`.

    The round trip must be lossless: a rebuilt workload has to produce
    byte-identical artifacts to the original, or parallel audits would
    diverge from serial ones.
    """
    if not isinstance(data, dict) or "kind" not in data:
        raise ValueError(f"not a workload descriptor: {data!r}")
    kind = data["kind"]
    machine = MachineSpec(int(data["nodes"]), int(data["pes_per_node"]))
    seed = int(data["seed"])
    config = ConveyorConfig(**data["conveyor"])
    if kind == "histogram":
        return HistogramWorkload(
            updates=int(data["updates"]), table_size=int(data["table_size"]),
            machine=machine, seed=seed, conveyor_config=config,
        )
    if kind == "triangle":
        return TriangleWorkload(
            scale=int(data["scale"]), distribution=data["distribution"],
            machine=machine, seed=seed, conveyor_config=config,
        )
    if kind == "generated":
        fields = dict(data["spec"])
        fields["payload_words"] = tuple(fields["payload_words"])
        return GeneratedWorkload(
            ProgramSpec(**fields), machine=machine, seed=seed,
            name=data.get("name"), conveyor_config=config,
        )
    raise ValueError(f"unknown workload kind {kind!r}")
