"""The trace-invariant engine: what must hold in EVERY legal schedule.

Each check takes the :class:`~repro.check.workloads.RunArtifacts` of one
audited run and returns violations (empty = holds).  The invariants are
the paper's implicit correctness contract:

* **Send conservation** — every logical send lands in exactly one
  physical delivery: conveyor pushes == pulls per group, the logical
  matrix total equals total pushes, and (for instrumented workloads) the
  handler-counted ``(src, dst)`` receipt matrix equals the logical matrix
  per PE pair.
* **Region identity** — T_TOTAL = T_MAIN + T_COMM + T_PROC with
  T_COMM >= 0 (COMM is derived, so the check is that MAIN + PROC never
  exceed the measured total).
* **Monotone clocks** — no PE's profiled total exceeds its final
  simulated clock, and clocks never run backwards from zero.
* **Store equivalence** — the ``.aptrc`` archive and the paper-format CSV
  files round-trip to the same matrices the profiler holds in memory.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.check.workloads import RunArtifacts
from repro.core.logical import parse_logical_dir
from repro.core.overall import parse_overall_file
from repro.core.physical import parse_physical_file
from repro.core.store.archive import load_run


@dataclass(frozen=True)
class Violation:
    """One broken invariant in one audited run."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


def check_send_conservation(art: RunArtifacts) -> list[Violation]:
    """Logical sends are conserved through the physical conveyor layer."""
    out: list[Violation] = []
    assert art.profiler.logical is not None
    matrix = art.profiler.logical.matrix()
    logical_total = int(matrix.sum())
    pushes = sum(g["pushes"] for g in art.group_stats)
    pulls = sum(g["pulls"] for g in art.group_stats)
    if logical_total != pushes:
        out.append(Violation(
            "send-conservation",
            f"logical trace records {logical_total} sends but conveyors "
            f"pushed {pushes} items",
        ))
    for i, g in enumerate(art.group_stats):
        if g["pushes"] != g["pulls"]:
            out.append(Violation(
                "send-conservation",
                f"conveyor group {i}: {g['pushes']} pushes != "
                f"{g['pulls']} pulls (messages lost or duplicated)",
            ))
    if art.receipts is not None:
        if not np.array_equal(art.receipts, matrix):
            delta = np.argwhere(art.receipts != matrix)
            src, dst = (int(x) for x in delta[0])
            out.append(Violation(
                "send-conservation",
                f"handler receipts disagree with the logical matrix at "
                f"{len(delta)} PE pair(s); first: {src}->{dst} received "
                f"{int(art.receipts[src, dst])}, logical says "
                f"{int(matrix[src, dst])}",
            ))
    if art.received_per_pe is not None:
        col_sums = [int(x) for x in matrix.sum(axis=0)]
        if art.received_per_pe != col_sums:
            out.append(Violation(
                "send-conservation",
                f"per-PE receive totals {art.received_per_pe} != logical "
                f"column sums {col_sums}",
            ))
    return out


def check_region_identity(art: RunArtifacts,
                          tolerance: float = 0.0) -> list[Violation]:
    """T_TOTAL = T_MAIN + T_COMM + T_PROC, with derived T_COMM >= 0."""
    out: list[Violation] = []
    overall = art.profiler.overall
    if overall is None:
        return out
    slack = tolerance * overall.t_total.astype(np.float64)
    for pe in range(len(overall.t_total)):
        tm, tp, tt = (int(overall.t_main[pe]), int(overall.t_proc[pe]),
                      int(overall.t_total[pe]))
        if tm < 0 or tp < 0 or tt < 0:
            out.append(Violation(
                "region-identity",
                f"PE {pe}: negative region time (MAIN={tm}, PROC={tp}, "
                f"TOTAL={tt})",
            ))
        elif tm + tp > tt + slack[pe]:
            out.append(Violation(
                "region-identity",
                f"PE {pe}: T_MAIN + T_PROC = {tm + tp} exceeds "
                f"T_TOTAL = {tt} (derived T_COMM would be negative)",
            ))
    return out


def check_monotone_clocks(art: RunArtifacts) -> list[Violation]:
    """Profiled totals fit inside each PE's final simulated clock."""
    out: list[Violation] = []
    for pe, clock in enumerate(art.clocks):
        if clock < 0:
            out.append(Violation(
                "monotone-clocks", f"PE {pe}: final clock ran backwards "
                f"to {clock}",
            ))
    overall = art.profiler.overall
    if overall is not None:
        for pe, clock in enumerate(art.clocks):
            tt = int(overall.t_total[pe])
            if tt > clock:
                out.append(Violation(
                    "monotone-clocks",
                    f"PE {pe}: profiled T_TOTAL = {tt} exceeds the final "
                    f"simulated clock {clock}",
                ))
    return out


def check_store_equivalence(art: RunArtifacts) -> list[Violation]:
    """The archive and the CSV files reproduce the in-memory traces."""
    out: list[Violation] = []
    prof = art.profiler
    loaded = load_run(art.archive_path)
    if prof.logical is not None:
        if (loaded.logical is None
                or not np.array_equal(loaded.logical.matrix(),
                                      prof.logical.matrix())):
            out.append(Violation(
                "store-equivalence",
                f"archive {art.archive_path.name}: logical matrix does not "
                f"round-trip",
            ))
    if prof.physical is not None:
        if (loaded.physical is None
                or not np.array_equal(loaded.physical.matrix(),
                                      prof.physical.matrix())
                or loaded.physical.counts_by_type()
                != prof.physical.counts_by_type()):
            out.append(Violation(
                "store-equivalence",
                f"archive {art.archive_path.name}: physical trace does not "
                f"round-trip",
            ))
    if prof.overall is not None:
        if (loaded.overall is None
                or not np.array_equal(loaded.overall.t_main, prof.overall.t_main)
                or not np.array_equal(loaded.overall.t_proc, prof.overall.t_proc)
                or not np.array_equal(loaded.overall.t_total,
                                      prof.overall.t_total)):
            out.append(Violation(
                "store-equivalence",
                f"archive {art.archive_path.name}: overall profile does not "
                f"round-trip",
            ))
    if prof.papi_trace is not None:
        want = sum(len(prof.papi_trace.rows(pe))
                   for pe in range(prof.papi_trace.n_pes))
        got = (sum(len(loaded.papi.rows(pe))
                   for pe in range(loaded.papi.n_pes))
               if loaded.papi is not None else -1)
        if got != want or (loaded.papi is not None
                           and loaded.papi.events != prof.papi_trace.events):
            out.append(Violation(
                "store-equivalence",
                f"archive {art.archive_path.name}: PAPI trace does not "
                f"round-trip ({got} rows vs {want} in memory)",
            ))
    # CSV round trip: the paper-format files must parse back to the same
    # matrices (archive/CSV equivalence).
    n_pes = art.n_pes
    with tempfile.TemporaryDirectory(prefix="actorcheck-csv-") as tmp:
        prof.write_traces(tmp)
        tmp_path = Path(tmp)
        if prof.logical is not None:
            parsed = parse_logical_dir(tmp_path, n_pes)
            if not np.array_equal(parsed.matrix(), prof.logical.matrix()):
                out.append(Violation(
                    "store-equivalence",
                    "CSV logical trace does not round-trip to the "
                    "in-memory matrix",
                ))
        if prof.physical is not None:
            parsed = parse_physical_file(tmp_path, n_pes)
            if not np.array_equal(parsed.matrix(), prof.physical.matrix()):
                out.append(Violation(
                    "store-equivalence",
                    "CSV physical trace does not round-trip to the "
                    "in-memory matrix",
                ))
        if prof.overall is not None:
            parsed = parse_overall_file(tmp_path)
            if not (np.array_equal(parsed.t_main, prof.overall.t_main)
                    and np.array_equal(parsed.t_proc, prof.overall.t_proc)
                    and np.array_equal(parsed.t_total, prof.overall.t_total)):
                out.append(Violation(
                    "store-equivalence",
                    "CSV overall profile does not round-trip to the "
                    "in-memory arrays",
                ))
    return out


def run_invariants(art: RunArtifacts,
                   store_equivalence: bool = True,
                   tolerance: float = 0.0) -> list[Violation]:
    """Run every invariant against one audited run."""
    out = check_send_conservation(art)
    out += check_region_identity(art, tolerance=tolerance)
    out += check_monotone_clocks(art)
    if store_equivalence:
        out += check_store_equivalence(art)
    return out
