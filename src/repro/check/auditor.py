"""The ActorCheck audit loop: differential execution over K schedules.

:func:`audit` re-executes one workload under every schedule from
:func:`~repro.check.policies.make_schedules`, replays the baseline (and
one jittered schedule) to prove per-seed bit-stability, runs the
invariant engine on every run, and classifies cross-schedule differences:

* **confirmed nondeterminism** — the application result or the logical
  send matrix changed between two legal schedules, a replay was not
  byte-identical, or an invariant broke.  The report names the two
  divergent schedules.
* **benign reordering** — only schedule-sensitive products changed
  (physical buffer traffic, region timings, PAPI sample values).  These
  are expected: the physical trace *documents* the schedule.

Every schedule's run is independent and replayable from ``(root_seed,
index)``, so the audit fans out over the :mod:`repro.exec` process pool
(``jobs > 1``) and merges results back in schedule order — the verdict
JSON is byte-identical at any job count.  A run whose worker raises or
*dies* becomes a per-run failure record (verdict ``run-failure``), never
a lost audit; a :class:`~repro.exec.ResultCache` skips runs whose
``(workload, seed, schedule)`` key was already audited.

The resulting :class:`CheckReport` is machine-readable (``to_dict`` /
``to_json``) and renders as text for the CLI.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.invariants import Violation
from repro.check.parallel import record_run
from repro.check.policies import PerturbedSchedule, make_schedules
from repro.check.workloads import Workload
from repro.exec import ResultCache, RunRecord, RunSpec, cache_key_for, execute


@dataclass(frozen=True)
class Divergence:
    """One confirmed nondeterminism finding."""

    kind: str                     # "replay" | "result" | "logical-trace" | "invariant"
    schedules: tuple[str, str]    # the two divergent schedule labels
    detail: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "schedules": list(self.schedules),
                "detail": self.detail}

    def __str__(self) -> str:
        a, b = self.schedules
        return f"[{self.kind}] schedules {a} vs {b}: {self.detail}"


@dataclass
class ScheduleOutcome:
    """What one schedule's run produced."""

    schedule: PerturbedSchedule
    description: str
    result_fingerprint: str
    logical_fingerprint: str
    archive_sha256: str
    violations: list[Violation] = field(default_factory=list)
    benign: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schedule": self.schedule.index,
            "description": self.description,
            "buffer_items": self.schedule.buffer_items,
            "jitter": self.schedule.jitter,
            "result_fingerprint": self.result_fingerprint,
            "logical_fingerprint": self.logical_fingerprint,
            "archive_sha256": self.archive_sha256,
            "violations": [str(v) for v in self.violations],
            "benign": list(self.benign),
        }


@dataclass
class CheckReport:
    """The machine-readable verdict of one ActorCheck audit."""

    workload: str
    seed: int
    schedules: int
    outcomes: list[ScheduleOutcome] = field(default_factory=list)
    confirmed: list[Divergence] = field(default_factory=list)
    replays: list[dict] = field(default_factory=list)
    #: Runs that raised or whose worker process died:
    #: ``{"schedule": k, "tag": "s3", "error": "..."}`` each.
    failures: list[dict] = field(default_factory=list)

    @property
    def violations(self) -> list[tuple[int, Violation]]:
        return [(o.schedule.index, v)
                for o in self.outcomes for v in o.violations]

    @property
    def benign(self) -> list[str]:
        return [note for o in self.outcomes for note in o.benign]

    @property
    def verdict(self) -> str:
        if self.confirmed:
            return "nondeterminism"
        if self.failures:
            return "run-failure"
        if self.violations:
            return "invariant-violation"
        return "pass"

    @property
    def exit_code(self) -> int:
        return {"pass": 0, "nondeterminism": 4, "invariant-violation": 5,
                "run-failure": 6}[self.verdict]

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "schedules": self.schedules,
            "verdict": self.verdict,
            "exit_code": self.exit_code,
            "replays": list(self.replays),
            "failures": list(self.failures),
            "confirmed": [d.to_dict() for d in self.confirmed],
            "violations": [
                {"schedule": idx, "invariant": v.invariant, "detail": v.detail}
                for idx, v in self.violations
            ],
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        lines = [
            f"== actorcheck: {self.workload} (seed {self.seed}, "
            f"{self.schedules} schedules) =="
        ]
        for rep in self.replays:
            state = "byte-identical" if rep["identical"] else "DIVERGED"
            lines.append(f"replay of schedule {rep['schedule']}: {state}")
        for fail in self.failures:
            lines.append(f"FAILED {fail['tag']}: {fail['error']}")
        for o in self.outcomes:
            mark = "OK " if not o.violations else "BAD"
            lines.append(f"{mark} {o.description}: "
                         f"result {o.result_fingerprint[:12]}, "
                         f"logical {o.logical_fingerprint[:12]}")
            for v in o.violations:
                lines.append(f"      violation {v}")
        benign = self.benign
        if benign:
            lines.append(f"benign reordering ({len(benign)}):")
            for note in benign[:8]:
                lines.append(f"  - {note}")
            if len(benign) > 8:
                lines.append(f"  - ... and {len(benign) - 8} more")
        for d in self.confirmed:
            lines.append(f"CONFIRMED {d}")
        lines.append(f"verdict: {self.verdict}")
        return "\n".join(lines)


def _compare_to_baseline(base: dict, other: dict, report: CheckReport,
                         outcome: ScheduleOutcome) -> None:
    """Classify one run record's differences against the default schedule."""
    k, base_k = other["schedule"], base["schedule"]
    if other["result_fingerprint"] != base["result_fingerprint"]:
        report.confirmed.append(Divergence(
            "result", (str(base_k), str(k)),
            f"application results differ ({base['result_fingerprint'][:12]} "
            f"vs {other['result_fingerprint'][:12]}) — the program depends "
            f"on a schedule don't-care",
        ))
    if other["logical_fingerprint"] != base["logical_fingerprint"]:
        report.confirmed.append(Divergence(
            "logical-trace", (str(base_k), str(k)),
            f"logical send matrices differ "
            f"({base['logical_fingerprint'][:12]} vs "
            f"{other['logical_fingerprint'][:12]}) — sends depend on a "
            f"schedule don't-care",
        ))
    if (other["result_fingerprint"] == base["result_fingerprint"]
            and other["logical_fingerprint"] == base["logical_fingerprint"]
            and other["archive_sha256"] != base["archive_sha256"]):
        outcome.benign.append(
            f"schedule {k}: archive bytes differ from schedule "
            f"{base_k} while results and logical sends match "
            f"(physical buffering / timings reordered)"
        )


#: Dotted path of the pooled worker (see :mod:`repro.check.parallel`).
_WORKER_FN = "repro.check.parallel:run_audit_schedule"


def _execute_units(
    workload: Workload,
    plans: list[PerturbedSchedule],
    units: list[tuple[int, str]],
    out_dir: Path,
    store_equivalence: bool,
    fault_plan,
    jobs: int,
    cache: ResultCache | None,
) -> dict[str, RunRecord]:
    """Run every ``(schedule index, tag)`` unit; return records by tag.

    ``jobs == 1`` without a cache runs inline on the live workload
    object (no descriptor needed — custom Workload subclasses keep
    working).  Otherwise the units become :class:`RunSpec` s for the
    process pool; both paths produce values via
    :func:`~repro.check.parallel.record_run`, so their records are
    identical.
    """
    if jobs == 1 and cache is None:
        records = {}
        for i, (k, tag) in enumerate(units):
            try:
                value = record_run(workload, plans[k], out_dir, tag,
                                   store_equivalence=store_equivalence,
                                   fault_plan=fault_plan)
                records[tag] = RunRecord(index=i, tag=tag, ok=True,
                                         value=value)
            except Exception as exc:
                records[tag] = RunRecord(index=i, tag=tag, ok=False,
                                         error=f"{type(exc).__name__}: {exc}")
        return records

    descriptor = workload.descriptor()
    plan_dict = fault_plan.to_dict() if fault_plan is not None else None
    specs = []
    for i, (k, tag) in enumerate(units):
        kwargs = {
            "workload": descriptor,
            "schedule_index": k,
            "schedules": len(plans),
            "tag": tag,
            "store_equivalence": store_equivalence,
            "fault_plan": plan_dict,
        }
        specs.append(RunSpec(
            index=i, fn=_WORKER_FN, kwargs=kwargs, tag=tag,
            cache_key=(cache_key_for(_WORKER_FN, kwargs)
                       if cache is not None else None),
        ))
    recs = execute(specs, jobs=jobs, scratch_dir=out_dir, cache=cache)
    return {rec.tag: rec for rec in recs}


def audit(
    workload: Workload,
    schedules: int = 8,
    out_dir: str | Path | None = None,
    store_equivalence: bool = True,
    fault_plan=None,
    jobs: int = 1,
    cache: ResultCache | str | Path | None = None,
) -> CheckReport:
    """Audit ``workload`` under ``schedules`` perturbed-but-legal schedules.

    Parameters
    ----------
    workload:
        The workload to re-execute; its ``seed`` is the audit's root seed
        (schedule jitter streams derive from it by name, so they never
        collide with the workload's own RNG use).
    schedules:
        K.  Schedule 0 is the default policy (and is replayed to prove
        bit-stability); 1..K-1 jitter tie-breaks, flush order, and
        buffer sizes.
    out_dir:
        Where the per-schedule ``.aptrc`` archives land (a temporary
        directory is used — and cleaned up — when omitted).
    store_equivalence:
        Also run the archive/CSV round-trip invariant per schedule
        (disable to speed up very large sweeps).
    fault_plan:
        Optional non-fatal :class:`~repro.sim.faults.FaultPlan` applied to
        every run: a fault plan plus an ActorCheck audit must still be
        deterministic per seed.  Plans containing crashes are rejected —
        a crashed run has nothing meaningful to diff.
    jobs:
        Worker processes for the :mod:`repro.exec` engine.  Results are
        merged in schedule order, so any job count yields a
        byte-identical report; ``jobs > 1`` (and any ``cache``) requires
        the workload to implement ``descriptor()``.
    cache:
        Optional :class:`~repro.exec.ResultCache` (or directory path):
        runs whose ``(workload, seed, schedule)`` key is already stored
        are skipped and served from cache.
    """
    if schedules < 1:
        raise ValueError(f"need at least one schedule: {schedules}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    if fault_plan is not None and getattr(fault_plan, "crashes", ()):
        raise ValueError(
            "ActorCheck audits need complete runs; fault plans with PE "
            "crashes cannot be audited (drop/delay/duplicate/slow are fine)"
        )
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(Path(cache))
    plans = make_schedules(workload.seed, schedules)
    report = CheckReport(workload=workload.name, seed=workload.seed,
                         schedules=schedules)

    tmp = None
    if out_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="actorcheck-")
        out_dir = Path(tmp.name)
    else:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)

    # Replay the baseline — and one jittered schedule, if any — to
    # prove every (seed, schedule) pair is bit-stable on its own.
    replay_indices = [0] + ([1] if schedules > 1 else [])
    units = [(k, f"s{k}") for k in range(schedules)]
    units += [(k, f"s{k}-replay") for k in replay_indices]

    try:
        records = _execute_units(workload, plans, units, out_dir,
                                 store_equivalence, fault_plan, jobs, cache)
    finally:
        if tmp is not None:
            tmp.cleanup()

    for i, (k, tag) in enumerate(units):
        rec = records[tag]
        if not rec.ok:
            report.failures.append({"schedule": k, "tag": tag,
                                    "error": rec.error})
    for k in replay_indices:
        first, replay = records[f"s{k}"], records[f"s{k}-replay"]
        if not (first.ok and replay.ok):
            continue
        identical = (
            replay.value["archive_sha256"] == first.value["archive_sha256"]
            and replay.value["result_fingerprint"]
            == first.value["result_fingerprint"]
        )
        report.replays.append({"schedule": k, "identical": identical})
        if not identical:
            report.confirmed.append(Divergence(
                "replay", (str(k), f"{k}-replay"),
                "re-running the identical (seed, schedule) pair did not "
                "reproduce byte-identical traces — the run depends on "
                "state outside the seeded schedule",
            ))
    base = records["s0"].value if records["s0"].ok else None
    for k, plan in enumerate(plans):
        rec = records[f"s{k}"]
        if not rec.ok:
            continue
        value = rec.value
        outcome = ScheduleOutcome(
            schedule=plan,
            description=value["description"],
            result_fingerprint=value["result_fingerprint"],
            logical_fingerprint=value["logical_fingerprint"],
            archive_sha256=value["archive_sha256"],
            violations=[Violation(v["invariant"], v["detail"])
                        for v in value["violations"]],
        )
        if k != 0 and base is not None:
            _compare_to_baseline(base, value, report, outcome)
        report.outcomes.append(outcome)
    for idx, v in report.violations:
        report.confirmed.append(Divergence(
            "invariant", (str(idx), str(idx)),
            f"invariant broke under schedule {idx}: {v}",
        ))
    return report
