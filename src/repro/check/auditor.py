"""The ActorCheck audit loop: differential execution over K schedules.

:func:`audit` re-executes one workload under every schedule from
:func:`~repro.check.policies.make_schedules`, replays the baseline (and
one jittered schedule) to prove per-seed bit-stability, runs the
invariant engine on every run, and classifies cross-schedule differences:

* **confirmed nondeterminism** — the application result or the logical
  send matrix changed between two legal schedules, a replay was not
  byte-identical, or an invariant broke.  The report names the two
  divergent schedules.
* **benign reordering** — only schedule-sensitive products changed
  (physical buffer traffic, region timings, PAPI sample values).  These
  are expected: the physical trace *documents* the schedule.

The resulting :class:`CheckReport` is machine-readable (``to_dict`` /
``to_json``) and renders as text for the CLI.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.invariants import Violation, run_invariants
from repro.check.policies import PerturbedSchedule, make_schedules
from repro.check.workloads import RunArtifacts, Workload


@dataclass(frozen=True)
class Divergence:
    """One confirmed nondeterminism finding."""

    kind: str                     # "replay" | "result" | "logical-trace" | "invariant"
    schedules: tuple[str, str]    # the two divergent schedule labels
    detail: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "schedules": list(self.schedules),
                "detail": self.detail}

    def __str__(self) -> str:
        a, b = self.schedules
        return f"[{self.kind}] schedules {a} vs {b}: {self.detail}"


@dataclass
class ScheduleOutcome:
    """What one schedule's run produced."""

    schedule: PerturbedSchedule
    description: str
    result_fingerprint: str
    logical_fingerprint: str
    archive_sha256: str
    violations: list[Violation] = field(default_factory=list)
    benign: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schedule": self.schedule.index,
            "description": self.description,
            "buffer_items": self.schedule.buffer_items,
            "jitter": self.schedule.jitter,
            "result_fingerprint": self.result_fingerprint,
            "logical_fingerprint": self.logical_fingerprint,
            "archive_sha256": self.archive_sha256,
            "violations": [str(v) for v in self.violations],
            "benign": list(self.benign),
        }


@dataclass
class CheckReport:
    """The machine-readable verdict of one ActorCheck audit."""

    workload: str
    seed: int
    schedules: int
    outcomes: list[ScheduleOutcome] = field(default_factory=list)
    confirmed: list[Divergence] = field(default_factory=list)
    replays: list[dict] = field(default_factory=list)

    @property
    def violations(self) -> list[tuple[int, Violation]]:
        return [(o.schedule.index, v)
                for o in self.outcomes for v in o.violations]

    @property
    def benign(self) -> list[str]:
        return [note for o in self.outcomes for note in o.benign]

    @property
    def verdict(self) -> str:
        if self.confirmed:
            return "nondeterminism"
        if self.violations:
            return "invariant-violation"
        return "pass"

    @property
    def exit_code(self) -> int:
        return {"pass": 0, "nondeterminism": 4, "invariant-violation": 5}[
            self.verdict
        ]

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "schedules": self.schedules,
            "verdict": self.verdict,
            "exit_code": self.exit_code,
            "replays": list(self.replays),
            "confirmed": [d.to_dict() for d in self.confirmed],
            "violations": [
                {"schedule": idx, "invariant": v.invariant, "detail": v.detail}
                for idx, v in self.violations
            ],
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        lines = [
            f"== actorcheck: {self.workload} (seed {self.seed}, "
            f"{self.schedules} schedules) =="
        ]
        for rep in self.replays:
            state = "byte-identical" if rep["identical"] else "DIVERGED"
            lines.append(f"replay of schedule {rep['schedule']}: {state}")
        for o in self.outcomes:
            mark = "OK " if not o.violations else "BAD"
            lines.append(f"{mark} {o.description}: "
                         f"result {o.result_fingerprint[:12]}, "
                         f"logical {o.logical_fingerprint[:12]}")
            for v in o.violations:
                lines.append(f"      violation {v}")
        benign = self.benign
        if benign:
            lines.append(f"benign reordering ({len(benign)}):")
            for note in benign[:8]:
                lines.append(f"  - {note}")
            if len(benign) > 8:
                lines.append(f"  - ... and {len(benign) - 8} more")
        for d in self.confirmed:
            lines.append(f"CONFIRMED {d}")
        lines.append(f"verdict: {self.verdict}")
        return "\n".join(lines)


def _compare_to_baseline(base: RunArtifacts, other: RunArtifacts,
                         report: CheckReport,
                         outcome: ScheduleOutcome) -> None:
    """Classify differences of ``other`` against the default schedule."""
    k = other.schedule.index
    if other.result_fingerprint != base.result_fingerprint:
        report.confirmed.append(Divergence(
            "result", (str(base.schedule.index), str(k)),
            f"application results differ ({base.result_fingerprint[:12]} vs "
            f"{other.result_fingerprint[:12]}) — the program depends on a "
            f"schedule don't-care",
        ))
    if other.logical_fingerprint != base.logical_fingerprint:
        report.confirmed.append(Divergence(
            "logical-trace", (str(base.schedule.index), str(k)),
            f"logical send matrices differ ({base.logical_fingerprint[:12]} "
            f"vs {other.logical_fingerprint[:12]}) — sends depend on a "
            f"schedule don't-care",
        ))
    if (other.result_fingerprint == base.result_fingerprint
            and other.logical_fingerprint == base.logical_fingerprint
            and other.archive_sha256 != base.archive_sha256):
        outcome.benign.append(
            f"schedule {k}: archive bytes differ from schedule "
            f"{base.schedule.index} while results and logical sends match "
            f"(physical buffering / timings reordered)"
        )


def _run_one(workload: Workload, schedule: PerturbedSchedule, out_dir: Path,
             tag: str, fault_plan=None) -> RunArtifacts:
    import contextlib

    from repro.sim.faults import use_plan

    scope = use_plan(fault_plan) if fault_plan is not None \
        else contextlib.nullcontext()
    with scope:
        return workload.run(schedule, out_dir / f"{tag}.aptrc")


def audit(
    workload: Workload,
    schedules: int = 8,
    out_dir: str | Path | None = None,
    store_equivalence: bool = True,
    fault_plan=None,
) -> CheckReport:
    """Audit ``workload`` under ``schedules`` perturbed-but-legal schedules.

    Parameters
    ----------
    workload:
        The workload to re-execute; its ``seed`` is the audit's root seed
        (schedule jitter streams derive from it by name, so they never
        collide with the workload's own RNG use).
    schedules:
        K.  Schedule 0 is the default policy (and is replayed to prove
        bit-stability); 1..K-1 jitter tie-breaks, flush order, and
        buffer sizes.
    out_dir:
        Where the per-schedule ``.aptrc`` archives land (a temporary
        directory is used — and cleaned up — when omitted).
    store_equivalence:
        Also run the archive/CSV round-trip invariant per schedule
        (disable to speed up very large sweeps).
    fault_plan:
        Optional non-fatal :class:`~repro.sim.faults.FaultPlan` applied to
        every run: a fault plan plus an ActorCheck audit must still be
        deterministic per seed.  Plans containing crashes are rejected —
        a crashed run has nothing meaningful to diff.
    """
    if schedules < 1:
        raise ValueError(f"need at least one schedule: {schedules}")
    if fault_plan is not None and getattr(fault_plan, "crashes", ()):
        raise ValueError(
            "ActorCheck audits need complete runs; fault plans with PE "
            "crashes cannot be audited (drop/delay/duplicate/slow are fine)"
        )
    plans = make_schedules(workload.seed, schedules)
    report = CheckReport(workload=workload.name, seed=workload.seed,
                         schedules=schedules)

    tmp = None
    if out_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="actorcheck-")
        out_dir = Path(tmp.name)
    else:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)

    try:
        baseline = _run_one(workload, plans[0], out_dir, "s0",
                            fault_plan=fault_plan)
        arts: dict[int, RunArtifacts] = {0: baseline}
        for k, plan in enumerate(plans):
            if k == 0:
                continue
            arts[k] = _run_one(workload, plan, out_dir, f"s{k}",
                               fault_plan=fault_plan)
        # Replay the baseline — and one jittered schedule, if any — to
        # prove every (seed, schedule) pair is bit-stable on its own.
        replay_indices = [0] + ([1] if schedules > 1 else [])
        for k in replay_indices:
            replay = _run_one(workload, plans[k], out_dir, f"s{k}-replay",
                              fault_plan=fault_plan)
            identical = (
                replay.archive_sha256 == arts[k].archive_sha256
                and replay.result_fingerprint == arts[k].result_fingerprint
            )
            report.replays.append({"schedule": k, "identical": identical})
            if not identical:
                report.confirmed.append(Divergence(
                    "replay", (str(k), f"{k}-replay"),
                    "re-running the identical (seed, schedule) pair did not "
                    "reproduce byte-identical traces — the run depends on "
                    "state outside the seeded schedule",
                ))
        for k, plan in enumerate(plans):
            art = arts[k]
            outcome = ScheduleOutcome(
                schedule=plan,
                description=plan.describe(),
                result_fingerprint=art.result_fingerprint,
                logical_fingerprint=art.logical_fingerprint,
                archive_sha256=art.archive_sha256,
                violations=run_invariants(
                    art, store_equivalence=store_equivalence
                ),
            )
            if k != 0:
                _compare_to_baseline(baseline, art, report, outcome)
            report.outcomes.append(outcome)
        for idx, v in report.violations:
            report.confirmed.append(Divergence(
                "invariant", (str(idx), str(idx)),
                f"invariant broke under schedule {idx}: {v}",
            ))
    finally:
        if tmp is not None:
            tmp.cleanup()
    return report
