"""ActorProf reproduction: FA-BSP profiling and visualization, in Python.

The package reconstructs the full stack of *ActorProf: A Framework for
Profiling and Visualizing Fine-grained Asynchronous Bulk Synchronous
Parallel Execution* (SC 2024) as a simulated system:

========================  ====================================================
Layer                      Subpackage
========================  ====================================================
discrete-event kernel      :mod:`repro.sim`
machine / cost model       :mod:`repro.machine`
OpenSHMEM                  :mod:`repro.shmem`
Conveyors aggregation      :mod:`repro.conveyors`
HClib-Actor runtime        :mod:`repro.hclib`
PAPI counters              :mod:`repro.papi`
**ActorProf (the paper)**  :mod:`repro.core`
graphs & distributions     :mod:`repro.graphs`
FA-BSP applications        :mod:`repro.apps`
========================  ====================================================

Quickstart::

    import numpy as np
    from repro import Actor, ActorProf, MachineSpec, ProfileFlags, run_spmd

    class MyActor(Actor):
        def __init__(self, ctx, larray):
            super().__init__(ctx)
            self.larray = larray
        def process(self, idx, sender_rank):
            self.larray[idx] += 1          # no atomics (Listing 2)

    def program(ctx):
        larray = np.zeros(64, dtype=np.int64)
        actor = MyActor(ctx, larray)
        with ctx.finish():                  # Listing 1
            actor.start()
            for i in range(100):
                actor.send(i % 64, int(ctx.rng.integers(ctx.n_pes)))
            actor.done()
        return int(larray.sum())

    ap = ActorProf(ProfileFlags.all())
    result = run_spmd(program, machine=MachineSpec(2, 16), profiler=ap)
    ap.write_traces("traces/")  # then: actorprof traces/ --num-pes 32 -l -s -p
"""

from repro.conveyors import ConveyorConfig
from repro.core import ActorProf, ProfileFlags
from repro.hclib import Actor, PEContext, RunResult, Selector, run_spmd
from repro.machine import CostModel, MachineSpec

__version__ = "1.0.0"

__all__ = [
    "Actor",
    "ActorProf",
    "ConveyorConfig",
    "CostModel",
    "MachineSpec",
    "PEContext",
    "ProfileFlags",
    "RunResult",
    "Selector",
    "run_spmd",
    "__version__",
]
