"""Simulated hardware model.

This package describes the *machine* an FA-BSP program runs on:

* :class:`~repro.machine.spec.MachineSpec` — cluster shape (nodes × PEs per
  node), the analogue of the paper's Perlmutter allocation.
* :class:`~repro.machine.cost.CostModel` — cycle/instruction charges for
  every simulated operation.
* :class:`~repro.machine.counters.CounterBank` — per-PE hardware-counter
  state (the substrate the simulated PAPI reads).
* :class:`~repro.machine.network.NetworkModel` — intra-/inter-node transfer
  timing.
* :class:`~repro.machine.perf.PerfCore` — the per-PE bundle of clock +
  counters + cost model through which all work is charged.
"""

from repro.machine.cost import CostModel
from repro.machine.counters import CounterBank, CounterSnapshot
from repro.machine.network import NetworkModel
from repro.machine.perf import PerfCore
from repro.machine.spec import MachineSpec

__all__ = [
    "CostModel",
    "CounterBank",
    "CounterSnapshot",
    "MachineSpec",
    "NetworkModel",
    "PerfCore",
]
