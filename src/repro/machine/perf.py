"""Per-PE performance core: clock + counters + cost model.

Every simulated layer charges work through a :class:`PerfCore`.  Charging
both advances the PE's virtual cycle clock and increments the counter bank
the simulated PAPI reads, which is what keeps ActorProf's cycle breakdown
(Figs. 12–13) and instruction profiles (Figs. 10–11) mutually consistent.

Synthetic micro-architectural events (cache misses, branch mispredictions)
are derived deterministically from the charged loads/branches using
fractional-residue accumulation — no randomness, so identical programs
yield identical counter values.
"""

from __future__ import annotations

from repro.machine.cost import CostModel
from repro.machine.counters import CounterBank
from repro.sim.clock import CycleClock


class PerfCore:
    """The charging interface for one PE.

    Parameters
    ----------
    clock:
        The PE's virtual cycle clock (shared with the scheduler).
    cost:
        Cost table used to convert work into cycles/counters.
    """

    __slots__ = (
        "clock",
        "cost",
        "counters",
        "rate",
        "_l1_resid",
        "_l2_resid",
        "_br_resid",
    )

    def __init__(self, clock: CycleClock, cost: CostModel) -> None:
        self.clock = clock
        self.cost = cost
        self.counters = CounterBank()
        #: Cycle-time multiplier for this core (slow-PE fault injection:
        #: a throttled core retires the same instructions in more cycles).
        #: Applied to computed work and memcpy, never to ``stall_until`` —
        #: waiting for an absolute arrival time is not compute.
        self.rate = 1.0
        self._l1_resid = 0.0
        self._l2_resid = 0.0
        self._br_resid = 0.0

    # ------------------------------------------------------------------

    def rdtsc(self) -> int:
        """Read the virtual time-stamp counter."""
        return self.clock.now

    def work(
        self,
        ins: int = 0,
        loads: int = 0,
        stores: int = 0,
        branches: int = 0,
        flops: int = 0,
        vec: int = 0,
        extra_cycles: int = 0,
    ) -> int:
        """Charge a block of straight-line work.

        ``ins`` is the *total* instruction count of the block (loads,
        stores, branches, flops and vector instructions are categorised
        subsets, not additions).  Returns the cycles charged.
        """
        if min(ins, loads, stores, branches, flops, vec, extra_cycles) < 0:
            raise ValueError("work amounts must be non-negative")
        cost = self.cost
        self._l1_resid += loads * cost.l1_miss_rate
        l1 = int(self._l1_resid)
        self._l1_resid -= l1
        self._l2_resid += loads * cost.l2_miss_rate
        l2 = int(self._l2_resid)
        self._l2_resid -= l2
        self._br_resid += branches * cost.branch_misp_rate
        br = int(self._br_resid)
        self._br_resid -= br
        cycles = cost.ins_cycles(ins) + extra_cycles
        cycles += int(round(loads * cost.load_fraction_penalty))
        if self.rate != 1.0:
            cycles = int(round(cycles * self.rate))
        self.counters.charge_block(
            ins, loads, stores, branches, flops, vec, l1, l2, br, cycles
        )
        # Direct bump instead of CycleClock.advance: cycles is validated
        # non-negative above, and this is the simulator's hottest line.
        self.clock._now += cycles
        return cycles

    def stall(self, cycles: int) -> int:
        """Charge pure waiting time (cycles with no retired instructions)."""
        if cycles < 0:
            raise ValueError(f"negative stall: {cycles}")
        self._advance(cycles)
        return cycles

    def stall_until(self, t: int) -> int:
        """Wait until absolute cycle ``t`` (no-op if already past).

        Returns the cycles actually waited.
        """
        waited = max(0, t - self.clock.now)
        if waited:
            self._advance(waited)
        return waited

    def memcpy(self, nbytes: int) -> int:
        """Charge an intra-node memcpy of ``nbytes`` (cycles + counters)."""
        if nbytes < 0:
            raise ValueError(f"negative memcpy size: {nbytes}")
        line = self.cost.cache_line_bytes
        touches = max(1, (nbytes + line - 1) // line)
        # A streaming copy retires roughly one load+store pair per line.
        cycles = self._scaled(self.cost.memcpy_cycles(nbytes))
        self.counters.charge_block(
            2 * touches, touches, touches, 0, 0, 0, 0, 0, 0, cycles
        )
        self.clock.advance(cycles)
        return cycles

    def _scaled(self, cycles: int) -> int:
        if self.rate != 1.0:
            return int(round(cycles * self.rate))
        return cycles

    def _advance(self, cycles: int) -> None:
        self.counters.add("PAPI_TOT_CYC", cycles)
        self.clock.advance(cycles)
