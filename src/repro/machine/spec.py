"""Cluster shape: nodes, PEs, and the node/PE mapping.

The paper's experiments run on 1 or 2 Perlmutter CPU nodes with 16 PEs per
node.  Only the topology of the allocation matters to ActorProf (which PE
pairs are intra-node vs inter-node), so :class:`MachineSpec` captures
exactly that, plus a few descriptive fields used in reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineSpec:
    """Shape of the simulated cluster.

    PEs are numbered ``0 .. nodes*pes_per_node - 1`` in node-major order:
    node ``k`` hosts PEs ``k*pes_per_node .. (k+1)*pes_per_node - 1``.  This
    matches the default SPMD layout of OpenSHMEM launchers.

    Parameters
    ----------
    nodes:
        Number of cluster nodes.
    pes_per_node:
        PEs (OpenSHMEM processing elements) per node; one actor per PE.
    name:
        Free-form description used in reports.
    """

    nodes: int
    pes_per_node: int
    name: str = "simulated-cluster"

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError(f"need at least one node: {self.nodes}")
        if self.pes_per_node <= 0:
            raise ValueError(f"need at least one PE per node: {self.pes_per_node}")

    @property
    def n_pes(self) -> int:
        """Total number of PEs in the allocation."""
        return self.nodes * self.pes_per_node

    def node_of(self, pe: int) -> int:
        """Node index hosting PE ``pe``."""
        self._check_pe(pe)
        return pe // self.pes_per_node

    def local_index(self, pe: int) -> int:
        """Position of ``pe`` within its node (0-based)."""
        self._check_pe(pe)
        return pe % self.pes_per_node

    def pe_at(self, node: int, local: int) -> int:
        """Global PE number for position ``local`` on ``node``."""
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} out of range [0, {self.nodes})")
        if not 0 <= local < self.pes_per_node:
            raise ValueError(
                f"local index {local} out of range [0, {self.pes_per_node})"
            )
        return node * self.pes_per_node + local

    def same_node(self, a: int, b: int) -> bool:
        """True when PEs ``a`` and ``b`` share a node."""
        return self.node_of(a) == self.node_of(b)

    def node_pes(self, node: int) -> range:
        """The PEs hosted on ``node``."""
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} out of range [0, {self.nodes})")
        start = node * self.pes_per_node
        return range(start, start + self.pes_per_node)

    def _check_pe(self, pe: int) -> None:
        if not 0 <= pe < self.n_pes:
            raise ValueError(f"PE {pe} out of range [0, {self.n_pes})")

    @classmethod
    def perlmutter_like(cls, nodes: int = 1, pes_per_node: int = 16) -> "MachineSpec":
        """The paper's experimental shapes: 1×16 and 2×16."""
        return cls(nodes=nodes, pes_per_node=pes_per_node, name="perlmutter-like")
