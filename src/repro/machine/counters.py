"""Per-PE hardware-counter state.

:class:`CounterBank` is the substrate the simulated PAPI layer reads: a set
of monotonically increasing counters per PE, incremented by the cost-model
charging in :class:`~repro.machine.perf.PerfCore`.  Counter names use the
PAPI preset spellings so the PAPI layer maps onto them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Counters maintained for every PE.  Everything here is derivable from the
#: charged work plus the synthetic miss/misprediction rates in
#: :class:`~repro.machine.cost.CostModel`.
COUNTER_NAMES: tuple[str, ...] = (
    "PAPI_TOT_INS",  # total retired instructions
    "PAPI_TOT_CYC",  # total cycles
    "PAPI_LST_INS",  # load/store instructions
    "PAPI_LD_INS",   # load instructions
    "PAPI_SR_INS",   # store instructions
    "PAPI_BR_INS",   # branch instructions
    "PAPI_BR_MSP",   # mispredicted branches
    "PAPI_L1_DCM",   # L1 data-cache misses
    "PAPI_L2_DCM",   # L2 data-cache misses
    "PAPI_FP_OPS",   # floating-point operations
    "PAPI_VEC_INS",  # vector/SIMD instructions
)


@dataclass(frozen=True)
class CounterSnapshot:
    """An immutable point-in-time copy of a :class:`CounterBank`."""

    values: dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> int:
        return self.values.get(name, 0)

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Counter increments between ``earlier`` and this snapshot."""
        return CounterSnapshot(
            {k: self.values.get(k, 0) - earlier.values.get(k, 0) for k in COUNTER_NAMES}
        )


class CounterBank:
    """Mutable counter state for one PE.

    Counters never decrease.  The bank does not know about regions or event
    sets; that logic lives in :mod:`repro.papi`, which works with
    snapshots/deltas of this bank, mirroring how real PAPI reads MSRs.
    """

    __slots__ = ("_v",)

    def __init__(self) -> None:
        self._v: dict[str, int] = {name: 0 for name in COUNTER_NAMES}

    def add(self, name: str, amount: int) -> None:
        """Increment counter ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counters are monotonic; got {name} += {amount}")
        if name not in self._v:
            raise KeyError(f"unknown counter {name!r}")
        self._v[name] += int(amount)

    def charge_block(
        self,
        ins: int,
        loads: int,
        stores: int,
        branches: int,
        flops: int,
        vec: int,
        l1_misses: int,
        l2_misses: int,
        branch_misses: int,
        cycles: int,
    ) -> None:
        """Bulk increment for one straight-line work block.

        Equivalent to eleven :meth:`add` calls; collapsed into one method
        because per-call overhead dominates the simulator's hot charging
        path.  Callers must pass non-negative amounts (``PerfCore.work``
        validates its inputs before charging).
        """
        v = self._v
        v["PAPI_TOT_INS"] += int(ins)
        v["PAPI_LST_INS"] += int(loads) + int(stores)
        v["PAPI_LD_INS"] += int(loads)
        v["PAPI_SR_INS"] += int(stores)
        v["PAPI_BR_INS"] += int(branches)
        v["PAPI_FP_OPS"] += int(flops)
        v["PAPI_VEC_INS"] += int(vec)
        v["PAPI_L1_DCM"] += int(l1_misses)
        v["PAPI_L2_DCM"] += int(l2_misses)
        v["PAPI_BR_MSP"] += int(branch_misses)
        v["PAPI_TOT_CYC"] += int(cycles)

    def read(self, name: str) -> int:
        """Current value of counter ``name``."""
        return self._v[name]

    def snapshot(self) -> CounterSnapshot:
        """An immutable copy of all counters."""
        return CounterSnapshot(dict(self._v))

    def names(self) -> tuple[str, ...]:
        return COUNTER_NAMES
