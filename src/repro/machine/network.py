"""Network timing model.

Transfers between PEs cost cycles according to whether the endpoints share
a node (memcpy through shared memory via ``shmem_ptr``) or not (NIC
latency + per-byte wire cost).  The model is deliberately simple — the
paper's physical trace cares about *which* operations happen on which
pairs, and their relative cost, not about congestion modelling.
"""

from __future__ import annotations

from repro.machine.cost import CostModel
from repro.machine.spec import MachineSpec


class NetworkModel:
    """Cycle costs for data movement between PEs."""

    def __init__(self, spec: MachineSpec, cost: CostModel) -> None:
        self.spec = spec
        self.cost = cost

    def is_local(self, src: int, dst: int) -> bool:
        """True when ``src`` → ``dst`` stays within one node."""
        return self.spec.same_node(src, dst)

    def transfer_cycles(self, src: int, dst: int, nbytes: int) -> int:
        """Cycles from initiation until the payload is visible at ``dst``."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if self.is_local(src, dst):
            return self.cost.memcpy_cycles(nbytes)
        return self.cost.net_transfer_cycles(nbytes)

    def issue_cycles(self, src: int, dst: int, nbytes: int) -> int:
        """Sender-side cycles consumed by initiating the transfer.

        Local transfers are synchronous memcpys (the full copy runs on the
        sender); remote non-blocking puts only pay the issue cost, with the
        wire time overlapping subsequent computation.
        """
        if self.is_local(src, dst):
            return self.cost.memcpy_cycles(nbytes)
        return self.cost.put_issue_cycles

    def arrival_time(self, src: int, dst: int, nbytes: int, issued_at: int) -> int:
        """Absolute cycle at which a transfer issued at ``issued_at`` lands."""
        return issued_at + self.transfer_cycles(src, dst, nbytes)
