"""Cycle and instruction cost tables for simulated operations.

Every simulated operation — constructing a message, copying a buffer,
issuing a non-blocking put, waiting at a barrier — charges cycles and
counter increments through the :class:`CostModel`.  The absolute values are
not calibrated to any specific silicon; what matters for reproducing the
paper's figures is the *relative* ordering (network ≫ memcpy ≫ ALU) and
that costs scale with work, so per-PE imbalance in messages turns into the
imbalance in instructions (Figs. 10–11) and cycles (Figs. 12–13) the paper
observes.

Defaults are loosely modelled on a ~2 GHz EPYC-class core with an
HDR-class interconnect: ~1 IPC scalar code, ~1 cycle/byte streaming
memcpy within a node (cache-cold), and a few-microsecond (thousands of cycles) one-way
network latency with ~1 cycle/byte effective inter-node bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Cost table used by every simulated layer.

    All "*_ins" fields are instruction counts (converted to cycles via
    :attr:`cpi`); all "*_cycles" fields are cycles directly.
    """

    # --- core execution -------------------------------------------------
    cpi: float = 1.0
    """Average cycles per retired instruction for scalar code."""

    load_fraction_penalty: float = 0.0
    """Extra cycles charged per load beyond the CPI (0 = folded into CPI)."""

    # --- FA-BSP runtime work --------------------------------------------
    send_construct_ins: int = 8
    """Instructions to build one message and append it to a mailbox (MAIN).

    MAIN-side work is a tight construct-and-hand-off loop; the paper
    measures it at ≤5% of total time, so it must stay far cheaper than
    the aggregation machinery below."""

    send_construct_loads: int = 2
    send_construct_stores: int = 3

    handler_dispatch_ins: int = 30
    """Per-message dispatch overhead invoking a process() handler (PROC).

    Handler dispatch goes through a guarded-mailbox indirection (lambda /
    function pointer, argument unpacking) — substantially heavier than
    constructing a message."""

    handler_dispatch_loads: int = 6
    handler_dispatch_stores: int = 2

    push_ins: int = 30
    """Conveyor-internal instructions per successful push (COMM):
    destination decode, buffer lookup, bounds checks, item packing."""

    push_retry_ins: int = 10
    """Instructions burned on a failed (buffer-full) conveyor push (COMM)."""

    pull_item_ins: int = 35
    """Conveyor-side instructions to locate and unpack one pulled item
    (COMM): ring-buffer bookkeeping plus the copy out to the caller."""

    advance_poll_ins: int = 50
    """Instructions for one conveyor advance poll with nothing to do."""

    route_item_ins: int = 20
    """Instructions to examine and re-route one multi-hop item."""

    # --- memory ----------------------------------------------------------
    memcpy_base_cycles: int = 200
    """Fixed cost of one memcpy call (setup, call overhead, shmem_ptr)."""

    memcpy_cycles_per_byte: float = 1.0
    """Streaming copy throughput within a node (cache-cold buffers)."""

    cache_line_bytes: int = 64

    l1_miss_rate: float = 0.02
    """Synthetic fraction of loads that miss L1 (feeds PAPI_L1_DCM)."""

    l2_miss_rate: float = 0.004
    """Synthetic fraction of loads that miss L2 (feeds PAPI_L2_DCM)."""

    branch_misp_rate: float = 0.01
    """Synthetic fraction of branches mispredicted (feeds PAPI_BR_MSP)."""

    # --- network ----------------------------------------------------------
    net_latency_cycles: int = 4000
    """One-way inter-node latency (cycles)."""

    net_cycles_per_byte: float = 1.0
    """Effective inter-node cost per byte (inverse bandwidth)."""

    put_issue_cycles: int = 300
    """Sender-side cost of issuing shmem_putmem_nbi (descriptor, doorbell)."""

    signal_put_cycles: int = 500
    """Cost of the small signalling shmem_put used by nonblock_progress."""

    quiet_base_cycles: int = 1200
    """Fixed cost of shmem_quiet independent of outstanding puts."""

    # --- synchronization --------------------------------------------------
    barrier_cycles: int = 2500
    """Cost of shmem_barrier_all once all PEs have arrived."""

    collective_base_cycles: int = 3000
    """Base cost of a small collective (allreduce/broadcast)."""

    collective_cycles_per_pe: int = 120
    """Per-participant scaling of collective cost (~log tree flattened)."""

    def ins_cycles(self, ins: int) -> int:
        """Cycles to retire ``ins`` scalar instructions."""
        return int(round(ins * self.cpi))

    def memcpy_cycles(self, nbytes: int) -> int:
        """Cycles for an intra-node memcpy of ``nbytes``."""
        return self.memcpy_base_cycles + int(round(nbytes * self.memcpy_cycles_per_byte))

    def net_transfer_cycles(self, nbytes: int) -> int:
        """Cycles from nbi-put issue to remote visibility of ``nbytes``."""
        return self.net_latency_cycles + int(round(nbytes * self.net_cycles_per_byte))

    def collective_cycles(self, n_pes: int) -> int:
        """Cycles for a small collective across ``n_pes`` participants."""
        return self.collective_base_cycles + self.collective_cycles_per_pe * n_pes

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with the given fields replaced (for ablations)."""
        return replace(self, **overrides)
