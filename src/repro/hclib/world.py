"""The FA-BSP world: SPMD launch, per-PE contexts, and finish scopes.

:func:`run_spmd` is the top-level entry point of the whole simulated
stack: it assembles scheduler → shmem → conveyors → actors, runs one copy
of the program per PE, and returns the per-PE results.

Region accounting: a :class:`PEContext` tracks whether the PE is executing
user MAIN code (inside a finish body, outside runtime internals) and emits
``main_enter``/``main_exit`` hook events on every transition, so an
attached profiler measures MAIN as exactly "finish body minus send
internals" (paper Table I).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.conveyors.conveyor import ConveyorConfig, ConveyorGroup
from repro.conveyors.hooks import NullTraceSink, TraceSink
from repro.hclib.hooks import NullHooks, RuntimeHooks
from repro.machine.cost import CostModel
from repro.machine.spec import MachineSpec
from repro.shmem.runtime import ShmemContext, ShmemRuntime
from repro.sim.errors import SimulationError
from repro.sim.faults import FaultInjector, FaultPlan, current_plan
from repro.sim.rng import spawn_rngs
from repro.sim.scheduler import CoopScheduler, SchedulePolicy


class _SelectorSlot:
    """Symmetric (collective) state of one Selector across PEs."""

    def __init__(
        self,
        world: "World",
        mailboxes: int,
        payload_words: list[int],
        config: ConveyorConfig,
    ) -> None:
        self.mailboxes = mailboxes
        self.payload_words = payload_words
        self.config = config
        self.groups = [
            ConveyorGroup(
                world.shmem,
                ConveyorConfig(
                    payload_words=w,
                    buffer_items=config.buffer_items,
                    slots=config.slots,
                    topology=config.topology,
                    self_send_bypass=config.self_send_bypass,
                    item_header_bytes=config.item_header_bytes,
                    buffer_header_bytes=config.buffer_header_bytes,
                ),
                tracer=world.physical_tracer,
                faults=world.faults,
                policy=world.schedule_policy,
            )
            for w in payload_words
        ]


class World:
    """Everything global to one simulated FA-BSP job."""

    def __init__(
        self,
        spec: MachineSpec,
        cost: CostModel | None = None,
        conveyor_config: ConveyorConfig | None = None,
        hooks: RuntimeHooks | None = None,
        physical_tracer: TraceSink | None = None,
        seed: int = 0,
        log_shmem_calls: bool = False,
        fault_plan: FaultPlan | None = None,
        schedule_policy: SchedulePolicy | None = None,
    ) -> None:
        self.spec = spec
        self.scheduler = CoopScheduler(spec.n_pes, policy=schedule_policy)
        self.schedule_policy: SchedulePolicy = self.scheduler.policy
        self.shmem = ShmemRuntime(self.scheduler, spec, cost=cost, log_calls=log_shmem_calls)
        self.cost = self.shmem.cost
        self.conveyor_config = conveyor_config or ConveyorConfig()
        self.hooks: RuntimeHooks = hooks if hooks is not None else NullHooks()
        self.physical_tracer: TraceSink = (
            physical_tracer if physical_tracer is not None else NullTraceSink()
        )
        self.seed = seed
        self.rngs = spawn_rngs(seed, spec.n_pes)
        # Fault injection: an explicit plan wins; otherwise pick up the
        # ambient `use_plan(...)` default so apps that build their own
        # World (everything in repro.apps) become fault-testable without
        # signature changes.
        plan = fault_plan if fault_plan is not None else current_plan()
        self.fault_plan = plan
        self.faults: FaultInjector | None = None
        if plan is not None and not plan.empty:
            self.faults = FaultInjector(plan, spec.n_pes)
            for crash in plan.crashes:
                self.scheduler.schedule_crash(
                    crash.pe, crash.at_cycle, on_crash=self.faults.note_crash
                )
            for slow in plan.slow_pes:
                self.shmem.perf[slow.pe].rate = slow.multiplier
                self.faults.note("slow", slow.pe, -1, 0, f"x{slow.multiplier:g}")
            self.scheduler.fault_context = self.faults.describe_schedule
        self.contexts = [PEContext(self, r) for r in range(spec.n_pes)]
        self._slots: list[_SelectorSlot] = []
        self._slot_cursor = [0] * spec.n_pes

    def _selector_slot(
        self,
        rank: int,
        mailboxes: int,
        payload_words: list[int],
        config: ConveyorConfig | None,
    ) -> _SelectorSlot:
        """Symmetric selector construction (like symmetric malloc)."""
        config = config or self.conveyor_config
        idx = self._slot_cursor[rank]
        self._slot_cursor[rank] += 1
        if idx < len(self._slots):
            slot = self._slots[idx]
            if slot.mailboxes != mailboxes or slot.payload_words != payload_words:
                raise SimulationError(
                    f"selector construction #{idx} diverged across PEs: "
                    f"PE {rank} built {mailboxes} mailboxes / {payload_words} words, "
                    f"earlier PEs built {slot.mailboxes} / {slot.payload_words}"
                )
            return slot
        slot = _SelectorSlot(self, mailboxes, payload_words, config)
        self._slots.append(slot)
        return slot

    def run(self, program: Callable[["PEContext"], Any]) -> list[Any]:
        """Execute ``program(ctx)`` on every PE; returns per-PE results."""
        results: list[Any] = [None] * self.spec.n_pes

        def entry(rank: int) -> None:
            results[rank] = program(self.contexts[rank])

        self.scheduler.run(entry)
        return results


class FinishScope:
    """``hclib::finish``: waits for all sends to land and be processed."""

    def __init__(self, ctx: "PEContext") -> None:
        self.ctx = ctx
        self.selectors: list = []
        self._tasks: list = []
        self._active = False
        self._chan_cache: tuple = ()
        self._chan_cache_for = -1

    def _drain_channels(self) -> tuple:
        """WaitChannels covering everything the drain predicates read.

        Per selector mailbox: the conveyor group's quiescence channel
        (``all_complete`` / ``_cascade_pending``) and this PE's endpoint
        delivery channel (``visible`` / ``_has_any_inbound``).  Handlers
        can register new selectors mid-drain, so the tuple is rebuilt
        whenever the selector count changes.
        """
        if self._chan_cache_for != len(self.selectors):
            chans = []
            for s in self.selectors:
                for mb in s.mb:
                    chans.append(mb.conveyor.group.wake)
                    chans.append(mb.conveyor.inbox_wake)
            self._chan_cache = tuple(chans)
            self._chan_cache_for = len(self.selectors)
        return self._chan_cache

    def _register(self, selector) -> None:
        self.selectors.append(selector)

    def _run_pending_tasks(self) -> int:
        """Execute queued async tasks (MAIN region), FIFO."""
        ctx = self.ctx
        ran = 0
        while self._tasks:
            fn = self._tasks.pop(0)
            ctx._enter_main()
            try:
                fn()
            finally:
                ctx._exit_main()
            ran += 1
        return ran

    def __enter__(self) -> "FinishScope":
        ctx = self.ctx
        ctx._finish_stack.append(self)
        self._active = True
        ctx.world.hooks.finish_start(ctx.rank)
        ctx._enter_main()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        ctx = self.ctx
        ctx._exit_main()
        self._active = False
        try:
            if exc_type is None:
                self._drain()
        finally:
            ctx._finish_stack.pop()
            ctx.world.hooks.finish_end(ctx.rank)

    def _drain(self) -> None:
        """Run handlers until every registered selector is complete."""
        ctx = self.ctx
        sels = self.selectors
        # Async tasks deferred in the body run first — they may send and
        # may be the ones calling done() (the HClib async idiom).
        self._run_pending_tasks()
        # Only the entry mailbox needs an explicit done(); later mailboxes
        # terminate via chained cascade when their predecessor completes.
        missing = [
            i for i, s in enumerate(sels) if not s.mb[0].done_called
        ]
        if missing:
            raise SimulationError(
                f"PE {ctx.rank}: finish scope ended but done() was never called "
                f"on mailbox 0 of selector(s) {missing}; the finish would wait "
                "forever"
            )

        def all_complete() -> bool:
            return all(s.is_complete() for s in sels)

        def visible() -> bool:
            return any(
                s._has_visible_work() or s._cascade_pending() for s in sels
            )

        while not all_complete() or self._tasks:
            handled = self._run_pending_tasks()  # handlers may spawn tasks
            for s in sels:
                handled += s._progress()
            if all_complete() and not self._tasks:
                break
            if handled == 0 and not visible():
                arrivals = [t for s in sels if (t := s._next_arrival()) is not None]
                if arrivals:
                    # Buffers are in flight to us: sleep until the earliest
                    # lands (or something becomes visible / all complete).
                    ctx.scheduler.block(
                        ctx.rank,
                        predicate=lambda: all_complete() or visible(),
                        wakeup_time=min(arrivals),
                        reason="finish drain (awaiting arrival)",
                        channels=self._drain_channels(),
                    )
                else:
                    # Nothing in flight to us yet: wake when anything is
                    # delivered here (even future-stamped — the next loop
                    # iteration re-blocks with its arrival time), when the
                    # conveyors quiesce globally, or when a chained done
                    # becomes ready to fire.  The cascade clause matters:
                    # group completion needs done() from EVERY endpoint,
                    # so an idle PE must wake to cascade its own — without
                    # this, a PE that drained its messages before the
                    # predecessor mailbox completed globally sleeps
                    # forever and the finish deadlocks.
                    ctx.scheduler.block(
                        ctx.rank,
                        predicate=lambda: all_complete()
                        or any(s._has_any_inbound() for s in sels)
                        or any(s._cascade_pending() for s in sels),
                        reason="finish drain (idle)",
                        channels=self._drain_channels(),
                    )
            else:
                ctx.scheduler.yield_pe(ctx.rank)


class PEContext:
    """Per-PE handle passed to SPMD programs."""

    def __init__(self, world: World, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.shmem: ShmemContext = world.shmem.contexts[rank]
        self.perf = world.shmem.perf[rank]
        self.scheduler = world.scheduler
        self.rng: np.random.Generator = world.rngs[rank]
        self._finish_stack: list[FinishScope] = []
        self._main_depth = 0

    # --- identity --------------------------------------------------------

    @property
    def my_pe(self) -> int:
        return self.rank

    @property
    def n_pes(self) -> int:
        return self.world.spec.n_pes

    @property
    def spec(self) -> MachineSpec:
        return self.world.spec

    # --- structured parallelism -------------------------------------------

    def finish(self) -> FinishScope:
        """Open a finish scope (use as a context manager)."""
        return FinishScope(self)

    def async_(self, fn: Callable[[], Any]) -> None:
        """``hclib::async``: defer ``fn`` to run on this PE before the
        enclosing finish completes.

        Tasks register with the *innermost* enclosing finish (HClib
        semantics) and run cooperatively on the PE's single thread at the
        finish drain, FIFO, inside the MAIN region.  Tasks may send
        messages, spawn further tasks, and call ``done()`` — the finish
        waits for all of it.
        """
        scope = self._current_finish()
        if scope is None:
            raise SimulationError("async_() must be called inside a finish scope")
        self.perf.work(ins=20, loads=3, stores=3)  # task allocation/enqueue
        scope._tasks.append(fn)

    def _current_finish(self) -> FinishScope | None:
        return self._finish_stack[-1] if self._finish_stack else None

    # --- region tracking ----------------------------------------------------

    def _enter_main(self) -> None:
        self._main_depth += 1
        if self._main_depth == 1:
            self.world.hooks.main_enter(self.rank)

    def _exit_main(self) -> None:
        if self._main_depth > 0:
            self._main_depth -= 1
            if self._main_depth == 0:
                self.world.hooks.main_exit(self.rank)

    @contextlib.contextmanager
    def _runtime_section(self):
        """Suspend MAIN accounting while inside runtime internals."""
        was_main = self._main_depth > 0
        if was_main:
            self._exit_main()
        try:
            yield
        finally:
            if was_main:
                self._enter_main()

    # --- user work ------------------------------------------------------------

    def compute(self, ins: int = 0, loads: int = 0, stores: int = 0,
                branches: int = 0, flops: int = 0, vec: int = 0) -> None:
        """Charge local computation (attributed to the current region)."""
        self.perf.work(ins=ins, loads=loads, stores=stores,
                       branches=branches, flops=flops, vec=vec)

    def barrier(self) -> None:
        """Convenience pass-through to ``shmem_barrier_all``."""
        with self._runtime_section():
            self.shmem.barrier_all()

    def yield_pe(self) -> None:
        """Cooperatively offer the simulated CPU to other PEs."""
        self.scheduler.yield_pe(self.rank)


@dataclass
class RunResult:
    """Outcome of :func:`run_spmd`."""

    results: list[Any]
    world: World

    @property
    def clocks(self) -> list[int]:
        """Final per-PE cycle counts."""
        return [c.now for c in self.world.scheduler.clocks]


def run_spmd(
    program: Callable[[PEContext], Any],
    machine: MachineSpec | None = None,
    cost: CostModel | None = None,
    conveyor_config: ConveyorConfig | None = None,
    profiler=None,
    seed: int = 0,
    log_shmem_calls: bool = False,
    shmem_observers: Sequence[Any] = (),
    fault_plan: FaultPlan | None = None,
    schedule_policy: SchedulePolicy | None = None,
) -> RunResult:
    """Run an SPMD FA-BSP ``program`` on a simulated ``machine``.

    Parameters
    ----------
    program:
        Callable executed once per PE with a :class:`PEContext`.
    machine:
        Cluster shape; defaults to 1 node × 4 PEs.
    cost:
        Cost-model overrides.
    conveyor_config:
        Default conveyor configuration for selectors.
    profiler:
        An :class:`~repro.core.profiler.ActorProf` instance (or anything
        with an ``attach(world)`` returning ``(hooks, tracer)``); None
        disables all profiling.
    seed:
        Seed for per-PE RNG streams (``ctx.rng``).
    shmem_observers:
        pshmem-style observers to attach to the SHMEM runtime (objects
        with an ``attach(runtime)`` method, e.g. the baseline profilers
        in :mod:`repro.core.baseline`).
    fault_plan:
        A :class:`~repro.sim.faults.FaultPlan` of deterministic faults to
        inject (crashes, message drop/duplicate/delay, slow PEs).  When
        omitted, the ambient :func:`~repro.sim.faults.use_plan` default
        (if any) applies.
    schedule_policy:
        A :class:`~repro.sim.scheduler.SchedulePolicy` resolving the
        scheduler's don't-care choices (tie-breaks, flush order).  None
        uses the default, byte-identical-to-historical policy.  ActorCheck
        (:mod:`repro.check`) passes perturbed policies here.

    Returns
    -------
    RunResult
        Per-PE return values plus the world for inspection.
    """
    spec = machine or MachineSpec(1, 4)
    world = World(
        spec,
        cost=cost,
        conveyor_config=conveyor_config,
        seed=seed,
        log_shmem_calls=log_shmem_calls,
        fault_plan=fault_plan,
        schedule_policy=schedule_policy,
    )
    for observer in shmem_observers:
        observer.attach(world.shmem)
    if profiler is not None:
        hooks, tracer = profiler.attach(world)
        if hooks is not None:
            world.hooks = hooks
        if tracer is not None:
            world.physical_tracer = tracer
    results = world.run(program)
    return RunResult(results=results, world=world)
