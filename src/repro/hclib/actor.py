"""Actors and Selectors (HClib-Actor's messaging classes).

A :class:`Selector` is an actor with multiple guarded mailboxes; an
:class:`Actor` is a selector with exactly one.  Each PE constructs its own
instance symmetrically (SPMD), and the instances are stitched together by
one Conveyor group per mailbox.

Key runtime behaviours reproduced from HClib-Actor:

* ``send`` is asynchronous and non-blocking from the application's view;
  when the aggregation buffer is full the runtime transparently advances
  the conveyor — *processing incoming messages in the meantime*, which is
  the fine-grained interleaving of Figure 1.
* Message handlers run one at a time on the owning PE — no atomics needed
  in handler bodies (Listing 2).
* ``done(mb)`` tells the runtime this PE will send no more messages to
  that mailbox; the enclosing ``finish`` then drains until every message
  everywhere has been handled.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.conveyors.buffers import COL_SRC, HEADER_WORDS
from repro.conveyors.conveyor import Conveyor
from repro.sim.errors import SimulationError


class Mailbox:
    """One guarded mailbox of a selector (on one PE).

    Assign :attr:`process` (scalar handler, ``f(payload, sender_rank)``)
    and/or :attr:`process_batch` (vectorized handler,
    ``f(payloads: ndarray, senders: ndarray)``) before messages arrive.
    When both are set the batch handler is preferred.

    :attr:`guard` implements the *guarded* in "guarded mailbox" (Imam &
    Sarkar's Selector model): a zero-argument predicate evaluated before
    draining — while it returns False, delivered messages stay queued and
    no handler runs.  Guards typically depend on local state mutated by
    other mailboxes' handlers; they are re-evaluated on every progress
    round, so enabling state flips take effect immediately.
    """

    __slots__ = ("selector", "index", "conveyor", "process", "process_batch",
                 "done_called", "guard")

    def __init__(self, selector: "Selector", index: int, conveyor: Conveyor) -> None:
        self.selector = selector
        self.index = index
        self.conveyor = conveyor
        self.process: Callable | None = None
        self.process_batch: Callable | None = None
        self.done_called = False
        self.guard: Callable[[], bool] | None = None

    def enabled(self) -> bool:
        """True when this mailbox may currently run handlers."""
        return self.guard is None or bool(self.guard())


class Selector:
    """PGAS-inspired actor with ``n`` mailboxes (paper Listing 2).

    Parameters
    ----------
    ctx:
        The PE's :class:`~repro.hclib.world.PEContext`.
    mailboxes:
        Number of mailboxes.
    payload_words:
        int64 words per message payload; an int (same for every mailbox)
        or a sequence of per-mailbox widths.
    conveyor_config:
        Overrides the world's default conveyor configuration.
    """

    def __init__(
        self,
        ctx,
        mailboxes: int = 1,
        payload_words: int | Sequence[int] = 1,
        conveyor_config=None,
    ) -> None:
        if mailboxes < 1:
            raise ValueError("selector needs at least one mailbox")
        if isinstance(payload_words, int):
            widths = [payload_words] * mailboxes
        else:
            widths = list(payload_words)
            if len(widths) != mailboxes:
                raise ValueError(
                    f"payload_words has {len(widths)} entries for {mailboxes} mailboxes"
                )
        self.ctx = ctx
        slot = ctx.world._selector_slot(ctx.rank, mailboxes, widths, conveyor_config)
        self.mb: list[Mailbox] = [
            Mailbox(self, i, slot.groups[i].endpoints[ctx.rank]) for i in range(mailboxes)
        ]
        self._started = False
        self._in_progress = False
        self._in_handler = False

    # ------------------------------------------------------------------

    @property
    def n_mailboxes(self) -> int:
        return len(self.mb)

    def start(self) -> None:
        """Activate the selector within the current finish scope."""
        if self._started:
            raise SimulationError("selector started twice")
        scope = self.ctx._current_finish()
        if scope is None:
            raise SimulationError("selector.start() must be called inside a finish scope")
        scope._register(self)
        self._started = True

    def send(self, mb_id: int, payload, dst: int) -> None:
        """Asynchronously send ``payload`` to ``dst``'s mailbox ``mb_id``.

        Never blocks the application logically; may internally advance the
        conveyor (flushing buffers and handling incoming messages).
        """
        self._check_active(mb_id)
        ctx = self.ctx
        cost = ctx.perf.cost
        # Message construction is MAIN work (Table I).
        ctx.perf.work(
            ins=cost.send_construct_ins,
            loads=cost.send_construct_loads,
            stores=cost.send_construct_stores,
            branches=2,
        )
        mb = self.mb[mb_id]
        nbytes = mb.conveyor.group.config.payload_bytes
        ctx.world.hooks.send(ctx.rank, mb_id, dst, nbytes)
        with ctx._runtime_section():
            while not mb.conveyor.push(payload, dst):
                self._progress()

    def send_batch(self, mb_id: int, dsts: np.ndarray, payloads: np.ndarray | None = None) -> None:
        """Vectorized :meth:`send` for large fan-outs.

        Semantically equivalent to ``for d, p in zip(dsts, payloads):
        send(mb_id, p, d)`` — identical per-message MAIN cost, logical
        trace counts and aggregation behaviour — but pushes through numpy.
        Incoming messages are handled between chunks, preserving the
        FA-BSP interleaving at chunk granularity.
        """
        self._check_active(mb_id)
        ctx = self.ctx
        dsts = np.ascontiguousarray(dsts, dtype=np.int64)
        n = len(dsts)
        if n == 0:
            return
        cost = ctx.perf.cost
        ctx.perf.work(
            ins=cost.send_construct_ins * n,
            loads=cost.send_construct_loads * n,
            stores=cost.send_construct_stores * n,
            branches=2 * n,
        )
        mb = self.mb[mb_id]
        nbytes = mb.conveyor.group.config.payload_bytes
        ctx.world.hooks.send_batch(ctx.rank, mb_id, dsts, nbytes)
        chunk = max(1024, mb.conveyor.group.config.buffer_items * 4)
        with ctx._runtime_section():
            if payloads is not None:
                payloads = np.asarray(payloads, dtype=np.int64)
            for off in range(0, n, chunk):
                block_d = dsts[off : off + chunk]
                block_p = None if payloads is None else payloads[off : off + chunk]
                mb.conveyor.push_many(block_d, block_p)
                self._progress()

    def done(self, mb_id: int) -> None:
        """Signal that this PE will send no more messages to ``mb_id``."""
        self._check_active(mb_id)
        mb = self.mb[mb_id]
        if mb.done_called:
            raise SimulationError(f"done() called twice on mailbox {mb_id}")
        mb.done_called = True
        with self.ctx._runtime_section():
            mb.conveyor.advance(done=True)
            self._progress()

    def is_complete(self) -> bool:
        """True when every mailbox's conveyor is globally quiescent."""
        return all(mb.conveyor.is_complete() for mb in self.mb)

    # ------------------------------------------------------------------
    # runtime internals (called by send/done and the finish drain loop)
    # ------------------------------------------------------------------

    def _check_active(self, mb_id: int) -> None:
        if not self._started:
            raise SimulationError("selector used before start()")
        if not 0 <= mb_id < len(self.mb):
            raise ValueError(f"mailbox {mb_id} out of range [0, {len(self.mb)})")
        if self.mb[mb_id].done_called and not self._in_handler:
            # done() only promises no further *application* (MAIN) sends;
            # message handlers may keep sending during the drain (actor
            # chains), and the finish terminates once those settle too.
            raise SimulationError(f"mailbox {mb_id} used after done()")

    def _progress(self) -> int:
        """Advance all mailboxes and run handlers; returns items handled.

        Re-entrant calls (a handler whose own ``send`` hits a full buffer)
        only advance the conveyors — handlers are never nested, preserving
        the one-message-at-a-time guarantee.
        """
        self._cascade_done()
        if self._in_progress:
            for mb in self.mb:
                mb.conveyor.advance(done=mb.done_called)
            return 0
        self._in_progress = True
        try:
            handled = 0
            for mb in self.mb:
                mb.conveyor.advance(done=mb.done_called)
                handled += self._drain_mailbox(mb)
            return handled
        finally:
            self._in_progress = False

    def _cascade_done(self) -> None:
        """Chained mailbox termination (bale_actor semantics).

        When mailbox ``i``'s conveyor completes, mailbox ``i+1`` is marked
        done automatically, so request/response selectors only need an
        explicit ``done`` on the entry mailbox: responses can flow from
        handlers until no request can ever arrive again.
        """
        for i in range(len(self.mb) - 1):
            nxt = self.mb[i + 1]
            if (
                self.mb[i].done_called
                and not nxt.done_called
                and self.mb[i].conveyor.is_complete()
            ):
                nxt.done_called = True
                nxt.conveyor.advance(done=True)

    def _drain_mailbox(self, mb: Mailbox) -> int:
        cv = mb.conveyor
        if cv.ready_count == 0 or not mb.enabled():
            return 0
        ctx = self.ctx
        hooks = ctx.world.hooks
        cost = ctx.perf.cost
        if mb.process_batch is not None:
            segments = cv.pull_segments()
            total = sum(len(s) for s in segments)
            if total == 0:
                return 0
            hooks.proc_enter(ctx.rank, mb.index)
            ctx.perf.work(
                ins=cost.handler_dispatch_ins * total,
                loads=cost.handler_dispatch_loads * total,
                stores=cost.handler_dispatch_stores * total,
                branches=total,
            )
            self._in_handler = True
            try:
                for seg in segments:
                    mb.process_batch(seg[:, HEADER_WORDS:], seg[:, COL_SRC])
            finally:
                self._in_handler = False
            hooks.proc_exit(ctx.rank, mb.index, total)
            return total
        if mb.process is None:
            raise SimulationError(
                f"mailbox {mb.index} received messages but has no process handler"
            )
        handled = 0
        while (item := cv.pull()) is not None:
            src, payload = item
            hooks.proc_enter(ctx.rank, mb.index)
            ctx.perf.work(
                ins=cost.handler_dispatch_ins,
                loads=cost.handler_dispatch_loads,
                stores=cost.handler_dispatch_stores,
                branches=1,
            )
            self._in_handler = True
            try:
                mb.process(payload, src)
            finally:
                self._in_handler = False
            hooks.proc_exit(ctx.rank, mb.index, 1)
            handled += 1
        return handled

    # drain-loop helpers --------------------------------------------------

    def _has_visible_work(self) -> bool:
        """Actionable work right now: ingestable buffers, or ready
        messages whose mailbox guard currently permits handling."""
        return any(
            mb.conveyor.has_visible_inbound()
            or (mb.conveyor.ready_count > 0 and mb.enabled())
            for mb in self.mb
        )

    def _has_any_inbound(self) -> bool:
        """True when anything is headed here (even future-stamped), or
        queued messages just became handleable (a guard flipped true).

        Guard-disabled ready messages do NOT count — treating them as
        wakeup-worthy would livelock the drain; if a guard never enables,
        the scheduler's deadlock detector reports it instead.
        """
        return any(
            mb.conveyor.has_inbound()
            or (mb.conveyor.ready_count > 0 and mb.enabled())
            for mb in self.mb
        )

    def _cascade_pending(self) -> bool:
        """True when a chained done is ready to fire (progress needed)."""
        return any(
            self.mb[i].done_called
            and not self.mb[i + 1].done_called
            and self.mb[i].conveyor.is_complete()
            for i in range(len(self.mb) - 1)
        )

    def _next_arrival(self) -> int | None:
        times = [
            t for mb in self.mb if (t := mb.conveyor.next_arrival_time()) is not None
        ]
        return min(times, default=None)

    def _undone_mailboxes(self) -> list[int]:
        return [mb.index for mb in self.mb if not mb.done_called]


class Actor(Selector):
    """A selector with a single mailbox (paper Listing 1's ``MyActor``).

    ``send``/``done`` drop the mailbox argument.  Assign
    ``self.mb[0].process`` in your subclass constructor, or override
    :meth:`process` — the base constructor wires it automatically.
    """

    def __init__(self, ctx, payload_words: int = 1, conveyor_config=None) -> None:
        super().__init__(ctx, mailboxes=1, payload_words=payload_words, conveyor_config=conveyor_config)
        if type(self).process is not Actor.process:
            self.mb[0].process = self.process
        if type(self).process_batch is not Actor.process_batch:
            self.mb[0].process_batch = self.process_batch

    def process(self, payload, sender_rank: int) -> None:
        """Override with the message handler (Listing 2's ``process``)."""
        raise NotImplementedError

    def process_batch(self, payloads: np.ndarray, senders: np.ndarray) -> None:
        """Optionally override with a vectorized handler."""
        raise NotImplementedError

    def send(self, payload, dst: int) -> None:  # type: ignore[override]
        super().send(0, payload, dst)

    def send_batch(self, dsts: np.ndarray, payloads: np.ndarray | None = None) -> None:  # type: ignore[override]
        super().send_batch(0, dsts, payloads)

    def done(self) -> None:  # type: ignore[override]
        super().done(0)
