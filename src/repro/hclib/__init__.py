"""Simulated HClib-Actor: the FA-BSP runtime.

This package reconstructs the programming model of HClib-Actor (the
paper's Section II): SPMD execution with one single-threaded actor per PE,
asynchronous ``send`` with automatic aggregation via Conveyors, message
handlers that run one at a time, and a ``finish`` scope that waits until
all outgoing messages are sent and all incoming messages are processed.

The runtime exposes the tracing hook points ActorProf instruments
(:class:`~repro.hclib.hooks.RuntimeHooks`): region transitions between
MAIN (message construction + local computation), PROC (message handling)
and COMM (everything else — aggregation, network, waiting), plus per-send
callbacks for the logical trace.

Public surface:

* :func:`~repro.hclib.world.run_spmd` — run an SPMD program.
* :class:`~repro.hclib.world.PEContext` — per-PE handle (finish scopes,
  shmem access, local-compute charging).
* :class:`~repro.hclib.actor.Selector` / :class:`~repro.hclib.actor.Actor`
  — the messaging classes from Listings 1–2.
"""

from repro.hclib.actor import Actor, Mailbox, Selector
from repro.hclib.hooks import NullHooks, RuntimeHooks
from repro.hclib.world import FinishScope, PEContext, RunResult, World, run_spmd

__all__ = [
    "Actor",
    "FinishScope",
    "Mailbox",
    "NullHooks",
    "PEContext",
    "RunResult",
    "RuntimeHooks",
    "Selector",
    "World",
    "run_spmd",
]
