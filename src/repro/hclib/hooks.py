"""Tracing hook points placed inside the HClib-Actor runtime.

The paper (Section III): "ActorProf begins the trace generation by using
tracing hooks placed inside run-time system HClib-Actor, and the
aggregation library Conveyors."  These are those hooks.  The runtime calls
them unconditionally; the disabled default (:class:`NullHooks`) makes them
no-ops, mirroring compiled-out macros.

Region protocol
---------------
``main_enter``/``main_exit`` bracket user code in the finish body — entered
when the body starts, *exited* while the runtime is inside ``send``
internals or draining, and re-entered afterwards, so accumulated
MAIN time is exactly "body minus send" (Table I).  ``proc_enter``/
``proc_exit`` bracket each message-handler invocation (or batch).  COMM is
everything else and is derived, never measured directly — exactly like the
paper's ``T_COMM = T_TOTAL − T_MAIN − T_PROC``.

The user application is prohibited from calling these APIs (Table I,
"Region"); only the runtime does.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np


class RuntimeHooks(Protocol):
    """Receiver of HClib-Actor runtime events (implemented by ActorProf)."""

    def finish_start(self, pe: int) -> None:
        """A finish scope opened on ``pe`` (T_TOTAL measurement starts)."""

    def finish_end(self, pe: int) -> None:
        """The finish scope on ``pe`` completed (all messages processed)."""

    def main_enter(self, pe: int) -> None:
        """``pe`` (re-)entered user MAIN code."""

    def main_exit(self, pe: int) -> None:
        """``pe`` left user MAIN code (entering runtime internals)."""

    def proc_enter(self, pe: int, mailbox: int) -> None:
        """``pe`` is about to run message handler(s) for ``mailbox``."""

    def proc_exit(self, pe: int, mailbox: int, n_items: int) -> None:
        """Handler(s) for ``mailbox`` finished; ``n_items`` were processed."""

    def send(self, pe: int, mailbox: int, dst: int, nbytes: int) -> None:
        """One asynchronous point-to-point send (pre-aggregation)."""

    def send_batch(self, pe: int, mailbox: int, dsts: np.ndarray, nbytes: int) -> None:
        """A vectorized batch of sends; ``nbytes`` is the per-message size."""


class NullHooks:
    """All hooks compiled out (no profiling flags enabled)."""

    def finish_start(self, pe: int) -> None:  # noqa: D102
        pass

    def finish_end(self, pe: int) -> None:  # noqa: D102
        pass

    def main_enter(self, pe: int) -> None:  # noqa: D102
        pass

    def main_exit(self, pe: int) -> None:  # noqa: D102
        pass

    def proc_enter(self, pe: int, mailbox: int) -> None:  # noqa: D102
        pass

    def proc_exit(self, pe: int, mailbox: int, n_items: int) -> None:  # noqa: D102
        pass

    def send(self, pe: int, mailbox: int, dst: int, nbytes: int) -> None:  # noqa: D102
        pass

    def send_batch(self, pe: int, mailbox: int, dsts: np.ndarray, nbytes: int) -> None:  # noqa: D102
        pass
