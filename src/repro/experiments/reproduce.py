"""One-shot paper reproduction: ``python -m repro.experiments.reproduce``.

Runs the full Section IV case study ({1, 2} nodes × {cyclic, range}),
writes every figure as SVG, every trace file in the paper's formats, and
a ``REPORT.md`` summarizing paper-observation vs. measured-value for each
figure — the machine-generated companion to the repository's
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core.analysis import (
    DistributionComparison,
    OverallSummary,
    imbalance_ratio,
    is_lower_triangular_comm,
)
from repro.core.viz import bar_graph, heatmap_svg, stacked_bar_graph, violin_svg
from repro.experiments.casestudy import run_case_study


def reproduce(scale: int, outdir: Path, pes_per_node: int = 16) -> Path:
    """Run everything; returns the path of the written REPORT.md."""
    outdir.mkdir(parents=True, exist_ok=True)
    figdir = outdir / "figures"
    figdir.mkdir(exist_ok=True)

    runs = {}
    for nodes in (1, 2):
        for dist in ("cyclic", "range"):
            runs[(nodes, dist)] = run_case_study(
                nodes, dist, scale=scale, pes_per_node=pes_per_node
            )

    graph = runs[(1, "cyclic")].graph
    lines = [
        "# Reproduction report",
        "",
        f"- input: R-MAT scale {scale}, edge factor 16 "
        f"({graph.n_vertices} vertices, {graph.nnz} edges)",
        f"- triangles: {runs[(1, 'cyclic')].result.triangles} "
        "(validated on every run)",
        f"- machines: 1x{pes_per_node} and 2x{pes_per_node} PEs",
        "",
        "| figure | paper observation | measured |",
        "|---|---|---|",
    ]

    for nodes in (1, 2):
        tag = f"{nodes}n"
        cyc, rng = runs[(nodes, "cyclic")], runs[(nodes, "range")]
        # traces → files
        for dist, run in (("cyclic", cyc), ("range", rng)):
            run.profiler.write_traces(outdir / f"traces_{tag}_{dist}")
            (figdir / f"logical_{tag}_{dist}.svg").write_text(heatmap_svg(
                run.profiler.logical.matrix(),
                title=f"Logical, {nodes} node(s), 1D {dist}"))
            (figdir / f"physical_{tag}_{dist}.svg").write_text(heatmap_svg(
                run.profiler.physical.matrix(),
                title=f"Physical, {nodes} node(s), 1D {dist}"))
            (figdir / f"papi_{tag}_{dist}.svg").write_text(bar_graph(
                run.profiler.papi_trace.totals_per_pe("PAPI_TOT_INS"),
                title=f"PAPI_TOT_INS, {nodes} node(s), 1D {dist}",
                log_scale=(dist == "cyclic")))
            for rel in (False, True):
                kind = "rel" if rel else "abs"
                (figdir / f"overall_{tag}_{dist}_{kind}.svg").write_text(
                    stacked_bar_graph(run.profiler.overall, relative=rel,
                                      title=f"Overall, {nodes} node(s), 1D {dist}"))
        (figdir / f"violin_logical_{tag}.svg").write_text(violin_svg(
            {
                "cyclic sends": cyc.profiler.logical.sends_per_pe(),
                "cyclic recvs": cyc.profiler.logical.recvs_per_pe(),
                "range sends": rng.profiler.logical.sends_per_pe(),
                "range recvs": rng.profiler.logical.recvs_per_pe(),
            }, title=f"Logical quartiles, {nodes} node(s)"))
        (figdir / f"violin_physical_{tag}.svg").write_text(violin_svg(
            {
                "cyclic sends": cyc.profiler.physical.sends_per_pe(),
                "cyclic recvs": cyc.profiler.physical.recvs_per_pe(),
                "range sends": rng.profiler.physical.sends_per_pe(),
                "range recvs": rng.profiler.physical.recvs_per_pe(),
            }, title=f"Physical quartiles, {nodes} node(s)", ylabel="buffers"))

        # report rows
        cmp_ = DistributionComparison.of(cyc.profiler.logical, rng.profiler.logical)
        lines.append(
            f"| Fig {3 if nodes == 1 else 4} (logical heatmap, {tag}) | "
            "cyclic PE0-hot; range (L)-shaped | "
            f"PE0 hottest sender; range lower-triangular = "
            f"{is_lower_triangular_comm(rng.profiler.logical.matrix())} |"
        )
        lines.append(
            f"| Fig 5 ({tag}) | cyclic ~6x sends / ~2x recvs vs range | "
            f"{cmp_.max_sends_ratio:.1f}x sends, {cmp_.max_recvs_ratio:.1f}x recvs |"
        )
        by_c = cyc.profiler.physical.counts_by_type()
        lines.append(
            f"| Fig {8 if nodes == 1 else 9} (physical, {tag}) | "
            f"{'all local_send (1D linear)' if nodes == 1 else 'mesh: rows local, columns nonblock'} | "
            f"{by_c} |"
        )
        ic = cyc.profiler.papi_trace.totals_per_pe("PAPI_TOT_INS")
        lines.append(
            f"| Fig {10 if nodes == 1 else 11} (PAPI, {tag}) | "
            "cyclic PE0 ~4-5x instructions | "
            f"imbalance {imbalance_ratio(ic):.1f}x, hottest PE {int(ic.argmax())} |"
        )
        oc = OverallSummary.of(cyc.profiler.overall)
        orr = OverallSummary.of(rng.profiler.overall)
        lines.append(
            f"| Fig {12 if nodes == 1 else 13} (overall, {tag}) | "
            "COMM dominant; MAIN ≤5%; PROC 20-24% (range); range ~2x faster | "
            f"cyclic {oc.mean_main_frac:.0%}/{oc.mean_comm_frac:.0%}/"
            f"{oc.mean_proc_frac:.0%}, range {orr.mean_main_frac:.0%}/"
            f"{orr.mean_comm_frac:.0%}/{orr.mean_proc_frac:.0%}, "
            f"ratio {oc.max_total_cycles / orr.max_total_cycles:.1f}x |"
        )

    lines += [
        "",
        f"figures: `{figdir}/` — trace files: `{outdir}/traces_*/` "
        "(visualize with `actorprof <dir> --num-pes N -l -lp -s -p`)",
    ]
    report = outdir / "REPORT.md"
    report.write_text("\n".join(lines) + "\n")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.reproduce",
        description="Run the full ActorProf case-study reproduction",
    )
    parser.add_argument("--scale", type=int, default=10,
                        help="R-MAT scale (paper: 16; default 10)")
    parser.add_argument("--pes-per-node", type=int, default=16)
    parser.add_argument("--out", type=Path, default=Path("reproduction"),
                        help="output directory")
    args = parser.parse_args(argv)
    report = reproduce(args.scale, args.out, args.pes_per_node)
    print(f"wrote {report}")
    print(report.read_text())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
