"""Reproduction experiments: the paper's Section IV case study.

:func:`~repro.experiments.casestudy.run_case_study` runs profiled
distributed triangle counting in the paper's four configurations
({1 node, 2 nodes} × {1D Cyclic, 1D Range}) and caches results so the
per-figure benchmarks share runs.
"""

from repro.experiments.casestudy import (
    CaseStudySetup,
    CaseStudyRun,
    clear_cache,
    run_case_study,
)

__all__ = ["CaseStudyRun", "CaseStudySetup", "clear_cache", "run_case_study"]
