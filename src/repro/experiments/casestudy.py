"""The paper's case study: profiled distributed triangle counting.

Section IV runs Triangle Counting on an R-MAT scale-16 graph (graph500
parameters, edge factor 16) on 1 node/16 PEs and 2 nodes/32 PEs, comparing
1D Cyclic and 1D Range distributions, with every ActorProf capability
enabled.  This module reproduces those runs at a configurable scale
(default 10 — the pure-Python simulator's practical sweet spot; raise
``REPRO_SCALE`` to push toward the paper's 16: the power-law shape that
drives every observation is scale-invariant).

Runs are memoized per setup so that the per-figure benchmarks (Figs. 3-5,
7-13 all come from the same four runs) don't recompute them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.apps.triangle import TriangleResult, count_triangles
from repro.conveyors.conveyor import ConveyorConfig
from repro.core.flags import ProfileFlags
from repro.core.profiler import ActorProf
from repro.graphs.distributions import make_distribution
from repro.graphs.matrix import LowerTriangular
from repro.graphs.rmat import graph500_input
from repro.machine.spec import MachineSpec


def default_scale() -> int:
    """R-MAT scale for experiments (env override: ``REPRO_SCALE``)."""
    return int(os.environ.get("REPRO_SCALE", "10"))


@dataclass(frozen=True)
class CaseStudySetup:
    """One experimental configuration of the case study."""

    nodes: int = 1
    pes_per_node: int = 16
    distribution: str = "cyclic"
    scale: int = 10
    edge_factor: int = 16
    seed: int = 0
    buffer_items: int = 64
    papi_sample_interval: int = 64
    self_send_bypass: bool = False
    topology: str = "auto"

    @property
    def machine(self) -> MachineSpec:
        return MachineSpec.perlmutter_like(self.nodes, self.pes_per_node)

    @property
    def conveyor_config(self) -> ConveyorConfig:
        return ConveyorConfig(
            payload_words=2,
            buffer_items=self.buffer_items,
            topology=self.topology,
            self_send_bypass=self.self_send_bypass,
        )


@dataclass
class CaseStudyRun:
    """A completed profiled run."""

    setup: CaseStudySetup
    result: TriangleResult
    profiler: ActorProf
    graph: LowerTriangular = field(repr=False)


_GRAPH_CACHE: dict[tuple[int, int, int], LowerTriangular] = {}
_RUN_CACHE: dict[CaseStudySetup, CaseStudyRun] = {}


def case_study_graph(scale: int, edge_factor: int = 16, seed: int = 0) -> LowerTriangular:
    """The (memoized) R-MAT input graph."""
    key = (scale, edge_factor, seed)
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        graph = LowerTriangular.from_edges(
            graph500_input(scale, edge_factor=edge_factor, seed=seed)
        )
        _GRAPH_CACHE[key] = graph
    return graph


def run_case_study(
    nodes: int = 1,
    distribution: str = "cyclic",
    scale: int | None = None,
    **overrides,
) -> CaseStudyRun:
    """Run (or fetch the cached) case-study configuration.

    Returns the triangle-count result, the attached profiler with all four
    traces, and the input graph.
    """
    setup = CaseStudySetup(
        nodes=nodes,
        distribution=distribution,
        scale=scale if scale is not None else default_scale(),
        **overrides,
    )
    cached = _RUN_CACHE.get(setup)
    if cached is not None:
        return cached
    graph = case_study_graph(setup.scale, setup.edge_factor, setup.seed)
    profiler = ActorProf(
        ProfileFlags.all(papi_sample_interval=setup.papi_sample_interval)
    )
    dist = make_distribution(setup.distribution, graph, setup.machine.n_pes)
    result = count_triangles(
        graph,
        setup.machine,
        dist,
        profiler=profiler,
        conveyor_config=setup.conveyor_config,
        validate=True,
        seed=setup.seed,
    )
    run = CaseStudyRun(setup=setup, result=result, profiler=profiler, graph=graph)
    _RUN_CACHE[setup] = run
    return run


def clear_cache() -> None:
    """Drop memoized graphs and runs (tests use this for isolation)."""
    _GRAPH_CACHE.clear()
    _RUN_CACHE.clear()
