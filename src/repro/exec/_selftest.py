"""Tiny worker functions for exercising the run engine itself.

The engine resolves workers by dotted path and spawned children import
them fresh, so test workers must live in an installed module — closures
and test-file functions don't survive the trip.  Everything here is
deliberately trivial; the unit tests drive pools, caches, and crash
isolation through these.
"""

from __future__ import annotations

import os
from pathlib import Path


def echo(out_dir: Path, *, value) -> dict:
    """Return the input (and the worker's PID, for pool introspection)."""
    return {"value": value, "pid": os.getpid()}


def write_artifact(out_dir: Path, *, name: str, text: str) -> dict:
    """Write one artifact file and declare it for the result cache."""
    path = Path(out_dir) / name
    path.write_text(text)
    return {"artifacts": [name], "length": len(text)}


def boom(out_dir: Path, *, message: str = "kaboom") -> dict:
    """Raise — must surface as a failure record, not break the pool."""
    raise RuntimeError(message)


def die(out_dir: Path, *, code: int = 17) -> dict:
    """Kill the worker process outright — the crash-isolation case."""
    os._exit(code)


def touch_and_count(out_dir: Path, *, name: str) -> dict:
    """Append to a side-effect file; lets tests count real executions."""
    path = Path(out_dir) / name
    with open(path, "a") as f:
        f.write("x")
    return {"artifacts": [name], "runs": path.stat().st_size}
