"""The process pool: fan :class:`RunSpec` lists across CPU cores.

Design constraints, in priority order:

1. **Byte-identical merges.**  Results come back sorted by spec order,
   never completion order, so ``--jobs N`` equals ``--jobs 1`` exactly.
2. **Crash isolation.**  A worker that *dies* (segfault, ``os._exit``,
   OOM-kill) breaks a ``ProcessPoolExecutor``; the engine responds by
   re-running the not-yet-finished specs in a fresh pool, and when a
   pool breaks without completing anything, the first remaining spec is
   probed alone in a single-worker pool — if it kills that one too, it
   is marked as a per-run failure record and the batch moves on.  Every
   run is deterministic and independent, so re-running a survivor is
   always safe.
3. **Spawned workers.**  The ``spawn`` start method (fork is unsafe with
   threads and non-portable) means children import ``repro`` afresh;
   the engine injects the package's source root into ``PYTHONPATH``
   around pool creation so workers resolve it without installation.

Exceptions *raised* by a worker function never break the pool: the
worker wrapper catches them and returns a failure record, keeping the
failure attributable to its spec.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from multiprocessing import get_context
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Iterator, Sequence

import repro
from repro.exec.cache import ResultCache
from repro.exec.runspec import RunRecord, RunSpec, resolve_fn

#: Source root that spawned workers need on ``sys.path`` to import repro.
_SRC_ROOT = str(Path(repro.__file__).resolve().parent.parent)


def _worker(spec: RunSpec, out_dir: str) -> RunRecord:
    """Run one spec; exceptions become failure records, never pool breaks."""
    try:
        fn = resolve_fn(spec.fn)
        value = fn(Path(out_dir), **spec.kwargs)
        return RunRecord(index=spec.index, tag=spec.tag, ok=True, value=value)
    except BaseException as exc:  # noqa: BLE001 - attribute, don't propagate
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return RunRecord(index=spec.index, tag=spec.tag, ok=False,
                         error=f"{type(exc).__name__}: {exc}")


@contextmanager
def _spawn_environment() -> Iterator[None]:
    """Make ``spawn`` children viable regardless of the parent's setup.

    Two parent-side quirks can kill every worker before it runs a spec:

    * ``repro`` imported from a source tree that is not on the child's
      default ``sys.path`` — fixed by prepending the source root to
      ``PYTHONPATH`` (children inherit the environment at spawn time);
    * spawn's ``prepare()`` re-executes the parent's ``__main__`` in
      every child: a plain driver script calling ``audit(jobs=4)``
      without a ``__main__`` guard would fork-bomb itself, and a REPL /
      ``python -`` parent (``__file__ = '<stdin>'``) dies outright.
      Workers resolve their functions by dotted path from installed
      modules and never need the parent's ``__main__``, so when
      ``__main__`` is a plain script (``__spec__ is None``) its
      ``__file__`` is hidden for the duration of the pool.

    Spawning happens lazily at submit time, so this context must wrap
    the submit loop, not just executor construction.
    """
    import sys

    old_path = os.environ.get("PYTHONPATH")
    parts = [p for p in (old_path or "").split(os.pathsep) if p]
    if _SRC_ROOT not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([_SRC_ROOT, *parts])

    main_module = sys.modules.get("__main__")
    main_file = getattr(main_module, "__file__", None)
    hide_main = (main_module is not None and main_file is not None
                 and getattr(main_module, "__spec__", None) is None)
    if hide_main:
        del main_module.__file__
    try:
        yield
    finally:
        if old_path is None:
            os.environ.pop("PYTHONPATH", None)
        elif _SRC_ROOT not in parts:
            os.environ["PYTHONPATH"] = old_path
        if hide_main:
            main_module.__file__ = main_file


def _pool_pass(specs: Sequence[RunSpec], jobs: int,
               scratch_dir: Path) -> dict[int, RunRecord]:
    """One pool lifetime; returns whatever completed before any break."""
    done: dict[int, RunRecord] = {}
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(specs)),
                               mp_context=get_context("spawn"))
    try:
        with _spawn_environment():
            futures = [(pool.submit(_worker, spec, str(scratch_dir)), spec)
                       for spec in specs]
            for future, spec in futures:
                try:
                    done[spec.index] = future.result()
                except BrokenProcessPool:
                    continue  # worker died; survivors rerun next pass
                except Exception as exc:  # e.g. result unpicklable
                    done[spec.index] = RunRecord(
                        index=spec.index, tag=spec.tag, ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                    )
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    return done


def _run_pooled(specs: Sequence[RunSpec], jobs: int,
                scratch_dir: Path) -> dict[int, RunRecord]:
    """Run all specs, isolating worker deaths to per-run failure records."""
    records: dict[int, RunRecord] = {}
    remaining = list(specs)
    while remaining:
        done = _pool_pass(remaining, jobs, scratch_dir)
        records.update(done)
        if not done:
            # The pool broke before finishing anything: probe the first
            # spec alone so the killer is identified, not retried forever.
            probe = remaining[0]
            solo = _pool_pass([probe], 1, scratch_dir)
            records[probe.index] = solo.get(probe.index) or RunRecord(
                index=probe.index, tag=probe.tag, ok=False,
                error="worker process died before returning a result "
                      "(crash isolated; remaining runs unaffected)",
            )
        remaining = [s for s in remaining if s.index not in records]
    return records


def execute(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    scratch_dir: str | Path | None = None,
    cache: ResultCache | str | Path | None = None,
) -> list[RunRecord]:
    """Execute every spec; return records in spec order.

    Parameters
    ----------
    specs:
        The units of work.  Indices must be unique — they define the
        deterministic merge order of the returned list.
    jobs:
        Worker process count.  ``jobs <= 1`` runs every spec inline in
        this process (no spawn overhead; caching still applies).
    scratch_dir:
        Shared directory the workers write artifacts into.  A temporary
        directory is used — and deleted — when omitted, so pass one
        whenever artifact files must outlive the call.
    cache:
        A :class:`ResultCache` (or a directory path for one).  Specs
        with a ``cache_key`` are served from it when possible and
        stored into it after a successful run.
    """
    specs = list(specs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    indices = [s.index for s in specs]
    if len(set(indices)) != len(indices):
        raise ValueError("RunSpec indices must be unique within one batch")
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(Path(cache))

    tmp: TemporaryDirectory | None = None
    if scratch_dir is None:
        tmp = TemporaryDirectory(prefix="actorprof-exec-")
        scratch_dir = Path(tmp.name)
    else:
        scratch_dir = Path(scratch_dir)
        scratch_dir.mkdir(parents=True, exist_ok=True)

    try:
        records: dict[int, RunRecord] = {}
        pending: list[RunSpec] = []
        for spec in specs:
            if cache is not None and spec.cache_key:
                value = cache.get(spec.cache_key, scratch_dir)
                if value is not None:
                    records[spec.index] = RunRecord(
                        index=spec.index, tag=spec.tag, ok=True,
                        value=value, cached=True,
                    )
                    continue
            pending.append(spec)

        if jobs == 1:
            fresh = {s.index: _worker(s, str(scratch_dir)) for s in pending}
        else:
            fresh = _run_pooled(pending, jobs, scratch_dir)
        records.update(fresh)

        if cache is not None:
            for spec in pending:
                rec = records[spec.index]
                if spec.cache_key and rec.ok and isinstance(rec.value, dict):
                    cache.put(spec.cache_key, rec.value, scratch_dir)
        return [records[s.index] for s in specs]
    finally:
        if tmp is not None:
            tmp.cleanup()
