"""Picklable units of work for the parallel run engine.

A :class:`RunSpec` names a *module-level* worker function by dotted path
(``"repro.check.parallel:run_audit_schedule"``) plus JSON-serializable
keyword arguments.  Keeping the payload declarative — no live objects,
no closures — is what makes a spec safe to ship to a spawned process
and what makes its cache key well-defined: the key is the sha256 of the
canonical JSON of ``{fn, kwargs}``, the same hash family the run
registry stamps on ``.aptrc`` archives.

The worker function contract::

    def fn(out_dir: Path, **kwargs) -> dict

It writes any artifact files (archives, reports) into ``out_dir`` using
names unique to this spec (conventionally derived from ``tag``), lists
them under the ``"artifacts"`` key of its returned dict (paths relative
to ``out_dir``), and returns only JSON-serializable data — the return
value is pickled back to the parent and may be persisted by the result
cache.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable


def cache_key_for(fn: str, kwargs: dict) -> str:
    """The sha256 cache key of one unit of work.

    Canonical JSON (sorted keys, no whitespace) over the function path
    and its kwargs — anything that changes the run's inputs changes the
    key, anything that doesn't (scratch paths, job counts) must stay out
    of ``kwargs``.
    """
    try:
        blob = json.dumps({"fn": fn, "kwargs": kwargs}, sort_keys=True,
                          separators=(",", ":"))
    except TypeError as exc:
        raise ValueError(
            f"RunSpec kwargs must be JSON-serializable to be cacheable: {exc}"
        ) from None
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def resolve_fn(path: str) -> Callable[..., Any]:
    """Import ``"pkg.module:function"`` and return the callable."""
    module_name, sep, fn_name = path.partition(":")
    if not sep or not module_name or not fn_name:
        raise ValueError(
            f"worker function path must look like 'pkg.module:function': "
            f"{path!r}"
        )
    module = importlib.import_module(module_name)
    fn = getattr(module, fn_name, None)
    if not callable(fn):
        raise ValueError(f"{path!r} does not name a callable")
    return fn


@dataclass(frozen=True)
class RunSpec:
    """One replayable unit of work for :func:`repro.exec.execute`."""

    #: Merge position: results are returned sorted by spec order, so the
    #: index must be unique within one ``execute`` call.
    index: int
    #: Dotted path of the worker function, ``"pkg.module:function"``.
    fn: str
    #: JSON-serializable keyword arguments (the cache key material).
    kwargs: dict = field(default_factory=dict)
    #: Human-readable label (``"s3"``, ``"seed7"``); also the convention
    #: workers use to name their artifact files uniquely.
    tag: str = ""
    #: Precomputed cache key; ``None`` disables caching for this spec.
    cache_key: str | None = None

    def with_cache_key(self) -> "RunSpec":
        """A copy of this spec with its cache key filled in."""
        from dataclasses import replace

        return replace(self, cache_key=cache_key_for(self.fn, self.kwargs))


@dataclass(frozen=True)
class RunRecord:
    """What one spec produced: a value, a cached value, or a failure."""

    index: int
    tag: str
    ok: bool
    #: The worker function's return value (``None`` on failure).
    value: Any = None
    #: ``"ExcType: message"`` for an exception, or a description of a
    #: worker-process death, when ``ok`` is False.
    error: str | None = None
    #: True when the value was served from the result cache.
    cached: bool = False
