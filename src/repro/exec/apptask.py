"""Worker function for ``actorprof run`` sweeps and benchmark repeats.

One call = one profiled app execution = one sweep point.  The function
is engine-friendly: module-level, JSON-serializable inputs and outputs,
artifacts dropped in ``out_dir``.  Failure semantics mirror the
single-run CLI: a run that dies under a fault plan is *salvaged* into a
degraded archive when an archive name was requested (per-point exit
code 3), otherwise it is a plain failure (exit code 1).
"""

from __future__ import annotations

import contextlib
from pathlib import Path


def run_app_point(
    out_dir: Path,
    *,
    app: str,
    nodes: int = 2,
    pes_per_node: int = 2,
    updates: int = 2000,
    table_size: int = 512,
    scale: int = 8,
    distribution: str = "cyclic",
    seed: int = 0,
    fault_plan: dict | None = None,
    archive_name: str | None = None,
) -> dict:
    """Run one built-in app once; return a JSON-serializable outcome."""
    from repro.core.profiler import ActorProf
    from repro.exec.cache import file_sha256
    from repro.machine.spec import MachineSpec
    from repro.sim.errors import SimulationError
    from repro.sim.faults import FaultPlan, use_plan

    if app not in ("histogram", "triangle"):
        raise ValueError(f"unknown app {app!r}; want histogram or triangle")
    spec = MachineSpec(nodes, pes_per_node)
    plan = FaultPlan.from_dict(fault_plan) if fault_plan else None
    if plan is not None:
        plan.validate(spec.n_pes)

    params = {"nodes": nodes, "pes_per_node": pes_per_node, "seed": seed}
    profiler = ActorProf()
    meta: dict = {"app": app, "seed": seed}
    if plan is not None:
        meta["fault_plan"] = plan.to_dict()
    scope = use_plan(plan) if plan is not None else contextlib.nullcontext()
    failure: BaseException | None = None
    summary = ""
    try:
        with scope:
            if app == "histogram":
                from repro.apps.histogram import histogram

                res = histogram(updates, table_size, machine=spec,
                                profiler=profiler, seed=seed)
                summary = f"histogram: {res.total_updates:,} updates delivered"
                params.update(updates=updates, table_size=table_size)
                meta.update(updates=updates, table_size=table_size)
            else:
                from repro.apps.triangle import count_triangles
                from repro.experiments.casestudy import case_study_graph

                graph = case_study_graph(scale, seed=seed)
                res = count_triangles(graph, spec, distribution,
                                      profiler=profiler, seed=seed)
                summary = f"triangle: {res.triangles:,} triangles"
                params.update(scale=scale, distribution=distribution)
                meta.update(scale=scale, distribution=distribution)
    except SimulationError as exc:
        failure = exc

    outcome = {
        "app": app,
        "params": params,
        "summary": summary,
        "exit_code": 0,
        "error": None,
        "archive": None,
        "archive_sha256": None,
        "artifacts": [],
    }
    out_dir = Path(out_dir)
    if failure is None:
        if archive_name is not None:
            path = profiler.export_archive(out_dir / archive_name, meta=meta)
            outcome.update(archive=archive_name,
                           archive_sha256=file_sha256(path),
                           artifacts=[archive_name])
        return outcome

    first_line = str(failure).splitlines()[0]
    outcome["error"] = f"{type(failure).__name__}: {first_line}"
    outcome["summary"] = ""
    if archive_name is None:
        outcome["exit_code"] = 1
        return outcome
    path = profiler.salvage_archive(out_dir / archive_name, failure=failure,
                                   meta=meta)
    outcome.update(exit_code=3, archive=archive_name,
                   archive_sha256=file_sha256(path), artifacts=[archive_name])
    return outcome
