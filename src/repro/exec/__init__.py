"""``repro.exec`` — the parallel run engine.

ActorProf's analyses are built out of *independent, replayable* runs:
one ActorCheck schedule, one benchmark repeat, one parameter-sweep
point.  Each is fully described by a picklable :class:`RunSpec` (a
dotted-path worker function plus JSON-serializable kwargs), executes in
a spawned worker process, and leaves its artifacts (``.aptrc`` archives)
in a shared scratch directory.  :func:`execute` fans a list of specs out
across CPU cores and returns :class:`RunRecord` results in *spec order*
— a deterministic merge, so ``--jobs N`` output is byte-identical to
``--jobs 1``.

A :class:`ResultCache` keyed by the sha256 of each spec's key material
(the same fingerprint scheme the run registry stamps on archives) lets
unchanged ``(workload, seed, schedule)`` triples skip execution entirely
on re-audit.

A worker process that *dies* (segfault, ``os._exit``) is isolated: the
engine re-runs the survivors and maps the dead run to a per-run failure
record instead of losing the whole batch.
"""

from repro.exec.cache import ResultCache
from repro.exec.pool import execute
from repro.exec.runspec import RunRecord, RunSpec, cache_key_for, resolve_fn

__all__ = [
    "ResultCache",
    "RunRecord",
    "RunSpec",
    "cache_key_for",
    "execute",
    "resolve_fn",
]
