"""On-disk result cache for the parallel run engine.

Entries are keyed by :func:`repro.exec.runspec.cache_key_for` — the
sha256 of a spec's ``{fn, kwargs}`` — so an unchanged ``(workload,
seed, schedule)`` triple maps to the same entry across processes and
sessions.  An entry holds the worker's returned value plus a copy of
every artifact file it produced, each stamped with its own sha256 (the
same fingerprint the run registry records for archives).  On a hit the
artifacts are re-verified against those fingerprints before being
restored; any corruption demotes the hit to a miss and evicts the
entry, so a poisoned cache can never alter results — only cost a rerun.

Layout::

    <root>/<key[:2]>/<key>/manifest.json   # {"value": ..., "artifacts": [...]}
    <root>/<key[:2]>/<key>/<artifact files>

Writes are atomic (staged into a temp directory, then renamed), so a
crashed or concurrent writer leaves either no entry or a whole one.

The store may be size-bounded: with ``max_bytes`` set, every ``put``
enforces the cap by evicting least-recently-used entries (a hit
refreshes an entry's recency stamp) until the store fits.  The entry
just stored is never the eviction victim, so a single oversized result
still lands — the cap is a steady-state bound, not an admission filter.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path


def file_sha256(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store/evict counters, safe to bump from several threads."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def to_dict(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "stores": self.stores, "evictions": self.evictions}


@dataclass
class ResultCache:
    """A content-addressed store of run results and their artifacts."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)
    #: Total on-disk size bound; ``None`` leaves the store unbounded.
    max_bytes: int | None = None

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        if self.max_bytes is not None and self.max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1: {self.max_bytes}")
        self._cap_lock = threading.Lock()

    def _entry_dir(self, key: str) -> Path:
        if len(key) < 3:
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / key

    def get(self, key: str, restore_dir: Path) -> dict | None:
        """Return the stored value, restoring artifacts into ``restore_dir``.

        Returns ``None`` (a miss) when the entry is absent, unreadable,
        or any artifact fails its sha256 check — corrupt entries are
        evicted on the way out.
        """
        entry = self._entry_dir(key)
        manifest_path = entry / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError):
            self.stats.bump("misses")
            return None
        try:
            restore_dir = Path(restore_dir)
            restore_dir.mkdir(parents=True, exist_ok=True)
            staged = []
            for art in manifest.get("artifacts", []):
                src = entry / art["name"]
                if file_sha256(src) != art["sha256"]:
                    raise ValueError(f"artifact {art['name']} fingerprint "
                                     f"mismatch")
                staged.append((src, restore_dir / art["name"]))
            for src, dst in staged:
                shutil.copyfile(src, dst)
        except (OSError, KeyError, ValueError):
            self.evict(key)
            self.stats.bump("misses")
            return None
        try:
            os.utime(manifest_path)  # refresh LRU recency stamp
        except OSError:
            pass
        self.stats.bump("hits")
        return manifest["value"]

    def put(self, key: str, value: dict, artifact_dir: Path) -> bool:
        """Store ``value`` plus the artifacts it names in ``artifact_dir``.

        Artifact names come from ``value["artifacts"]`` (relative paths).
        Returns False — without raising — when the value is not
        JSON-serializable or an artifact is missing: a broken store must
        never fail the run that produced the result.
        """
        entry = self._entry_dir(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        stage = Path(tempfile.mkdtemp(prefix=".stage-", dir=self.root))
        try:
            artifacts = []
            for name in (value or {}).get("artifacts", []):
                src = Path(artifact_dir) / name
                dst = stage / name
                dst.parent.mkdir(parents=True, exist_ok=True)
                shutil.copyfile(src, dst)
                artifacts.append({"name": name, "sha256": file_sha256(dst)})
            manifest = {"key": key, "value": value, "artifacts": artifacts}
            (stage / "manifest.json").write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n"
            )
            if entry.exists():
                shutil.rmtree(entry, ignore_errors=True)
            stage.rename(entry)
        except (OSError, TypeError, ValueError):
            shutil.rmtree(stage, ignore_errors=True)
            return False
        self.stats.bump("stores")
        if self.max_bytes is not None:
            self._enforce_cap(protect=key)
        return True

    def evict(self, key: str) -> None:
        shutil.rmtree(self._entry_dir(key), ignore_errors=True)
        self.stats.bump("evictions")

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*/manifest.json"))

    # -- size bounding ----------------------------------------------------

    def entries(self) -> list[tuple[str, float, int]]:
        """Every entry as ``(key, recency_stamp, size_bytes)``.

        The recency stamp is the manifest's mtime: set at store time and
        refreshed on every hit, which is exactly LRU order.
        """
        out = []
        for manifest in self.root.glob("??/*/manifest.json"):
            entry = manifest.parent
            try:
                stamp = manifest.stat().st_mtime
                size = sum(p.stat().st_size
                           for p in entry.iterdir() if p.is_file())
            except OSError:
                continue  # concurrently evicted
            out.append((entry.name, stamp, size))
        return out

    def total_bytes(self) -> int:
        return sum(size for _, _, size in self.entries())

    def _enforce_cap(self, protect: str | None = None) -> None:
        """Evict least-recently-used entries until the store fits.

        ``protect`` (the entry just stored) is never evicted — otherwise
        one result larger than the cap would thrash forever.
        """
        with self._cap_lock:
            ranked = sorted(self.entries(), key=lambda e: (e[1], e[0]))
            total = sum(size for _, _, size in ranked)
            for key, _, size in ranked:
                if total <= self.max_bytes:
                    break
                if key == protect:
                    continue
                self.evict(key)
                total -= size
