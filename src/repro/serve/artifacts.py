"""The content-addressed shared artifact store behind the service.

This is the PR-4 :class:`~repro.exec.cache.ResultCache` generalized for
multi-tenant serving, as Traveler (PAPERS.md) argues: many concurrent
viewers must be served from precomputed/cached aggregates, not
per-request raw-event work.  Keys are derived from *content*, never
identity: an archive's sha256 fingerprint (the same receipt the run
registry stamps) plus the :func:`repro.core.query.normalize`-d query
text.  Two different clients asking the same question about the same
bytes — even via different run ids, registries, or query spellings —
therefore share one cache entry.

The store is size-bounded (LRU, see ``ResultCache.max_bytes``) so a
long-running service cannot grow its disk footprint without bound.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.exec.cache import CacheStats, ResultCache


def _key(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def query_key(fingerprint: str, section: str, canonical_query: str) -> str:
    """Cache key for one (archive, section, query) evaluation."""
    return _key({"kind": "query", "fingerprint": fingerprint,
                 "section": section, "query": canonical_query})


def diff_key(fingerprint_a: str, fingerprint_b: str) -> str:
    """Cache key for one ordered archive-pair diff."""
    return _key({"kind": "diff", "a": fingerprint_a, "b": fingerprint_b})


def viz_key(fingerprint: str, view: str, t0: int | None, t1: int | None,
            res: int | None) -> str:
    """Cache key for one LOD viz render (view + snapped-viewport args).

    ``None`` window/resolution values key distinctly from explicit
    ones: the defaults depend on the archive's pyramid shape, which the
    fingerprint already pins.
    """
    return _key({"kind": "viz", "fingerprint": fingerprint, "view": view,
                 "t0": t0, "t1": t1, "res": res})


class ArtifactStore:
    """A size-bounded :class:`ResultCache` plus the content-address scheme.

    The underlying cache plugs straight into :func:`repro.exec.execute`
    (specs carry these keys as their ``cache_key``), so cache lookup,
    tamper re-verification, atomic stores, and LRU eviction all ride
    the existing engine.
    """

    def __init__(self, root: str | Path, max_bytes: int | None = None) -> None:
        self.cache = ResultCache(Path(root), max_bytes=max_bytes)

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def to_dict(self) -> dict:
        """Stats payload served by the ``/stats`` endpoint."""
        payload = self.stats.to_dict()
        payload["entries"] = len(self.cache)
        payload["bytes"] = self.cache.total_bytes()
        payload["max_bytes"] = self.cache.max_bytes
        return payload
