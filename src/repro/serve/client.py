"""A small blocking client for the ActorProf service.

Used by ``actorprof push``, the tests, and the throughput benchmark.
Hand-rolled on :mod:`socket` (one connection per request) so it can
exercise the server's real wire behavior: chunked streaming uploads,
429 + ``Retry-After`` backpressure, and — in tests — deliberately
truncated bodies.

Backpressure is a first-class outcome, not an error: :meth:`push`
sleeps for the server's advertised ``Retry-After`` and retries, so a
storm of pushing clients self-paces instead of dropping uploads.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import Iterable


class ServeError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class Backpressure(ServeError):
    """429: the ingest queue is full; retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(429, message)
        self.retry_after = retry_after


class ServeClient:
    """Talk to one ActorProf service instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8750,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- wire -------------------------------------------------------------

    def request(self, method: str, path: str, body: bytes | None = None,
                chunks: Iterable[bytes] | None = None,
                headers: dict[str, str] | None = None,
                ) -> tuple[int, dict[str, str], bytes]:
        """One request/response exchange on a fresh connection."""
        head = [f"{method} {path} HTTP/1.1",
                f"Host: {self.host}:{self.port}",
                "Connection: close"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        if chunks is not None:
            head.append("Transfer-Encoding: chunked")
        elif body is not None:
            head.append(f"Content-Length: {len(body)}")
        wire_head = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as sock:
            sock.sendall(wire_head)
            if chunks is not None:
                for chunk in chunks:
                    if chunk:
                        sock.sendall(b"%x\r\n" % len(chunk) + chunk + b"\r\n")
                sock.sendall(b"0\r\n\r\n")
            elif body is not None:
                sock.sendall(body)
            return self._read_response(sock)

    def _read_response(self, sock: socket.socket
                       ) -> tuple[int, dict[str, str], bytes]:
        raw = b""
        while b"\r\n\r\n" not in raw:
            data = sock.recv(1 << 16)
            if not data:
                raise ServeError(0, "connection closed before response head")
            raw += data
        head, _, rest = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            status = int(lines[0].split(" ")[1])
        except (IndexError, ValueError):
            raise ServeError(0, f"malformed status line {lines[0]!r}") from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        body = rest
        while len(body) < length:
            data = sock.recv(1 << 16)
            if not data:
                raise ServeError(0, "connection closed mid-response-body")
            body += data
        return status, headers, body[:length]

    def request_json(self, method: str, path: str, **kwargs) -> dict:
        status, headers, body = self.request(method, path, **kwargs)
        try:
            payload = json.loads(body) if body else {}
        except ValueError:
            payload = {"error": body.decode("latin-1", "replace")}
        if status == 429:
            raise Backpressure(payload.get("error", "backpressure"),
                               float(headers.get("retry-after", 1.0)))
        if status >= 400:
            raise ServeError(status, payload.get("error", f"status {status}"))
        return payload

    # -- API --------------------------------------------------------------

    def health(self) -> dict:
        return self.request_json("GET", "/healthz")

    def stats(self) -> dict:
        return self.request_json("GET", "/stats")

    def runs(self) -> list[dict]:
        return self.request_json("GET", "/runs")["runs"]

    def show(self, run: str) -> dict:
        return self.request_json("GET", f"/runs/{run}")

    def push(self, archive_path: str | Path, run_id: str | None = None,
             chunk_size: int = 64 * 1024, retries: int = 8) -> dict:
        """Stream an archive up; waits out backpressure, then retries.

        Raises :class:`Backpressure` only after ``retries`` rounds of
        429 — by then the server has been saturated for a while and the
        caller should know.
        """
        archive_path = Path(archive_path)
        path = "/runs" + (f"?id={run_id}" if run_id else "")

        def chunks() -> Iterable[bytes]:
            with open(archive_path, "rb") as f:
                yield from iter(lambda: f.read(chunk_size), b"")

        for attempt in range(retries + 1):
            try:
                return self.request_json("POST", path, chunks=chunks())
            except Backpressure as exc:
                if attempt == retries:
                    raise
                time.sleep(exc.retry_after)
        raise AssertionError("unreachable")

    def query(self, run: str, query: str, section: str = "logical") -> dict:
        from urllib.parse import quote

        return self.request_json(
            "GET", f"/runs/{quote(run)}/query?section={quote(section)}"
                   f"&q={quote(query)}")

    def viz(self, run: str, view: str, t0: int | None = None,
            t1: int | None = None, res: int | None = None,
            ) -> tuple[str, dict[str, str]]:
        """Fetch one LOD viz SVG; returns ``(svg_text, headers)``.

        The headers carry ``x-cache`` (artifact-store hit/miss),
        ``x-lod-level`` and ``x-viewport`` for drill-down clients.
        """
        from urllib.parse import quote

        params = "&".join(f"{k}={v}" for k, v in
                          (("t0", t0), ("t1", t1), ("res", res))
                          if v is not None)
        path = f"/runs/{quote(run)}/viz/{quote(view)}"
        if params:
            path += f"?{params}"
        status, headers, body = self.request("GET", path)
        if status >= 400:
            try:
                message = json.loads(body).get("error", f"status {status}")
            except ValueError:
                message = body.decode("latin-1", "replace")
            raise ServeError(status, message)
        return body.decode("utf-8"), headers

    def diff(self, run_a: str, run_b: str) -> dict:
        from urllib.parse import quote

        return self.request_json(
            "GET", f"/diff?a={quote(run_a)}&b={quote(run_b)}")

    def shutdown(self) -> dict:
        return self.request_json("POST", "/shutdown")
