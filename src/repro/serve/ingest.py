"""Streaming archive ingest with explicit backpressure.

Uploads are admitted through an :class:`IngestGate` that reserves spool
capacity *before* any body byte is read: when every ingest slot is busy
or the spill buffer is fully reserved, the client gets ``429`` with a
``Retry-After`` header instead of an ever-growing queue — memory and
disk stay bounded no matter how many runs push at once.  Admitted
uploads stream chunk-by-chunk to a ``.part`` spool file (hashing as
they go, never buffering the archive in memory) and are validated as
``.aptrc`` before registration; archives salvaged from crashed runs by
the PR-2 salvage path carry a ``degraded`` footer flag and are accepted
and registered as such — a partial *run* is worth keeping, a partial
*upload* is not and is rejected with ``400``.
"""

from __future__ import annotations

import asyncio
import hashlib
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.serve.http import HttpError, Request, iter_body


@dataclass(frozen=True)
class IngestLimits:
    """Admission-control bounds for the ingest path."""

    #: Concurrent uploads allowed past the gate.
    max_active: int = 8
    #: Largest single archive accepted (413 beyond this).
    max_archive_bytes: int = 64 * 1024 * 1024
    #: Total spool reservation across active uploads (429 beyond this).
    max_pending_bytes: int = 256 * 1024 * 1024
    #: Seconds clients should wait before retrying a 429.
    retry_after: float = 1.0


@dataclass
class IngestStats:
    accepted: int = 0
    deduped: int = 0
    degraded: int = 0
    rejected_backpressure: int = 0
    rejected_oversize: int = 0
    rejected_corrupt: int = 0
    bytes_ingested: int = 0

    def to_dict(self) -> dict:
        return dict(vars(self))


class Backpressure(HttpError):
    """429 + Retry-After: the ingest queue is full, try again shortly."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(429, message,
                         headers={"Retry-After": f"{retry_after:g}"})


@dataclass
class IngestGate:
    """Bounded admission for uploads (single event loop, no locking).

    A successful :meth:`admit` reserves one slot and a worst-case byte
    budget — the declared ``Content-Length`` when the client sent one,
    else the archive size cap — and returns the reservation, which MUST
    be released when the upload ends, however it ends.
    """

    limits: IngestLimits = field(default_factory=IngestLimits)
    stats: IngestStats = field(default_factory=IngestStats)
    active: int = 0
    reserved_bytes: int = 0

    def admit(self, declared_length: int | None) -> int:
        reservation = (declared_length if declared_length is not None
                       else self.limits.max_archive_bytes)
        if reservation > self.limits.max_archive_bytes:
            self.stats.rejected_oversize += 1
            raise HttpError(
                413, f"archive of {reservation:,} bytes exceeds the "
                     f"{self.limits.max_archive_bytes:,}-byte limit")
        if (self.active >= self.limits.max_active
                or self.reserved_bytes + reservation
                > self.limits.max_pending_bytes):
            self.stats.rejected_backpressure += 1
            raise Backpressure(
                f"ingest at capacity ({self.active} active uploads, "
                f"{self.reserved_bytes:,} bytes reserved); retry shortly",
                self.limits.retry_after)
        self.active += 1
        self.reserved_bytes += reservation
        return reservation

    def release(self, reservation: int) -> None:
        self.active -= 1
        self.reserved_bytes -= reservation


async def spool_upload(request: Request, reader: asyncio.StreamReader,
                       spool_dir: Path,
                       limits: IngestLimits) -> tuple[Path, str, int]:
    """Stream the request body into a spool file.

    Returns ``(part_path, sha256_fingerprint, byte_count)``.  The caller
    owns the spool file and must move or delete it.  Any failure —
    truncation, oversize — deletes the partial file before re-raising.
    """
    spool_dir.mkdir(parents=True, exist_ok=True)
    part = spool_dir / f"upload-{uuid.uuid4().hex}.part"
    digest = hashlib.sha256()
    total = 0
    try:
        with open(part, "wb") as sink:
            async for chunk in iter_body(reader, request,
                                         limits.max_archive_bytes):
                sink.write(chunk)
                digest.update(chunk)
                total += len(chunk)
    except BaseException:
        part.unlink(missing_ok=True)
        raise
    if total == 0:
        part.unlink(missing_ok=True)
        raise HttpError(400, "empty upload: no archive bytes received")
    return part, digest.hexdigest(), total
