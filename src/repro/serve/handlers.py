"""Endpoint handlers for the ActorProf service.

Routes::

    GET  /                      service banner + endpoint list
    GET  /healthz               liveness probe
    GET  /stats                 counters (ingest, artifact cache, workers)
    GET  /runs                  registered runs
    GET  /runs/{id}             one run's metadata + sections
    POST /runs[?id=…]           streaming .aptrc ingest (chunked or sized)
    GET  /runs/{id}/query?q=…[&section=logical]   declarative trace query
    GET  /diff?a=…&b=…          side-by-side run comparison
    POST /shutdown              graceful stop (only with allow_shutdown)

Responses are JSON.  Ingest replies 201 for a newly registered run,
200 when the archive's fingerprint was already registered (dedup — the
upload is idempotent), 400 for truncated/corrupt bytes, 409 for a run
id claimed by *different* bytes, 413 past the size cap, and 429 +
``Retry-After`` under backpressure.  Query/diff responses carry a
``cached`` flag (and ``X-Cache: hit|miss`` header) wired to the shared
artifact store.
"""

from __future__ import annotations

import asyncio

from repro.core.query import QueryError, normalize
from repro.core.store.archive import Archive, ArchiveError
from repro.core.store.registry import RegistryError, RunInfo
from repro.serve.http import HttpError, Request, read_body, send_json
from repro.serve.ingest import spool_upload

_ENDPOINTS = [
    "GET /", "GET /healthz", "GET /stats", "GET /runs", "GET /runs/{id}",
    "POST /runs[?id=ID]", "GET /runs/{id}/query?q=QUERY[&section=SECTION]",
    "GET /runs/{id}/viz/{gantt|heatmap|timeline}[?t0=T0&t1=T1&res=RES]",
    "GET /diff?a=RUN&b=RUN", "POST /shutdown",
]

_VIZ_VIEWS = ("gantt", "heatmap", "timeline")


async def handle(arbiter, request: Request, reader, writer) -> None:
    """Route one request; raises :class:`HttpError` for error replies."""
    method, path = request.method, request.path
    segments = [s for s in path.split("/") if s]
    if path in ("/", "/healthz") and method == "GET":
        payload = ({"ok": True} if path == "/healthz" else
                   {"service": "actorprof", "endpoints": _ENDPOINTS})
        await send_json(writer, 200, payload)
    elif path == "/stats" and method == "GET":
        await send_json(writer, 200, arbiter.stats())
    elif path == "/runs" and method == "GET":
        await _list_runs(arbiter, writer)
    elif path == "/runs" and method == "POST":
        await _ingest(arbiter, request, reader, writer)
    elif len(segments) == 2 and segments[0] == "runs" and method == "GET":
        await _show_run(arbiter, segments[1], writer)
    elif (len(segments) == 3 and segments[0] == "runs"
          and segments[2] == "query" and method == "GET"):
        await _query(arbiter, request, segments[1], writer)
    elif (len(segments) == 4 and segments[0] == "runs"
          and segments[2] == "viz" and method == "GET"):
        await _viz(arbiter, request, segments[1], segments[3], writer)
    elif path == "/diff" and method == "GET":
        await _diff(arbiter, request, writer)
    elif path == "/shutdown" and method == "POST":
        await _shutdown(arbiter, request, reader, writer)
    else:
        raise HttpError(404, f"no route for {method} {path}")


def _run_payload(info: RunInfo, sections: dict | None = None) -> dict:
    payload = {
        "run": info.run_id,
        "created": info.created,
        "size_bytes": info.size_bytes,
        "fingerprint": info.fingerprint,
        "meta": info.meta,
        "degraded": bool(info.meta.get("degraded")),
    }
    if sections is not None:
        payload["sections"] = sections
    return payload


def _registry_call(fn, *args):
    """Translate registry failures into HTTP error replies."""
    try:
        return fn(*args)
    except RegistryError as exc:
        status = 404 if "unknown run" in str(exc) else 409
        raise HttpError(status, str(exc)) from None


async def _list_runs(arbiter, writer) -> None:
    infos = await asyncio.to_thread(arbiter.registry.list)
    await send_json(writer, 200, {"runs": [_run_payload(i) for i in infos]})


async def _show_run(arbiter, ref: str, writer) -> None:
    info = _registry_call(arbiter.registry.resolve, ref)

    def sections() -> dict:
        with Archive(info.path) as archive:
            return {name: {"rows": archive.section(name).rows,
                           "columns": list(archive.section(name).columns)}
                    for name in archive.sections}

    try:
        payload = _run_payload(info, await asyncio.to_thread(sections))
    except (OSError, ArchiveError) as exc:
        raise HttpError(500, f"cannot open archive for {info.run_id}: "
                             f"{exc}") from None
    await send_json(writer, 200, payload)


# -- ingest ---------------------------------------------------------------

async def _ingest(arbiter, request: Request, reader, writer) -> None:
    if not request.has_body:
        raise HttpError(400, "POST /runs needs an archive body "
                             "(Content-Length or chunked)")
    gate = arbiter.gate
    reservation = gate.admit(request.content_length)
    part = None
    try:
        try:
            part, fingerprint, nbytes = await spool_upload(
                request, reader, arbiter.spool_dir, gate.limits)
        except HttpError as exc:
            if exc.status == 413:
                gate.stats.rejected_oversize += 1
            elif exc.status == 400:
                gate.stats.rejected_corrupt += 1
            raise

        # Fingerprint-level dedup: a byte-identical archive is already
        # served by its existing registration, whatever it was named.
        existing = await asyncio.to_thread(
            arbiter.registry.find_fingerprint, fingerprint)
        if existing is not None:
            gate.stats.deduped += 1
            await send_json(writer, 200, dict(
                _run_payload(existing), deduped=True, created_run=False))
            return

        # Validate before registering: a truncated/corrupt body must
        # never enter the registry.  Degraded archives (PR-2 salvage of
        # a crashed run) parse fine and are accepted, flagged as such.
        def probe() -> dict:
            with Archive(part) as archive:
                return dict(archive.meta)

        try:
            meta = await asyncio.to_thread(probe)
        except (OSError, ArchiveError) as exc:
            gate.stats.rejected_corrupt += 1
            raise HttpError(
                400, f"upload is not a loadable .aptrc archive: {exc}"
            ) from None

        run_id = (request.params.get("id")
                  or request.headers.get("x-run-id")
                  or f"run-{fingerprint[:12]}")
        info, created = _registry_call(
            lambda: arbiter.registry.add_dedup(part, run_id=run_id,
                                               move=True,
                                               dedup_identical=True))
        part = None  # consumed by move (or deleted by dedup)
        if created:
            gate.stats.accepted += 1
            gate.stats.bytes_ingested += nbytes
            if meta.get("degraded"):
                gate.stats.degraded += 1
        else:
            gate.stats.deduped += 1
        await send_json(writer, 201 if created else 200, dict(
            _run_payload(info), deduped=not created, created_run=created))
    finally:
        gate.release(reservation)
        if part is not None:
            part.unlink(missing_ok=True)


# -- query / diff ---------------------------------------------------------

async def _query(arbiter, request: Request, ref: str, writer) -> None:
    from repro.serve.artifacts import query_key

    text = request.params.get("q")
    if not text:
        raise HttpError(400, "query endpoint needs ?q=QUERY")
    section = request.params.get("section", "logical")
    try:
        canonical = normalize(text)
    except QueryError as exc:
        raise HttpError(400, f"bad query: {exc}") from None
    info = _registry_call(arbiter.registry.resolve, ref)
    key = query_key(info.fingerprint, section, canonical)
    record = await arbiter.dispatch(
        "repro.serve.tasks:run_query_task",
        {"archive": str(info.path), "section": section, "query": canonical},
        tag=f"query:{info.run_id}", cache_key=key)
    if not record.ok:
        # worker errors carry their exception type as a prefix; query
        # and archive-shape problems are the client's fault, not ours
        client_fault = (record.error or "").startswith(
            ("QueryError", "ArchiveError"))
        raise HttpError(400 if client_fault else 500,
                        f"query failed: {record.error}")
    await send_json(writer, 200, {
        "run": info.run_id, "section": section, "query": canonical,
        "result": record.value["result"], "cached": record.cached,
    }, headers={"X-Cache": "hit" if record.cached else "miss"})


async def _viz(arbiter, request: Request, ref: str, view: str,
               writer) -> None:
    """LOD-backed SVG render of one run's viewport.

    Replies are ``image/svg+xml`` with ``X-Cache`` (artifact store),
    ``X-Lod-Level`` (pyramid level used) and ``X-Viewport`` (snapped
    window) headers — everything a pan/zoom client needs to refine.
    """
    from repro.serve.artifacts import viz_key
    from repro.serve.http import response_bytes

    if view not in _VIZ_VIEWS:
        raise HttpError(
            404, f"unknown viz view {view!r}; want one of {_VIZ_VIEWS}")

    def int_param(name: str) -> int | None:
        raw = request.params.get(name)
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            raise HttpError(400, f"{name} must be an integer, "
                                 f"got {raw!r}") from None

    t0, t1, res = int_param("t0"), int_param("t1"), int_param("res")
    if res is not None and res < 1:
        raise HttpError(400, "res must be a positive integer")
    info = _registry_call(arbiter.registry.resolve, ref)
    key = viz_key(info.fingerprint, view, t0, t1, res)
    record = await arbiter.dispatch(
        "repro.serve.tasks:run_viz_task",
        {"archive": str(info.path), "view": view,
         "t0": t0, "t1": t1, "res": res},
        tag=f"viz:{info.run_id}:{view}", cache_key=key)
    if not record.ok:
        client_fault = (record.error or "").startswith(
            ("LodError", "ArchiveError", "ValueError"))
        raise HttpError(400 if client_fault else 500,
                        f"viz failed: {record.error}")
    value = record.value
    writer.write(response_bytes(
        200, value["svg"].encode("utf-8"), content_type="image/svg+xml",
        headers={"X-Cache": "hit" if record.cached else "miss",
                 "X-Lod-Level": str(value["level"]),
                 "X-Viewport": f"{value['t0']}-{value['t1']}",
                 "X-Horizon": str(value["horizon"])}))
    await writer.drain()


async def _diff(arbiter, request: Request, writer) -> None:
    from repro.serve.artifacts import diff_key

    ref_a, ref_b = request.params.get("a"), request.params.get("b")
    if not ref_a or not ref_b:
        raise HttpError(400, "diff endpoint needs ?a=RUN&b=RUN")
    info_a = _registry_call(arbiter.registry.resolve, ref_a)
    info_b = _registry_call(arbiter.registry.resolve, ref_b)
    key = diff_key(info_a.fingerprint, info_b.fingerprint)
    record = await arbiter.dispatch(
        "repro.serve.tasks:run_diff_task",
        {"archive_a": str(info_a.path), "archive_b": str(info_b.path),
         "label_a": info_a.run_id, "label_b": info_b.run_id},
        tag=f"diff:{info_a.run_id}:{info_b.run_id}", cache_key=key)
    if not record.ok:
        raise HttpError(500, f"diff failed: {record.error}")
    await send_json(writer, 200, {
        "a": info_a.run_id, "b": info_b.run_id,
        "report": record.value["report"], "cached": record.cached,
    }, headers={"X-Cache": "hit" if record.cached else "miss"})


async def _shutdown(arbiter, request: Request, reader, writer) -> None:
    if request.has_body:  # drain a (small) body so the reply is clean
        await read_body(reader, request, 4096)
    if not arbiter.config.allow_shutdown:
        raise HttpError(403, "shutdown over HTTP is disabled "
                             "(start with --allow-remote-shutdown)")
    await send_json(writer, 200, {"ok": True, "stopping": True})
    arbiter.request_shutdown()
