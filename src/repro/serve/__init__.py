"""``repro.serve`` — ActorProf as a long-running trace service.

The ROADMAP's "millions of users" path: an asyncio arbiter/worker
service (pulsar direction, SNIPPETS.md snippets 2–3) that accepts
streaming chunked ``.aptrc`` ingest from many concurrent runs — with
explicit 429 backpressure when the spill buffer fills — registers
archives into the sharded, file-locked run registry, and serves
list/show/query/diff over HTTP with query execution dispatched to a
worker pool built on :mod:`repro.exec`.  Identical queries from
different clients are answered from a content-addressed, size-bounded
artifact store keyed on archive fingerprint + normalized query text.

Start one with ``actorprof serve``; feed it with ``actorprof push``.
See ``docs/SERVICE.md`` for the wire contract.
"""

from repro.serve.arbiter import Arbiter, ServerConfig, run
from repro.serve.artifacts import ArtifactStore, diff_key, query_key
from repro.serve.background import ServerThread
from repro.serve.client import Backpressure, ServeClient, ServeError
from repro.serve.ingest import IngestLimits

__all__ = [
    "Arbiter",
    "ArtifactStore",
    "Backpressure",
    "IngestLimits",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "ServerThread",
    "diff_key",
    "query_key",
    "run",
]
