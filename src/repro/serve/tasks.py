"""Worker functions the service dispatches through :mod:`repro.exec`.

These follow the engine's worker contract (module-level, dotted-path
addressable, JSON-serializable kwargs and return values) so one
function body serves every execution mode: inline in a dispatch
thread, or crash-isolated in a spawned worker process, with the
artifact store's content-addressed key riding along as the spec's
``cache_key``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.query import run_query
from repro.core.store.archive import Archive, ArchiveError


def run_query_task(out_dir: Path, *, archive: str, section: str,
                   query: str) -> dict:
    """Evaluate one normalized query over one archive section."""
    with Archive(archive) as ar:
        if not ar.has_section(section):
            raise ArchiveError(
                f"archive has no {section!r} section "
                f"(have {', '.join(ar.sections) or 'none'})")
        result = run_query(ar.section(section), query)
    if isinstance(result, list):  # (group, amount) pairs → JSON arrays
        result = [[key, amount] for key, amount in result]
    return {"result": result}


def run_diff_task(out_dir: Path, *, archive_a: str, archive_b: str,
                  label_a: str, label_b: str) -> dict:
    """Render the side-by-side diff report for two archives."""
    from repro.core.diffing import diff_runs

    report = diff_runs(archive_a, archive_b, label_a=label_a,
                       label_b=label_b)
    return {"report": report}
