"""Worker functions the service dispatches through :mod:`repro.exec`.

These follow the engine's worker contract (module-level, dotted-path
addressable, JSON-serializable kwargs and return values) so one
function body serves every execution mode: inline in a dispatch
thread, or crash-isolated in a spawned worker process, with the
artifact store's content-addressed key riding along as the spec's
``cache_key``.  All three go through the :mod:`repro.api` facade —
the serve layer carries no legacy call sites.
"""

from __future__ import annotations

from pathlib import Path

import repro.api as api
from repro.core.store.archive import ArchiveError


def run_query_task(out_dir: Path, *, archive: str, section: str,
                   query: str) -> dict:
    """Evaluate one normalized query over one archive section."""
    with api.open_run(archive) as run:
        if section not in run.sections:
            raise ArchiveError(
                f"archive has no {section!r} section "
                f"(have {', '.join(run.sections) or 'none'})")
        result = run.query(query, section=section)
    if isinstance(result, list):  # (group, amount) pairs → JSON arrays
        result = [[key, amount] for key, amount in result]
    return {"result": result}


def run_diff_task(out_dir: Path, *, archive_a: str, archive_b: str,
                  label_a: str, label_b: str) -> dict:
    """Render the side-by-side diff report for two archives."""
    report = api.diff(archive_a, archive_b, label_a=label_a,
                      label_b=label_b)
    return {"report": report}


def run_viz_task(out_dir: Path, *, archive: str, view: str,
                 t0: int | None = None, t1: int | None = None,
                 res: int | None = None) -> dict:
    """Render one LOD viz view over a viewport; O(res) per call.

    Returns the SVG text plus the snapped viewport actually rendered
    (level, bucket width, window) so clients can drive drill-down
    refinement from the response alone.
    """
    with api.open_run(archive) as run:
        svg = run.viz(view, t0=t0, t1=t1, res=res)
        lod = run.lod()
        from repro.core.lod import DEFAULT_RES

        vp = lod.viewport(t0, t1, res if res is not None
                          else DEFAULT_RES[view])
        return {
            "svg": svg,
            "level": vp.level,
            "width": vp.width,
            "t0": vp.t0,
            "t1": vp.t1,
            "horizon": lod.horizon,
            "time_resolved": lod.info.time_resolved,
        }
