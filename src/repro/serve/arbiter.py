"""The arbiter: the service's supervising event loop.

Following pulsar's Arbiter/Actor split (SNIPPETS.md snippets 2–3), the
process is divided into one IO-bound supervisor and a pool of CPU-bound
workers:

* The **arbiter** owns the listening socket and the asyncio event loop.
  It only ever does IO-shaped work — parsing requests, spooling upload
  chunks to disk, reading manifests — so thousands of idle connections
  cost nothing.
* **Query/diff execution** is CPU-bound and is dispatched to a bounded
  worker pool built on the PR-4 :func:`repro.exec.execute` engine.  In
  ``thread`` mode (default) each dispatch runs the spec inline on one
  of ``workers`` pool threads; in ``process`` mode each spec runs in a
  spawned, crash-isolated worker process.  Either way the spec carries
  a content-addressed ``cache_key``, so the engine serves repeats from
  the shared :class:`~repro.serve.artifacts.ArtifactStore` without the
  handler doing anything.

Registry mutations take the sharded registry's file locks, so external
``actorprof runs`` invocations and a running service can share one
registry directory safely.
"""

from __future__ import annotations

import asyncio
import functools
import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.store.registry import RunRegistry
from repro.exec import RunRecord, RunSpec, execute
from repro.serve.artifacts import ArtifactStore
from repro.serve.http import (
    HttpError,
    TruncatedBody,
    read_request,
    send_json,
)
from repro.serve.ingest import IngestGate, IngestLimits

log = logging.getLogger("repro.serve")


@dataclass
class ServerConfig:
    """Everything an :class:`Arbiter` needs to run."""

    #: Service state root: registry, artifact store, and spool live here.
    data_dir: Path = Path("actorprof-serve")
    host: str = "127.0.0.1"
    #: TCP port; 0 picks a free port (read it back from ``Arbiter.port``).
    port: int = 8750
    #: Registry manifest shards (write concurrency; see store docs).
    shards: int = 4
    #: Worker pool width for query/diff execution.
    workers: int = 4
    #: ``thread`` (inline on pool threads) or ``process`` (spawned,
    #: crash-isolated worker per dispatch — slower, sturdier).
    worker_mode: str = "thread"
    #: Artifact-store LRU cap; ``None`` disables eviction.
    cache_max_bytes: int | None = 256 * 1024 * 1024
    ingest: IngestLimits = field(default_factory=IngestLimits)
    #: Allow ``POST /shutdown`` (tests, CI smoke); off for real serving.
    allow_shutdown: bool = False
    #: Override the registry location (default: ``data_dir / "runs"``).
    registry_root: Path | None = None

    def __post_init__(self) -> None:
        self.data_dir = Path(self.data_dir)
        if self.worker_mode not in ("thread", "process"):
            raise ValueError(
                f"worker_mode must be 'thread' or 'process': "
                f"{self.worker_mode!r}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")


class Arbiter:
    """Supervises the listening socket, ingest gate, and worker pool."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        root = config.data_dir
        self.registry = RunRegistry(config.registry_root or root / "runs",
                                    shards=config.shards)
        self.store = ArtifactStore(root / "artifacts",
                                   max_bytes=config.cache_max_bytes)
        self.spool_dir = root / "spool"
        self.gate = IngestGate(limits=config.ingest)
        self.requests = 0
        self.errors = 0
        self.dispatched = 0
        self._pool = ThreadPoolExecutor(max_workers=config.workers,
                                        thread_name_prefix="apserve")
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self.port: int | None = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self.config.data_dir.mkdir(parents=True, exist_ok=True)
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("actorprof service listening on %s:%d (%d workers, %s "
                 "mode, %d registry shards)", self.config.host, self.port,
                 self.config.workers, self.config.worker_mode,
                 self.registry.shards)

    async def serve_forever(self) -> None:
        """Start, then run until :meth:`request_shutdown` (or cancel)."""
        if self._server is None:
            await self.start()
        try:
            await self._shutdown.wait()
        finally:
            await self.stop()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=True)
        log.info("actorprof service stopped")

    # -- worker dispatch --------------------------------------------------

    async def dispatch(self, fn: str, kwargs: dict, *, tag: str,
                       cache_key: str | None) -> RunRecord:
        """Run one spec on the worker pool; cache hits skip execution."""
        self.dispatched += 1
        spec = RunSpec(index=0, fn=fn, kwargs=kwargs, tag=tag,
                       cache_key=cache_key)
        # process mode asks the engine for a (one-spec) spawned pool;
        # thread mode runs the spec inline on the dispatch thread
        jobs = 2 if self.config.worker_mode == "process" else 1
        call = functools.partial(
            execute, [spec], jobs=jobs,
            scratch_dir=self.spool_dir / "work", cache=self.store.cache)
        loop = asyncio.get_running_loop()
        records = await loop.run_in_executor(self._pool, call)
        return records[0]

    # -- connection handling ----------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        from repro.serve.handlers import handle

        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await self._send_error(writer, exc)
                    break
                if request is None:
                    break
                self.requests += 1
                try:
                    await handle(self, request, reader, writer)
                except TruncatedBody:
                    break  # peer is gone; nothing to answer
                except HttpError as exc:
                    self.errors += 1
                    await self._send_error(writer, exc)
                except Exception:
                    self.errors += 1
                    log.exception("unhandled error serving %s %s",
                                  request.method, request.path)
                    await self._send_error(
                        writer, HttpError(500, "internal server error"))
                if not request.body_consumed or not request.keep_alive():
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send_error(self, writer: asyncio.StreamWriter,
                          exc: HttpError) -> None:
        try:
            await send_json(writer, exc.status, {"error": exc.message},
                            headers=exc.headers)
        except (ConnectionError, OSError):
            pass

    # -- stats ------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "ingest": self.gate.stats.to_dict(),
            "artifacts": self.store.to_dict(),
            "registry": {
                "runs": len(self.registry.list()),
                "shards": self.registry.shards,
            },
            "workers": {
                "count": self.config.workers,
                "mode": self.config.worker_mode,
                "dispatched": self.dispatched,
            },
        }


def run(config: ServerConfig) -> int:
    """Blocking entry point for ``actorprof serve``."""
    arbiter = Arbiter(config)

    async def main() -> None:
        await arbiter.start()
        print(f"actorprof service on http://{arbiter.config.host}:"
              f"{arbiter.port}  (data: {arbiter.config.data_dir})")
        await arbiter.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    return 0
