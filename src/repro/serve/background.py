"""Run an :class:`~repro.serve.arbiter.Arbiter` on a background thread.

For embedding the service into a process that is not itself asyncio —
pytest fixtures, the throughput benchmark, notebooks::

    with ServerThread(ServerConfig(data_dir=tmp, port=0)) as server:
        client = server.client()
        client.push("run.aptrc")

The context manager guarantees a clean shutdown: the arbiter's loop is
asked to stop, the thread is joined, and startup errors (port in use,
bad config) surface as exceptions in the starting thread instead of
dying silently on the background one.
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.arbiter import Arbiter, ServerConfig
from repro.serve.client import ServeClient


class ServerThread:
    """One service instance on a dedicated thread + event loop."""

    def __init__(self, config: ServerConfig,
                 startup_timeout: float = 15.0) -> None:
        self.config = config
        self.arbiter: Arbiter | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="actorprof-serve")
        self._thread.start()
        if not self._ready.wait(startup_timeout):
            raise TimeoutError("service did not start in time")
        if self._startup_error is not None:
            raise self._startup_error

    @property
    def port(self) -> int:
        assert self.arbiter is not None and self.arbiter.port is not None
        return self.arbiter.port

    def client(self, timeout: float = 30.0) -> ServeClient:
        return ServeClient(self.config.host, self.port, timeout=timeout)

    def stop(self, join_timeout: float = 15.0) -> None:
        if self._loop is not None and self._loop.is_running():
            arbiter = self.arbiter
            if arbiter is not None:
                self._loop.call_soon_threadsafe(arbiter.request_shutdown)
        self._thread.join(join_timeout)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- thread body ------------------------------------------------------

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.arbiter = Arbiter(self.config)
        try:
            await self.arbiter.start()
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.arbiter.serve_forever()
