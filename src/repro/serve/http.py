"""A minimal HTTP/1.1 layer over :mod:`asyncio` streams.

The service hand-rolls its protocol on purpose: the repo takes no new
hard dependencies, and the ingest path needs *streaming* body access —
chunked uploads must spill to disk as they arrive, never buffer whole
archives in memory — which the stdlib's ``http.server`` machinery does
not offer over asyncio.

Scope is deliberately small: request line + headers, bodies via
``Content-Length`` or ``Transfer-Encoding: chunked``, JSON responses,
keep-alive.  Anything outside that scope is a 4xx, not a crash.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: Upper bound on the request line + headers block.
MAX_HEAD_BYTES = 64 * 1024
#: Largest single chunk-size line we accept in a chunked body.
_MAX_CHUNK_LINE = 256

REASONS = {
    200: "OK", 201: "Created", 204: "No Content",
    400: "Bad Request", 403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(Exception):
    """An error that maps directly to an HTTP error response."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


class TruncatedBody(HttpError):
    """The peer closed the connection before the body was complete."""

    def __init__(self, message: str = "request body truncated") -> None:
        super().__init__(400, message)


@dataclass
class Request:
    """One parsed request head; the body stays on the stream."""

    method: str
    target: str
    path: str
    params: dict[str, str]
    headers: dict[str, str]
    version: str = "HTTP/1.1"
    #: False while body bytes may remain unread on the stream — a
    #: half-consumed body poisons keep-alive, so the connection loop
    #: closes unless this ends up True.
    body_consumed: bool = field(default=True, compare=False)

    @property
    def content_length(self) -> int | None:
        raw = self.headers.get("content-length")
        if raw is None:
            return None
        try:
            n = int(raw)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {raw!r}") from None
        if n < 0:
            raise HttpError(400, f"bad Content-Length {raw!r}")
        return n

    @property
    def chunked(self) -> bool:
        return (self.headers.get("transfer-encoding", "")
                .lower().strip() == "chunked")

    @property
    def has_body(self) -> bool:
        return self.chunked or bool(self.content_length)

    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request head; ``None`` on a clean EOF before any byte."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # peer closed between requests: normal
        raise TruncatedBody("connection closed mid-request-head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request head too large") from None
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(400, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    params = {k: v for k, v in parse_qsl(split.query, keep_blank_values=True)}
    request = Request(method=method.upper(), target=target,
                      path=unquote(split.path) or "/", params=params,
                      headers=headers, version=version)
    if request.has_body:
        request.body_consumed = False
    return request


async def iter_body(reader: asyncio.StreamReader, request: Request,
                    max_bytes: int):
    """Yield the request body as it arrives, without buffering it whole.

    Enforces ``max_bytes`` *while streaming* (so an oversized chunked
    upload is cut off at the limit, not after), raises
    :class:`TruncatedBody` if the peer disappears mid-body, and marks
    the request consumed only when the body completed cleanly.
    """
    limit_error = HttpError(
        413, f"request body exceeds the {max_bytes:,}-byte limit")
    total = 0
    if request.chunked:
        while True:
            try:
                line = await reader.readuntil(b"\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                raise TruncatedBody("chunked body truncated") from None
            if len(line) > _MAX_CHUNK_LINE:
                raise HttpError(400, "oversized chunk-size line")
            size_text = line.strip().split(b";", 1)[0]
            try:
                size = int(size_text, 16)
            except ValueError:
                raise HttpError(
                    400, f"bad chunk size {size_text!r}") from None
            if size == 0:
                try:  # trailer section: discard until the blank line
                    while (await reader.readuntil(b"\r\n")) != b"\r\n":
                        pass
                except (asyncio.IncompleteReadError,
                        asyncio.LimitOverrunError):
                    raise TruncatedBody("chunked trailer truncated") from None
                break
            total += size
            if total > max_bytes:
                raise limit_error
            try:
                data = await reader.readexactly(size)
                if await reader.readexactly(2) != b"\r\n":
                    raise HttpError(400, "chunk missing CRLF terminator")
            except asyncio.IncompleteReadError:
                raise TruncatedBody("chunked body truncated") from None
            yield data
    else:
        length = request.content_length or 0
        if length > max_bytes:
            raise limit_error
        remaining = length
        while remaining:
            data = await reader.read(min(remaining, 1 << 16))
            if not data:
                raise TruncatedBody("body shorter than Content-Length")
            remaining -= len(data)
            yield data
    request.body_consumed = True


async def read_body(reader: asyncio.StreamReader, request: Request,
                    max_bytes: int) -> bytes:
    """Read and return the whole body (small payloads only)."""
    pieces = []
    async for chunk in iter_body(reader, request, max_bytes):
        pieces.append(chunk)
    return b"".join(pieces)


def response_bytes(status: int, body: bytes,
                   content_type: str = "application/json",
                   headers: dict[str, str] | None = None) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def send_json(writer: asyncio.StreamWriter, status: int, payload,
                    headers: dict[str, str] | None = None) -> None:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
    writer.write(response_bytes(status, body, headers=headers))
    await writer.drain()
