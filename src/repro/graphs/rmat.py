"""R-MAT / graph500 edge generation (vectorized).

The recursive-matrix generator: each edge picks one quadrant per scale
level with probabilities (A, B, C, D); the paper's experiments use the
graph500 standard A=0.57, B=C=0.19, D=0.05 with an edge factor of 16.
The heavy-tailed degree distribution this produces is the root cause of
every load imbalance ActorProf visualizes in Section IV.
"""

from __future__ import annotations

import numpy as np


def rmat_edges(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> np.ndarray:
    """Generate raw directed R-MAT edges (may contain dups/self-loops).

    Returns an ``(m, 2)`` int64 array with ``m = edge_factor * 2**scale``.
    ``d`` is implied as ``1 - a - b - c``.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    if edge_factor < 1:
        raise ValueError(f"edge_factor must be >= 1, got {edge_factor}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise ValueError(f"invalid quadrant probabilities a={a} b={b} c={c} d={d}")
    rng = np.random.default_rng(seed)
    n_edges = edge_factor * (1 << scale)
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    # quadrant choice per level: 0=(0,0)/A, 1=(0,1)/B, 2=(1,0)/C, 3=(1,1)/D
    cum = np.cumsum([a, b, c])
    for _level in range(scale):
        r = rng.random(n_edges)
        quad = np.searchsorted(cum, r)
        src = (src << 1) | (quad >> 1)
        dst = (dst << 1) | (quad & 1)
    return np.stack([src, dst], axis=1)


def graph500_input(scale: int, edge_factor: int = 16, seed: int = 0) -> np.ndarray:
    """The paper's input: unique lower-triangular undirected edges.

    Generates R-MAT edges with the graph500 parameters, drops self-loops,
    canonicalizes each undirected edge as (max, min) — i.e. the lower
    triangular part, row > column — and deduplicates.  Returns an
    ``(m, 2)`` array of (row, col) with row > col, sorted.
    """
    raw = rmat_edges(scale, edge_factor, a=0.57, b=0.19, c=0.19, seed=seed)
    src, dst = raw[:, 0], raw[:, 1]
    keep = src != dst
    src, dst = src[keep], dst[keep]
    rows = np.maximum(src, dst)
    cols = np.minimum(src, dst)
    edges = np.unique(np.stack([rows, cols], axis=1), axis=0)
    return edges


def erdos_renyi_edges(n: int, m: int, seed: int = 0) -> np.ndarray:
    """``m`` unique lower-triangular edges drawn uniformly (G(n, m)).

    A flat-degree counterpoint to R-MAT, used by ablation benches to show
    that the cyclic distribution's imbalance comes from the power law,
    not from the distribution itself.
    """
    if n < 2:
        raise ValueError(f"need at least 2 vertices, got {n}")
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"requested {m} edges but K_{n} has only {max_edges}")
    rng = np.random.default_rng(seed)
    # sample edge ids without replacement from the strict lower triangle
    ids = rng.choice(max_edges, size=m, replace=False)
    # invert the triangular index: edge k ↔ (row, col)
    rows = (np.floor((1 + np.sqrt(1 + 8 * ids.astype(np.float64))) / 2)).astype(np.int64)
    cols = (ids - rows * (rows - 1) // 2).astype(np.int64)
    edges = np.stack([rows, cols], axis=1)
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return edges[order]
