"""Lower-triangular adjacency matrices in CSR form.

Algorithm 1's input: ``L`` with ``l_ij`` (j < i) marking the undirected
edge {i, j}.  :class:`LowerTriangular` stores the global matrix; per-PE
local views are sliced through a distribution in :mod:`repro.apps`.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse


class LowerTriangular:
    """CSR storage of a strictly lower-triangular 0/1 adjacency matrix."""

    def __init__(self, n_vertices: int, rows: np.ndarray, cols: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError("rows and cols must be equal-length 1-D arrays")
        if len(rows) and (rows <= cols).any():
            raise ValueError("matrix must be strictly lower triangular (row > col)")
        if len(rows) and (rows.max() >= n_vertices or cols.min() < 0):
            raise ValueError("vertex index out of range")
        order = np.lexsort((cols, rows))
        self.n_vertices = n_vertices
        self.rows = rows[order]
        self.cols = cols[order]
        self.row_ptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.add.at(self.row_ptr, self.rows + 1, 1)
        np.cumsum(self.row_ptr, out=self.row_ptr)

    @classmethod
    def from_edges(cls, edges: np.ndarray, n_vertices: int | None = None) -> "LowerTriangular":
        """Build from an ``(m, 2)`` (row, col) edge array with row > col."""
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            return cls(n_vertices or 0, np.empty(0, np.int64), np.empty(0, np.int64))
        if n_vertices is None:
            n_vertices = int(edges.max()) + 1
        return cls(n_vertices, edges[:, 0], edges[:, 1])

    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored edges."""
        return len(self.rows)

    def neighbors(self, i: int) -> np.ndarray:
        """Columns of row ``i`` (the lower neighbors of vertex ``i``), sorted."""
        return self.cols[self.row_ptr[i] : self.row_ptr[i + 1]]

    def row_degrees(self) -> np.ndarray:
        """Stored entries per row (lower-triangular degree of each vertex)."""
        return np.diff(self.row_ptr)

    def has_edge(self, i: int, j: int) -> bool:
        """Is ``l_ij`` present?  (Requires j < i to possibly be stored.)"""
        ns = self.neighbors(i)
        k = np.searchsorted(ns, j)
        return bool(k < len(ns) and ns[k] == j)

    def has_edges(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`has_edge` over parallel index arrays.

        Edges are stored lexicographically by (row, col), so the combined
        key ``row * n + col`` is sorted and one batched binary search
        answers every query.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if len(rows) == 0:
            return np.zeros(0, dtype=bool)
        if self.nnz == 0:
            return np.zeros(len(rows), dtype=bool)
        keys = self._edge_keys()
        q = rows * self.n_vertices + cols
        pos = np.searchsorted(keys, q)
        pos_clipped = np.minimum(pos, self.nnz - 1)
        return (pos < self.nnz) & (keys[pos_clipped] == q)

    def _edge_keys(self) -> np.ndarray:
        keys = getattr(self, "_keys", None)
        if keys is None:
            keys = self.rows * self.n_vertices + self.cols
            self._keys = keys
        return keys

    def symmetric_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Undirected adjacency as (indptr, indices).

        Expands the lower-triangular storage into both directions; each
        row's neighbor list is sorted.  Used by BFS/PageRank/Jaccard,
        which traverse the full neighborhoods.
        """
        src = np.concatenate([self.rows, self.cols])
        dst = np.concatenate([self.cols, self.rows])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(self.n_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return indptr, dst

    def full_degrees(self) -> np.ndarray:
        """Undirected degree of every vertex."""
        deg = np.zeros(self.n_vertices, dtype=np.int64)
        np.add.at(deg, self.rows, 1)
        np.add.at(deg, self.cols, 1)
        return deg

    def to_scipy(self) -> sparse.csr_matrix:
        """The matrix as ``scipy.sparse.csr_matrix`` (for references)."""
        data = np.ones(self.nnz, dtype=np.int64)
        return sparse.csr_matrix(
            (data, (self.rows, self.cols)),
            shape=(self.n_vertices, self.n_vertices),
        )

    def triangle_count_reference(self) -> int:
        """Exact triangle count: Σ_{i>j>k} l_ij · l_ik · l_jk.

        Computed as ``((Lᵀ L) ∘ L).sum()`` — ``(Lᵀ L)[j, k]`` counts the
        common "upper" neighbors of j and k; masking by ``l_jk`` keeps
        only connected pairs.  This is the assertion the paper validates
        its application against.
        """
        L = self.to_scipy()
        common = (L.T @ L).multiply(L)
        return int(common.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LowerTriangular(n={self.n_vertices}, nnz={self.nnz})"
