"""Graph generation and data distribution.

The inputs of the paper's case study: R-MAT graphs following graph500
parameters (A=57, B=C=19, D=5, edge factor 16), reduced to the lower
triangular part of the adjacency matrix, and the two row distributions
compared in Section IV — 1D Cyclic (equal vertices per PE) and 1D Range
(equal edges per PE).
"""

from repro.graphs.distributions import (
    BlockDistribution,
    CyclicDistribution,
    Distribution,
    RangeDistribution,
    make_distribution,
)
from repro.graphs.matrix import LowerTriangular
from repro.graphs.rmat import erdos_renyi_edges, graph500_input, rmat_edges

__all__ = [
    "BlockDistribution",
    "CyclicDistribution",
    "Distribution",
    "LowerTriangular",
    "RangeDistribution",
    "erdos_renyi_edges",
    "graph500_input",
    "make_distribution",
    "rmat_edges",
]
