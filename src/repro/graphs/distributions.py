"""Row (vertex) distributions across PEs.

Section IV-B2: "A data distribution decides which data resides on which
rank."  The two the paper compares:

* **1D Cyclic** — ``owner(row) = row % P``: every PE holds a similar
  number of vertices, but with a power-law graph wildly different numbers
  of edges.
* **1D Range** — contiguous row ranges with boundaries chosen so each PE
  holds a similar number of non-zeros (#nnz); this is what produces the
  lower-triangular "(L) observation" communication shape.

A plain **Block** distribution (equal contiguous vertex counts) rounds
out the ablation space.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.graphs.matrix import LowerTriangular


class Distribution(ABC):
    """Maps global row indices to owning PEs."""

    def __init__(self, n_rows: int, n_pes: int) -> None:
        if n_rows < 0:
            raise ValueError(f"negative row count: {n_rows}")
        if n_pes < 1:
            raise ValueError(f"need at least one PE: {n_pes}")
        self.n_rows = n_rows
        self.n_pes = n_pes

    @property
    @abstractmethod
    def name(self) -> str:
        """Identifier used in configs and reports ("cyclic", "range", ...)."""

    @abstractmethod
    def owner(self, row: int) -> int:
        """PE owning ``row`` (Algorithm 1's FINDOWNER)."""

    @abstractmethod
    def owner_array(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner`."""

    @abstractmethod
    def local_rows(self, pe: int) -> np.ndarray:
        """Global row indices owned by ``pe``, ascending."""

    def check(self) -> None:
        """Invariant check: ownership partitions all rows (test helper)."""
        seen = np.zeros(self.n_rows, dtype=bool)
        for pe in range(self.n_pes):
            rows = self.local_rows(pe)
            if len(rows) and (self.owner_array(rows) != pe).any():
                raise AssertionError(f"{self.name}: local_rows/owner disagree on PE {pe}")
            seen[rows] = True
        if not seen.all():
            raise AssertionError(f"{self.name}: rows {np.flatnonzero(~seen)} unowned")


class CyclicDistribution(Distribution):
    """1D Cyclic: ``owner(row) = row % P`` (Algorithm 1's example)."""

    @property
    def name(self) -> str:
        return "cyclic"

    def owner(self, row: int) -> int:
        return row % self.n_pes

    def owner_array(self, rows: np.ndarray) -> np.ndarray:
        return np.asarray(rows, dtype=np.int64) % self.n_pes

    def local_rows(self, pe: int) -> np.ndarray:
        return np.arange(pe, self.n_rows, self.n_pes, dtype=np.int64)


class _BoundaryDistribution(Distribution):
    """Contiguous ranges defined by ascending boundaries.

    PE ``p`` owns rows ``[boundaries[p], boundaries[p+1])``.
    """

    def __init__(self, n_rows: int, n_pes: int, boundaries: np.ndarray) -> None:
        super().__init__(n_rows, n_pes)
        boundaries = np.asarray(boundaries, dtype=np.int64)
        if boundaries.shape != (n_pes + 1,):
            raise ValueError(
                f"need {n_pes + 1} boundaries for {n_pes} PEs, got {boundaries.shape}"
            )
        if boundaries[0] != 0 or boundaries[-1] != n_rows:
            raise ValueError("boundaries must span [0, n_rows]")
        if (np.diff(boundaries) < 0).any():
            raise ValueError("boundaries must be non-decreasing")
        self.boundaries = boundaries

    def owner(self, row: int) -> int:
        if not 0 <= row < self.n_rows:
            raise ValueError(f"row {row} out of range")
        return int(np.searchsorted(self.boundaries, row, side="right") - 1)

    def owner_array(self, rows: np.ndarray) -> np.ndarray:
        return np.searchsorted(self.boundaries, np.asarray(rows), side="right") - 1

    def local_rows(self, pe: int) -> np.ndarray:
        return np.arange(self.boundaries[pe], self.boundaries[pe + 1], dtype=np.int64)


class BlockDistribution(_BoundaryDistribution):
    """Equal contiguous vertex counts per PE."""

    def __init__(self, n_rows: int, n_pes: int) -> None:
        bounds = np.linspace(0, n_rows, n_pes + 1).round().astype(np.int64)
        super().__init__(n_rows, n_pes, bounds)

    @property
    def name(self) -> str:
        return "block"


class RangeDistribution(_BoundaryDistribution):
    """1D Range: contiguous ranges balancing #nnz per PE (paper Fig. 6).

    Boundaries are the points where the cumulative non-zero count crosses
    ``k · nnz / P``, so every PE holds a similar number of edges.
    """

    def __init__(self, n_rows: int, n_pes: int, boundaries: np.ndarray) -> None:
        super().__init__(n_rows, n_pes, boundaries)

    @property
    def name(self) -> str:
        return "range"

    @classmethod
    def from_graph(cls, graph: LowerTriangular, n_pes: int) -> "RangeDistribution":
        degrees = graph.row_degrees()
        cum = np.concatenate(([0], np.cumsum(degrees)))
        total = cum[-1]
        targets = np.arange(1, n_pes) * (total / n_pes)
        inner = np.searchsorted(cum, targets, side="left")
        bounds = np.concatenate(([0], inner, [graph.n_vertices]))
        # enforce monotonicity in degenerate cases (few rows, many PEs)
        bounds = np.maximum.accumulate(bounds)
        return cls(graph.n_vertices, n_pes, bounds)


def make_distribution(kind: str, graph: LowerTriangular, n_pes: int) -> Distribution:
    """Construct a distribution by name over ``graph``'s rows."""
    kind = kind.lower()
    if kind == "cyclic":
        return CyclicDistribution(graph.n_vertices, n_pes)
    if kind == "range":
        return RangeDistribution.from_graph(graph, n_pes)
    if kind == "block":
        return BlockDistribution(graph.n_vertices, n_pes)
    raise ValueError(f"unknown distribution {kind!r}; want cyclic/range/block")
