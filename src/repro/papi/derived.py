"""Derived metrics over PAPI counter values.

Section III-A sketches the inferences counters support — "memory (data and
instruction) counters indicate cache/TLB thrashing; information on
loads/stores and branch prediction stalls; ... retired instruction
profiling; Vector/SIMD profiling".  These helpers turn raw counter
dictionaries into those rates, VTune-style.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.counters import CounterSnapshot


def _get(values, name: str) -> int:
    if isinstance(values, CounterSnapshot):
        return values[name]
    return int(values.get(name, 0))


def ipc(values) -> float:
    """Instructions per cycle (0 when no cycles elapsed)."""
    cyc = _get(values, "PAPI_TOT_CYC")
    return _get(values, "PAPI_TOT_INS") / cyc if cyc else 0.0


def l1_miss_rate(values) -> float:
    """L1 data-cache misses per load."""
    loads = _get(values, "PAPI_LD_INS")
    return _get(values, "PAPI_L1_DCM") / loads if loads else 0.0


def l2_miss_rate(values) -> float:
    """L2 data-cache misses per load."""
    loads = _get(values, "PAPI_LD_INS")
    return _get(values, "PAPI_L2_DCM") / loads if loads else 0.0


def branch_misprediction_rate(values) -> float:
    """Mispredicted branches per branch instruction."""
    branches = _get(values, "PAPI_BR_INS")
    return _get(values, "PAPI_BR_MSP") / branches if branches else 0.0


def memory_intensity(values) -> float:
    """Load/store instructions per retired instruction."""
    ins = _get(values, "PAPI_TOT_INS")
    return _get(values, "PAPI_LST_INS") / ins if ins else 0.0


def vectorization_ratio(values) -> float:
    """Vector/SIMD instructions per retired instruction."""
    ins = _get(values, "PAPI_TOT_INS")
    return _get(values, "PAPI_VEC_INS") / ins if ins else 0.0


@dataclass(frozen=True)
class DerivedMetrics:
    """All derived rates for one counter set."""

    ipc: float
    l1_miss_rate: float
    l2_miss_rate: float
    branch_misprediction_rate: float
    memory_intensity: float
    vectorization_ratio: float

    @classmethod
    def of(cls, values) -> "DerivedMetrics":
        return cls(
            ipc=ipc(values),
            l1_miss_rate=l1_miss_rate(values),
            l2_miss_rate=l2_miss_rate(values),
            branch_misprediction_rate=branch_misprediction_rate(values),
            memory_intensity=memory_intensity(values),
            vectorization_ratio=vectorization_ratio(values),
        )

    def describe(self) -> str:
        """One-line VTune-style summary."""
        return (
            f"IPC={self.ipc:.2f} L1={self.l1_miss_rate:.1%} "
            f"L2={self.l2_miss_rate:.2%} brMiss={self.branch_misprediction_rate:.1%} "
            f"mem={self.memory_intensity:.1%} vec={self.vectorization_ratio:.1%}"
        )
