"""PAPI event sets: start/stop/read/accum over the simulated counters."""

from __future__ import annotations

from repro.machine.counters import CounterBank, CounterSnapshot
from repro.papi.events import is_preset

#: "ActorProf only allows up to four concurrent recording events with the
#: limitation from PAPI" (paper Section III-A).
MAX_EVENTS = 4


class PAPIError(RuntimeError):
    """Raised on PAPI API misuse (mirrors PAPI's negative return codes)."""


class EventSet:
    """A set of up to :data:`MAX_EVENTS` preset events on one PE.

    Usage mirrors the C API::

        es = papi.create_eventset()
        es.add_event("PAPI_TOT_INS")
        es.start()
        ... measured region ...
        values = es.stop()          # deltas since start
    """

    def __init__(self, bank: CounterBank) -> None:
        self._bank = bank
        self._events: list[str] = []
        self._running = False
        self._base: CounterSnapshot | None = None

    @property
    def events(self) -> tuple[str, ...]:
        return tuple(self._events)

    @property
    def running(self) -> bool:
        return self._running

    def add_event(self, name: str) -> None:
        """Add a preset event (fails while running or past the limit)."""
        if self._running:
            raise PAPIError("cannot add events to a running event set")
        if not is_preset(name):
            raise PAPIError(f"event {name!r} is not available")
        if name in self._events:
            raise PAPIError(f"event {name!r} already in event set")
        if len(self._events) >= MAX_EVENTS:
            raise PAPIError(
                f"event set is full ({MAX_EVENTS} concurrent events maximum)"
            )
        self._events.append(name)

    def add_events(self, names) -> None:
        """Add several preset events in order."""
        for name in names:
            self.add_event(name)

    def start(self) -> None:
        """Begin counting (``PAPI_start``)."""
        if self._running:
            raise PAPIError("event set already running")
        if not self._events:
            raise PAPIError("cannot start an empty event set")
        self._base = self._bank.snapshot()
        self._running = True

    def read(self) -> list[int]:
        """Current deltas since start without stopping (``PAPI_read``)."""
        if not self._running or self._base is None:
            raise PAPIError("event set is not running")
        snap = self._bank.snapshot().delta(self._base)
        return [snap[e] for e in self._events]

    def accum(self, values: list[int]) -> list[int]:
        """Add deltas into ``values`` and reset the baseline (``PAPI_accum``)."""
        if not self._running or self._base is None:
            raise PAPIError("event set is not running")
        deltas = self.read()
        if len(values) != len(deltas):
            raise PAPIError(
                f"accum buffer has {len(values)} entries for {len(deltas)} events"
            )
        out = [v + d for v, d in zip(values, deltas)]
        self._base = self._bank.snapshot()
        return out

    def stop(self) -> list[int]:
        """Stop counting and return deltas since start (``PAPI_stop``)."""
        values = self.read()
        self._running = False
        self._base = None
        return values

    def reset(self) -> None:
        """Zero the counting baseline (``PAPI_reset``)."""
        if not self._running:
            raise PAPIError("event set is not running")
        self._base = self._bank.snapshot()
