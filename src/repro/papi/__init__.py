"""Simulated PAPI (Performance Application Programming Interface).

A faithful-in-shape reimplementation of the PAPI preset-counter API that
ActorProf uses: event sets of up to :data:`~repro.papi.eventset.MAX_EVENTS`
(four — the limitation the paper cites) preset events, with
``start``/``stop``/``read``/``accum``/``reset`` semantics, reading from the
per-PE :class:`~repro.machine.counters.CounterBank` maintained by the cost
model instead of hardware MSRs.
"""

from repro.papi.events import EVENT_DESCRIPTIONS, PRESET_EVENTS, describe_event, is_preset
from repro.papi.eventset import MAX_EVENTS, EventSet, PAPIError
from repro.papi.library import PAPI

__all__ = [
    "EVENT_DESCRIPTIONS",
    "EventSet",
    "MAX_EVENTS",
    "PAPI",
    "PAPIError",
    "PRESET_EVENTS",
    "describe_event",
    "is_preset",
]
