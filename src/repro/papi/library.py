"""Per-PE PAPI library facade."""

from __future__ import annotations

from repro.machine.counters import CounterBank
from repro.machine.perf import PerfCore
from repro.papi.events import PRESET_EVENTS, is_preset
from repro.papi.eventset import EventSet


class PAPI:
    """The PAPI library as seen by one PE.

    Constructed from the PE's :class:`~repro.machine.perf.PerfCore` (or a
    bare :class:`~repro.machine.counters.CounterBank` for unit tests).
    """

    def __init__(self, source: PerfCore | CounterBank) -> None:
        self._bank = source.counters if isinstance(source, PerfCore) else source

    def create_eventset(self) -> EventSet:
        """``PAPI_create_eventset``."""
        return EventSet(self._bank)

    def query_event(self, name: str) -> bool:
        """``PAPI_query_event``: is this preset available?"""
        return is_preset(name)

    def num_counters(self) -> int:
        """Number of preset counters the platform exposes."""
        return len(PRESET_EVENTS)

    def read_counter(self, name: str) -> int:
        """Raw free-running value of one counter (diagnostic)."""
        return self._bank.read(name)
