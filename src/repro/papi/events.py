"""PAPI preset event definitions.

The preset names mirror real PAPI spellings; availability is defined by
what the simulated :class:`~repro.machine.counters.CounterBank` maintains.
"""

from __future__ import annotations

from repro.machine.counters import COUNTER_NAMES

#: Preset events available in the simulated PAPI (all bank counters).
PRESET_EVENTS: tuple[str, ...] = COUNTER_NAMES

EVENT_DESCRIPTIONS: dict[str, str] = {
    "PAPI_TOT_INS": "Instructions completed",
    "PAPI_TOT_CYC": "Total cycles",
    "PAPI_LST_INS": "Load/store instructions completed",
    "PAPI_LD_INS": "Load instructions completed",
    "PAPI_SR_INS": "Store instructions completed",
    "PAPI_BR_INS": "Branch instructions completed",
    "PAPI_BR_MSP": "Conditional branch instructions mispredicted",
    "PAPI_L1_DCM": "Level 1 data cache misses",
    "PAPI_L2_DCM": "Level 2 data cache misses",
    "PAPI_FP_OPS": "Floating point operations",
    "PAPI_VEC_INS": "Vector/SIMD instructions completed",
}


def is_preset(name: str) -> bool:
    """True when ``name`` is an available preset event."""
    return name in PRESET_EVENTS


def describe_event(name: str) -> str:
    """Human-readable description of a preset event."""
    try:
        return EVENT_DESCRIPTIONS[name]
    except KeyError:
        raise KeyError(f"unknown PAPI event {name!r}") from None
