"""Aggregation buffer machinery.

Items travel through Conveyors as fixed-width rows of int64 words:

``[final_dst, src, payload_0, .., payload_{w-1}]``

The two header words carry routing state (final destination) and
provenance (originating PE — what ``convey_pull`` hands back as "from").
Buffers are preallocated ``(capacity, width)`` arrays filled in place, so
both the scalar ``push`` path and the vectorized batch path write into the
same representation and produce identical flush sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Words of routing header preceding the payload in each item row.
HEADER_WORDS = 2

COL_DST = 0
COL_SRC = 1


class OutBuffer:
    """One aggregation buffer toward a single next-hop PE."""

    __slots__ = ("hop", "capacity", "width", "rows", "count")

    def __init__(self, hop: int, capacity: int, width: int) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer capacity must be positive: {capacity}")
        self.hop = hop
        self.capacity = capacity
        self.width = width
        self.rows = np.empty((capacity, width), dtype=np.int64)
        self.count = 0

    @property
    def full(self) -> bool:
        return self.count >= self.capacity

    @property
    def empty(self) -> bool:
        return self.count == 0

    @property
    def space(self) -> int:
        return self.capacity - self.count

    def append(self, final_dst: int, src: int, payload: tuple[int, ...]) -> None:
        """Append one item (caller must have checked :attr:`full`)."""
        row = self.rows[self.count]
        row[COL_DST] = final_dst
        row[COL_SRC] = src
        row[HEADER_WORDS:] = payload
        self.count += 1

    def append_rows(self, block: np.ndarray) -> None:
        """Append pre-built item rows (caller must have checked space)."""
        n = len(block)
        self.rows[self.count : self.count + n] = block
        self.count += n

    def take(self) -> np.ndarray:
        """Detach and return the filled rows, leaving the buffer empty."""
        out = self.rows[: self.count]
        self.rows = np.empty((self.capacity, self.width), dtype=np.int64)
        self.count = 0
        return out


@dataclass
class InboundBuffer:
    """A delivered buffer waiting to be ingested by the receiving PE."""

    arrival: int
    hop_src: int
    kind: str  # "local_send" | "nonblock_send"
    data: np.ndarray
    #: Injected duplicate delivery (fault injection).  The receiver
    #: detects and discards it — like a sequence-number check in a real
    #: transport — so exactly-once item semantics survive.
    duplicate: bool = False

    @property
    def count(self) -> int:
        return len(self.data)


class ReadyQueue:
    """Items that reached their final destination, awaiting ``pull``.

    Stores delivered segments (arrays) and serves items one at a time via
    a cursor, or whole segments via :meth:`take_all` for batch handlers.
    """

    def __init__(self) -> None:
        self._segments: list[np.ndarray] = []
        self._cursor = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def empty(self) -> bool:
        return self._count == 0

    def put(self, rows: np.ndarray) -> None:
        if len(rows) == 0:
            return
        self._segments.append(rows)
        self._count += len(rows)

    def pop(self) -> np.ndarray | None:
        """Remove and return the next item row, or None when empty."""
        while self._segments:
            seg = self._segments[0]
            if self._cursor < len(seg):
                row = seg[self._cursor]
                self._cursor += 1
                self._count -= 1
                return row
            self._segments.pop(0)
            self._cursor = 0
        return None

    def take_all(self) -> list[np.ndarray]:
        """Remove and return every pending segment (batch-handler path)."""
        out: list[np.ndarray] = []
        if self._segments:
            first = self._segments[0][self._cursor :]
            if len(first):
                out.append(first)
            out.extend(self._segments[1:])
        self._segments = []
        self._cursor = 0
        self._count = 0
        return out


@dataclass
class ConveyorStats:
    """Per-endpoint operation counts (used by tests and reports)."""

    pushes: int = 0
    push_fails: int = 0
    pulls: int = 0
    forwarded: int = 0
    buffers_sent: dict[str, int] = field(default_factory=dict)
    bytes_sent: dict[str, int] = field(default_factory=dict)
    progress_calls: int = 0
    #: Fault-injection accounting.  Retries/duplicates are tracked here,
    #: NOT in ``buffers_sent`` / the physical trace: a wire transfer is
    #: recorded as ``nonblock_send`` exactly once however many injected
    #: drops preceded it, and an injected duplicate delivery adds no
    #: second record.
    retries: int = 0
    duplicates: int = 0
    dups_discarded: int = 0
    delayed: int = 0

    def note_send(self, kind: str, nbytes: int) -> None:
        self.buffers_sent[kind] = self.buffers_sent.get(kind, 0) + 1
        self.bytes_sent[kind] = self.bytes_sent.get(kind, 0) + nbytes
