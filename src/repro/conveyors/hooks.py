"""Instrumentation hook points inside Conveyors.

The paper places ActorProf's physical-trace instrumentation *inside* the
Conveyors library (compile flag ``-DENABLE_TRACE_PHYSICAL``), recording one
record per network operation: ``local_send``, ``nonblock_send`` and
``nonblock_progress``.  :class:`TraceSink` is the seam those hooks call
through; :mod:`repro.core.physical` provides the real recorder and
:class:`NullTraceSink` is the disabled (zero-overhead) default.
"""

from __future__ import annotations

from typing import Protocol

#: The three instrumented Conveyors operations (paper Section III-C).
SEND_TYPES = ("local_send", "nonblock_send", "nonblock_progress")


class TraceSink(Protocol):
    """Receiver of physical-trace records emitted from inside Conveyors."""

    def record(self, send_type: str, nbytes: int, src_pe: int, dst_pe: int, time: int) -> None:
        """Record one network operation.

        Parameters
        ----------
        send_type:
            One of :data:`SEND_TYPES`.
        nbytes:
            Buffer (network packet) size in bytes; the signal size for
            ``nonblock_progress``.
        src_pe / dst_pe:
            The *physical* (routed) endpoints of this hop.
        time:
            The sender's cycle clock when the operation was issued.
        """


class NullTraceSink:
    """Trace sink used when ``-DENABLE_TRACE_PHYSICAL`` is off."""

    def record(self, send_type: str, nbytes: int, src_pe: int, dst_pe: int, time: int) -> None:  # noqa: D102
        pass
