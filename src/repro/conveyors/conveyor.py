"""The Conveyor porcelain: push / pull / advance with aggregation.

One :class:`ConveyorGroup` is a collective object spanning all PEs (like a
``convey_t`` constructed collectively in bale); each PE interacts with its
own :class:`Conveyor` endpoint.

Semantics reproduced from bale/Conveyors as the paper relies on them:

* ``push(payload, dst)`` **fails** (returns False) when the next-hop
  buffer is full; the caller must ``advance()`` and retry.  This failure/
  retry loop is what interleaves message handling with message generation
  in the FA-BSP runtime (paper Fig. 1).
* ``advance(done)`` ingests arrived buffers (routing multi-hop items
  onward), sends full buffers always and partial buffers only once the
  endpoint has signalled ``done`` (the lazy-send policy), and returns
  False only when the whole conveyor is quiescent: every endpoint done and
  every pushed item pulled.
* ``pull()`` returns one ``(source_pe, payload)`` at the item's final
  destination.
* Remote buffer sends use double buffering: at most ``slots`` outstanding
  ``shmem_putmem_nbi`` per destination, after which the sender performs
  ``nonblock_progress`` = ``shmem_quiet`` (completing ALL outstanding
  puts, per OpenSHMEM semantics) + a signalling ``shmem_put`` to that
  destination.

Batch variants (``push_many`` / ``pull_segments``) move numpy blocks
through the identical buffer/flush machinery so traces and statistics are
item-for-item the same as the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conveyors.buffers import (
    COL_DST,
    COL_SRC,
    HEADER_WORDS,
    ConveyorStats,
    InboundBuffer,
    OutBuffer,
    ReadyQueue,
)
from repro.conveyors.hooks import NullTraceSink, TraceSink
from repro.conveyors.topology import Topology, make_topology
from repro.shmem.runtime import ShmemRuntime
from repro.sim.errors import FaultError, SimulationError
from repro.sim.faults import FaultInjector
from repro.sim.scheduler import DEFAULT_POLICY, SchedulePolicy


@dataclass(frozen=True)
class ConveyorConfig:
    """Construction parameters of a conveyor.

    Attributes
    ----------
    payload_words:
        Number of int64 words per message payload (1 for an index, 2 for a
        ``(row, col)`` pair, ...).
    buffer_items:
        Aggregation buffer capacity in items, per next-hop destination.
    slots:
        Double-buffering depth: outstanding non-blocking puts allowed per
        remote destination before ``nonblock_progress`` is required.
    topology:
        ``auto`` (paper behaviour: linear on 1 node, mesh on several),
        ``linear``, ``mesh``, or ``cube``.
    self_send_bypass:
        Ablation knob (paper §IV-D "Note for self-sends"): when True,
        self-sends skip aggregation entirely.  Default False — real
        Conveyors routes self-sends through the full buffer path.
    item_header_bytes / buffer_header_bytes:
        Wire-format overheads used for buffer (packet) size accounting.
    """

    payload_words: int = 1
    buffer_items: int = 64
    slots: int = 2
    topology: str = "auto"
    self_send_bypass: bool = False
    item_header_bytes: int = 8
    buffer_header_bytes: int = 16

    def __post_init__(self) -> None:
        if self.payload_words < 1:
            raise ValueError("payload_words must be >= 1")
        if self.buffer_items < 1:
            raise ValueError("buffer_items must be >= 1")
        if self.slots < 1:
            raise ValueError("slots must be >= 1")

    @property
    def payload_bytes(self) -> int:
        """User-visible message size (what the logical trace records)."""
        return 8 * self.payload_words

    def wire_bytes(self, count: int) -> int:
        """Network packet size of a buffer carrying ``count`` items."""
        return self.buffer_header_bytes + count * (
            self.payload_bytes + self.item_header_bytes
        )


class ConveyorGroup:
    """Collective conveyor state across all PEs."""

    def __init__(
        self,
        runtime: ShmemRuntime,
        config: ConveyorConfig | None = None,
        tracer: TraceSink | None = None,
        faults: FaultInjector | None = None,
        policy: SchedulePolicy | None = None,
    ) -> None:
        self.runtime = runtime
        self.config = config or ConveyorConfig()
        self.tracer: TraceSink = tracer if tracer is not None else NullTraceSink()
        self.faults = faults
        #: Resolves the flush-order don't-care (ActorCheck's jitter seam).
        self.policy: SchedulePolicy = policy if policy is not None else DEFAULT_POLICY
        self.topology: Topology = make_topology(self.config.topology, runtime.spec)
        self.live = 0  # pushed-but-not-yet-pulled items, globally
        self.done = [False] * runtime.spec.n_pes
        self._done_count = 0
        self._quiescent = False
        #: WaitChannel notified whenever quiescence flips (either way:
        #: a handler running during another group's drain may push after
        #: this group already went quiescent).  Drain loops blocked on
        #: completion register with it.
        self.wake = runtime.scheduler.channel()
        self.endpoints = [Conveyor(self, pe) for pe in range(runtime.spec.n_pes)]

    @property
    def n_pes(self) -> int:
        return self.runtime.spec.n_pes

    def quiescent(self) -> bool:
        """True when no endpoint will push again and every item was pulled.

        O(1): ``done`` flags are counted as they flip (:meth:`mark_done`)
        instead of re-scanned per call — this sits inside every
        ``advance()`` poll and every drain predicate.
        """
        return self.live == 0 and self._done_count == len(self.done)

    def add_live(self, n: int) -> None:
        """Account ``n`` newly pushed items (may revoke quiescence)."""
        self.live += n
        if self._quiescent:
            self._quiescent = False
            self.wake.notify()

    def drop_live(self, n: int) -> None:
        """Account ``n`` pulled items."""
        self.live -= n
        self._recheck_quiescent()

    def mark_done(self, pe: int) -> None:
        """Record endpoint ``pe``'s (sticky, idempotent) done signal."""
        if not self.done[pe]:
            self.done[pe] = True
            self._done_count += 1
            self._recheck_quiescent()

    def _recheck_quiescent(self) -> None:
        q = self.live == 0 and self._done_count == len(self.done)
        if q != self._quiescent:
            self._quiescent = q
            self.wake.notify()


class Conveyor:
    """One PE's endpoint of a :class:`ConveyorGroup`."""

    def __init__(self, group: ConveyorGroup, me: int) -> None:
        self.group = group
        self.me = me
        self.ctx = group.runtime.contexts[me]
        self.perf = group.runtime.perf[me]
        cfg = group.config
        self.width = HEADER_WORDS + cfg.payload_words
        self.out: dict[int, OutBuffer] = {}
        # Per-hop queued-item counts, mirrored from the OutBuffers so flush
        # candidates come from one vectorized compare instead of a dict walk.
        self._out_items = np.zeros(group.n_pes, dtype=np.int64)
        self._out_total = 0  # scalar sum of _out_items: O(1) empty probe
        self.inbound: list[InboundBuffer] = []
        # Cached min over inbound arrivals (None iff inbound is empty):
        # makes the per-advance visibility probe O(1).
        self._min_arrival: int | None = None
        #: WaitChannel notified on every inbound delivery to this endpoint.
        self.inbox_wake = group.runtime.scheduler.channel()
        self.ready = ReadyQueue()
        self.outstanding: dict[int, int] = {}
        self.done_requested = False
        self.stats = ConveyorStats()
        self._hop_map: np.ndarray | None = None
        # What-if DAG seam: tracers that also want (issue, arrival) pairs
        # per wire transfer expose ``record_transfer``; plain TraceSinks
        # don't, and pay nothing.
        self._transfer_sink = getattr(group.tracer, "record_transfer", None)

    # ------------------------------------------------------------------
    # push side
    # ------------------------------------------------------------------

    def push(self, payload, dst: int) -> bool:
        """Queue one message for ``dst``; False when the buffer is full.

        Pushing after ``advance(done=True)`` is permitted at this layer —
        the FA-BSP runtime needs it for handler-initiated sends during the
        drain; *user*-side pushes after ``done()`` are rejected by the
        Selector layer.
        """
        if not 0 <= dst < self.group.n_pes:
            raise ValueError(f"destination PE {dst} out of range")
        if isinstance(payload, (int, np.integer)):
            payload = (int(payload),)
        if len(payload) != self.group.config.payload_words:
            raise ValueError(
                f"payload has {len(payload)} words; conveyor configured for "
                f"{self.group.config.payload_words}"
            )
        if self.group.config.self_send_bypass and dst == self.me:
            row = np.empty((1, self.width), dtype=np.int64)
            row[0, COL_DST] = dst
            row[0, COL_SRC] = self.me
            row[0, HEADER_WORDS:] = payload
            self.ready.put(row)
            self.group.add_live(1)
            self.stats.pushes += 1
            return True
        hop = self.group.topology.next_hop(self.me, dst) if dst != self.me else self.me
        buf = self._buffer_for(hop)
        if buf.full:
            self.stats.push_fails += 1
            self.perf.work(ins=self.perf.cost.push_retry_ins, loads=2, branches=1)
            return False
        buf.append(dst, self.me, tuple(payload))
        self._out_items[hop] += 1
        self._out_total += 1
        self.perf.work(ins=self.perf.cost.push_ins, loads=4, stores=4, branches=2)
        self.group.add_live(1)
        self.stats.pushes += 1
        return True

    def push_many(self, dsts: np.ndarray, payloads: np.ndarray | None = None) -> int:
        """Vectorized push of many messages; flushes full buffers inline.

        Unlike scalar :meth:`push`, this never fails: buffers that fill up
        are sent immediately (the scalar path achieves the same thing via
        the fail→advance→retry loop).  Callers that want interleaved
        message handling should push in chunks and poll between chunks.

        ``payloads`` may be None (payload = dst is meaningless; use a
        single column of zeros), a 1-D array (one word per item), or a 2-D
        ``(n, payload_words)`` array.  Returns the number of items queued.
        """
        dsts = np.ascontiguousarray(dsts, dtype=np.int64)
        n = len(dsts)
        if n == 0:
            return 0
        if dsts.min() < 0 or dsts.max() >= self.group.n_pes:
            raise ValueError("destination PE out of range in batch push")
        rows = np.empty((n, self.width), dtype=np.int64)
        rows[:, COL_DST] = dsts
        rows[:, COL_SRC] = self.me
        if payloads is None:
            rows[:, HEADER_WORDS:] = 0
        else:
            payloads = np.asarray(payloads, dtype=np.int64)
            if payloads.ndim == 1:
                payloads = payloads[:, None]
            if payloads.shape != (n, self.group.config.payload_words):
                raise ValueError(
                    f"payload block shape {payloads.shape} != "
                    f"({n}, {self.group.config.payload_words})"
                )
            rows[:, HEADER_WORDS:] = payloads
        if self.group.config.self_send_bypass:
            mask = dsts == self.me
            if mask.any():
                self.ready.put(rows[mask])
                rows = rows[~mask]
        self._route_rows(rows)
        cost = self.perf.cost
        self.perf.work(ins=cost.push_ins * n, loads=4 * n, stores=4 * n,
                       branches=2 * n)
        self.group.add_live(n)
        self.stats.pushes += n
        return n

    # ------------------------------------------------------------------
    # pull side
    # ------------------------------------------------------------------

    def pull(self):
        """Return ``(source_pe, payload)`` or None when nothing is ready.

        ``payload`` is an int when the conveyor carries one word, else a
        tuple of ints.
        """
        row = self.ready.pop()
        if row is None:
            return None
        self.perf.work(ins=self.perf.cost.pull_item_ins, loads=3, stores=1, branches=1)
        self.stats.pulls += 1
        self.group.drop_live(1)
        src = int(row[COL_SRC])
        if self.width - HEADER_WORDS == 1:
            return src, int(row[HEADER_WORDS])
        return src, tuple(int(x) for x in row[HEADER_WORDS:])

    def pull_segments(self) -> list[np.ndarray]:
        """Batch pull: every ready item as raw rows (header + payload).

        Charges the same per-item cost as scalar pulls and updates the
        same statistics, so the two paths are interchangeable.
        """
        segs = self.ready.take_all()
        total = sum(len(s) for s in segs)
        if total:
            cost = self.perf.cost
            self.perf.work(
                ins=cost.pull_item_ins * total,
                loads=3 * total,
                stores=total,
                branches=total,
            )
            self.stats.pulls += total
            self.group.drop_live(total)
        return segs

    @property
    def ready_count(self) -> int:
        """Items deliverable by :meth:`pull` right now."""
        return len(self.ready)

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------

    def advance(self, done: bool = False) -> bool:
        """Make progress; returns False once the conveyor is complete.

        ``done=True`` (sticky) signals this endpoint will push no more.
        """
        if done:
            self.done_requested = True
            self.group.mark_done(self.me)
        self.perf.work(ins=self.perf.cost.advance_poll_ins, loads=6, branches=4)
        self._ingest_visible()
        self._flush(partial=self.done_requested)
        if self.done_requested:
            self._endgame_progress()
        return not self.group.quiescent()

    def has_visible_inbound(self) -> bool:
        """True when a delivered buffer is visible at the current clock."""
        ma = self._min_arrival
        return ma is not None and ma <= self.perf.clock.now

    def has_inbound(self) -> bool:
        """True when any buffer is in flight to this PE (even future ones).

        Drain loops must block on *this* (not on visibility): a buffer may
        land with an arrival timestamp ahead of the receiver's clock, in
        which case the receiver needs to wake, observe the arrival time,
        and re-block with a timed wakeup.
        """
        return bool(self.inbound)

    def next_arrival_time(self) -> int | None:
        """Earliest arrival among in-flight buffers to this PE, or None."""
        return self._min_arrival

    def is_complete(self) -> bool:
        """True when the whole conveyor group is quiescent."""
        return self.group.quiescent()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _buffer_for(self, hop: int) -> OutBuffer:
        buf = self.out.get(hop)
        if buf is None:
            buf = OutBuffer(hop, self.group.config.buffer_items, self.width)
            self.out[hop] = buf
        return buf

    def _hop_lookup(self) -> np.ndarray:
        if self._hop_map is None:
            self._hop_map = self.group.topology.hop_row(self.me)
        return self._hop_map

    def _route_rows(self, rows: np.ndarray) -> None:
        """Place item rows into per-hop buffers, flushing full ones.

        Hop groups are always processed in ascending hop order with the
        rows inside a group in their original relative order, so the small
        fast paths below are trace-identical to the stable-sort path.
        """
        n = len(rows)
        if n == 0:
            return
        hop_map = self._hop_lookup()
        hops = hop_map[rows[:, COL_DST]]
        first = int(hops[0])
        if n == 1 or int(hops.max()) == int(hops.min()):
            # Single destination hop (the common case for forwarded
            # blocks): skip the sort/partition machinery entirely.
            self._append_block(first, rows)
            return
        if n <= 16:
            # Tiny mixed block: a Python bucket loop beats the numpy
            # argsort/diff/concatenate pipeline below.
            hop_list = hops.tolist()
            for hop in sorted(set(hop_list)):
                idx = [i for i, h in enumerate(hop_list) if h == hop]
                self._append_block(hop, rows[idx])
            return
        order = np.argsort(hops, kind="stable")
        rows = rows[order]
        hops = hops[order]
        boundaries = np.flatnonzero(np.diff(hops)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        for s, e in zip(starts, ends):
            self._append_block(int(hops[s]), rows[s:e])

    def _append_block(self, hop: int, block: np.ndarray) -> None:
        """Append one same-hop row block to its buffer, flushing when full."""
        buf = self._buffer_for(hop)
        off = 0
        while off < len(block):
            take = min(buf.space, len(block) - off)
            buf.append_rows(block[off : off + take])
            self._out_items[hop] += take
            self._out_total += take
            off += take
            if buf.full:
                self._flush_buffer(hop, buf)

    def _deliver(self, buf: InboundBuffer) -> None:
        """Land an in-flight buffer at this endpoint (called by the sender)."""
        self.inbound.append(buf)
        if self._min_arrival is None or buf.arrival < self._min_arrival:
            self._min_arrival = buf.arrival
        self.inbox_wake.notify()

    def _ingest_visible(self) -> None:
        """Consume arrived buffers: deliver local items, forward the rest."""
        ma = self._min_arrival
        if ma is None or ma > self.perf.clock.now:
            return  # nothing in flight, or nothing visible yet: O(1) probe
        now = self.perf.clock.now
        visible = [b for b in self.inbound if b.arrival <= now]
        self.inbound = [b for b in self.inbound if b.arrival > now]
        self._min_arrival = min((b.arrival for b in self.inbound), default=None)
        cost = self.perf.cost
        forward_total = 0
        for buf in visible:
            if buf.duplicate:
                # Injected duplicate delivery: detected (think sequence
                # numbers) and discarded, preserving exactly-once pulls.
                self.stats.dups_discarded += 1
                self.perf.work(ins=8, loads=2, branches=2)
                continue
            rows = buf.data
            mask = rows[:, COL_DST] == self.me
            mine = rows[mask]
            if len(mine):
                self.ready.put(mine)
            rest = rows[~mask]
            if len(rest):
                forward_total += len(rest)
                self._route_rows(rest)
        if forward_total:
            self.stats.forwarded += forward_total
            self.perf.work(
                ins=cost.route_item_ins * forward_total,
                loads=2 * forward_total,
                stores=forward_total,
                branches=forward_total,
            )

    def _flush(self, partial: bool) -> None:
        # Vectorized candidate scan: a hop qualifies when its buffer is
        # full (== buffer_items; counts never exceed capacity) or, once
        # partial flushing is on, non-empty.  flatnonzero yields hops
        # ascending — the same order the dict-walk produced — so the
        # flush_order policy sees identical input.
        if not self._out_total:
            return  # no queued items anywhere: skip the vector scan
        threshold = 1 if partial else self.group.config.buffer_items
        candidates = np.flatnonzero(self._out_items >= threshold)
        if candidates.size == 0:
            return
        hops = [int(h) for h in candidates]
        if len(hops) > 1:
            hops = list(self.group.policy.flush_order(self.me, hops))
        for hop in hops:
            buf = self.out[hop]
            if buf.empty:
                continue
            self._flush_buffer(hop, buf)

    def _flush_buffer(self, hop: int, buf: OutBuffer) -> None:
        rows = buf.take()
        self._out_total -= int(self._out_items[hop])
        self._out_items[hop] = 0
        count = len(rows)
        if count == 0:
            return
        nbytes = self.group.config.wire_bytes(count)
        spec = self.group.runtime.spec
        duplicated = False
        if spec.same_node(self.me, hop):
            # Intra-node delivery is a memcpy through shared memory;
            # injected network faults do not apply to it.
            kind = "local_send"
            self.ctx.local_memcpy(nbytes)
            arrival = self.perf.clock.now
        else:
            kind = "nonblock_send"
            if self.outstanding.get(hop, 0) >= self.group.config.slots:
                self._progress(hop)
            arrival, duplicated = self._put_with_faults(hop, nbytes)
            self.outstanding[hop] = self.outstanding.get(hop, 0) + 1
        # Exactly one trace record / stats entry per successful wire
        # transfer: retries and duplicates are accounted separately.
        self.group.tracer.record(kind, nbytes, self.me, hop, self.perf.clock.now)
        if self._transfer_sink is not None:
            self._transfer_sink(
                kind, nbytes, self.me, hop, self.perf.clock.now, arrival
            )
        self.stats.note_send(kind, nbytes)
        endpoint = self.group.endpoints[hop]
        endpoint._deliver(
            InboundBuffer(arrival=arrival, hop_src=self.me, kind=kind, data=rows)
        )
        if duplicated:
            endpoint._deliver(
                InboundBuffer(
                    arrival=arrival, hop_src=self.me, kind=kind, data=rows,
                    duplicate=True,
                )
            )

    def _put_with_faults(self, hop: int, nbytes: int) -> tuple[int, bool]:
        """Issue the non-blocking put for one buffer, absorbing faults.

        Dropped puts are retried with exponential backoff up to the
        plan's ``max_retries``; a lost put leaves no pending completion
        (the packet is gone, so it cannot extend a later ``quiet``) and
        no trace record.  Returns ``(arrival, duplicated)``.
        """
        faults = self.group.faults
        if faults is None:
            return self.ctx.putmem_nbi_raw(hop, nbytes), False
        plan = faults.plan
        attempt = 0
        while True:
            outcome = faults.send_outcome(self.me, hop, self.perf.clock.now)
            if outcome.action != "drop":
                arrival = self.ctx.putmem_nbi_raw(hop, nbytes)
                if outcome.extra_delay:
                    self.stats.delayed += 1
                    arrival += outcome.extra_delay
                if outcome.action == "duplicate":
                    self.stats.duplicates += 1
                return arrival, outcome.action == "duplicate"
            # The put was issued and lost in the network: charge the
            # issue-side work, back off, retry.
            self.stats.retries += 1
            self.perf.work(ins=30, loads=6, stores=6, branches=2)
            if attempt >= plan.max_retries:
                raise FaultError(
                    f"PE {self.me}: buffer put to PE {hop} dropped "
                    f"{attempt + 1} times (injected fault); retry budget "
                    f"of {plan.max_retries} exhausted"
                )
            if plan.backoff_cycles:
                self.perf.stall(plan.backoff_cycles << attempt)
            attempt += 1

    def _progress(self, dst: int) -> None:
        """nonblock_progress: quiet (completes ALL puts) + signal ``dst``."""
        self.ctx.quiet()
        self.ctx.put_signal(dst)
        self.group.tracer.record(
            "nonblock_progress", 8, self.me, dst, self.perf.clock.now
        )
        self.stats.note_send("nonblock_progress", 8)
        self.stats.progress_calls += 1
        self.outstanding.clear()

    def _endgame_progress(self) -> None:
        """Final completion: once nothing remains buffered, ensure all
        outstanding puts are globally visible and signal their targets."""
        if not self.outstanding:
            return  # nothing to complete (common steady state in the drain)
        if any(not b.empty for b in self.out.values()):
            return
        dests = sorted(d for d, c in self.outstanding.items() if c > 0)
        if not dests:
            return
        self.ctx.quiet()
        for d in dests:
            self.ctx.put_signal(d)
            self.group.tracer.record(
                "nonblock_progress", 8, self.me, d, self.perf.clock.now
            )
            self.stats.note_send("nonblock_progress", 8)
            self.stats.progress_calls += 1
        self.outstanding.clear()
