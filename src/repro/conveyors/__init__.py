"""Simulated Conveyors message-aggregation library.

A Python reconstruction of the bale *Conveyors* library's behaviour as the
paper describes it:

* push-style aggregation into fixed-capacity per-destination buffers,
* a lazy-send policy — full buffers are sent during ``advance``; partial
  buffers only in the endgame,
* multi-hop routing over 1D linear / 2D mesh / 3D cube topologies where
  row hops stay on a node (``local_send``: memcpy via ``shmem_ptr``) and
  column hops cross nodes (``nonblock_send``: ``shmem_putmem_nbi``),
* double buffering per remote destination, with ``nonblock_progress``
  (``shmem_quiet`` + signalling ``shmem_put``) when both slots are
  exhausted,
* the bale porcelain API — ``push`` (fails when full), ``pull``,
  ``advance(done)`` — plus vectorized batch variants used by large
  workloads.

ActorProf's physical trace (Section III-C of the paper) hooks into exactly
the three calls above via :class:`~repro.conveyors.hooks.TraceSink`.
"""

from repro.conveyors.conveyor import Conveyor, ConveyorConfig, ConveyorGroup
from repro.conveyors.exstack import Exstack, ExstackGroup
from repro.conveyors.hooks import NullTraceSink, TraceSink
from repro.conveyors.topology import (
    CubeTopology,
    LinearTopology,
    MeshTopology,
    Topology,
    make_topology,
)

__all__ = [
    "Conveyor",
    "ConveyorConfig",
    "ConveyorGroup",
    "CubeTopology",
    "Exstack",
    "ExstackGroup",
    "LinearTopology",
    "MeshTopology",
    "NullTraceSink",
    "Topology",
    "TraceSink",
    "make_topology",
]
