"""Conveyor routing topologies.

Conveyors routes aggregated buffers over a *static* virtual topology
(paper Section III-C): every (source, destination) pair has a fixed
multi-hop route.  The shipped topologies are:

* :class:`LinearTopology` (1D) — direct single-hop delivery.  This is what
  a single-node run uses; every hop is intra-node, so the physical trace
  contains only ``local_send`` records (paper Fig. 8).
* :class:`MeshTopology` (2D) — PEs form a ``nodes × pes_per_node`` grid
  (row = node).  A message first hops *along the row* to the PE in its
  destination's column (intra-node ``local_send``), then *down the column*
  to the destination (inter-node ``nonblock_send``) — paper Fig. 9.
* :class:`CubeTopology` (3D) — the node-local index is split into two
  axes; messages correct the two local axes first (two possible
  ``local_send`` hops), then the node axis (``nonblock_send``).

Routes never revisit a PE and always terminate: each hop strictly reduces
the number of mismatched coordinates.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.machine.spec import MachineSpec


class Topology(ABC):
    """Route computation: the next hop a message takes toward its target."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in configs and reports."""

    @abstractmethod
    def next_hop(self, current: int, final_dst: int) -> int:
        """The PE a message at ``current`` is forwarded to next.

        ``current == final_dst`` is a caller error: delivery happens before
        routing is consulted.
        """

    def hop_row(self, me: int) -> np.ndarray:
        """Next hop from ``me`` toward every destination, as one vector.

        Entry ``dst`` is ``next_hop(me, dst)``, except entry ``me`` which is
        ``me`` itself (a message already at its destination is delivered, not
        routed).  Subclasses with closed-form routing override this with a
        vectorized build; this generic fallback just loops.
        """
        hops = np.empty(self.spec.n_pes, dtype=np.int64)
        for dst in range(self.spec.n_pes):
            hops[dst] = me if dst == me else self.next_hop(me, dst)
        return hops

    def route(self, src: int, dst: int) -> list[int]:
        """Full hop list from ``src`` to ``dst`` (excluding ``src``)."""
        hops: list[int] = []
        cur = src
        while cur != dst:
            cur = self.next_hop(cur, dst)
            hops.append(cur)
            if len(hops) > 8:  # pragma: no cover - safety net
                raise RuntimeError(f"routing loop from {src} to {dst}: {hops}")
        return hops


class LinearTopology(Topology):
    """1D: every destination is one direct hop away."""

    @property
    def name(self) -> str:
        return "linear"

    def next_hop(self, current: int, final_dst: int) -> int:
        if current == final_dst:
            raise ValueError("message already at destination")
        return final_dst

    def hop_row(self, me: int) -> np.ndarray:
        return np.arange(self.spec.n_pes, dtype=np.int64)


class MeshTopology(Topology):
    """2D: row = node, column = local index.  Row hop, then column hop."""

    @property
    def name(self) -> str:
        return "mesh"

    def next_hop(self, current: int, final_dst: int) -> int:
        if current == final_dst:
            raise ValueError("message already at destination")
        spec = self.spec
        cur_col = spec.local_index(current)
        dst_col = spec.local_index(final_dst)
        if cur_col != dst_col:
            # Hop along my row (intra-node) into the destination's column.
            return spec.pe_at(spec.node_of(current), dst_col)
        # Same column: hop down the column (inter-node) to the target row.
        return final_dst

    def hop_row(self, me: int) -> np.ndarray:
        spec = self.spec
        ppn = spec.pes_per_node
        dsts = np.arange(spec.n_pes, dtype=np.int64)
        dst_col = dsts % ppn
        row_hop = spec.node_of(me) * ppn + dst_col
        # Different column: row hop.  Same column (including dst == me,
        # where the row hop *is* me): hop straight down to the destination.
        return np.where(dst_col != spec.local_index(me), row_hop, dsts)


class CubeTopology(Topology):
    """3D: local index split into (a, b) axes; route a, then b, then node.

    ``a_dim`` defaults to the largest factor of ``pes_per_node`` not
    exceeding its square root, giving the most cube-like local grid.
    """

    def __init__(self, spec: MachineSpec, a_dim: int | None = None) -> None:
        super().__init__(spec)
        ppn = spec.pes_per_node
        if a_dim is None:
            a_dim = 1
            for cand in range(int(math.isqrt(ppn)), 0, -1):
                if ppn % cand == 0:
                    a_dim = cand
                    break
        if ppn % a_dim != 0:
            raise ValueError(f"a_dim {a_dim} does not divide pes_per_node {ppn}")
        self.a_dim = a_dim
        self.b_dim = ppn // a_dim

    @property
    def name(self) -> str:
        return "cube"

    def _coords(self, pe: int) -> tuple[int, int, int]:
        node = self.spec.node_of(pe)
        local = self.spec.local_index(pe)
        return (local % self.a_dim, local // self.a_dim, node)

    def _pe(self, a: int, b: int, node: int) -> int:
        return self.spec.pe_at(node, b * self.a_dim + a)

    def next_hop(self, current: int, final_dst: int) -> int:
        if current == final_dst:
            raise ValueError("message already at destination")
        ca, cb, cn = self._coords(current)
        da, db, dn = self._coords(final_dst)
        if ca != da:
            return self._pe(da, cb, cn)  # intra-node: fix a-axis
        if cb != db:
            return self._pe(ca, db, cn)  # intra-node: fix b-axis
        return self._pe(ca, cb, dn)  # inter-node: fix node axis


def make_topology(kind: str, spec: MachineSpec) -> Topology:
    """Construct a topology by name.

    ``"auto"`` picks what the paper reports Conveyors doing: 1D linear on a
    single node, 2D mesh on multiple nodes.
    """
    kind = kind.lower()
    if kind == "auto":
        kind = "linear" if spec.nodes == 1 else "mesh"
    if kind == "linear":
        return LinearTopology(spec)
    if kind == "mesh":
        return MeshTopology(spec)
    if kind == "cube":
        return CubeTopology(spec)
    raise ValueError(f"unknown topology {kind!r}; want auto/linear/mesh/cube")
