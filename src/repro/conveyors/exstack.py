"""exstack: the bulk-synchronous aggregation predecessor of Conveyors.

The paper's Section II-B recounts how Conveyors overcame the bottlenecks
of earlier aggregation libraries, naming exstack's **global
synchronization problem**: exstack exchanges buffers at *collective*
points — every PE must call ``exchange`` together, and everyone waits for
the slowest — whereas Conveyors sends asynchronously whenever a buffer
fills.  This module implements exstack so that difference can be measured
(``benchmarks/test_ablation_exstack.py``).

API shape follows bale's exstack:

* ``push(payload, dst)`` — False when the buffer toward ``dst`` is full;
  the caller must reach the next collective ``exchange``.
* ``exchange(done)`` — **collective**: swaps every PE's outgoing buffers
  (an alltoallv), after which ``pull`` drains the received items.
  Returns False once every PE has signalled done and nothing moved.
* ``pull()`` — next ``(source_pe, payload)`` or None.

Timing: the exchange is a rendezvous — all clocks advance to the latest
arrival plus collective cost, then each PE pays per-byte copy/transfer
costs for its inbound traffic.  That rendezvous is precisely where the
global synchronization problem lives: one slow sender stalls all PEs.
"""

from __future__ import annotations

import numpy as np

from repro.shmem.runtime import ShmemRuntime
from repro.sim.errors import SimulationError


class ExstackGroup:
    """Collective exstack state across all PEs."""

    def __init__(self, runtime: ShmemRuntime, payload_words: int = 1,
                 buffer_items: int = 64) -> None:
        if payload_words < 1:
            raise ValueError("payload_words must be >= 1")
        if buffer_items < 1:
            raise ValueError("buffer_items must be >= 1")
        self.runtime = runtime
        self.payload_words = payload_words
        self.buffer_items = buffer_items
        self.endpoints = [Exstack(self, pe) for pe in range(runtime.spec.n_pes)]

    @property
    def n_pes(self) -> int:
        return self.runtime.spec.n_pes

    @property
    def item_bytes(self) -> int:
        return 8 * (self.payload_words + 1)  # payload + source tag


class Exstack:
    """One PE's exstack endpoint."""

    def __init__(self, group: ExstackGroup, me: int) -> None:
        self.group = group
        self.me = me
        self.ctx = group.runtime.contexts[me]
        self.perf = group.runtime.perf[me]
        # out[dst] = list of payload tuples
        self.out: list[list[tuple]] = [[] for _ in range(group.n_pes)]
        self.inbox: list[tuple[int, tuple]] = []
        self._cursor = 0
        self.done_requested = False
        self.exchanges = 0
        self.pushes = 0
        self.pulls = 0

    # ------------------------------------------------------------------

    def push(self, payload, dst: int) -> bool:
        """Queue one item toward ``dst``; False when that buffer is full."""
        if not 0 <= dst < self.group.n_pes:
            raise ValueError(f"destination {dst} out of range")
        if isinstance(payload, (int, np.integer)):
            payload = (int(payload),)
        if len(payload) != self.group.payload_words:
            raise ValueError(
                f"payload has {len(payload)} words, expected "
                f"{self.group.payload_words}"
            )
        buf = self.out[dst]
        if len(buf) >= self.group.buffer_items:
            self.perf.work(ins=8, loads=2, branches=1)
            return False
        buf.append(tuple(payload))
        self.perf.work(ins=self.perf.cost.push_ins, loads=3, stores=3)
        self.pushes += 1
        return True

    def exchange(self, done: bool = False) -> bool:
        """Collective buffer swap; False when the whole group is finished.

        Every PE must call this the same number of times (it is a
        synchronizing collective, like bale's ``exstack_proceed``).
        """
        if done:
            self.done_requested = True
        self.exchanges += 1
        ctx = self.ctx
        # contribute my outgoing buffers; the combiner routes everything
        contribution = {
            "done": self.done_requested,
            "out": [list(buf) for buf in self.out],
            "src": self.me,
        }
        for buf in self.out:
            buf.clear()

        def combine(arrived: dict[int, dict]) -> dict:
            moved = 0
            delivered: dict[int, list[tuple[int, tuple]]] = {
                pe: [] for pe in arrived
            }
            for src in sorted(arrived):
                for dst, items in enumerate(arrived[src]["out"]):
                    for item in items:
                        delivered[dst].append((src, item))
                        moved += 1
            all_done = all(a["done"] for a in arrived.values())
            return {"delivered": delivered, "moved": moved, "all_done": all_done}

        # The dense-alltoall cost that Conveyors was built to avoid: every
        # exchange touches ALL P peer buffers — issue/poll per peer, every
        # round, however empty.  This O(P)-per-round term is exstack's
        # scaling problem (paper §II-B).
        n_pes = self.group.n_pes
        ctx.perf.work(
            ins=40 + 20 * n_pes,
            loads=8 + 4 * n_pes,
            stores=8 + 2 * n_pes,
            extra_cycles=n_pes * self.perf.cost.put_issue_cycles,
        )
        result = self.group.runtime.rendezvous(
            self.me, "exstack_exchange", contribution, combine
        )
        mine = result["delivered"][self.me]
        # pay for receiving my inbound bytes
        if mine:
            per_src: dict[int, int] = {}
            for src, _item in mine:
                per_src[src] = per_src.get(src, 0) + 1
            for src, n in per_src.items():
                nbytes = n * self.group.item_bytes
                cycles = self.group.runtime.network.transfer_cycles(
                    src, self.me, nbytes
                )
                self.perf.work(ins=5 * n, loads=2 * n, stores=2 * n,
                               extra_cycles=cycles)
        self.inbox = mine
        self._cursor = 0
        # finished when everyone signalled done and this round moved nothing
        return not (result["all_done"] and result["moved"] == 0)

    def pull(self):
        """Next received ``(source_pe, payload)`` or None this round."""
        if self._cursor >= len(self.inbox):
            return None
        src, payload = self.inbox[self._cursor]
        self._cursor += 1
        self.perf.work(ins=self.perf.cost.pull_item_ins, loads=3, stores=1)
        self.pulls += 1
        if len(payload) == 1:
            return src, payload[0]
        return src, payload
