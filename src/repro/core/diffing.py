"""Comparing two profiled runs (the case-study workflow, productized).

The paper's analysis is intrinsically comparative — 1D Cyclic *versus*
1D Range, one node *versus* two.  This module turns that into tooling:
given two runs' traces, compute the per-PE and aggregate deltas and render
a side-by-side report.  The CLI exposes it as ``--compare OTHER_DIR`` and
as ``actorprof diff RUN_A RUN_B``, where each run may be a paper-format
trace directory or a ``.aptrc`` archive (:func:`diff_runs`).

When *both* runs are archives, the comparison rides the columnar
:class:`~repro.core.store.frame.Frame` layer: send matrices are
scatter-summed straight from decoded columns and byte totals come from
footer chunk sums where available, so no full trace objects (and no
per-route Python dicts) are ever materialized.  Directory or mixed
comparisons keep the materializing path.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.analysis import imbalance_ratio
from repro.core.logical import LogicalTrace, parse_logical_dir
from repro.core.overall import OverallProfile, parse_overall_file
from repro.core.physical import PhysicalTrace, parse_physical_file
from repro.core.store.archive import (
    Archive,
    RunTraces,
    Section,
    is_archive,
    load_overall,
    load_run,
)
from repro.core.store.frame import Frame, group_sum, scatter_matrix


def _ratio(a: float, b: float) -> float:
    return float(a / b) if b else float("inf")


@dataclass(frozen=True)
class LogicalDiff:
    """Logical-trace comparison of run A against run B."""

    total_sends_a: int
    total_sends_b: int
    max_sends_ratio: float          # A's hottest sender vs B's
    max_recvs_ratio: float
    send_imbalance_a: float
    send_imbalance_b: float
    moved_messages: int             # |A - B| matrix mass (same shape only)

    @classmethod
    def of(cls, a: LogicalTrace, b: LogicalTrace) -> "LogicalDiff":
        return cls.from_matrices(a.matrix(), b.matrix())

    @classmethod
    def from_matrices(cls, ma: np.ndarray, mb: np.ndarray) -> "LogicalDiff":
        """Diff two per-PE send-count matrices directly (the archive
        path builds these from columns without a trace object)."""
        moved = int(np.abs(ma - mb).sum()) if ma.shape == mb.shape else -1
        return cls(
            total_sends_a=int(ma.sum()),
            total_sends_b=int(mb.sum()),
            max_sends_ratio=_ratio(ma.sum(axis=1).max(), mb.sum(axis=1).max()),
            max_recvs_ratio=_ratio(ma.sum(axis=0).max(), mb.sum(axis=0).max()),
            send_imbalance_a=imbalance_ratio(ma.sum(axis=1)),
            send_imbalance_b=imbalance_ratio(mb.sum(axis=1)),
            moved_messages=moved,
        )


@dataclass(frozen=True)
class OverallDiff:
    """Overall-profile comparison of run A against run B."""

    total_ratio: float              # max T_TOTAL A / B (>1 ⇒ A slower)
    main_share_a: float
    main_share_b: float
    comm_share_a: float
    comm_share_b: float
    proc_share_a: float
    proc_share_b: float

    @classmethod
    def of(cls, a: OverallProfile, b: OverallProfile) -> "OverallDiff":
        fa, fb = a.fractions(), b.fractions()
        return cls(
            total_ratio=_ratio(int(a.t_total.max()), int(b.t_total.max())),
            main_share_a=float(fa[:, 0].mean()),
            main_share_b=float(fb[:, 0].mean()),
            comm_share_a=float(fa[:, 1].mean()),
            comm_share_b=float(fb[:, 1].mean()),
            proc_share_a=float(fa[:, 2].mean()),
            proc_share_b=float(fb[:, 2].mean()),
        )


@dataclass(frozen=True)
class PhysicalDiff:
    """Physical-trace comparison of run A against run B."""

    ops_a: dict[str, int]
    ops_b: dict[str, int]
    bytes_ratio: float

    @classmethod
    def of(cls, a: PhysicalTrace, b: PhysicalTrace) -> "PhysicalDiff":
        return cls(
            ops_a=a.counts_by_type(),
            ops_b=b.counts_by_type(),
            bytes_ratio=_ratio(int(a.bytes_matrix().sum()),
                               int(b.bytes_matrix().sum())),
        )

    @classmethod
    def from_sections(cls, a: Section, b: Section) -> "PhysicalDiff":
        """Diff two archive physical sections without rebuilding traces."""
        return cls(
            ops_a=_ops_by_type(a),
            ops_b=_ops_by_type(b),
            bytes_ratio=_ratio(_wire_bytes(a), _wire_bytes(b)),
        )


def _ops_by_type(section: Section) -> dict[str, int]:
    """Operation counts per send-type name, from kind/count columns."""
    frame = Frame(section)
    names = [str(s) for s in section.attrs.get("send_types", ())]
    uniq, sums = group_sum(frame.column("kind"), frame.column("count"))
    return {
        (names[k] if 0 <= k < len(names) else str(k)): int(n)
        for k, n in zip(uniq.tolist(), sums.tolist())
    }


def _wire_bytes(section: Section) -> int:
    """Total ``count * size`` bytes; footer sums when available."""
    frame = Frame(section)
    total = frame.weighted_total()
    if total is None:
        total = int((frame.column("count") * frame.column("size")).sum())
    return total


def compare_report(
    label_a: str,
    label_b: str,
    logical: LogicalDiff | None = None,
    overall: OverallDiff | None = None,
    physical: PhysicalDiff | None = None,
) -> str:
    """Render a text comparison of run A vs run B."""
    lines = [f"== comparing {label_a!r} (A) vs {label_b!r} (B) =="]
    if logical is not None:
        d = logical
        lines.append(
            f"logical: sends A={d.total_sends_a:,} B={d.total_sends_b:,}; "
            f"hottest-sender ratio {d.max_sends_ratio:.2f}x, "
            f"hottest-receiver ratio {d.max_recvs_ratio:.2f}x"
        )
        lines.append(
            f"logical: send imbalance A={d.send_imbalance_a:.2f} "
            f"B={d.send_imbalance_b:.2f}"
        )
        if d.moved_messages >= 0:
            lines.append(
                f"logical: |A−B| matrix mass = {d.moved_messages:,} messages"
            )
    if overall is not None:
        d = overall
        verdict = "A slower" if d.total_ratio > 1 else "A faster"
        lines.append(
            f"overall: total-time ratio A/B = {d.total_ratio:.2f} ({verdict})"
        )
        lines.append(
            f"overall: shares A MAIN/COMM/PROC = {d.main_share_a:.0%}/"
            f"{d.comm_share_a:.0%}/{d.proc_share_a:.0%}; "
            f"B = {d.main_share_b:.0%}/{d.comm_share_b:.0%}/{d.proc_share_b:.0%}"
        )
    if physical is not None:
        d = physical
        kinds = sorted(set(d.ops_a) | set(d.ops_b))
        parts = [
            f"{k}: {d.ops_a.get(k, 0):,} vs {d.ops_b.get(k, 0):,}"
            for k in kinds
        ]
        lines.append("physical ops (A vs B): " + "; ".join(parts))
        lines.append(f"physical wire bytes ratio A/B = {d.bytes_ratio:.2f}")
    if logical is None and overall is None and physical is None:
        lines.append("(no comparable traces found)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# whole-run comparison over directories or archives
# ----------------------------------------------------------------------

def load_traces(path: str | Path, n_pes: int | None = None) -> RunTraces:
    """Load whatever traces exist at ``path``.

    ``path`` is either a ``.aptrc`` archive (self-describing, ``n_pes``
    ignored) or a paper-format trace directory, for which ``n_pes`` is
    required to parse the per-PE CSV files.
    """
    path = Path(path)
    if is_archive(path):
        return load_run(path)
    if not path.is_dir():
        raise FileNotFoundError(
            f"{path} is neither a trace directory nor a .aptrc archive"
        )
    if n_pes is None:
        raise ValueError(
            f"--num-pes is required to read the trace directory {path}"
        )
    out = RunTraces()
    try:
        out.logical = parse_logical_dir(path, n_pes)
    except FileNotFoundError:
        pass
    try:
        out.physical = parse_physical_file(path, n_pes)
    except FileNotFoundError:
        pass
    try:
        out.overall = parse_overall_file(path)
    except FileNotFoundError:
        pass
    return out


def _logical_matrix(section: Section, n_pes: int) -> np.ndarray:
    """Per-PE send-count matrix straight from archive columns.

    Streamed partial aggregates (duplicate src/dst keys across chunks)
    merge by summing in the scatter-add, exactly as trace loading would.
    """
    frame = Frame(section)
    return scatter_matrix(frame.column("src"), frame.column("dst"),
                          frame.column("count"), (n_pes, n_pes))


def _diff_archives(
    path_a: str | Path,
    path_b: str | Path,
    label_a: str | None = None,
    label_b: str | None = None,
) -> str:
    """Compare two ``.aptrc`` archives column-wise (no trace objects).

    Logical send matrices are scatter-summed from src/dst/count columns,
    physical op counts and wire bytes come from the frame layer (footer
    chunk sums when present), and only the small per-PE overall section
    is materialized.  Output is identical to the trace-based path.
    """
    with Archive(path_a) as a, Archive(path_b) as b:
        logical = overall = physical = None
        if a.has_section("logical") and b.has_section("logical"):
            logical = LogicalDiff.from_matrices(
                _logical_matrix(a.section("logical"), a.n_pes),
                _logical_matrix(b.section("logical"), b.n_pes),
            )
        if a.has_section("overall") and b.has_section("overall"):
            overall = OverallDiff.of(load_overall(a), load_overall(b))
        if a.has_section("physical") and b.has_section("physical"):
            physical = PhysicalDiff.from_sections(
                a.section("physical"), b.section("physical")
            )
        return compare_report(
            label_a if label_a is not None else str(path_a),
            label_b if label_b is not None else str(path_b),
            logical=logical,
            overall=overall,
            physical=physical,
        )


def _diff_runs(
    path_a: str | Path,
    path_b: str | Path,
    n_pes: int | None = None,
    label_a: str | None = None,
    label_b: str | None = None,
) -> str:
    """Compare two stored runs and render the side-by-side report.

    Each path may be a trace directory or a ``.aptrc`` archive; only the
    trace kinds present in *both* runs are compared.  Two archives are
    diffed column-wise via :func:`_diff_archives`; directories (or a
    mixed pair) go through full trace loading.

    The supported entry points are :func:`repro.api.diff` and
    :meth:`repro.api.Run.diff`; :func:`diff_runs` / :func:`diff_archives`
    are the deprecated legacy spellings.
    """
    if is_archive(path_a) and is_archive(path_b):
        return _diff_archives(path_a, path_b, label_a, label_b)
    a = load_traces(path_a, n_pes)
    b = load_traces(path_b, n_pes)
    logical = (LogicalDiff.of(a.logical, b.logical)
               if a.logical is not None and b.logical is not None else None)
    overall = (OverallDiff.of(a.overall, b.overall)
               if a.overall is not None and b.overall is not None else None)
    physical = (PhysicalDiff.of(a.physical, b.physical)
                if a.physical is not None and b.physical is not None else None)
    return compare_report(
        label_a if label_a is not None else str(path_a),
        label_b if label_b is not None else str(path_b),
        logical=logical,
        overall=overall,
        physical=physical,
    )


def _deprecated(old: str) -> None:
    import warnings

    warnings.warn(
        f"{old}() is deprecated; use repro.api.diff() or "
        "repro.api.open_run(...).diff()",
        DeprecationWarning, stacklevel=3,
    )


def diff_archives(
    path_a: str | Path,
    path_b: str | Path,
    label_a: str | None = None,
    label_b: str | None = None,
) -> str:
    """Deprecated alias; use :func:`repro.api.diff`."""
    _deprecated("diff_archives")
    return _diff_archives(path_a, path_b, label_a, label_b)


def diff_runs(
    path_a: str | Path,
    path_b: str | Path,
    n_pes: int | None = None,
    label_a: str | None = None,
    label_b: str | None = None,
) -> str:
    """Deprecated alias; use :func:`repro.api.diff`."""
    _deprecated("diff_runs")
    return _diff_runs(path_a, path_b, n_pes, label_a, label_b)
