"""Logical trace: application-level (pre-aggregation) sends.

Section III-A: "Logical trace records the 'user application-fed' source
and destination records" — one record per asynchronous send, before
Conveyors aggregates anything.  File format (one file per PE)::

    PEi_send.csv:
      source node, source PE, destination node, destination PE, message size

Records are aggregated in memory as (src, dst, size) → count so that
billion-send runs don't hold billions of Python objects; writing the CSV
expands counts back into the paper's one-line-per-send format.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.machine.spec import MachineSpec


class LogicalTrace:
    """Recorder + container for the logical trace of one run.

    ``sample_interval`` > 1 enables the trace-size management the paper's
    Section VI calls for: only every k-th send per PE is recorded
    (deterministic, stratified per source, no RNG), and
    :meth:`estimated_matrix` rescales the sample back to population
    estimates.  ``matrix()`` always returns the *recorded* counts.
    """

    def __init__(self, spec: MachineSpec, sample_interval: int = 1) -> None:
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.spec = spec
        self.sample_interval = sample_interval
        # per source PE: {(dst, msg_size): count}
        self._counts: list[dict[tuple[int, int], int]] = [
            {} for _ in range(spec.n_pes)
        ]
        self._ticks = [0] * spec.n_pes  # sends seen per PE (pre-sampling)

    # ------------------------------------------------------------------
    # recording (called from ActorProf's runtime hooks)
    # ------------------------------------------------------------------

    def record(self, src: int, dst: int, msg_size: int) -> None:
        """Record one send (subject to sampling)."""
        tick = self._ticks[src]
        self._ticks[src] = tick + 1
        if tick % self.sample_interval:
            return
        key = (dst, msg_size)
        c = self._counts[src]
        c[key] = c.get(key, 0) + 1

    def record_batch(self, src: int, dsts: np.ndarray, msg_size: int) -> None:
        """Record a batch of sends of uniform size (vectorized).

        Sampling keeps exactly the elements the scalar path would keep:
        positions where the running per-PE tick hits the interval.
        """
        n = len(dsts)
        if n == 0:
            return
        dsts = np.asarray(dsts)
        k = self.sample_interval
        tick = self._ticks[src]
        self._ticks[src] = tick + n
        if k > 1:
            # positions p where (tick + p) % k == 0
            first = (-tick) % k
            dsts = dsts[first::k]
            if len(dsts) == 0:
                return
        uniq, counts = np.unique(dsts, return_counts=True)
        c = self._counts[src]
        for dst, cnt in zip(uniq.tolist(), counts.tolist()):
            key = (int(dst), msg_size)
            c[key] = c.get(key, 0) + int(cnt)

    # ------------------------------------------------------------------
    # analysis accessors
    # ------------------------------------------------------------------

    @property
    def n_pes(self) -> int:
        return self.spec.n_pes

    def matrix(self) -> np.ndarray:
        """(n_pes, n_pes) send-count matrix: row = source, column = dest."""
        m = np.zeros((self.n_pes, self.n_pes), dtype=np.int64)
        for src, counts in enumerate(self._counts):
            for (dst, _size), n in counts.items():
                m[src, dst] += n
        return m

    def bytes_matrix(self) -> np.ndarray:
        """(n_pes, n_pes) payload-byte matrix."""
        m = np.zeros((self.n_pes, self.n_pes), dtype=np.int64)
        for src, counts in enumerate(self._counts):
            for (dst, size), n in counts.items():
                m[src, dst] += n * size
        return m

    def sends_per_pe(self) -> np.ndarray:
        """Total messages sent by each PE (the heatmap's last column)."""
        return self.matrix().sum(axis=1)

    def recvs_per_pe(self) -> np.ndarray:
        """Total messages received by each PE (the heatmap's last row)."""
        return self.matrix().sum(axis=0)

    def total_sends(self) -> int:
        """Recorded sends (equal to actual sends when not sampling)."""
        return int(self.matrix().sum())

    def observed_sends(self) -> int:
        """Actual sends seen by the recorder, including unsampled ones."""
        return sum(self._ticks)

    def estimated_matrix(self) -> np.ndarray:
        """Population estimate of the send matrix under sampling."""
        return self.matrix() * self.sample_interval

    def estimated_total_sends(self) -> int:
        return int(self.estimated_matrix().sum())

    # ------------------------------------------------------------------
    # archive adapters (.aptrc columnar store)
    # ------------------------------------------------------------------

    def to_columns(self) -> tuple[dict[str, np.ndarray], dict]:
        """Columnar form for the ``.aptrc`` store: (columns, attrs).

        Rows are the aggregated ``(src, dst, size) → count`` entries,
        sorted so the delta codec sees near-monotone sequences.
        """
        srcs: list[int] = []
        dsts: list[int] = []
        sizes: list[int] = []
        counts: list[int] = []
        for src, per_src in enumerate(self._counts):
            for (dst, size), n in sorted(per_src.items()):
                srcs.append(src)
                dsts.append(dst)
                sizes.append(size)
                counts.append(n)
        columns = {
            "src": np.asarray(srcs, dtype=np.int64),
            "dst": np.asarray(dsts, dtype=np.int64),
            "size": np.asarray(sizes, dtype=np.int64),
            "count": np.asarray(counts, dtype=np.int64),
        }
        attrs = {
            "nodes": self.spec.nodes,
            "pes_per_node": self.spec.pes_per_node,
            "machine_name": self.spec.name,
            "sample_interval": self.sample_interval,
            "ticks": list(self._ticks),
        }
        return columns, attrs

    @classmethod
    def from_columns(cls, columns: dict, attrs: dict) -> "LogicalTrace":
        """Rebuild a trace from archive columns (inverse of to_columns).

        Duplicate ``(src, dst, size)`` keys — produced by streaming
        writers that spill partial aggregates — are merged by summing.
        """
        spec = MachineSpec(
            nodes=int(attrs["nodes"]),
            pes_per_node=int(attrs["pes_per_node"]),
            name=str(attrs.get("machine_name", "simulated-cluster")),
        )
        trace = cls(spec, sample_interval=int(attrs.get("sample_interval", 1)))
        n_pes = spec.n_pes
        for src, dst, size, n in zip(
            columns["src"].tolist(), columns["dst"].tolist(),
            columns["size"].tolist(), columns["count"].tolist(),
        ):
            if not (0 <= src < n_pes and 0 <= dst < n_pes):
                raise ValueError(
                    f"archived logical row has PE pair ({src}, {dst}) out "
                    f"of range for n_pes={n_pes}"
                )
            c = trace._counts[src]
            key = (dst, size)
            c[key] = c.get(key, 0) + n
        ticks = attrs.get("ticks")
        if ticks is not None:
            trace._ticks = [int(t) for t in ticks]
        else:
            trace._ticks = [
                sum(per_src.values()) * trace.sample_interval
                for per_src in trace._counts
            ]
        return trace

    # ------------------------------------------------------------------
    # file I/O (paper format)
    # ------------------------------------------------------------------

    def write(self, directory: str | Path) -> list[Path]:
        """Write ``PEi_send.csv`` per PE; returns the paths written."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for src in range(self.n_pes):
            path = directory / f"PE{src}_send.csv"
            src_node = self.spec.node_of(src)
            with path.open("w") as f:
                f.write("# source node, source PE, destination node, "
                        "destination PE, message size\n")
                for (dst, size), n in sorted(self._counts[src].items()):
                    dst_node = self.spec.node_of(dst)
                    line = f"{src_node},{src},{dst_node},{dst},{size}\n"
                    f.write(line * n)
            paths.append(path)
        return paths


def parse_logical_dir(directory: str | Path, n_pes: int,
                      pes_per_node: int | None = None) -> LogicalTrace:
    """Parse a directory of ``PEi_send.csv`` files back into a trace.

    ``pes_per_node`` is inferred from the node columns when omitted.
    """
    if n_pes < 1:
        raise ValueError(f"n_pes must be >= 1, got {n_pes}")
    directory = Path(directory)
    rows: list[tuple[int, int, int, int, int]] = []
    max_node = 0
    for src in range(n_pes):
        path = directory / f"PE{src}_send.csv"
        if not path.exists():
            raise FileNotFoundError(f"missing logical trace file {path}")
        with path.open() as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    parts = [int(x) for x in line.split(",")]
                except ValueError:
                    raise ValueError(
                        f"{path}:{lineno}: malformed logical trace line: "
                        f"{line!r} (expected 5 comma-separated integers)"
                    ) from None
                if len(parts) != 5:
                    raise ValueError(
                        f"{path}:{lineno}: malformed logical trace line: "
                        f"{line!r} (expected 5 fields, got {len(parts)})"
                    )
                for label, pe in (("source", parts[1]),
                                  ("destination", parts[3])):
                    if not 0 <= pe < n_pes:
                        raise ValueError(
                            f"{path}:{lineno}: {label} PE {pe} out of range "
                            f"for n_pes={n_pes}"
                        )
                rows.append(tuple(parts))  # type: ignore[arg-type]
                max_node = max(max_node, parts[0], parts[2])
    nodes = max_node + 1
    if pes_per_node is None:
        pes_per_node = n_pes // nodes if n_pes % nodes == 0 else n_pes
        nodes = n_pes // pes_per_node
    spec = MachineSpec(nodes, pes_per_node)
    trace = LogicalTrace(spec)
    for _sn, src, _dn, dst, size in rows:
        trace.record(src, dst, size)
    return trace
