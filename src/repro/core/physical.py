"""Physical trace: post-aggregation Conveyors network operations.

Section III-C: the physical trace records the network-fed routes dictated
by the Conveyors topology — one record per instrumented Conveyors call:

* ``local_send`` — intra-node buffer copy (memcpy via ``shmem_ptr``),
* ``nonblock_send`` — inter-node ``shmem_putmem_nbi`` of a buffer,
* ``nonblock_progress`` — ``shmem_quiet`` + signalling ``shmem_put``.

Existing profilers cannot capture the non-blocking routines (the paper's
Section V-B documents score-p / TAU / CrayPat / VTune all missing them),
which is why ActorProf generates this trace itself.

File format (single file for all PEs)::

    physical.txt:
      send type, buffer (network-packet) size, source PE, destination PE
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.conveyors.hooks import SEND_TYPES


class PhysicalTrace:
    """Recorder + container for the physical trace (a Conveyors TraceSink).

    ``spec`` (a :class:`~repro.machine.spec.MachineSpec`) is optional but
    enables node-level analysis — e.g. the ``src_node``/``dst_node``
    query fields.  Traces built from bare ``n_pes`` keep working; node
    queries on them raise a clear error instead.
    """

    def __init__(self, n_pes: int, spec=None) -> None:
        self.n_pes = n_pes
        if spec is not None and spec.n_pes != n_pes:
            raise ValueError(
                f"spec has {spec.n_pes} PEs but trace was sized for {n_pes}"
            )
        self.spec = spec
        # (send_type, nbytes, src, dst) -> count
        self._counts: dict[tuple[str, int, int, int], int] = {}

    # ------------------------------------------------------------------
    # TraceSink interface (called from inside Conveyors)
    # ------------------------------------------------------------------

    def record(self, send_type: str, nbytes: int, src_pe: int, dst_pe: int, time: int) -> None:
        """Record one instrumented Conveyors operation."""
        if send_type not in SEND_TYPES:
            raise ValueError(f"unknown physical send type {send_type!r}")
        key = (send_type, nbytes, src_pe, dst_pe)
        self._counts[key] = self._counts.get(key, 0) + 1

    # ------------------------------------------------------------------
    # analysis accessors
    # ------------------------------------------------------------------

    def matrix(self, send_type: str | None = None) -> np.ndarray:
        """(n_pes, n_pes) buffer-count matrix, optionally one send type."""
        m = np.zeros((self.n_pes, self.n_pes), dtype=np.int64)
        for (kind, _nb, src, dst), n in self._counts.items():
            if send_type is None or kind == send_type:
                m[src, dst] += n
        return m

    def bytes_matrix(self, send_type: str | None = None) -> np.ndarray:
        """(n_pes, n_pes) buffer-byte matrix, optionally one send type."""
        m = np.zeros((self.n_pes, self.n_pes), dtype=np.int64)
        for (kind, nb, src, dst), n in self._counts.items():
            if send_type is None or kind == send_type:
                m[src, dst] += n * nb
        return m

    def counts_by_type(self) -> dict[str, int]:
        """Total operations per send type."""
        out: dict[str, int] = {}
        for (kind, _nb, _s, _d), n in self._counts.items():
            out[kind] = out.get(kind, 0) + n
        return out

    def sends_per_pe(self, send_type: str | None = None) -> np.ndarray:
        return self.matrix(send_type).sum(axis=1)

    def recvs_per_pe(self, send_type: str | None = None) -> np.ndarray:
        return self.matrix(send_type).sum(axis=0)

    def total_operations(self) -> int:
        return sum(self._counts.values())

    # ------------------------------------------------------------------
    # archive adapters (.aptrc columnar store)
    # ------------------------------------------------------------------

    def to_columns(self) -> tuple[dict[str, np.ndarray], dict]:
        """Columnar form for the ``.aptrc`` store: (columns, attrs).

        ``kind`` is stored as an index into the ``send_types`` attr so
        the column is pure integers.
        """
        keys = sorted(
            ((SEND_TYPES.index(kind), nb, src, dst), n)
            for (kind, nb, src, dst), n in self._counts.items()
        )
        columns = {
            "kind": np.asarray([k[0] for k, _ in keys], dtype=np.int64),
            "size": np.asarray([k[1] for k, _ in keys], dtype=np.int64),
            "src": np.asarray([k[2] for k, _ in keys], dtype=np.int64),
            "dst": np.asarray([k[3] for k, _ in keys], dtype=np.int64),
            "count": np.asarray([n for _, n in keys], dtype=np.int64),
        }
        attrs = {"n_pes": self.n_pes, "send_types": list(SEND_TYPES)}
        if self.spec is not None:
            attrs["nodes"] = self.spec.nodes
            attrs["pes_per_node"] = self.spec.pes_per_node
            attrs["machine_name"] = self.spec.name
        return columns, attrs

    @classmethod
    def from_columns(cls, columns: dict, attrs: dict) -> "PhysicalTrace":
        """Rebuild a trace from archive columns (inverse of to_columns).

        Duplicate keys from streamed partial aggregates merge by summing.
        """
        n_pes = int(attrs["n_pes"])
        send_types = [str(s) for s in attrs.get("send_types", SEND_TYPES)]
        spec = None
        if "pes_per_node" in attrs and "nodes" in attrs:
            from repro.machine.spec import MachineSpec

            spec = MachineSpec(
                nodes=int(attrs["nodes"]),
                pes_per_node=int(attrs["pes_per_node"]),
                name=str(attrs.get("machine_name", "simulated-cluster")),
            )
        trace = cls(n_pes, spec=spec)
        for code, nb, src, dst, n in zip(
            columns["kind"].tolist(), columns["size"].tolist(),
            columns["src"].tolist(), columns["dst"].tolist(),
            columns["count"].tolist(),
        ):
            if not 0 <= code < len(send_types):
                raise ValueError(
                    f"archived physical row has send-type code {code} out "
                    f"of range for send_types={send_types}"
                )
            if not (0 <= src < n_pes and 0 <= dst < n_pes):
                raise ValueError(
                    f"archived physical row has PE pair ({src}, {dst}) out "
                    f"of range for n_pes={n_pes}"
                )
            key = (send_types[code], nb, src, dst)
            trace._counts[key] = trace._counts.get(key, 0) + n
        return trace

    # ------------------------------------------------------------------
    # file I/O (paper format)
    # ------------------------------------------------------------------

    def write(self, directory: str | Path) -> Path:
        """Write ``physical.txt``; returns its path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "physical.txt"
        with path.open("w") as f:
            f.write("# send type, buffer size, source PE, destination PE\n")
            for (kind, nbytes, src, dst), n in sorted(self._counts.items()):
                line = f"{kind},{nbytes},{src},{dst}\n"
                f.write(line * n)
        return path


def parse_physical_file(path: str | Path, n_pes: int | None = None,
                        spec=None) -> PhysicalTrace:
    """Parse a ``physical.txt`` back into a :class:`PhysicalTrace`.

    The text format carries no node layout, so ``src_node``/``dst_node``
    queries need ``spec`` (a :class:`~repro.machine.spec.MachineSpec`,
    typically taken from the logical trace of the same run).
    """
    path = Path(path)
    if n_pes is None and spec is not None:
        n_pes = spec.n_pes
    if path.is_dir():
        path = path / "physical.txt"
    rows: list[tuple[str, int, int, int]] = []
    max_pe = -1
    with path.open() as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split(",")
            if len(fields) != 4:
                raise ValueError(
                    f"{path}:{lineno}: malformed physical trace line: "
                    f"{line!r} (expected 4 fields, got {len(fields)})"
                )
            kind = fields[0].strip()
            if kind not in SEND_TYPES:
                raise ValueError(
                    f"{path}:{lineno}: unknown physical send type {kind!r} "
                    f"(expected one of {SEND_TYPES})"
                )
            try:
                nbytes, src, dst = (int(x) for x in fields[1:])
            except ValueError:
                raise ValueError(
                    f"{path}:{lineno}: malformed physical trace line: "
                    f"{line!r} (size and PE fields must be integers)"
                ) from None
            for label, pe in (("source", src), ("destination", dst)):
                if pe < 0 or (n_pes is not None and pe >= n_pes):
                    bound = f"n_pes={n_pes}" if n_pes is not None else "a PE index"
                    raise ValueError(
                        f"{path}:{lineno}: {label} PE {pe} out of range "
                        f"for {bound}"
                    )
            rows.append((kind, nbytes, src, dst))
            max_pe = max(max_pe, src, dst)
    if n_pes is None:
        n_pes = max_pe + 1
    trace = PhysicalTrace(n_pes, spec=spec)
    for kind, nbytes, src, dst in rows:
        trace.record(kind, nbytes, src, dst, 0)
    return trace
