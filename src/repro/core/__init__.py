"""ActorProf — the paper's contribution.

A profiling and visualization framework for FA-BSP execution, providing:

1. **Message-aware profiling** (Section III-A): the logical trace of
   pre-aggregation point-to-point sends (``PEi_send.csv``) and PAPI
   hardware-counter region profiles (``PEi_PAPI.csv``).
2. **Overall breakdown** (Section III-B): rdtsc cycles split into
   T_MAIN / T_COMM / T_PROC per PE (``overall.txt``).
3. **Physical trace** (Section III-C): post-aggregation Conveyors network
   operations — local_send / nonblock_send / nonblock_progress
   (``physical.txt``).
4. **Visualization** (Section III-D): heatmaps, violin plots, bar graphs
   and stacked bar graphs (:mod:`repro.core.viz`), driven by the
   ``actorprof`` CLI with the paper's ``-l``/``-lp``/``-s``/``-p`` flags.

Typical use::

    from repro.core import ActorProf, ProfileFlags
    from repro.hclib import run_spmd

    ap = ActorProf(ProfileFlags.all())
    result = run_spmd(program, machine=spec, profiler=ap)
    ap.write_traces("trace_dir")
"""

from repro.core.baseline import ConventionalProfiler, PShmemProfiler
from repro.core.hotspots import advise, balance_model, find_stragglers, top_pairs
from repro.core.live import LiveMonitor
from repro.core.flags import ProfileFlags
from repro.core.logical import LogicalTrace, parse_logical_dir
from repro.core.overall import OverallProfile, parse_overall_file
from repro.core.papi_trace import PAPITrace, parse_papi_dir
from repro.core.physical import PhysicalTrace, parse_physical_file
from repro.core.profiler import ActorProf
from repro.core.query import query_trace, run_query
from repro.core.store import (
    Archive,
    ArchiveWriter,
    RunRegistry,
    TraceArchiver,
    export_run,
    load_run,
)
from repro.core.timeline import TimelineTrace

__all__ = [
    "ActorProf",
    "Archive",
    "ArchiveWriter",
    "RunRegistry",
    "TraceArchiver",
    "export_run",
    "load_run",
    "ConventionalProfiler",
    "LiveMonitor",
    "LogicalTrace",
    "OverallProfile",
    "PAPITrace",
    "PShmemProfiler",
    "PhysicalTrace",
    "ProfileFlags",
    "TimelineTrace",
    "parse_logical_dir",
    "parse_overall_file",
    "parse_papi_dir",
    "parse_physical_file",
    "advise",
    "balance_model",
    "find_stragglers",
    "query_trace",
    "run_query",
    "top_pairs",
]
