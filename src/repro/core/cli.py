"""The ``actorprof`` command-line visualizer.

Mirrors the paper's run-time flags (Section III):

* ``-l``  — logical trace heatmap (from ``PEi_send.csv``)
* ``-lp`` — PAPI trace bar graph (from ``PEi_PAPI.csv``)
* ``-s``  — overall stacked bar graph, absolute and relative
  (from ``overall.txt``)
* ``-p``  — physical trace heatmap (from ``physical.txt``)

Like the paper's ``logical.py``/``physical.py``/``papi.py``/``Overall.py``
scripts, the trace-directory path is a positional argument and the total
number of PEs (``num_PEs``) is a required input.  SVG charts land next to
the traces (or in ``--out``); text summaries print to stdout.

Example::

    actorprof -l -p -s traces/ --num-pes 16 --out charts/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.logical import parse_logical_dir
from repro.core.overall import parse_overall_file
from repro.core.papi_trace import parse_papi_dir
from repro.core.physical import parse_physical_file
from repro.core.report import (
    mosaic_report,
    overall_report,
    papi_report,
    physical_report,
)
from repro.core.viz.bars import grouped_bar_graph
from repro.core.viz.heatmap import heatmap_svg
from repro.core.viz.stacked import stacked_bar_graph
from repro.core.viz.violin import violin_svg


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="actorprof",
        description="ActorProf trace visualizer for FA-BSP executions",
    )
    parser.add_argument("trace_dir", type=Path,
                        help="directory containing the trace files")
    parser.add_argument("--num-pes", type=int, required=True,
                        help="total number of PEs used in the run (num_PEs)")
    parser.add_argument("-l", dest="logical", action="store_true",
                        help="logical trace heatmap (PEi_send.csv)")
    parser.add_argument("-lp", dest="papi", action="store_true",
                        help="PAPI trace bar graph (PEi_PAPI.csv)")
    parser.add_argument("-s", dest="overall", action="store_true",
                        help="overall stacked bar graph (overall.txt)")
    parser.add_argument("-p", dest="physical", action="store_true",
                        help="physical trace heatmap (physical.txt)")
    parser.add_argument("-t", dest="timeline", action="store_true",
                        help="timeline + utilization charts (trace.json)")
    parser.add_argument("--violin", action="store_true",
                        help="also emit violin plots for -l / -p traces")
    parser.add_argument("--compare", type=Path, default=None,
                        metavar="OTHER_DIR",
                        help="compare this trace directory (A) against "
                             "another run's traces (B) for the selected "
                             "-l / -s / -p products")
    parser.add_argument("--query", action="append", default=[],
                        metavar="'logical|physical: EXPR'",
                        help="run a declarative trace query, e.g. "
                             "\"logical: sends where src == 0 group by dst "
                             "top 5\" (repeatable)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output directory for SVGs (default: trace dir)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress text reports on stdout")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not (args.logical or args.papi or args.overall or args.physical
            or args.timeline or args.query):
        print("nothing to do: pass at least one of -l, -lp, -s, -p, -t, "
              "--query", file=sys.stderr)
        return 2
    if not args.trace_dir.is_dir():
        print(f"trace directory {args.trace_dir} does not exist", file=sys.stderr)
        return 2
    out = args.out or args.trace_dir
    out.mkdir(parents=True, exist_ok=True)
    emitted: list[Path] = []

    def say(text: str) -> None:
        if not args.quiet:
            print(text)

    if args.compare is not None and not args.compare.is_dir():
        print(f"compare directory {args.compare} does not exist",
              file=sys.stderr)
        return 2

    try:
        return _render(args, out, emitted, say)
    except (FileNotFoundError, ValueError) as exc:
        print(f"cannot read traces: {exc}", file=sys.stderr)
        return 2


def _render(args, out, emitted, say) -> int:
    if args.logical:
        trace = parse_logical_dir(args.trace_dir, args.num_pes)
        path = out / "logical_heatmap.svg"
        path.write_text(heatmap_svg(trace.matrix(), title="Logical trace heatmap"))
        emitted.append(path)
        if args.violin:
            path = out / "logical_violin.svg"
            path.write_text(violin_svg(
                {"sends": trace.sends_per_pe(), "recvs": trace.recvs_per_pe()},
                title="Logical trace send/recv quartiles",
            ))
            emitted.append(path)
        say(mosaic_report(trace))

    if args.papi:
        trace = parse_papi_dir(args.trace_dir, args.num_pes)
        series = {ev: trace.totals_per_pe(ev) for ev in trace.events}
        path = out / "papi_bars.svg"
        path.write_text(grouped_bar_graph(series, title="PAPI counters per PE"))
        emitted.append(path)
        say(papi_report(trace))

    if args.overall:
        profile = parse_overall_file(args.trace_dir)
        for rel, name in ((False, "overall_absolute.svg"), (True, "overall_relative.svg")):
            path = out / name
            path.write_text(stacked_bar_graph(profile, relative=rel))
            emitted.append(path)
        say(overall_report(profile))

    if args.physical:
        trace = parse_physical_file(args.trace_dir, args.num_pes)
        path = out / "physical_heatmap.svg"
        path.write_text(heatmap_svg(trace.matrix(), title="Physical trace heatmap"))
        emitted.append(path)
        for kind in ("local_send", "nonblock_send"):
            m = trace.matrix(kind)
            if m.sum():
                path = out / f"physical_heatmap_{kind}.svg"
                path.write_text(heatmap_svg(m, title=f"Physical trace: {kind}"))
                emitted.append(path)
        if args.violin:
            path = out / "physical_violin.svg"
            path.write_text(violin_svg(
                {"sends": trace.sends_per_pe(), "recvs": trace.recvs_per_pe()},
                title="Physical trace send/recv quartiles",
            ))
            emitted.append(path)
        # node-level hotspot view ("hotspots of 'node'", paper §III-D);
        # node boundaries come from the logical trace's node columns
        try:
            from repro.core.analysis import aggregate_to_nodes

            logical_spec = parse_logical_dir(args.trace_dir, args.num_pes).spec
            if logical_spec.nodes > 1:
                node_m = aggregate_to_nodes(trace.matrix(), logical_spec)
                path = out / "physical_heatmap_nodes.svg"
                path.write_text(heatmap_svg(
                    node_m, title="Physical trace: node-level hotspots",
                    xlabel="destination node", ylabel="source node",
                ))
                emitted.append(path)
        except (FileNotFoundError, ValueError):
            pass  # no logical trace to infer node boundaries from
        say(physical_report(trace))

    if args.compare is not None:
        from repro.core.diffing import (
            LogicalDiff,
            OverallDiff,
            PhysicalDiff,
            compare_report,
        )

        logical_d = overall_d = physical_d = None
        try:
            if args.logical:
                logical_d = LogicalDiff.of(
                    parse_logical_dir(args.trace_dir, args.num_pes),
                    parse_logical_dir(args.compare, args.num_pes),
                )
            if args.overall:
                overall_d = OverallDiff.of(
                    parse_overall_file(args.trace_dir),
                    parse_overall_file(args.compare),
                )
            if args.physical:
                physical_d = PhysicalDiff.of(
                    parse_physical_file(args.trace_dir, args.num_pes),
                    parse_physical_file(args.compare, args.num_pes),
                )
        except (FileNotFoundError, ValueError) as exc:
            print(f"compare failed: {exc}", file=sys.stderr)
            return 2
        print(compare_report(str(args.trace_dir), str(args.compare),
                             logical_d, overall_d, physical_d))

    if args.query:
        from repro.core.query import QueryError, run_query

        for spec_text in args.query:
            target, _, expr = spec_text.partition(":")
            target = target.strip().lower()
            expr = expr.strip()
            if target not in ("logical", "physical") or not expr:
                print(f"bad --query {spec_text!r}: use 'logical: EXPR' or "
                      f"'physical: EXPR'", file=sys.stderr)
                return 2
            try:
                if target == "logical":
                    trace = parse_logical_dir(args.trace_dir, args.num_pes)
                else:
                    trace = parse_physical_file(args.trace_dir, args.num_pes)
                result = run_query(trace, expr)
            except (QueryError, FileNotFoundError) as exc:
                print(f"query failed: {exc}", file=sys.stderr)
                return 2
            print(f"[{target}] {expr}")
            if isinstance(result, list):
                for key, amount in result:
                    print(f"  {key}: {amount:,}")
            else:
                print(f"  {result:,}")

    if args.timeline:
        from repro.core.export import timeline_from_chrome
        from repro.core.viz.timeline_chart import timeline_svg, utilization_svg

        trace_json = args.trace_dir / "trace.json"
        if not trace_json.exists():
            print(f"{trace_json} not found (run with enable_timeline=True)",
                  file=sys.stderr)
            return 2
        tl, _spec = timeline_from_chrome(trace_json)
        path = out / "timeline.svg"
        path.write_text(timeline_svg(tl))
        emitted.append(path)
        path = out / "utilization.svg"
        path.write_text(utilization_svg(tl))
        emitted.append(path)
        say(f"timeline: {tl.span_count()} spans, "
            f"{len(tl.net_events())} network events, "
            f"horizon {tl.end_time():,} cycles")

    say("\nwrote: " + ", ".join(str(p) for p in emitted))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
