"""The ``actorprof`` command-line visualizer.

Mirrors the paper's run-time flags (Section III):

* ``-l``  — logical trace heatmap (from ``PEi_send.csv``)
* ``-lp`` — PAPI trace bar graph (from ``PEi_PAPI.csv``)
* ``-s``  — overall stacked bar graph, absolute and relative
  (from ``overall.txt``)
* ``-p``  — physical trace heatmap (from ``physical.txt``)

Like the paper's ``logical.py``/``physical.py``/``papi.py``/``Overall.py``
scripts, the trace path is a positional argument and the total number of
PEs (``num_PEs``) is a required input for text trace directories.  SVG
charts land next to the traces (or in ``--out``); text summaries print
to stdout.

Beyond the paper scripts, the CLI fronts the binary trace store
(:mod:`repro.core.store`):

* the positional trace path may be a ``.aptrc`` archive instead of a
  directory (``--archive`` forces that interpretation; ``--num-pes``
  becomes optional because archives are self-describing),
* ``--export-archive PATH`` re-packs a text trace directory into one
  ``.aptrc`` file,
* ``actorprof runs list|show|add|rm`` manages the on-disk run registry,
* ``actorprof diff RUN_A RUN_B`` compares two stored runs (directories,
  archives, or registered run ids),
* ``actorprof faults template|check`` authors deterministic fault plans
  (:mod:`repro.sim.faults`),
* ``actorprof run APP`` executes a built-in app under the profiler —
  optionally under ``--fault-plan`` — archiving the traces; a run that
  dies mid-execution is salvaged into a degraded archive (exit code 3)
  instead of losing everything,
* ``actorprof serve`` runs the long-lived trace service
  (:mod:`repro.serve`): streaming archive ingest with backpressure plus
  registry/query/diff over HTTP; ``actorprof push RUN.aptrc`` uploads
  an archive to it.

Examples::

    actorprof -l -p -s traces/ --num-pes 16 --out charts/
    actorprof traces/ --num-pes 16 --export-archive run.aptrc
    actorprof -l -s run.aptrc
    actorprof runs add run.aptrc --registry runs/
    actorprof diff runs/a.aptrc runs/b.aptrc
    actorprof faults template plan.json
    actorprof run histogram --fault-plan plan.json -o crashed.aptrc
    actorprof diff crashed.aptrc healthy.aptrc
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.logical import parse_logical_dir
from repro.core.overall import parse_overall_file
from repro.core.papi_trace import parse_papi_dir
from repro.core.physical import parse_physical_file
from repro.core.report import (
    mosaic_report,
    overall_report,
    papi_report,
    physical_report,
)
from repro.core.store.archive import (
    Archive,
    ArchiveError,
    is_archive,
    load_logical,
    load_overall,
    load_papi,
    load_physical,
)
from repro.core.viz.bars import grouped_bar_graph
from repro.core.viz.heatmap import heatmap_svg
from repro.core.viz.stacked import stacked_bar_graph
from repro.core.viz.violin import violin_svg


class _DeprecatedFlag(argparse.Action):
    """A hidden alias for a renamed flag.

    Stores into the canonical destination and prints a one-line
    deprecation note, so old spellings (``--export-archive``,
    ``--report``) keep working while every subcommand documents the
    normalized names (``--out``, ``--jobs``, ``--cache``).
    """

    def __init__(self, *args, canonical: str = "--out", **kwargs) -> None:
        self.canonical = canonical
        super().__init__(*args, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(f"note: {option_string} is deprecated; use {self.canonical}",
              file=sys.stderr)
        setattr(namespace, self.dest, values)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="actorprof",
        description="ActorProf trace visualizer for FA-BSP executions",
        epilog="subcommands: 'actorprof runs …' manages the run registry; "
               "'actorprof diff A B' compares two stored runs",
    )
    parser.add_argument("trace_dir", type=Path,
                        help="directory containing the trace files, or a "
                             ".aptrc trace archive")
    parser.add_argument("--num-pes", type=int, default=None,
                        help="total number of PEs used in the run (num_PEs); "
                             "required for trace directories, read from "
                             "metadata for .aptrc archives")
    parser.add_argument("-l", dest="logical", action="store_true",
                        help="logical trace heatmap (PEi_send.csv)")
    parser.add_argument("-lp", dest="papi", action="store_true",
                        help="PAPI trace bar graph (PEi_PAPI.csv)")
    parser.add_argument("-s", dest="overall", action="store_true",
                        help="overall stacked bar graph (overall.txt)")
    parser.add_argument("-p", dest="physical", action="store_true",
                        help="physical trace heatmap (physical.txt)")
    parser.add_argument("-t", dest="timeline", action="store_true",
                        help="timeline + utilization charts (trace.json)")
    parser.add_argument("--violin", action="store_true",
                        help="also emit violin plots for -l / -p traces")
    parser.add_argument("--archive", action="store_true",
                        help="treat the trace path as a .aptrc archive "
                             "(auto-detected for *.aptrc files)")
    parser.add_argument("--export-archive", type=Path, default=None,
                        metavar="PATH",
                        help="re-pack the trace directory into a single "
                             ".aptrc binary archive at PATH")
    parser.add_argument("--compare", type=Path, default=None,
                        metavar="OTHER",
                        help="compare this run (A) against another run's "
                             "trace directory or .aptrc archive (B) for the "
                             "selected -l / -s / -p products")
    parser.add_argument("--query", action="append", default=[],
                        metavar="'logical|physical: EXPR'",
                        help="run a declarative trace query, e.g. "
                             "\"logical: sends where src == 0 group by dst "
                             "top 5\" (repeatable)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output directory for SVGs (default: trace dir)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress text reports on stdout")
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "runs":
        return _runs_main(argv[1:])
    if argv and argv[0] == "diff":
        return _diff_main(argv[1:])
    if argv and argv[0] == "faults":
        return _faults_main(argv[1:])
    if argv and argv[0] == "run":
        return _run_main(argv[1:])
    if argv and argv[0] == "check":
        return _check_main(argv[1:])
    if argv and argv[0] == "whatif":
        return _whatif_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "push":
        return _push_main(argv[1:])
    if argv and argv[0] == "query":
        return _query_main(argv[1:])
    if argv and argv[0] == "viz":
        return _viz_main(argv[1:])
    args = build_parser().parse_args(argv)
    if not (args.logical or args.papi or args.overall or args.physical
            or args.timeline or args.query or args.export_archive):
        print("nothing to do: pass at least one of -l, -lp, -s, -p, -t, "
              "--query, --export-archive", file=sys.stderr)
        return 2
    use_archive = args.archive or is_archive(args.trace_dir)
    if use_archive:
        if not args.trace_dir.is_file():
            print(f"archive {args.trace_dir} does not exist", file=sys.stderr)
            return 2
        if args.export_archive is not None:
            print("--export-archive needs a text trace directory as input",
                  file=sys.stderr)
            return 2
        if args.timeline:
            print("-t needs a trace directory (trace.json is not stored "
                  "in .aptrc archives)", file=sys.stderr)
            return 2
    else:
        if not args.trace_dir.is_dir():
            print(f"trace directory {args.trace_dir} does not exist",
                  file=sys.stderr)
            return 2
        if args.num_pes is None:
            print("--num-pes is required when reading a trace directory",
                  file=sys.stderr)
            return 2
    out = args.out or (args.trace_dir.parent if use_archive else args.trace_dir)
    out.mkdir(parents=True, exist_ok=True)
    emitted: list[Path] = []

    def say(text: str) -> None:
        if not args.quiet:
            print(text)

    if args.compare is not None and not (args.compare.is_dir()
                                         or is_archive(args.compare)):
        print(f"compare target {args.compare} does not exist",
              file=sys.stderr)
        return 2

    archive = None
    try:
        if use_archive:
            archive = Archive(args.trace_dir)
            if args.num_pes is None:
                args.num_pes = archive.n_pes
        return _render(args, archive, out, emitted, say)
    except (FileNotFoundError, ValueError) as exc:
        print(f"cannot read traces: {exc}", file=sys.stderr)
        return 2
    finally:
        if archive is not None:
            archive.close()


def _render(args, archive, out, emitted, say) -> int:
    def dir_machine_spec():
        """The machine spec from the logical trace, if one is present."""
        try:
            return parse_logical_dir(args.trace_dir, args.num_pes).spec
        except (FileNotFoundError, ValueError):
            return None

    def load(kind):
        """Load one trace kind from the archive or the text directory."""
        if archive is not None:
            return {
                "logical": load_logical,
                "physical": load_physical,
                "papi": load_papi,
                "overall": load_overall,
            }[kind](archive)
        return {
            "logical": lambda: parse_logical_dir(args.trace_dir, args.num_pes),
            "physical": lambda: parse_physical_file(
                args.trace_dir, args.num_pes, spec=dir_machine_spec()),
            "papi": lambda: parse_papi_dir(args.trace_dir, args.num_pes),
            "overall": lambda: parse_overall_file(args.trace_dir),
        }[kind]()

    if args.logical:
        trace = load("logical")
        path = out / "logical_heatmap.svg"
        path.write_text(heatmap_svg(trace.matrix(), title="Logical trace heatmap"))
        emitted.append(path)
        if args.violin:
            path = out / "logical_violin.svg"
            path.write_text(violin_svg(
                {"sends": trace.sends_per_pe(), "recvs": trace.recvs_per_pe()},
                title="Logical trace send/recv quartiles",
            ))
            emitted.append(path)
        say(mosaic_report(trace))

    if args.papi:
        trace = load("papi")
        series = {ev: trace.totals_per_pe(ev) for ev in trace.events}
        path = out / "papi_bars.svg"
        path.write_text(grouped_bar_graph(series, title="PAPI counters per PE"))
        emitted.append(path)
        say(papi_report(trace))

    if args.overall:
        profile = load("overall")
        for rel, name in ((False, "overall_absolute.svg"), (True, "overall_relative.svg")):
            path = out / name
            path.write_text(stacked_bar_graph(profile, relative=rel))
            emitted.append(path)
        say(overall_report(profile))

    if args.physical:
        trace = load("physical")
        path = out / "physical_heatmap.svg"
        path.write_text(heatmap_svg(trace.matrix(), title="Physical trace heatmap"))
        emitted.append(path)
        for kind in ("local_send", "nonblock_send"):
            m = trace.matrix(kind)
            if m.sum():
                path = out / f"physical_heatmap_{kind}.svg"
                path.write_text(heatmap_svg(m, title=f"Physical trace: {kind}"))
                emitted.append(path)
        if args.violin:
            path = out / "physical_violin.svg"
            path.write_text(violin_svg(
                {"sends": trace.sends_per_pe(), "recvs": trace.recvs_per_pe()},
                title="Physical trace send/recv quartiles",
            ))
            emitted.append(path)
        # node-level hotspot view ("hotspots of 'node'", paper §III-D);
        # node boundaries come from the logical trace's node columns
        try:
            from repro.core.analysis import aggregate_to_nodes

            logical_spec = (archive.spec() if archive is not None
                            else parse_logical_dir(args.trace_dir,
                                                   args.num_pes).spec)
            if logical_spec.nodes > 1:
                node_m = aggregate_to_nodes(trace.matrix(), logical_spec)
                path = out / "physical_heatmap_nodes.svg"
                path.write_text(heatmap_svg(
                    node_m, title="Physical trace: node-level hotspots",
                    xlabel="destination node", ylabel="source node",
                ))
                emitted.append(path)
        except (FileNotFoundError, ValueError, ArchiveError):
            pass  # no logical trace to infer node boundaries from
        say(physical_report(trace))

    if args.compare is not None:
        from repro.core.diffing import (
            LogicalDiff,
            OverallDiff,
            PhysicalDiff,
            compare_report,
            load_traces,
        )

        logical_d = overall_d = physical_d = None
        try:
            other = load_traces(args.compare, args.num_pes)
            if args.logical and other.logical is not None:
                logical_d = LogicalDiff.of(load("logical"), other.logical)
            if args.overall and other.overall is not None:
                overall_d = OverallDiff.of(load("overall"), other.overall)
            if args.physical and other.physical is not None:
                physical_d = PhysicalDiff.of(load("physical"), other.physical)
        except (FileNotFoundError, ValueError) as exc:
            print(f"compare failed: {exc}", file=sys.stderr)
            return 2
        print(compare_report(str(args.trace_dir), str(args.compare),
                             logical_d, overall_d, physical_d))

    if args.query:
        from repro.core.query import QueryError, query_trace

        for spec_text in args.query:
            target, _, expr = spec_text.partition(":")
            target = target.strip().lower()
            expr = expr.strip()
            if target not in ("logical", "physical") or not expr:
                print(f"bad --query {spec_text!r}: use 'logical: EXPR' or "
                      f"'physical: EXPR'", file=sys.stderr)
                return 2
            try:
                if archive is not None:
                    # column-pruned evaluation straight off the archive
                    result = query_trace(archive.section(target), expr)
                else:
                    if target == "logical":
                        trace = parse_logical_dir(args.trace_dir, args.num_pes)
                    else:
                        # node layout isn't in physical.txt; borrow the
                        # logical trace's machine spec when it's present
                        spec = None
                        try:
                            spec = parse_logical_dir(
                                args.trace_dir, args.num_pes).spec
                        except (FileNotFoundError, ValueError):
                            pass
                        trace = parse_physical_file(
                            args.trace_dir, args.num_pes, spec=spec)
                    result = query_trace(trace, expr)
            except (QueryError, FileNotFoundError, ValueError,
                    ArchiveError) as exc:
                print(f"query failed: {exc}", file=sys.stderr)
                return 2
            print(f"[{target}] {expr}")
            if isinstance(result, list):
                for key, amount in result:
                    print(f"  {key}: {amount:,}")
            else:
                print(f"  {result:,}")

    if args.timeline:
        from repro.core.export import timeline_from_chrome
        from repro.core.viz.timeline_chart import timeline_svg, utilization_svg

        trace_json = args.trace_dir / "trace.json"
        if not trace_json.exists():
            print(f"{trace_json} not found (run with enable_timeline=True)",
                  file=sys.stderr)
            return 2
        tl, _spec = timeline_from_chrome(trace_json)
        path = out / "timeline.svg"
        path.write_text(timeline_svg(tl))
        emitted.append(path)
        path = out / "utilization.svg"
        path.write_text(utilization_svg(tl))
        emitted.append(path)
        say(f"timeline: {tl.span_count()} spans, "
            f"{len(tl.net_events())} network events, "
            f"horizon {tl.end_time():,} cycles")

    if args.export_archive is not None:
        from repro.core.store.writer import export_run

        traces = {}
        for kind in ("logical", "physical", "papi", "overall"):
            try:
                traces[kind] = load(kind)
            except FileNotFoundError:
                pass
        if not traces:
            print(f"no traces found in {args.trace_dir} to export",
                  file=sys.stderr)
            return 2
        path = export_run(
            args.export_archive,
            logical=traces.get("logical"),
            physical=traces.get("physical"),
            papi=traces.get("papi"),
            overall=traces.get("overall"),
        )
        emitted.append(path)
        say(f"archived {', '.join(sorted(traces))} → {path} "
            f"({path.stat().st_size:,} bytes)")

    say("\nwrote: " + ", ".join(str(p) for p in emitted))
    return 0


# ----------------------------------------------------------------------
# `actorprof runs` — the registry subcommands
# ----------------------------------------------------------------------

def _runs_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--registry", type=Path, default=None,
                        help="registry directory (default: $ACTORPROF_RUNS "
                             "or ~/.actorprof/runs)")
    parser = argparse.ArgumentParser(
        prog="actorprof runs",
        description="manage the on-disk registry of .aptrc trace archives",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", parents=[common], help="list registered runs")
    show = sub.add_parser("show", parents=[common],
                          help="show one run's metadata and sections")
    show.add_argument("run", help="run id (or unique prefix)")
    add = sub.add_parser("add", parents=[common],
                         help="register an existing .aptrc archive")
    add.add_argument("archive", type=Path, help="path to the archive")
    add.add_argument("--id", default=None, help="run id (default: file stem)")
    rm = sub.add_parser("rm", parents=[common],
                        help="delete a run from the registry")
    rm.add_argument("run", help="run id (or unique prefix)")
    return parser


def _runs_main(argv: list[str]) -> int:
    from repro.core.store.registry import (
        RegistryError,
        RunRegistry,
        default_registry_root,
    )

    args = _runs_parser().parse_args(argv)
    registry = RunRegistry(args.registry or default_registry_root())
    try:
        if args.command == "list":
            runs = registry.list()
            if not runs:
                print(f"no runs registered in {registry.root}")
                return 0
            for info in runs:
                print(info.describe())
            return 0
        if args.command == "show":
            info = registry.resolve(args.run)
            print(f"run:     {info.run_id}")
            print(f"file:    {info.path} ({info.size_bytes:,} bytes)")
            print(f"created: {info.created}")
            if info.fingerprint:
                print(f"sha256:  {info.fingerprint}")
            for key in sorted(info.meta):
                print(f"meta.{key}: {info.meta[key]}")
            with Archive(info.path) as archive:
                for name in archive.sections:
                    section = archive.section(name)
                    refs = [ref for col in section.columns
                            for ref in section.chunk_refs(col)]
                    with_stats = sum(1 for ref in refs if ref.stats is not None)
                    if with_stats == len(refs) and refs:
                        stats = "chunk stats (query pushdown enabled)"
                    elif with_stats:
                        stats = f"chunk stats on {with_stats}/{len(refs)} chunks"
                    else:
                        stats = "no chunk stats (full decode on query)"
                    print(f"section {name}: {section.rows:,} rows in "
                          f"{section.n_chunks} chunks, "
                          f"columns {', '.join(section.columns)}, {stats}")
                # LOD pyramid summary; pyramid_info returns None (never
                # raises) for pre-pyramid or malformed archives
                from repro.core.store.lod import pyramid_info

                lod = pyramid_info(archive)
                if lod is None:
                    print("lod pyramid: none (backfill with "
                          "'actorprof viz RUN --backfill')")
                else:
                    widths = "/".join(str(w) for w in lod.widths)
                    buckets = "/".join(str(b) for b in lod.buckets)
                    shape = ("time-resolved" if lod.time_resolved
                             else "flat (no timeline)")
                    print(f"lod pyramid: {lod.levels} level(s), {shape}, "
                          f"widths {widths}, buckets {buckets}, "
                          f"horizon {lod.horizon:,} cycles")
            return 0
        if args.command == "add":
            info = registry.add(args.archive, run_id=args.id)
            print(f"registered {info.run_id} ← {args.archive}")
            return 0
        if args.command == "rm":
            info = registry.remove(args.run)
            print(f"removed {info.run_id}")
            return 0
    except (RegistryError, ArchiveError, OSError) as exc:
        print(f"runs {args.command} failed: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled runs command {args.command!r}")


# ----------------------------------------------------------------------
# `actorprof faults` — fault-plan authoring
# ----------------------------------------------------------------------

def _faults_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="actorprof faults",
        description="author and validate deterministic fault-injection "
                    "plans (JSON) for 'actorprof run --fault-plan'",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    template = sub.add_parser(
        "template", help="write an example fault plan to PATH"
    )
    template.add_argument("path", type=Path, help="output JSON path")
    template.add_argument("--crash", action="append", default=[],
                          metavar="PE:CYCLE",
                          help="add a crash fault (repeatable), e.g. 2:200000")
    template.add_argument("--drop", type=float, default=None, metavar="P",
                          help="add an all-edges drop probability")
    template.add_argument("--seed", type=int, default=0,
                          help="fault RNG seed stored in the plan")
    check = sub.add_parser(
        "check", help="validate a fault plan and print its summary"
    )
    check.add_argument("path", type=Path, help="plan JSON to check")
    check.add_argument("--num-pes", type=int, default=None,
                       help="validate PE references against this job size")
    return parser


def _faults_main(argv: list[str]) -> int:
    from repro.sim.faults import CrashFault, EdgeFault, FaultPlan

    args = _faults_parser().parse_args(argv)
    try:
        if args.command == "template":
            crashes = []
            for spec_text in args.crash:
                pe_text, _, cycle_text = spec_text.partition(":")
                try:
                    crashes.append(CrashFault(int(pe_text), int(cycle_text)))
                except ValueError:
                    print(f"bad --crash {spec_text!r}: use PE:CYCLE",
                          file=sys.stderr)
                    return 2
            edges = []
            if args.drop is not None:
                edges.append(EdgeFault(drop=args.drop))
            if not crashes and not edges:
                # the didactic default: one crash + a lossy edge
                crashes = [CrashFault(pe=1, at_cycle=200_000)]
                edges = [EdgeFault(src=0, dst=1, drop=0.1, delay=0.05,
                                   delay_cycles=5_000)]
            plan = FaultPlan(crashes=tuple(crashes), edges=tuple(edges),
                             seed=args.seed)
            plan.save(args.path)
            print(f"wrote fault plan template → {args.path}")
            print(plan.describe())
            return 0
        if args.command == "check":
            plan = FaultPlan.load(args.path)
            if args.num_pes is not None:
                plan.validate(args.num_pes)
            print(plan.describe())
            if args.num_pes is not None:
                print(f"plan is valid for {args.num_pes} PEs")
            return 0
    except (ValueError, OSError) as exc:
        print(f"faults {args.command} failed: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled faults command {args.command!r}")


# ----------------------------------------------------------------------
# `actorprof run` — execute a built-in app under the profiler
# ----------------------------------------------------------------------

#: Parameters `actorprof run --sweep` may vary, with their value parsers.
_SWEEPABLE = {
    "seed": int,
    "updates": int,
    "table_size": int,
    "scale": int,
    "nodes": int,
    "pes_per_node": int,
    "distribution": str,
}


def _run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="actorprof run",
        description="run a built-in FA-BSP app under ActorProf, optionally "
                    "under a fault plan; traces are archived even when the "
                    "run dies (degraded archive, exit code 3)",
    )
    parser.add_argument("app", choices=("histogram", "triangle"),
                        help="which app to run")
    parser.add_argument("--nodes", type=int, default=2,
                        help="simulated nodes (default 2)")
    parser.add_argument("--pes-per-node", type=int, default=2,
                        help="PEs per node (default 2)")
    parser.add_argument("--updates", type=int, default=2000,
                        help="histogram: updates per PE (default 2000)")
    parser.add_argument("--table-size", type=int, default=512,
                        help="histogram: table slots per PE (default 512)")
    parser.add_argument("--scale", type=int, default=8,
                        help="triangle: R-MAT scale (default 8)")
    parser.add_argument("--distribution", default="cyclic",
                        choices=("cyclic", "range", "block"),
                        help="triangle: row distribution (default cyclic)")
    parser.add_argument("--seed", type=int, default=0,
                        help="per-PE RNG seed (default 0)")
    parser.add_argument("--fault-plan", type=Path, default=None,
                        metavar="PLAN.json",
                        help="inject the faults described in this plan "
                             "(see 'actorprof faults')")
    parser.add_argument("-o", "--out", dest="export_archive", type=Path,
                        default=None, metavar="PATH",
                        help="archive the run's traces to PATH (.aptrc); "
                             "required to salvage a failing run; with "
                             "--sweep, PATH is a directory that receives "
                             "one APP-TAG.aptrc per sweep point")
    parser.add_argument("--export-archive", dest="export_archive", type=Path,
                        action=_DeprecatedFlag, canonical="--out",
                        help=argparse.SUPPRESS)
    parser.add_argument("--sweep", action="append", default=[],
                        metavar="PARAM=V1,V2,...",
                        help="sweep a parameter over several values "
                             "(repeatable; points are the cartesian "
                             "product).  Sweepable: " + ", ".join(_SWEEPABLE))
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run sweep points across N worker processes "
                             "(default 1)")
    parser.add_argument("--sweep-report", type=Path, default=None,
                        metavar="PATH",
                        help="write the machine-readable sweep outcome "
                             "JSON to PATH")
    return parser


def _parse_sweeps(items: list[str]) -> dict[str, list]:
    """Parse repeated ``--sweep PARAM=V1,V2,...`` into an ordered dict."""
    sweeps: dict[str, list] = {}
    for item in items:
        name, sep, values_text = item.partition("=")
        name = name.strip().lower()
        if not sep or not values_text:
            raise ValueError(f"bad --sweep {item!r}: use PARAM=V1,V2,...")
        if name not in _SWEEPABLE:
            raise ValueError(f"cannot sweep {name!r}; sweepable parameters "
                             f"are {', '.join(_SWEEPABLE)}")
        if name in sweeps:
            raise ValueError(f"--sweep {name} given twice")
        parse = _SWEEPABLE[name]
        try:
            values = [parse(v.strip()) for v in values_text.split(",")]
        except ValueError:
            raise ValueError(f"bad --sweep {item!r}: {name} wants "
                             f"{parse.__name__} values") from None
        if name == "distribution":
            for v in values:
                if v not in ("cyclic", "range", "block"):
                    raise ValueError(f"bad --sweep distribution value {v!r}: "
                                     "want cyclic, range, or block")
        sweeps[name] = values
    return sweeps


def _run_sweep(args, plan) -> int:
    """Execute the cartesian sweep through the :mod:`repro.exec` engine."""
    import itertools
    import json

    from repro.exec import RunSpec, execute

    try:
        sweeps = _parse_sweeps(args.sweep)
    except ValueError as exc:
        print(f"bad sweep: {exc}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1: {args.jobs}", file=sys.stderr)
        return 2

    base = {
        "app": args.app,
        "nodes": args.nodes,
        "pes_per_node": args.pes_per_node,
        "updates": args.updates,
        "table_size": args.table_size,
        "scale": args.scale,
        "distribution": args.distribution,
        "seed": args.seed,
        "fault_plan": plan.to_dict() if plan is not None else None,
    }
    out_dir = args.export_archive  # a *directory* in sweep mode
    specs = []
    names = list(sweeps)
    for index, combo in enumerate(itertools.product(*sweeps.values())):
        point = dict(zip(names, combo))
        tag = "-".join(f"{n}{v}" for n, v in point.items())
        kwargs = dict(base, **point)
        if out_dir is not None:
            kwargs["archive_name"] = f"{args.app}-{tag}.aptrc"
        specs.append(RunSpec(
            index=index, fn="repro.exec.apptask:run_app_point",
            kwargs=kwargs, tag=tag,
        ).with_cache_key())
    print(f"sweep: {len(specs)} points "
          f"({' x '.join(f'{n}={len(v)}' for n, v in sweeps.items())}), "
          f"jobs={args.jobs}")

    records = execute(specs, jobs=args.jobs, scratch_dir=out_dir)
    points = []
    for rec in records:
        if rec.ok:
            point = dict(rec.value)
        else:  # a worker died or raised: a per-point failure record
            point = {"app": args.app, "summary": "", "exit_code": 1,
                     "error": rec.error, "archive": None,
                     "archive_sha256": None, "artifacts": []}
        point["tag"] = rec.tag
        points.append(point)
        status = (point["summary"] or point["error"]
                  or f"exit {point['exit_code']}")
        marker = "ok" if point["exit_code"] == 0 else f"rc={point['exit_code']}"
        print(f"  [{marker}] {rec.tag}: {status}")
        if point["archive"] is not None and out_dir is not None:
            print(f"         archived → {out_dir / point['archive']}")

    # Same aggregation contract as `actorprof check`: the process exits
    # with the max per-point code, the report lists every distinct
    # nonzero code so no failure kind is masked.
    exit_code = max((p["exit_code"] for p in points), default=0)
    exit_codes = sorted({p["exit_code"] for p in points if p["exit_code"]})
    if exit_codes:
        print("sweep failures: exit codes "
              + ", ".join(str(c) for c in exit_codes)
              + f" (process exits with {exit_code})", file=sys.stderr)
    if args.sweep_report is not None:
        # no job count in the payload: the report's bytes must not
        # depend on how the sweep was parallelized
        payload = {
            "app": args.app,
            "sweep": {n: list(v) for n, v in sweeps.items()},
            "exit_code": exit_code,
            "exit_codes": exit_codes,
            "points": points,
        }
        args.sweep_report.parent.mkdir(parents=True, exist_ok=True)
        args.sweep_report.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote sweep report → {args.sweep_report}")
    return exit_code


def _run_main(argv: list[str]) -> int:
    import contextlib

    from repro.core.profiler import ActorProf
    from repro.machine.spec import MachineSpec
    from repro.sim.errors import SimulationError
    from repro.sim.faults import FaultPlan, use_plan

    args = _run_parser().parse_args(argv)
    try:
        plan = (FaultPlan.load(args.fault_plan)
                if args.fault_plan is not None else None)
    except ValueError as exc:
        print(f"bad fault plan: {exc}", file=sys.stderr)
        return 2
    if args.sweep:
        # machine validation is per-point (nodes/pes_per_node may sweep)
        return _run_sweep(args, plan)
    spec = MachineSpec(args.nodes, args.pes_per_node)
    if plan is not None:
        try:
            plan.validate(spec.n_pes)
        except ValueError as exc:
            print(f"fault plan does not fit this machine: {exc}",
                  file=sys.stderr)
            return 2
    from repro.core.flags import ProfileFlags

    # the timeline feeds the LOD pyramid, so `actorprof viz` gets
    # time-resolved (zoomable) views of archives made by `actorprof run`
    profiler = ActorProf(ProfileFlags.all(enable_timeline=True))
    meta = {"app": args.app, "seed": args.seed}
    if plan is not None:
        meta["fault_plan"] = plan.to_dict()
    scope = use_plan(plan) if plan is not None else contextlib.nullcontext()
    failure: BaseException | None = None
    summary = ""
    try:
        with scope:
            if args.app == "histogram":
                from repro.apps.histogram import histogram

                res = histogram(
                    args.updates, args.table_size, machine=spec,
                    profiler=profiler, seed=args.seed,
                )
                summary = (f"histogram: {res.total_updates:,} "
                           f"updates delivered")
                meta.update(updates=args.updates, table_size=args.table_size)
            else:
                from repro.apps.triangle import count_triangles
                from repro.experiments.casestudy import case_study_graph

                graph = case_study_graph(args.scale, seed=args.seed)
                res = count_triangles(
                    graph, spec, args.distribution, profiler=profiler,
                    seed=args.seed,
                )
                summary = f"triangle: {res.triangles:,} triangles"
                meta.update(scale=args.scale, distribution=args.distribution)
    except SimulationError as exc:
        failure = exc
    if failure is None:
        print(f"{summary} on {spec.nodes}x{spec.pes_per_node} PEs "
              f"(seed {args.seed})")
        if args.export_archive is not None:
            path = profiler.export_archive(args.export_archive, meta=meta,
                                           lod=True)
            print(f"archived traces → {path} ({path.stat().st_size:,} bytes)")
        return 0
    first_line = str(failure).splitlines()[0]
    print(f"run failed: {type(failure).__name__}: {first_line}",
          file=sys.stderr)
    if args.export_archive is None:
        print("no --export-archive given; traces were not salvaged",
              file=sys.stderr)
        return 1
    try:
        path = profiler.salvage_archive(args.export_archive, failure=failure,
                                        meta=meta, lod=True)
    except (ValueError, OSError) as exc:
        print(f"salvage failed: {exc}", file=sys.stderr)
        return 1
    print(f"salvaged degraded traces → {path} "
          f"({path.stat().st_size:,} bytes)", file=sys.stderr)
    return 3


# ----------------------------------------------------------------------
# `actorprof check` — the ActorCheck determinism auditor
# ----------------------------------------------------------------------

def _check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="actorprof check",
        description="audit a workload for schedule nondeterminism: "
                    "re-execute it under K perturbed-but-legal schedules "
                    "(tie-break permutation, flush-order jitter, buffer "
                    "sweeps), verify trace invariants, and diff the runs. "
                    "Exit 0 = deterministic, 4 = confirmed nondeterminism, "
                    "5 = invariant violation, 6 = a run failed or its "
                    "worker died.",
    )
    parser.add_argument("workload", choices=("histogram", "triangle",
                                             "generated"),
                        help="which workload to audit")
    parser.add_argument("--schedules", type=int, default=8, metavar="K",
                        help="number of perturbed schedules (default 8; "
                             "schedule 0 is the default policy)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed for the workload AND the schedule "
                             "jitter streams (default 0)")
    parser.add_argument("--nodes", type=int, default=2,
                        help="simulated nodes (default 2)")
    parser.add_argument("--pes-per-node", type=int, default=2,
                        help="PEs per node (default 2)")
    parser.add_argument("--updates", type=int, default=400,
                        help="histogram: updates per PE (default 400)")
    parser.add_argument("--table-size", type=int, default=64,
                        help="histogram: table slots per PE (default 64)")
    parser.add_argument("--scale", type=int, default=6,
                        help="triangle: R-MAT scale (default 6)")
    parser.add_argument("--distribution", default="cyclic",
                        choices=("cyclic", "range", "block"),
                        help="triangle: row distribution (default cyclic)")
    parser.add_argument("--programs", type=int, default=2, metavar="N",
                        help="generated: audit N random actor programs "
                             "(default 2)")
    parser.add_argument("--fault-plan", type=Path, default=None,
                        metavar="PLAN.json",
                        help="audit under a non-fatal fault plan (drop/"
                             "delay/duplicate/slow; crashes are rejected)")
    parser.add_argument("--out", dest="report", type=Path, default=None,
                        metavar="PATH",
                        help="write the machine-readable JSON verdict(s) "
                             "to PATH")
    parser.add_argument("--report", dest="report", type=Path,
                        action=_DeprecatedFlag, canonical="--out",
                        help=argparse.SUPPRESS)
    parser.add_argument("--keep-archives", type=Path, default=None,
                        metavar="DIR",
                        help="keep every schedule's .aptrc archive in DIR "
                             "(default: temporary, deleted)")
    parser.add_argument("--skip-store-check", action="store_true",
                        help="skip the archive/CSV round-trip invariant "
                             "(faster for large sweeps)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan the K schedule runs across N worker "
                             "processes (default 1: in-process); the "
                             "verdict is byte-identical either way")
    parser.add_argument("--cache", type=Path, default=None, metavar="DIR",
                        help="result cache directory: schedule runs whose "
                             "(workload, seed, schedule) fingerprint is "
                             "already cached are restored instead of rerun")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the verdict line(s)")
    return parser


def _check_main(argv: list[str]) -> int:
    import json

    from repro.check import (
        GeneratedWorkload,
        HistogramWorkload,
        TriangleWorkload,
        audit,
        generate_spec,
    )
    from repro.machine.spec import MachineSpec

    args = _check_parser().parse_args(argv)
    if args.schedules < 1:
        print(f"--schedules must be >= 1: {args.schedules}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1: {args.jobs}", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan is not None:
        from repro.sim.faults import FaultPlan

        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (ValueError, OSError) as exc:
            print(f"bad fault plan: {exc}", file=sys.stderr)
            return 2
    spec = MachineSpec(args.nodes, args.pes_per_node)
    workloads = []
    if args.workload == "histogram":
        workloads.append(HistogramWorkload(
            updates=args.updates, table_size=args.table_size,
            machine=spec, seed=args.seed,
        ))
    elif args.workload == "triangle":
        workloads.append(TriangleWorkload(
            scale=args.scale, distribution=args.distribution,
            machine=spec, seed=args.seed,
        ))
    else:
        for i in range(args.programs):
            workloads.append(GeneratedWorkload(
                generate_spec(args.seed, i), machine=spec, seed=args.seed,
                name=f"generated-{i}",
            ))
    reports = []
    try:
        for workload in workloads:
            out_dir = None
            if args.keep_archives is not None:
                out_dir = args.keep_archives / workload.name
            report = audit(
                workload,
                schedules=args.schedules,
                out_dir=out_dir,
                store_equivalence=not args.skip_store_check,
                fault_plan=fault_plan,
                jobs=args.jobs,
                cache=args.cache,
            )
            reports.append(report)
            if args.quiet:
                print(f"{workload.name}: {report.verdict}")
            else:
                print(report.render())
    except ValueError as exc:
        print(f"check failed: {exc}", file=sys.stderr)
        return 2
    # The process can only exit with one code, so `max` wins there (the
    # codes are ordered by severity: 4 < 5 < 6) — but aggregating with
    # max alone used to *hide* the other failures: a K-program audit
    # where one program diverged (4) and another broke an invariant (5)
    # reported only the 5.  The JSON payload therefore carries every
    # distinct nonzero code alongside the per-workload reports.
    exit_code = max(r.exit_code for r in reports)
    exit_codes = sorted({r.exit_code for r in reports if r.exit_code})
    if len(exit_codes) > 1:
        print("multiple failure kinds: exit codes "
              + ", ".join(str(c) for c in exit_codes)
              + f" (process exits with {exit_code})", file=sys.stderr)
    if args.report is not None:
        if len(reports) == 1:
            payload = reports[0].to_dict()
        else:
            payload = {
                "exit_code": exit_code,
                "exit_codes": exit_codes,
                "reports": [r.to_dict() for r in reports],
            }
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote verdict report → {args.report}")
    return exit_code


# ----------------------------------------------------------------------
# `actorprof whatif` — causal critical-path + virtual-speedup profiler
# ----------------------------------------------------------------------

def _whatif_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="actorprof whatif",
        description="causal what-if profiling: reconstruct the "
                    "happens-before DAG of one profiled run, rank the "
                    "critical path (work, span, per-region parallelism, "
                    "hottest handlers and transfer edges), predict virtual "
                    "speedups by re-weighting the DAG, and optionally "
                    "*replay* the workload under perturbed cost models "
                    "(--scale / --sweep) to measure them for real. "
                    "Scale factors multiply the target's COST: "
                    "proc=0.5x means PROC work runs twice as fast. "
                    "Exit 0 = ok, 2 = bad arguments, 6 = a replay failed.",
    )
    parser.add_argument("workload", choices=("histogram", "triangle",
                                             "generated"),
                        help="which workload to analyze")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--nodes", type=int, default=2,
                        help="simulated nodes (default 2)")
    parser.add_argument("--pes-per-node", type=int, default=2,
                        help="PEs per node (default 2)")
    parser.add_argument("--updates", type=int, default=400,
                        help="histogram: updates per PE (default 400)")
    parser.add_argument("--table-size", type=int, default=64,
                        help="histogram: table slots per PE (default 64)")
    parser.add_argument("--scale-rmat", type=int, default=6, metavar="S",
                        help="triangle: R-MAT scale (default 6)")
    parser.add_argument("--distribution", default="cyclic",
                        choices=("cyclic", "range", "block"),
                        help="triangle: row distribution (default cyclic)")
    parser.add_argument("--program", type=int, default=0, metavar="N",
                        help="generated: which generated program (default 0)")
    parser.add_argument("--scale", action="append", default=[],
                        metavar="TARGET=FACTOR",
                        help="replay one point with this cost scale; repeat "
                             "to compose scales into the same point (e.g. "
                             "--scale mailbox:0=2x --scale net.latency=0.5)")
    parser.add_argument("--sweep", action="append", default=[],
                        metavar="TARGET=F1,F2,...",
                        help="replay the cartesian product of these factor "
                             "axes (repeatable)")
    parser.add_argument("--candidate-factor", type=float, default=0.5,
                        metavar="F",
                        help="factor used for the ranked single-target "
                             "predictions (default 0.5 = a 2x speedup)")
    parser.add_argument("--fault-plan", type=Path, default=None,
                        metavar="PLAN.json",
                        help="analyze under a non-fatal fault plan "
                             "(crashing plans are rejected)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan replay points across N worker processes "
                             "(default 1: in-process); the report is "
                             "byte-identical either way")
    parser.add_argument("--cache", type=Path, default=None, metavar="DIR",
                        help="result cache directory for replay points "
                             "(keys include the scale factors)")
    parser.add_argument("--out", dest="report", type=Path, default=None,
                        metavar="PATH",
                        help="write the machine-readable JSON report to PATH")
    parser.add_argument("--report", dest="report", type=Path,
                        action=_DeprecatedFlag, canonical="--out",
                        help=argparse.SUPPRESS)
    parser.add_argument("--keep-archives", type=Path, default=None,
                        metavar="DIR",
                        help="keep the baseline and per-point .aptrc "
                             "archives in DIR (default: temporary)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the text report on stdout")
    return parser


def _whatif_main(argv: list[str]) -> int:
    import json

    from repro.check import (
        GeneratedWorkload,
        HistogramWorkload,
        TriangleWorkload,
        generate_spec,
    )
    import repro.api as api
    from repro.core.report import whatif_report
    from repro.machine.spec import MachineSpec
    from repro.whatif import Scales, parse_sweep

    args = _whatif_parser().parse_args(argv)
    if args.jobs < 1:
        print(f"--jobs must be >= 1: {args.jobs}", file=sys.stderr)
        return 2
    try:
        scale_sets = []
        if args.scale:
            scale_sets.append(Scales.from_args(args.scale))
        sweeps = [parse_sweep(item) for item in args.sweep]
        if not (args.candidate_factor > 0
                and args.candidate_factor != float("inf")):
            raise ValueError(
                f"--candidate-factor must be a positive finite number: "
                f"{args.candidate_factor}"
            )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan is not None:
        from repro.sim.faults import FaultPlan

        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (ValueError, OSError) as exc:
            print(f"bad fault plan: {exc}", file=sys.stderr)
            return 2
    spec = MachineSpec(args.nodes, args.pes_per_node)
    if args.workload == "histogram":
        workload = HistogramWorkload(
            updates=args.updates, table_size=args.table_size,
            machine=spec, seed=args.seed,
        )
    elif args.workload == "triangle":
        workload = TriangleWorkload(
            scale=args.scale_rmat, distribution=args.distribution,
            machine=spec, seed=args.seed,
        )
    else:
        workload = GeneratedWorkload(
            generate_spec(args.seed, args.program), machine=spec,
            seed=args.seed, name=f"generated-{args.program}",
        )
    try:
        report = api.whatif(
            workload,
            scale_sets=scale_sets,
            sweeps=sweeps,
            jobs=args.jobs,
            cache=args.cache,
            out_dir=args.keep_archives,
            fault_plan=fault_plan,
            candidate_factor=args.candidate_factor,
        )
    except ValueError as exc:
        print(f"whatif failed: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(whatif_report(report))
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote what-if report → {args.report}")
    return report["exit_code"]


# ----------------------------------------------------------------------
# `actorprof serve` / `actorprof push` — the trace service
# ----------------------------------------------------------------------

def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="actorprof serve",
        description="run the ActorProf trace service: streaming .aptrc "
                    "ingest with backpressure, a sharded run registry, "
                    "and query/diff endpoints backed by a worker pool "
                    "and a shared content-addressed result cache "
                    "(see docs/SERVICE.md)",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8750,
                        help="TCP port (default 8750; 0 picks a free one)")
    parser.add_argument("--data-dir", type=Path,
                        default=Path("actorprof-serve"),
                        help="service state root: registry, artifact "
                             "store, and upload spool (default "
                             "./actorprof-serve)")
    parser.add_argument("--registry", type=Path, default=None,
                        help="serve an existing registry directory "
                             "instead of DATA_DIR/runs")
    parser.add_argument("--shards", type=int, default=4,
                        help="registry manifest shards for write "
                             "concurrency (default 4; fixed at registry "
                             "creation)")
    parser.add_argument("--workers", type=int, default=4,
                        help="query/diff worker pool width (default 4)")
    parser.add_argument("--worker-mode", default="thread",
                        choices=("thread", "process"),
                        help="run queries inline on pool threads "
                             "(default) or in spawned, crash-isolated "
                             "worker processes")
    parser.add_argument("--cache-max-bytes", type=int,
                        default=256 * 1024 * 1024, metavar="N",
                        help="artifact-store LRU size cap (default "
                             "256 MiB; 0 = unbounded)")
    parser.add_argument("--max-active-ingests", type=int, default=8,
                        metavar="N",
                        help="concurrent uploads admitted before 429 "
                             "(default 8)")
    parser.add_argument("--max-archive-bytes", type=int,
                        default=64 * 1024 * 1024, metavar="N",
                        help="largest accepted archive (default 64 MiB)")
    parser.add_argument("--max-pending-bytes", type=int,
                        default=256 * 1024 * 1024, metavar="N",
                        help="total spool reservation before 429 "
                             "(default 256 MiB)")
    parser.add_argument("--retry-after", type=float, default=1.0,
                        metavar="SECONDS",
                        help="Retry-After advertised on 429 (default 1)")
    parser.add_argument("--allow-remote-shutdown", action="store_true",
                        help="enable POST /shutdown (tests and CI smoke)")
    return parser


def _serve_main(argv: list[str]) -> int:
    from repro.serve import IngestLimits, ServerConfig
    from repro.serve import run as serve_run

    args = _serve_parser().parse_args(argv)
    try:
        config = ServerConfig(
            data_dir=args.data_dir,
            host=args.host,
            port=args.port,
            shards=args.shards,
            workers=args.workers,
            worker_mode=args.worker_mode,
            cache_max_bytes=args.cache_max_bytes or None,
            ingest=IngestLimits(
                max_active=args.max_active_ingests,
                max_archive_bytes=args.max_archive_bytes,
                max_pending_bytes=args.max_pending_bytes,
                retry_after=args.retry_after,
            ),
            allow_shutdown=args.allow_remote_shutdown,
            registry_root=args.registry,
        )
        return serve_run(config)
    except (ValueError, OSError) as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 2


def _push_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="actorprof push",
        description="upload a .aptrc archive to a running ActorProf "
                    "service (chunked streaming; waits out 429 "
                    "backpressure and retries)",
    )
    parser.add_argument("archive", type=Path, help="the .aptrc to upload")
    parser.add_argument("--server", default="127.0.0.1:8750",
                        metavar="HOST:PORT",
                        help="service address (default 127.0.0.1:8750)")
    parser.add_argument("--id", default=None,
                        help="run id to register under (default: "
                             "run-<fingerprint prefix>, which makes "
                             "pushes idempotent)")
    parser.add_argument("--retries", type=int, default=8,
                        help="rounds of backpressure to wait out "
                             "(default 8)")
    return parser


def _push_main(argv: list[str]) -> int:
    from repro.serve import Backpressure, ServeClient, ServeError

    args = _push_parser().parse_args(argv)
    if not args.archive.is_file():
        print(f"archive {args.archive} does not exist", file=sys.stderr)
        return 2
    host, _, port_text = args.server.partition(":")
    try:
        port = int(port_text) if port_text else 8750
    except ValueError:
        print(f"bad --server {args.server!r}: use HOST:PORT",
              file=sys.stderr)
        return 2
    client = ServeClient(host or "127.0.0.1", port)
    try:
        result = client.push(args.archive, run_id=args.id,
                             retries=args.retries)
    except Backpressure as exc:
        print(f"push failed: server still under backpressure after "
              f"{args.retries} retries ({exc.message})", file=sys.stderr)
        return 4
    except (ServeError, OSError) as exc:
        print(f"push failed: {exc}", file=sys.stderr)
        return 2
    verb = "deduplicated against" if result.get("deduped") else "registered as"
    print(f"pushed {args.archive} → {verb} {result['run']} "
          f"({result['size_bytes']:,} bytes, "
          f"sha256 {result['fingerprint'][:12]})")
    if result.get("degraded"):
        print("note: archive is degraded (salvaged from a failed run)")
    return 0


# ----------------------------------------------------------------------
# `actorprof diff` — compare two stored runs
# ----------------------------------------------------------------------

def _diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="actorprof diff",
        description="compare two stored runs (the cyclic-vs-range workflow)",
    )
    parser.add_argument("run_a", help="trace directory, .aptrc archive, or "
                                      "registered run id (run A)")
    parser.add_argument("run_b", help="trace directory, .aptrc archive, or "
                                      "registered run id (run B)")
    parser.add_argument("--num-pes", type=int, default=None,
                        help="PE count (required only for trace directories)")
    parser.add_argument("--registry", type=Path, default=None,
                        help="registry to resolve run ids against (default: "
                             "$ACTORPROF_RUNS or ~/.actorprof/runs)")
    return parser


def _resolve_run(ref: str, registry_root: Path | None) -> Path:
    """A run reference: an existing path, else a registry run id."""
    path = Path(ref)
    if path.is_dir() or is_archive(path):
        return path
    from repro.core.store.registry import (
        RegistryError,
        RunRegistry,
        default_registry_root,
    )

    registry = RunRegistry(registry_root or default_registry_root())
    try:
        return registry.resolve(ref).path
    except RegistryError:
        raise FileNotFoundError(
            f"{ref!r} is not a trace directory, a .aptrc archive, or a "
            f"registered run id in {registry.root}"
        ) from None


def _diff_main(argv: list[str]) -> int:
    import repro.api as api

    args = _diff_parser().parse_args(argv)
    try:
        path_a = _resolve_run(args.run_a, args.registry)
        path_b = _resolve_run(args.run_b, args.registry)
        report = api.diff(path_a, path_b, n_pes=args.num_pes,
                          label_a=args.run_a, label_b=args.run_b)
    except (FileNotFoundError, ValueError) as exc:
        print(f"diff failed: {exc}", file=sys.stderr)
        return 2
    print(report)
    return 0


# ----------------------------------------------------------------------
# `actorprof query` — one declarative query against a stored run
# ----------------------------------------------------------------------

def _query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="actorprof query",
        description="evaluate one declarative trace query against a "
                    "stored run (archive path or registered run id)",
    )
    parser.add_argument("run", help=".aptrc archive or registered run id")
    parser.add_argument("expr", help="query text, e.g. "
                                     "'sends where src == 0 group by dst'")
    parser.add_argument("--section", default="logical",
                        choices=("logical", "physical"),
                        help="which trace section to query (default logical)")
    parser.add_argument("--registry", type=Path, default=None,
                        help="registry to resolve run ids against (default: "
                             "$ACTORPROF_RUNS or ~/.actorprof/runs)")
    return parser


def _query_main(argv: list[str]) -> int:
    import repro.api as api
    from repro.core.query import QueryError
    from repro.core.store.registry import RegistryError

    args = _query_parser().parse_args(argv)
    try:
        with api.open_run(args.run, registry=args.registry) as run:
            result = run.query(args.expr, section=args.section)
    except (QueryError, ArchiveError, RegistryError, FileNotFoundError,
            KeyError, ValueError) as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 2
    if isinstance(result, list):
        for key, amount in result:
            print(f"{key}: {amount:,}")
    else:
        print(f"{result:,}")
    return 0


# ----------------------------------------------------------------------
# `actorprof viz` — LOD-pyramid views and the pan/zoom HTML page
# ----------------------------------------------------------------------

def _viz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="actorprof viz",
        description="render LOD-pyramid views (gantt, heatmap, timeline) "
                    "of a stored run into a standalone HTML page; with "
                    "--server the page pans/zooms against a live "
                    "'actorprof serve' instance's /runs/{id}/viz endpoints",
    )
    parser.add_argument("run", help=".aptrc archive or registered run id")
    parser.add_argument("--view", action="append", default=[],
                        choices=("gantt", "heatmap", "timeline"),
                        help="which view(s) to render (repeatable; "
                             "default: all three)")
    parser.add_argument("--out", type=Path, default=None, metavar="PATH",
                        help="output HTML path (default: RUN_viz.html "
                             "next to the archive)")
    parser.add_argument("--t0", type=int, default=None,
                        help="viewport start, cycles (default 0)")
    parser.add_argument("--t1", type=int, default=None,
                        help="viewport end, cycles (default: run horizon)")
    parser.add_argument("--res", type=int, default=None,
                        help="viewport resolution in buckets (default: "
                             "per-view; gantt 96, heatmap 16, timeline 120)")
    parser.add_argument("--server", default=None, metavar="URL",
                        help="base URL of a running 'actorprof serve' "
                             "(e.g. http://127.0.0.1:8750); embeds live "
                             "pan/zoom controls in the HTML")
    parser.add_argument("--backfill", action="store_true",
                        help="first backfill LOD pyramid sections into the "
                             "archive in place (no-op if already present)")
    parser.add_argument("--registry", type=Path, default=None,
                        help="registry to resolve run ids against (default: "
                             "$ACTORPROF_RUNS or ~/.actorprof/runs)")
    return parser


def _viz_main(argv: list[str]) -> int:
    import repro.api as api
    from repro.core.lod import DEFAULT_RES, LodError
    from repro.core.store.registry import RegistryError
    from repro.core.viz.lodviews import viz_html

    args = _viz_parser().parse_args(argv)
    if args.res is not None and args.res < 1:
        print(f"--res must be >= 1: {args.res}", file=sys.stderr)
        return 2
    views = list(dict.fromkeys(args.view)) or ["gantt", "heatmap",
                                               "timeline"]
    try:
        path, run_id = api._resolve(args.run, args.registry)
        if args.backfill:
            from repro.core.store.lod import backfill_pyramid

            backfill_pyramid(path)
            print(f"backfilled LOD pyramid into {path}")
        rendered = {}
        with api.open_run(path) as run:
            for view in views:
                rendered[view] = run.viz(view, t0=args.t0, t1=args.t1,
                                         res=args.res)
            horizon = run.lod().horizon
        res = ({v: args.res for v in views} if args.res is not None
               else {v: DEFAULT_RES[v] for v in views})
        page = viz_html(rendered, run_label=run_id, horizon=horizon,
                        server=args.server, run_id=run_id, res=res)
    except (LodError, ArchiveError, RegistryError, FileNotFoundError,
            ValueError, OSError) as exc:
        print(f"viz failed: {exc}", file=sys.stderr)
        return 2
    out = args.out or path.with_name(f"{run_id}_viz.html")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(page)
    print(f"wrote {out} ({len(views)} view(s), horizon {horizon:,} cycles)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
