"""Live (in-flight) trace monitoring.

Section VI: "a feature where ActorProf can concurrently generate the
trace graph with the program's execution ... is currently being
investigated."  :class:`LiveMonitor` implements that idea for the
simulated stack: it wraps an inner profiler's runtime hooks, maintains
streaming per-PE statistics as events arrive, and emits periodic snapshots
(every ``snapshot_every`` sends, globally) that a dashboard could render
while the program still runs.

Use by wrapping the profiler::

    ap = ActorProf(ProfileFlags.all())
    live = LiveMonitor(ap, snapshot_every=1000)
    run_spmd(program, machine=spec, profiler=live)
    live.snapshots      # in-flight views
    ap.logical, ...     # the full post-run traces, unchanged
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class LiveSnapshot:
    """One in-flight view of the run."""

    seq: int
    total_sends: int
    sends_per_pe: tuple[int, ...]
    handled_per_pe: tuple[int, ...]
    open_finishes: int


@dataclass
class _LiveState:
    sends: np.ndarray
    handled: np.ndarray
    open_per_pe: np.ndarray
    open_finishes: int = 0
    snapshots: list[LiveSnapshot] = field(default_factory=list)


class LiveMonitor:
    """Streaming statistics over the runtime hook events.

    Decorates an inner profiler (or ``None`` for monitoring without full
    tracing).  All hook events are forwarded unmodified.
    """

    def __init__(self, inner=None, snapshot_every: int = 1000) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.inner = inner
        self.snapshot_every = snapshot_every
        self._state: _LiveState | None = None
        self._hooks = None
        self._n_pes = 0

    # -- profiler protocol -------------------------------------------------

    def attach(self, world):
        """Wire into the world; returns (hooks, tracer) like ActorProf."""
        tracer = None
        if self.inner is not None:
            self._hooks, tracer = self.inner.attach(world)
        self._n_pes = world.spec.n_pes
        self._state = _LiveState(
            sends=np.zeros(self._n_pes, dtype=np.int64),
            handled=np.zeros(self._n_pes, dtype=np.int64),
            open_per_pe=np.zeros(self._n_pes, dtype=np.int64),
        )
        return self, tracer

    # -- live accessors ------------------------------------------------------

    @property
    def snapshots(self) -> list[LiveSnapshot]:
        return list(self._state.snapshots) if self._state else []

    def current(self) -> LiveSnapshot:
        """The up-to-the-moment view (cheap; does not store a snapshot)."""
        st = self._require_state()
        return LiveSnapshot(
            seq=len(st.snapshots),
            total_sends=int(st.sends.sum()),
            sends_per_pe=tuple(int(x) for x in st.sends),
            handled_per_pe=tuple(int(x) for x in st.handled),
            open_finishes=st.open_finishes,
        )

    def _require_state(self) -> _LiveState:
        if self._state is None:
            raise RuntimeError("LiveMonitor is not attached to a run")
        return self._state

    def _maybe_snapshot(self) -> None:
        # A single send_batch can cross several snapshot_every boundaries
        # at once; emit one snapshot per crossed boundary so the snapshot
        # cadence stays uniform regardless of batch size.
        st = self._require_state()
        while int(st.sends.sum()) // self.snapshot_every > len(st.snapshots):
            st.snapshots.append(self.current())

    # -- RuntimeHooks (forwarding + accounting) --------------------------------

    def finish_start(self, pe: int) -> None:
        st = self._require_state()
        st.open_per_pe[pe] += 1
        st.open_finishes += 1
        if self._hooks is not None:
            self._hooks.finish_start(pe)

    def finish_end(self, pe: int) -> None:
        st = self._require_state()
        if st.open_per_pe[pe] <= 0:
            raise RuntimeError(
                f"unmatched finish_end on PE {pe}: no finish scope is open "
                f"on that PE (runtime hook sequencing bug)"
            )
        st.open_per_pe[pe] -= 1
        st.open_finishes -= 1
        if self._hooks is not None:
            self._hooks.finish_end(pe)

    def main_enter(self, pe: int) -> None:
        if self._hooks is not None:
            self._hooks.main_enter(pe)

    def main_exit(self, pe: int) -> None:
        if self._hooks is not None:
            self._hooks.main_exit(pe)

    def proc_enter(self, pe: int, mailbox: int) -> None:
        if self._hooks is not None:
            self._hooks.proc_enter(pe, mailbox)

    def proc_exit(self, pe: int, mailbox: int, n_items: int) -> None:
        self._require_state().handled[pe] += n_items
        if self._hooks is not None:
            self._hooks.proc_exit(pe, mailbox, n_items)

    def send(self, pe: int, mailbox: int, dst: int, nbytes: int) -> None:
        self._require_state().sends[pe] += 1
        if self._hooks is not None:
            self._hooks.send(pe, mailbox, dst, nbytes)
        self._maybe_snapshot()

    def send_batch(self, pe: int, mailbox: int, dsts, nbytes: int) -> None:
        self._require_state().sends[pe] += len(dsts)
        if self._hooks is not None:
            self._hooks.send_batch(pe, mailbox, dsts, nbytes)
        self._maybe_snapshot()
