"""Analysis helpers over collected traces.

These are the computations behind ActorProf's visualizations and the
paper's observations: heatmap matrices with send/recv totals in the last
row/column, quartile statistics for the violin plots, load-imbalance
ratios, and cyclic-vs-range comparison summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.logical import LogicalTrace
from repro.core.overall import OverallProfile
from repro.core.physical import PhysicalTrace


def aggregate_to_nodes(matrix: np.ndarray, spec) -> np.ndarray:
    """Collapse a PE × PE matrix to node × node (paper §III-D:
    "hotspots of 'node' from the network sends").

    Cell (a, b) sums all traffic from PEs on node ``a`` to PEs on node
    ``b``; the diagonal is intra-node traffic.
    """
    matrix = np.asarray(matrix)
    if matrix.shape != (spec.n_pes, spec.n_pes):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match spec with "
            f"{spec.n_pes} PEs"
        )
    ppn = spec.pes_per_node
    return (
        matrix.reshape(spec.nodes, ppn, spec.nodes, ppn)
        .sum(axis=(1, 3))
        .astype(matrix.dtype)
    )


def heat_with_totals(matrix: np.ndarray) -> np.ndarray:
    """Append total-recv row and total-send column to a comm matrix.

    The paper's heatmaps carry "total outgoing send/recv for every PE,
    represented in the last row and the last column".  The corner cell is
    the grand total.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"communication matrix must be square, got {matrix.shape}")
    n = matrix.shape[0]
    out = np.zeros((n + 1, n + 1), dtype=matrix.dtype)
    out[:n, :n] = matrix
    out[n, :n] = matrix.sum(axis=0)  # recvs per destination (last row)
    out[:n, n] = matrix.sum(axis=1)  # sends per source (last column)
    out[n, n] = matrix.sum()
    return out


@dataclass(frozen=True)
class QuartileStats:
    """Five-number summary + mean, as shown by the violin plots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @classmethod
    def of(cls, values: np.ndarray) -> "QuartileStats":
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("cannot summarize an empty sample")
        q1, med, q3 = np.percentile(values, [25, 50, 75])
        return cls(
            minimum=float(values.min()),
            q1=float(q1),
            median=float(med),
            q3=float(q3),
            maximum=float(values.max()),
            mean=float(values.mean()),
        )

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def send_recv_stats(trace: LogicalTrace | PhysicalTrace) -> dict[str, QuartileStats]:
    """Quartile stats of per-PE send and recv totals (violin plot data)."""
    return {
        "sends": QuartileStats.of(trace.sends_per_pe()),
        "recvs": QuartileStats.of(trace.recvs_per_pe()),
    }


def imbalance_ratio(values: np.ndarray) -> float:
    """max/mean load-imbalance ratio (1.0 = perfectly balanced)."""
    values = np.asarray(values, dtype=float)
    mean = values.mean()
    if mean == 0:
        return 1.0
    return float(values.max() / mean)


def is_lower_triangular_comm(matrix: np.ndarray, tolerance: float = 0.0) -> bool:
    """Check the paper's "(L) observation": communication only flows to
    PEs of equal or lower index (1D Range distribution).

    ``tolerance`` allows a fraction of total messages above the diagonal
    (default: strict).
    """
    matrix = np.asarray(matrix)
    total = matrix.sum()
    if total == 0:
        return True
    upper = np.triu(matrix, k=1).sum()
    return upper <= tolerance * total


def monotonic_recv_profile(matrix: np.ndarray, slack: float = 0.0) -> bool:
    """Check the "(L) observation" corollary: total recvs decrease
    (weakly, within ``slack`` × total) as PE index grows."""
    recvs = np.asarray(matrix).sum(axis=0).astype(float)
    allowed = slack * recvs.sum()
    return bool(np.all(np.diff(recvs) <= allowed))


@dataclass(frozen=True)
class OverallSummary:
    """Aggregate view of the T_MAIN/T_COMM/T_PROC breakdown."""

    mean_main_frac: float
    mean_comm_frac: float
    mean_proc_frac: float
    max_total_cycles: int
    mean_total_cycles: float

    @classmethod
    def of(cls, profile: OverallProfile) -> "OverallSummary":
        fr = profile.fractions()
        return cls(
            mean_main_frac=float(fr[:, 0].mean()),
            mean_comm_frac=float(fr[:, 1].mean()),
            mean_proc_frac=float(fr[:, 2].mean()),
            max_total_cycles=int(profile.t_total.max()),
            mean_total_cycles=float(profile.t_total.mean()),
        )


@dataclass(frozen=True)
class DistributionComparison:
    """Cyclic-vs-range style comparison of two runs' traces.

    ``*_ratio`` fields are (baseline / contender): values above 1 mean the
    baseline (e.g. 1D Cyclic) is worse, matching the paper's phrasing
    "1D Cyclic performs a maximum of ~6x sends and ~2x recvs".
    """

    max_sends_ratio: float
    max_recvs_ratio: float
    imbalance_sends_ratio: float
    imbalance_recvs_ratio: float

    @classmethod
    def of(
        cls,
        baseline: LogicalTrace | PhysicalTrace,
        contender: LogicalTrace | PhysicalTrace,
    ) -> "DistributionComparison":
        def safe_ratio(a: float, b: float) -> float:
            return float(a / b) if b else float("inf")

        bs, cs = baseline.sends_per_pe(), contender.sends_per_pe()
        br, cr = baseline.recvs_per_pe(), contender.recvs_per_pe()
        return cls(
            max_sends_ratio=safe_ratio(bs.max(), cs.max()),
            max_recvs_ratio=safe_ratio(br.max(), cr.max()),
            imbalance_sends_ratio=safe_ratio(imbalance_ratio(bs), imbalance_ratio(cs)),
            imbalance_recvs_ratio=safe_ratio(imbalance_ratio(br), imbalance_ratio(cr)),
        )
