"""Baseline profilers: what conventional tools see of an FA-BSP run.

Section V-B documents, tool by tool, why well-established profilers
(score-p, TAU, CrayPat, Intel VTune) cannot capture Conveyors traffic:
none of them record OpenSHMEM's *non-blocking* routines
(``shmem_putmem_nbi``), which carry essentially all aggregated payload —
and intra-node buffer movement is a plain ``std::memcpy`` through
``shmem_ptr``, invisible to any API-level interposition.

Two baselines quantify that argument against ActorProf's physical trace:

* :class:`ConventionalProfiler` — models the cited tools: observes the
  blocking OpenSHMEM API surface only (put/get/collectives/quiet), with
  non-blocking puts explicitly excluded, like TAU's
  ``exclude_list.openshmem``.
* :class:`PShmemProfiler` — models the paper's proposed fix ("We may
  create a wrapper function for non-blocking routines"): observes the
  full API including ``shmem_putmem_nbi`` — but still misses the
  ``shmem_ptr`` memcpy path, demonstrating why in-library instrumentation
  (ActorProf's actual design) remains necessary.

Both attach through the runtime's pshmem-style observer interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.shmem.runtime import ShmemCall, ShmemRuntime

#: The blocking OpenSHMEM surface conventional tools wrap.
CONVENTIONAL_VISIBLE_OPS = frozenset({
    "shmem_put",
    "shmem_get",
    "shmem_quiet",
    "shmem_fence",
    "shmem_barrier_all",
})

#: What a PSHMEM wrapper for non-blocking routines adds.
PSHMEM_EXTRA_OPS = frozenset({"shmem_putmem_nbi"})

#: Operations that move payload bytes between PEs (ground truth set).
DATA_MOVING_OPS = frozenset({"shmem_put", "shmem_get", "shmem_putmem_nbi", "memcpy"})


@dataclass
class APIProfile:
    """Per-operation call counts and byte totals seen by a baseline."""

    calls: dict[str, int] = field(default_factory=dict)
    bytes: dict[str, int] = field(default_factory=dict)

    def note(self, call: ShmemCall) -> None:
        self.calls[call.op] = self.calls.get(call.op, 0) + 1
        self.bytes[call.op] = self.bytes.get(call.op, 0) + call.nbytes

    def total_calls(self) -> int:
        return sum(self.calls.values())

    def total_bytes(self) -> int:
        return sum(self.bytes.values())


class _ObserverProfiler:
    """Shared machinery: observe a filtered view of the SHMEM call stream."""

    visible_ops: frozenset[str] = frozenset()

    def __init__(self) -> None:
        self.profile = APIProfile()
        self.ground_truth = APIProfile()
        self._runtime: ShmemRuntime | None = None

    def attach(self, runtime: ShmemRuntime) -> None:
        """Start observing ``runtime``'s SHMEM calls."""
        if self._runtime is not None:
            raise RuntimeError("profiler already attached")
        self._runtime = runtime
        runtime.register_observer(self._observe)

    def detach(self) -> None:
        if self._runtime is not None:
            self._runtime.unregister_observer(self._observe)
            self._runtime = None

    def _observe(self, call: ShmemCall) -> None:
        self.ground_truth.note(call)
        if call.op in self.visible_ops:
            self.profile.note(call)

    # ------------------------------------------------------------------

    def byte_coverage(self) -> float:
        """Fraction of actually-moved payload bytes this tool observed."""
        actual = sum(
            nbytes for op, nbytes in self.ground_truth.bytes.items()
            if op in DATA_MOVING_OPS
        )
        if actual == 0:
            return 1.0
        seen = sum(
            nbytes for op, nbytes in self.profile.bytes.items()
            if op in DATA_MOVING_OPS
        )
        return seen / actual

    def missed_ops(self) -> dict[str, int]:
        """Call counts of data-moving operations this tool never saw."""
        return {
            op: n for op, n in self.ground_truth.calls.items()
            if op in DATA_MOVING_OPS and op not in self.visible_ops and n > 0
        }


class ConventionalProfiler(_ObserverProfiler):
    """score-p / TAU / CrayPat / VTune model: no non-blocking routines."""

    visible_ops = CONVENTIONAL_VISIBLE_OPS


class PShmemProfiler(_ObserverProfiler):
    """The paper's proposed PSHMEM wrapper: non-blocking puts included."""

    visible_ops = CONVENTIONAL_VISIBLE_OPS | PSHMEM_EXTRA_OPS


def coverage_report(conv: ConventionalProfiler, pshmem: PShmemProfiler) -> str:
    """Side-by-side text report of what each baseline observed."""
    lines = ["== API-level profiler coverage (vs. all data movement) =="]
    for name, prof in (("conventional (score-p/TAU/CrayPat/VTune model)", conv),
                       ("PSHMEM wrapper (paper's proposed approach)", pshmem)):
        cov = prof.byte_coverage()
        missed = prof.missed_ops()
        lines.append(f"  {name}:")
        lines.append(f"    payload bytes observed: {cov:.1%}")
        if missed:
            detail = ", ".join(f"{op} x{n:,}" for op, n in sorted(missed.items()))
            lines.append(f"    invisible operations: {detail}")
    lines.append(
        "  conclusion: only in-library instrumentation (ActorProf's "
        "physical trace) sees the shmem_ptr memcpy path."
    )
    return "\n".join(lines)
