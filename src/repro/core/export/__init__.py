"""Trace export formats (paper Section VI future work).

* :mod:`repro.core.export.chrome` — Google Trace Event format (the JSON
  consumed by ``chrome://tracing`` and Perfetto).
* :mod:`repro.core.export.otf` — a simplified Open Trace Format writer
  (OTF1-style definition + event records).
"""

from repro.core.export.chrome import (
    timeline_from_chrome,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.core.export.otf import write_otf

__all__ = [
    "timeline_from_chrome",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_otf",
]
