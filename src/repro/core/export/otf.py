"""Simplified Open Trace Format (OTF) writer.

OTF (Knüpfer et al., ICCS 2006 — the paper's reference [36]) organizes a
trace into a master control file plus per-stream event files, each built
from definition records and timestamped event records.  This writer emits
a faithful-in-structure, human-readable subset:

* ``<name>.otf`` — master file listing streams (one per PE),
* ``<name>.0.def`` — global definitions: timer resolution, processes
  (PEs), process groups (nodes), functions (MAIN/PROC/FINISH), and
  message kinds,
* ``<name>.<pe+1>.events`` — per-PE event stream with ENTER/LEAVE records
  for region spans and SEND records for network operations, sorted by
  timestamp.

Real OTF is a binary/zlib format with a C API; the record *semantics*
(definitions + per-stream timestamped events) are preserved so tests can
parse the output back.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.timeline import TimelineTrace
from repro.machine.spec import MachineSpec

#: Function ids for region records (stable across files).
FUNCTION_IDS = {"MAIN": 1, "PROC": 2, "FINISH": 3}


def write_otf(
    timeline: TimelineTrace,
    spec: MachineSpec,
    directory: str | Path,
    name: str = "actorprof",
    timer_resolution: int = 2_000_000_000,
) -> list[Path]:
    """Write the OTF file set; returns every path written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    # master control file: stream id -> process (PE) mapping
    master = directory / f"{name}.otf"
    with master.open("w") as f:
        for pe in range(spec.n_pes):
            # stream ids are 1-based in OTF; process ids too
            f.write(f"{pe + 1}:{pe + 1}\n")
    written.append(master)

    # global definitions
    defs = directory / f"{name}.0.def"
    with defs.open("w") as f:
        f.write(f"DEFTIMERRESOLUTION {timer_resolution}\n")
        f.write('DEFCREATOR "ActorProf (repro)"\n')
        for node in range(spec.nodes):
            members = " ".join(str(pe + 1) for pe in spec.node_pes(node))
            f.write(f'DEFPROCESSGROUP {node + 1} "node {node}" {members}\n')
        for pe in range(spec.n_pes):
            f.write(f'DEFPROCESS {pe + 1} "PE {pe}"\n')
        f.write('DEFFUNCTIONGROUP 1 "FA-BSP regions"\n')
        for fn, fid in FUNCTION_IDS.items():
            f.write(f'DEFFUNCTION {fid} "{fn}" 1\n')
    written.append(defs)

    # per-PE event streams
    for pe in range(spec.n_pes):
        records: list[tuple[int, int, str]] = []  # (time, order, line)
        for s in timeline.spans(pe):
            fid = FUNCTION_IDS.get(s.region)
            if fid is None:
                continue
            records.append((s.start, 0, f"ENTER {fid} {s.start} {pe + 1}"))
            records.append((s.end, 1, f"LEAVE {fid} {s.end} {pe + 1}"))
        for e in timeline.net_events():
            if e.src != pe:
                continue
            records.append((
                e.time, 2,
                f'SEND {e.time} {e.src + 1} {e.dst + 1} {e.nbytes} "{e.kind}"',
            ))
        records.sort()
        stream = directory / f"{name}.{pe + 1}.events"
        with stream.open("w") as f:
            for _, _, line in records:
                f.write(line + "\n")
        written.append(stream)
    return written


def parse_otf_events(path: str | Path) -> list[tuple]:
    """Parse one ``.events`` stream back into tuples (test helper).

    ENTER/LEAVE → ("ENTER"/"LEAVE", function_id, time, process);
    SEND → ("SEND", time, src, dst, nbytes, kind).
    """
    out: list[tuple] = []
    for line in Path(path).read_text().splitlines():
        parts = line.split()
        if not parts:
            continue
        if parts[0] in ("ENTER", "LEAVE"):
            out.append((parts[0], int(parts[1]), int(parts[2]), int(parts[3])))
        elif parts[0] == "SEND":
            kind = line.split('"')[1]
            out.append(("SEND", int(parts[1]), int(parts[2]), int(parts[3]),
                        int(parts[4]), kind))
        else:
            raise ValueError(f"unknown OTF record: {line!r}")
    return out
