"""Google Trace Event export.

Converts a :class:`~repro.core.timeline.TimelineTrace` into the Trace
Event JSON format (the paper's Section VI cites the Google Trace Events
document as a planned target).  Mapping:

* pid = node, tid = PE (so the viewer groups PE rows under node groups),
* MAIN/PROC/FINISH spans → complete events (``ph: "X"``),
* network operations → instant events (``ph: "i"``) on the source PE,
  plus flow events (``ph: "s"``/``"f"``) connecting local_send /
  nonblock_send source and destination rows,
* timestamps are microseconds: cycles / (clock_ghz × 1000).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.timeline import TimelineTrace
from repro.machine.spec import MachineSpec


def _us(cycles: int, clock_ghz: float) -> float:
    return cycles / (clock_ghz * 1000.0)


def to_chrome_trace(
    timeline: TimelineTrace,
    spec: MachineSpec,
    clock_ghz: float = 2.0,
    include_flows: bool = True,
) -> dict:
    """Build the Trace Event JSON object (as a dict)."""
    if clock_ghz <= 0:
        raise ValueError("clock_ghz must be positive")
    events: list[dict] = []
    # metadata: name the process/thread rows
    for node in range(spec.nodes):
        events.append({
            "name": "process_name", "ph": "M", "pid": node, "tid": 0,
            "args": {"name": f"node {node}"},
        })
    for pe in range(spec.n_pes):
        events.append({
            "name": "thread_name", "ph": "M",
            "pid": spec.node_of(pe), "tid": pe,
            "args": {"name": f"PE {pe}"},
        })
    for span in timeline.spans():
        ev = {
            "name": span.region,
            "cat": "region",
            "ph": "X",
            "ts": _us(span.start, clock_ghz),
            "dur": _us(span.duration, clock_ghz),
            "pid": spec.node_of(span.pe),
            "tid": span.pe,
        }
        if span.mailbox >= 0:
            ev["args"] = {"mailbox": span.mailbox}
        events.append(ev)
    flow_id = 0
    for net in timeline.net_events():
        ts = _us(net.time, clock_ghz)
        events.append({
            "name": net.kind,
            "cat": "network",
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": ts,
            "pid": spec.node_of(net.src),
            "tid": net.src,
            "args": {"dst": net.dst, "bytes": net.nbytes},
        })
        if include_flows and net.kind in ("local_send", "nonblock_send") \
                and net.src != net.dst:
            flow_id += 1
            common = {"cat": "network", "name": net.kind, "id": flow_id}
            events.append({**common, "ph": "s", "ts": ts,
                           "pid": spec.node_of(net.src), "tid": net.src})
            events.append({**common, "ph": "f", "bp": "e", "ts": ts + 0.001,
                           "pid": spec.node_of(net.dst), "tid": net.dst})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "ActorProf (repro)",
            "clock_ghz": clock_ghz,
            "dropped_spans": timeline.dropped_spans,
        },
    }


def timeline_from_chrome(path: str | Path, clock_ghz: float = 2.0) -> tuple[TimelineTrace, MachineSpec]:
    """Reload a Trace Event JSON file back into a timeline.

    Returns (timeline, machine spec).  Only the events this exporter emits
    are understood; flow events are skipped (they duplicate instants).
    """
    obj = json.loads(Path(path).read_text())
    events = obj["traceEvents"]
    ghz = float(obj.get("otherData", {}).get("clock_ghz", clock_ghz))

    def cycles(us: float) -> int:
        return int(round(us * ghz * 1000.0))

    pes = {e["tid"] for e in events if e["ph"] == "X"}
    pes |= {e["tid"] for e in events if e["ph"] == "i"}
    nodes = {e["pid"] for e in events if e["ph"] in ("X", "i")}
    n_pes = (max(pes) + 1) if pes else 1
    n_nodes = (max(nodes) + 1) if nodes else 1
    ppn = n_pes // n_nodes if n_nodes and n_pes % n_nodes == 0 else n_pes
    spec = MachineSpec(max(1, n_pes // max(ppn, 1)), max(ppn, 1))
    tl = TimelineTrace(n_pes)
    for e in events:
        if e["ph"] == "X":
            start = cycles(e["ts"])
            tl.add_span(e["tid"], e["name"], start, start + cycles(e["dur"]),
                        mailbox=e.get("args", {}).get("mailbox", -1))
        elif e["ph"] == "i" and e.get("cat") == "network":
            tl.add_net_event(cycles(e["ts"]), e["name"], e["tid"],
                             e["args"]["dst"], e["args"]["bytes"])
    return tl, spec


def write_chrome_trace(
    timeline: TimelineTrace,
    spec: MachineSpec,
    path: str | Path,
    clock_ghz: float = 2.0,
    include_flows: bool = True,
) -> Path:
    """Write the trace to ``path`` (open it in chrome://tracing/Perfetto)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    obj = to_chrome_trace(timeline, spec, clock_ghz, include_flows)
    path.write_text(json.dumps(obj, indent=None, separators=(",", ":")))
    return path
