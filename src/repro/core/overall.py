"""Overall profiling: the T_MAIN / T_COMM / T_PROC breakdown.

Section III-B: per PE, ActorProf measures with ``rdtsc``

* ``T_MAIN`` — cycles generating messages and appending them to mailboxes
  (the finish body minus send internals),
* ``T_PROC`` — cycles inside user message handlers,
* ``T_COMM`` — **derived** as ``T_TOTAL − T_MAIN − T_PROC``: everything
  Conveyors/OpenSHMEM does, including waiting.

File format (``overall.txt``), two lines per PE::

    Absolute [PE0] TCOMM_PROFILING (t_main, t_comm, t_proc)
    Relative [PE0] TCOMM_PROFILING (m_frac, c_frac, p_frac)
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np


class OverallProfile:
    """Per-PE cycle breakdown accumulated across finish scopes."""

    def __init__(self, n_pes: int) -> None:
        self.n_pes = n_pes
        self.t_main = np.zeros(n_pes, dtype=np.int64)
        self.t_proc = np.zeros(n_pes, dtype=np.int64)
        self.t_total = np.zeros(n_pes, dtype=np.int64)

    # ------------------------------------------------------------------

    def add_main(self, pe: int, cycles: int) -> None:
        self.t_main[pe] += cycles

    def add_proc(self, pe: int, cycles: int) -> None:
        self.t_proc[pe] += cycles

    def add_total(self, pe: int, cycles: int) -> None:
        self.t_total[pe] += cycles

    # ------------------------------------------------------------------

    def t_comm(self) -> np.ndarray:
        """Derived communication cycles: total − main − proc."""
        return self.t_total - self.t_main - self.t_proc

    def absolute(self, pe: int) -> tuple[int, int, int]:
        """(T_MAIN, T_COMM, T_PROC) for one PE."""
        return (
            int(self.t_main[pe]),
            int(self.t_comm()[pe]),
            int(self.t_proc[pe]),
        )

    def relative(self, pe: int) -> tuple[float, float, float]:
        """(T_MAIN, T_COMM, T_PROC) / T_TOTAL for one PE."""
        total = int(self.t_total[pe])
        if total == 0:
            return (0.0, 0.0, 0.0)
        m, c, p = self.absolute(pe)
        return (m / total, c / total, p / total)

    def fractions(self) -> np.ndarray:
        """(n_pes, 3) matrix of relative (MAIN, COMM, PROC) shares."""
        return np.array([self.relative(pe) for pe in range(self.n_pes)])

    # ------------------------------------------------------------------
    # archive adapters (.aptrc columnar store)
    # ------------------------------------------------------------------

    def to_columns(self) -> tuple[dict[str, np.ndarray], dict]:
        """Columnar form for the ``.aptrc`` store: (columns, attrs).

        One row per PE; ``t_comm`` stays derived (total − main − proc),
        so the stored columns are exactly the measured quantities.
        """
        columns = {
            "t_main": self.t_main.copy(),
            "t_proc": self.t_proc.copy(),
            "t_total": self.t_total.copy(),
        }
        return columns, {"n_pes": self.n_pes}

    @classmethod
    def from_columns(cls, columns: dict, attrs: dict) -> "OverallProfile":
        """Rebuild a profile from archive columns (inverse of to_columns)."""
        n_pes = int(attrs["n_pes"])
        prof = cls(n_pes)
        for name in ("t_main", "t_proc", "t_total"):
            col = np.asarray(columns[name], dtype=np.int64)
            if len(col) != n_pes:
                raise ValueError(
                    f"archived overall column {name!r} has {len(col)} "
                    f"entries for n_pes={n_pes}"
                )
            setattr(prof, name, col.copy())
        return prof

    # ------------------------------------------------------------------

    def write(self, directory: str | Path) -> Path:
        """Write ``overall.txt``; returns its path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "overall.txt"
        with path.open("w") as f:
            for pe in range(self.n_pes):
                m, c, p = self.absolute(pe)
                f.write(f"Absolute [PE{pe}] TCOMM_PROFILING ({m}, {c}, {p})\n")
                rm, rc, rp = self.relative(pe)
                f.write(
                    f"Relative [PE{pe}] TCOMM_PROFILING "
                    f"({rm:.6f}, {rc:.6f}, {rp:.6f})\n"
                )
        return path


_ABS_RE = re.compile(
    r"Absolute \[PE(\d+)\] TCOMM_PROFILING \((-?\d+), (-?\d+), (-?\d+)\)"
)


def parse_overall_file(path: str | Path) -> OverallProfile:
    """Parse an ``overall.txt`` back into an :class:`OverallProfile`.

    Only absolute lines are needed; relative lines are re-derivable.
    """
    path = Path(path)
    if path.is_dir():
        path = path / "overall.txt"
    rows: dict[int, tuple[int, int, int]] = {}
    with path.open() as f:
        for line in f:
            m = _ABS_RE.match(line.strip())
            if m:
                pe, tm, tc, tp = (int(g) for g in m.groups())
                rows[pe] = (tm, tc, tp)
    if not rows:
        raise ValueError(f"no absolute TCOMM_PROFILING lines found in {path}")
    n_pes = max(rows) + 1
    prof = OverallProfile(n_pes)
    for pe, (tm, tc, tp) in rows.items():
        prof.t_main[pe] = tm
        prof.t_proc[pe] = tp
        prof.t_total[pe] = tm + tc + tp
    return prof
