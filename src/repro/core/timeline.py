"""Timeline trace: timestamped region spans and network events.

The paper's future work (Section VI) plans "the adoption of OTF and
Google Trace Events format".  This module provides the substrate: a
per-PE timeline of

* **region spans** — every MAIN and PROC interval with rdtsc start/end
  (COMM is the gap between them, as always),
* **network events** — every instrumented Conveyors operation with its
  issue timestamp, endpoints and buffer size,
* **finish markers** — the enclosing finish scopes.

Exporters for the two formats live in :mod:`repro.core.export`.

Timeline collection is optional (``ProfileFlags.enable_timeline``): at one
span per region instance the trace grows with message-handler count, which
is exactly the trace-size problem the paper's Section VI discusses —
``max_spans_per_pe`` bounds it by dropping the tail (with a counter, so
consumers know truncation happened).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Span:
    """A closed region interval on one PE (cycles)."""

    pe: int
    region: str  # "MAIN" | "PROC" | "FINISH"
    start: int
    end: int
    mailbox: int = -1

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class NetEvent:
    """One instrumented Conveyors operation with its issue time."""

    time: int
    kind: str  # local_send | nonblock_send | nonblock_progress
    src: int
    dst: int
    nbytes: int


class TimelineTrace:
    """Per-PE timestamped trace of one run."""

    def __init__(self, n_pes: int, max_spans_per_pe: int = 100_000) -> None:
        if max_spans_per_pe < 1:
            raise ValueError("max_spans_per_pe must be positive")
        self.n_pes = n_pes
        self.max_spans_per_pe = max_spans_per_pe
        self._spans: list[list[Span]] = [[] for _ in range(n_pes)]
        self._net: list[NetEvent] = []
        self.dropped_spans = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def add_span(self, pe: int, region: str, start: int, end: int,
                 mailbox: int = -1) -> None:
        """Record a closed region interval."""
        if end < start:
            raise ValueError(f"span ends before it starts: [{start}, {end})")
        bucket = self._spans[pe]
        if len(bucket) >= self.max_spans_per_pe:
            self.dropped_spans += 1
            return
        bucket.append(Span(pe, region, start, end, mailbox))

    def add_net_event(self, time: int, kind: str, src: int, dst: int,
                      nbytes: int) -> None:
        """Record one network operation."""
        self._net.append(NetEvent(time, kind, src, dst, nbytes))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def spans(self, pe: int | None = None, region: str | None = None) -> list[Span]:
        """Spans of one PE (or all), optionally filtered by region."""
        if pe is None:
            out = [s for bucket in self._spans for s in bucket]
        else:
            out = list(self._spans[pe])
        if region is not None:
            out = [s for s in out if s.region == region]
        return out

    def net_events(self, kind: str | None = None) -> list[NetEvent]:
        if kind is None:
            return list(self._net)
        return [e for e in self._net if e.kind == kind]

    def span_count(self) -> int:
        return sum(len(b) for b in self._spans)

    def end_time(self) -> int:
        """Latest timestamp anywhere in the timeline."""
        last_span = max((s.end for b in self._spans for s in b), default=0)
        last_net = max((e.time for e in self._net), default=0)
        return max(last_span, last_net)

    def region_totals(self, region: str) -> np.ndarray:
        """Total cycles per PE spent in ``region`` spans."""
        out = np.zeros(self.n_pes, dtype=np.int64)
        for pe, bucket in enumerate(self._spans):
            out[pe] = sum(s.duration for s in bucket if s.region == region)
        return out

    def utilization(self, pe: int, bucket_cycles: int) -> np.ndarray:
        """Fraction of each time bucket covered by MAIN+PROC spans.

        A simple occupancy profile — the "CPU utilization over time" view
        that tools like Legion Prof display.
        """
        if bucket_cycles < 1:
            raise ValueError("bucket_cycles must be positive")
        horizon = self.end_time()
        n_buckets = max(1, -(-horizon // bucket_cycles))
        busy = np.zeros(n_buckets, dtype=np.float64)
        for s in self._spans[pe]:
            if s.region not in ("MAIN", "PROC"):
                continue
            b0 = s.start // bucket_cycles
            b1 = s.end // bucket_cycles
            for b in range(b0, min(b1, n_buckets - 1) + 1):
                lo = max(s.start, b * bucket_cycles)
                hi = min(s.end, (b + 1) * bucket_cycles)
                busy[b] += max(0, hi - lo)
        return busy / bucket_cycles
