"""A small declarative query language over ActorProf traces.

The paper's Section VI points at declarative approaches (citing DIVA) as
a way to interrogate profiles without bespoke scripts.  This module
implements a compact SQL-ish language evaluated over the logical and
physical traces::

    sends                                  → total message count
    sends where src == 0                   → PE0's sends
    sends where src == 0 group by dst      → (dst, count) pairs, desc
    bytes where kind == nonblock_send group by src top 5
    ops where src_node != dst_node         → inter-node operations

Grammar
-------
::

    query   := metric [ "where" cond ( "and" cond )* ]
                      [ "group" "by" field ] [ "top" N ]
    metric  := "sends" | "bytes" | "ops"
    cond    := field op value
    field   := "src" | "dst" | "size" | "kind" | "src_node" | "dst_node"
    op      := "==" | "!=" | "<" | "<=" | ">" | ">="
    value   := integer (possibly negative) | field | send-type name

Tokenization is total: every character of the query must belong to a
token (or be whitespace), and anything else — stray punctuation, a
typo'd operator — raises :class:`QueryError` naming the character and
its column instead of silently re-interpreting the rest of the query.

``sends`` counts messages/operations, ``bytes`` sums payload/buffer
bytes, ``ops`` is an alias of ``sends`` reading naturally for physical
traces.  ``kind`` only exists on physical traces and compares against
send-type *names* (``kind == local_send``); comparing it against
integers or other fields is rejected at parse time — the name-vs-code
representation differs between in-memory traces and archives, so such
comparisons could not mean the same thing on both.  ``top N`` only
ranks ``group by`` output; without a ``group by`` it is meaningless and
is normalized away, so ``sends top 5`` and ``sends`` share one
canonical spelling (and one cache key).

Evaluation works on the aggregated in-memory representation — no row
expansion, so it is cheap even for billion-send traces.  Node fields
(``src_node``/``dst_node``) need the machine layout; traces that do not
carry one (e.g. a bare ``PhysicalTrace(n_pes)``) raise a clear
:class:`QueryError`.

Queries also run directly against ``.aptrc`` archives without
materializing a trace object: pass an archive
:class:`~repro.core.store.archive.Section` and evaluation rides the
columnar :class:`~repro.core.store.frame.Frame` — untouched columns
(and sections) are never read from disk, footer chunk stats prune row
groups that cannot match the conditions, and un-predicated aggregates
are answered from footer sums with zero payload decode::

    with Archive("run.aptrc") as a:
        query_trace(a.section("logical"), "sends where src == 0 group by dst")

Pass ``pushdown=False`` to force the full-decode path (identical
results; used by the differential tests and benchmarks).
"""

from __future__ import annotations

import operator
import re
from dataclasses import dataclass

import numpy as np

from repro.core.logical import LogicalTrace
from repro.core.physical import PhysicalTrace
from repro.core.store.archive import Archive, Section
from repro.core.store.frame import Frame, group_sum

_METRICS = ("sends", "bytes", "ops")
_FIELDS = ("src", "dst", "size", "kind", "src_node", "dst_node")
_NODE_FIELDS = ("src_node", "dst_node")
_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_TOKEN_RE = re.compile(
    r"\s+"                          # whitespace (skipped)
    r"|==|!=|<=|>=|<|>"             # comparison operators
    r"|[A-Za-z_][A-Za-z_0-9]*"      # keywords, fields, send-type names
    r"|-?\d+"                       # integer literals, negative included
)
_INT_RE = re.compile(r"-?\d+")


class QueryError(ValueError):
    """Raised for syntax or semantic errors in a trace query."""


def _tokenize(text: str) -> list[str]:
    """Split ``text`` into tokens, accounting for every character.

    Unlike ``findall`` — which silently skips anything it cannot match,
    so a stray ``@`` or ``$`` would quietly change the query's meaning —
    this scans with position tracking and rejects the first character
    that belongs to no token.
    """
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise QueryError(
                f"unexpected character {text[pos]!r} at column {pos + 1} "
                f"of query {text!r}"
            )
        if not m.group().isspace():
            tokens.append(m.group())
        pos = m.end()
    return tokens


@dataclass(frozen=True)
class FieldRef:
    """A field used on the right-hand side of a condition."""

    name: str


@dataclass(frozen=True)
class Condition:
    field: str
    op: str
    value: int | str | FieldRef

    def matches(self, row: dict) -> bool:
        if self.field not in row:
            raise QueryError(
                f"field {self.field!r} does not exist on this trace "
                f"(have {sorted(row)})"
            )
        rhs = self.value
        if isinstance(rhs, FieldRef):
            if rhs.name not in row:
                raise QueryError(
                    f"field {rhs.name!r} does not exist on this trace "
                    f"(have {sorted(row)})"
                )
            rhs = row[rhs.name]
        return _OPS[self.op](row[self.field], rhs)


@dataclass(frozen=True)
class Query:
    metric: str
    conditions: tuple[Condition, ...] = ()
    group_by: str | None = None
    top: int | None = None

    def canonical(self) -> str:
        """Render the query back to its one canonical spelling.

        Every equivalent surface form — extra whitespace, metric/field
        case, a ``top`` with no ``group by`` —
        parses to the same :class:`Query` and therefore renders to the
        same string, which is what makes the text usable as a cache-key
        component (see :func:`normalize`).
        """
        parts = [self.metric]
        if self.conditions:
            rendered = []
            for c in self.conditions:
                value = (c.value.name if isinstance(c.value, FieldRef)
                         else str(c.value))
                rendered.append(f"{c.field} {c.op} {value}")
            parts.append("where " + " and ".join(rendered))
        if self.group_by is not None:
            parts.append(f"group by {self.group_by}")
        if self.top is not None:
            parts.append(f"top {self.top}")
        return " ".join(parts)


def parse(text: str) -> Query:
    """Parse a query string (see module grammar)."""
    tokens = _tokenize(text)
    if not tokens:
        raise QueryError("empty query")
    pos = 0

    def peek() -> str | None:
        return tokens[pos] if pos < len(tokens) else None

    def peek_kw() -> str | None:
        """Next token lowercased — keywords are case-insensitive."""
        tok = peek()
        return tok.lower() if tok is not None else None

    def take() -> str:
        nonlocal pos
        if pos >= len(tokens):  # "sends where" used to IndexError here
            raise QueryError(f"query ended unexpectedly: {text!r}")
        tok = tokens[pos]
        pos += 1
        return tok

    metric = take().lower()
    if metric not in _METRICS:
        raise QueryError(f"unknown metric {metric!r}; want one of {_METRICS}")
    conditions: list[Condition] = []
    group_by: str | None = None
    top: int | None = None
    if peek_kw() == "where":
        take()
        while True:
            fld = take().lower()
            if fld not in _FIELDS:
                raise QueryError(f"unknown field {fld!r}; want one of {_FIELDS}")
            if peek() not in _OPS:
                raise QueryError(f"expected comparison after {fld!r}, got {peek()!r}")
            op = take()
            if peek() is None:
                raise QueryError("missing value in condition")
            raw = take()
            value: int | str | FieldRef
            if _INT_RE.fullmatch(raw):
                value = int(raw)
            elif raw.lower() in _FIELDS:
                value = FieldRef(raw.lower())  # field-to-field comparison
            else:
                value = raw
            if fld == "kind" or (isinstance(value, FieldRef)
                                 and value.name == "kind"):
                # kind is a string in memory but a code on disk, so only
                # name comparisons mean the same thing on both paths
                if not isinstance(value, str):
                    raise QueryError(
                        "kind compares against send-type names "
                        "(e.g. kind == local_send), not integers or fields"
                    )
            elif isinstance(value, str):
                raise QueryError(f"field {fld!r} compares against integers "
                                 "or other fields")
            if fld == "kind" and op not in ("==", "!="):
                raise QueryError("kind supports only == and !=")
            conditions.append(Condition(fld, op, value))
            if peek_kw() == "and":
                take()
                continue
            break
    if peek_kw() == "group":
        take()
        if peek_kw() != "by":
            raise QueryError('expected "by" after "group"')
        take()
        fld = take().lower()
        if fld not in _FIELDS:
            raise QueryError(f"cannot group by {fld!r}")
        group_by = fld
    if peek_kw() == "top":
        take()
        raw = peek()
        if raw is None or not raw.isdigit():
            raise QueryError('"top" needs a positive integer')
        take()
        top = int(raw)
        if top < 1:
            raise QueryError('"top" needs a positive integer')
    if peek() is not None:
        raise QueryError(f"unexpected trailing token {peek()!r}")
    if group_by is None:
        top = None  # `top` without `group by` ranks nothing; drop it
    return Query(metric, tuple(conditions), group_by, top)


def normalize(text: str) -> str:
    """The canonical spelling of a query (parse, then re-render).

    The serve layer's artifact store keys cached query results on
    ``(archive fingerprint, section, normalize(query))`` so cosmetic
    variants — ``"sends  where src==0"`` vs ``"sends where src == 0"``,
    or a no-op ``top`` without ``group by`` — hit the same entry.
    Raises :class:`QueryError` for any query that would not evaluate.
    """
    return parse(text).canonical()


def _check_fields(q: Query, available: set[str]) -> None:
    """Reject references to fields this trace cannot answer, up front.

    Doing this before evaluation keeps empty traces, in-memory traces,
    and archives consistent — a row-walk over zero rows would otherwise
    accept any field name.
    """
    names = []
    for c in q.conditions:
        names.append(c.field)
        if isinstance(c.value, FieldRef):
            names.append(c.value.name)
    if q.group_by is not None:
        names.append(q.group_by)
    for name in names:
        if name in available:
            continue
        if name in _NODE_FIELDS:
            raise QueryError(
                f"field {name!r} needs node info (pes_per_node), "
                "which this trace does not carry"
            )
        raise QueryError(
            f"field {name!r} does not exist on this trace "
            f"(have {sorted(available)})"
        )


def _logical_rows(trace: LogicalTrace):
    spec = trace.spec
    for src, counts in enumerate(trace._counts):
        for (dst, size), n in counts.items():
            yield {
                "src": src,
                "dst": dst,
                "size": size,
                "src_node": spec.node_of(src),
                "dst_node": spec.node_of(dst),
            }, n, n * size


def _physical_rows(trace: PhysicalTrace):
    spec = trace.spec
    for (kind, nbytes, src, dst), n in trace._counts.items():
        row = {
            "src": src,
            "dst": dst,
            "size": nbytes,
            "kind": kind,
        }
        if spec is not None:
            row["src_node"] = spec.node_of(src)
            row["dst_node"] = spec.node_of(dst)
        yield row, n, n * nbytes


def _archive_eval(section: Section, q: Query, pushdown: bool = True):
    """Vectorized evaluation over an archive section.

    Only the columns the query actually references are decoded: the
    ``count`` column always (it carries the aggregation weights),
    ``size`` additionally for the ``bytes`` metric, plus whatever the
    conditions and ``group by`` name.  Node fields are derived from
    ``src``/``dst`` and the section's ``pes_per_node`` attr.

    With ``pushdown`` (the default) the footer's per-chunk stats do two
    jobs first: row groups whose ``[min, max]`` intervals cannot satisfy
    the condition conjunction are skipped without touching their bytes,
    and un-predicated ungrouped aggregates are answered from the footer
    sums with no payload decode at all.  Archives written without stats
    take the full-decode path and return identical results.
    """
    send_types = [str(s) for s in section.attrs.get("send_types", ())]
    ppn = section.attrs.get("pes_per_node")
    available = set(section.columns) - {"count"}
    if ppn:
        available |= set(_NODE_FIELDS)
    _check_fields(q, available)

    def kind_code(name: str) -> int:
        # unknown names match no row (so `kind != typo` matches
        # everything, as in-memory)
        return send_types.index(name) if name in send_types else -1

    frame = Frame(section, use_stats=pushdown)
    for cond in q.conditions:
        rhs = cond.value
        if isinstance(rhs, FieldRef):
            continue  # field-to-field: no per-chunk interval to test
        if cond.field in _NODE_FIELDS:
            frame.prune(cond.field[:3], cond.op, int(rhs), divisor=int(ppn))
        elif cond.field == "kind":
            frame.prune("kind", cond.op, kind_code(rhs))
        else:
            frame.prune(cond.field, cond.op, int(rhs))

    if not q.conditions and q.group_by is None:
        total = (frame.weighted_total() if q.metric == "bytes"
                 else frame.total("count"))
        if total is not None:
            return total  # answered from footer sums: zero bytes decoded

    def field_values(name: str) -> np.ndarray:
        if name in _NODE_FIELDS:
            return frame.column(name[:3]) // int(ppn)
        return frame.column(name)

    mask: np.ndarray | None = None
    for cond in q.conditions:
        lhs = field_values(cond.field)
        rhs = cond.value
        if isinstance(rhs, FieldRef):
            rhs = field_values(rhs.name)
        elif cond.field == "kind":
            rhs = kind_code(rhs)
        hit = _OPS[cond.op](lhs, rhs)
        mask = hit if mask is None else (mask & hit)

    weights = frame.column("count")
    if q.metric == "bytes":
        weights = weights * frame.column("size")

    if q.group_by is None:
        if mask is not None:
            weights = weights * mask  # zero non-matches; no gather copy
        return int(weights.sum())
    uniq, sums = group_sum(field_values(q.group_by), weights, mask=mask)
    if q.group_by == "kind":
        labels = [send_types[k] if 0 <= k < len(send_types) else int(k)
                  for k in uniq.tolist()]
    else:
        labels = uniq.tolist()
    ranked = sorted(zip(labels, sums.tolist()),
                    key=lambda kv: (-kv[1], str(kv[0])))
    return ranked[: q.top] if q.top is not None else ranked


def query_trace(trace: LogicalTrace | PhysicalTrace | Section, text: str,
                *, pushdown: bool = True):
    """Evaluate ``text`` over a trace (or an archive section).

    Returns an int for plain aggregations, or a list of
    ``(group_value, amount)`` pairs sorted by amount (descending) for
    ``group by`` queries.  ``pushdown`` (archive sections only) enables
    chunk-stat pruning and footer-sum fast paths; disabling it forces
    full column decoding — results are identical.

    The supported entry points are this function and
    :meth:`repro.api.Run.query`; :func:`run_query` is the deprecated
    legacy spelling.
    """
    q = parse(text)
    if isinstance(trace, Section):
        return _archive_eval(trace, q, pushdown=pushdown)
    if isinstance(trace, Archive):
        raise QueryError(
            "pass a section, e.g. archive.section('logical') or "
            "archive.section('physical')"
        )
    if isinstance(trace, LogicalTrace):
        available = {"src", "dst", "size", "src_node", "dst_node"}
        rows = _logical_rows(trace)
    elif isinstance(trace, PhysicalTrace):
        available = {"src", "dst", "size", "kind"}
        if trace.spec is not None:
            available |= set(_NODE_FIELDS)
        rows = _physical_rows(trace)
    else:
        raise QueryError(f"cannot query a {type(trace).__name__}")
    _check_fields(q, available)
    groups: dict = {}
    total = 0
    for row, count, nbytes in rows:
        if not all(c.matches(row) for c in q.conditions):
            continue
        amount = nbytes if q.metric == "bytes" else count
        if q.group_by is None:
            total += amount
        else:
            key = row[q.group_by]
            groups[key] = groups.get(key, 0) + amount
    if q.group_by is None:
        return total
    ranked = sorted(groups.items(), key=lambda kv: (-kv[1], str(kv[0])))
    return ranked[: q.top] if q.top is not None else ranked


def run_query(trace: LogicalTrace | PhysicalTrace | Section, text: str,
              *, pushdown: bool = True):
    """Deprecated alias of :func:`query_trace`.

    Use :meth:`repro.api.Run.query` (or :func:`query_trace` for bare
    trace objects) instead.
    """
    import warnings

    warnings.warn(
        "run_query() is deprecated; use repro.api.open_run(...).query() "
        "or repro.core.query.query_trace()",
        DeprecationWarning, stacklevel=2,
    )
    return query_trace(trace, text, pushdown=pushdown)
