"""Hotspot identification and performance modelling over traces.

The paper's Section VI names "intelligent sampling of traces and
identifying hotspots using performance modeling" as an alternative lens on
FA-BSP executions.  This module implements that lens over the traces
ActorProf already collects:

* **straggler detection** — PEs whose total cycles (or user-region work)
  sit far above the mean,
* **hot communication pairs** — the (source, destination) pairs carrying
  the most messages, CrayPat-mosaic style,
* **a balance model** — how much faster the run would be if the measured
  per-PE work were spread evenly (the upper bound a better distribution
  could reach),
* **advice** — the textual suggestions the paper describes ActorProf
  giving ("experiment with data-distributions", "exploit more overlap").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import imbalance_ratio
from repro.core.logical import LogicalTrace
from repro.core.overall import OverallProfile


@dataclass(frozen=True)
class Straggler:
    """A PE far above the mean on some load metric."""

    pe: int
    value: int
    ratio_to_mean: float


def find_stragglers(values: np.ndarray, threshold: float = 1.5) -> list[Straggler]:
    """PEs whose value exceeds ``threshold`` × mean, sorted worst-first."""
    values = np.asarray(values)
    if values.size == 0:
        return []
    mean = float(values.mean())
    if mean <= 0:
        return []
    out = [
        Straggler(pe=int(i), value=int(values[i]),
                  ratio_to_mean=float(values[i] / mean))
        for i in np.flatnonzero(values > threshold * mean)
    ]
    return sorted(out, key=lambda s: -s.ratio_to_mean)


@dataclass(frozen=True)
class HotPair:
    """One heavy communication pair."""

    src: int
    dst: int
    messages: int
    share: float


def top_pairs(trace: LogicalTrace, k: int = 10) -> list[HotPair]:
    """The ``k`` heaviest (src, dst) pairs with their traffic share."""
    if k < 1:
        raise ValueError("k must be >= 1")
    m = trace.matrix()
    total = int(m.sum())
    if total == 0:
        return []
    flat = m.ravel()
    order = np.argsort(flat)[::-1][:k]
    n = m.shape[0]
    return [
        HotPair(src=int(i // n), dst=int(i % n), messages=int(flat[i]),
                share=float(flat[i] / total))
        for i in order
        if flat[i] > 0
    ]


@dataclass(frozen=True)
class BalanceModel:
    """Perfect-balance performance model.

    ``t_actual`` is the measured makespan (max per-PE total cycles);
    ``t_balanced`` models spreading each region's *work* evenly:
    critical work = mean(MAIN) + mean(PROC) + max residual COMM that is
    genuine per-PE communication cost rather than waiting (approximated
    by the minimum COMM across PEs, which contains the least waiting).
    """

    t_actual: int
    t_balanced: float
    potential_speedup: float
    dominant_region: str


def balance_model(profile: OverallProfile) -> BalanceModel:
    """Estimate the speedup available from perfect load balance."""
    t_actual = int(profile.t_total.max())
    mean_main = float(profile.t_main.mean())
    mean_proc = float(profile.t_proc.mean())
    comm = profile.t_comm()
    base_comm = float(comm.min())  # least-waiting PE ≈ true comm cost
    t_balanced = mean_main + mean_proc + base_comm
    speedup = t_actual / t_balanced if t_balanced > 0 else 1.0
    fracs = {
        "MAIN": mean_main,
        "PROC": mean_proc,
        "COMM": float(comm.mean()),
    }
    dominant = max(fracs, key=fracs.get)
    return BalanceModel(
        t_actual=t_actual,
        t_balanced=t_balanced,
        potential_speedup=speedup,
        dominant_region=dominant,
    )


def advise(
    overall: OverallProfile | None = None,
    logical: LogicalTrace | None = None,
    threshold: float = 1.5,
) -> list[str]:
    """Generate the paper-style textual guidance from whatever traces exist."""
    tips: list[str] = []
    if logical is not None:
        send_imb = imbalance_ratio(logical.sends_per_pe())
        recv_imb = imbalance_ratio(logical.recvs_per_pe())
        if send_imb > threshold:
            worst = find_stragglers(logical.sends_per_pe(), threshold)[:1]
            who = f" (PE{worst[0].pe} sends {worst[0].ratio_to_mean:.1f}x the mean)" if worst else ""
            tips.append(
                "send load is imbalanced"
                f"{who}: experiment with data distributions "
                "(e.g. 1D Range, Edge Cut, Cartesian Vertex-Cut)"
            )
        if recv_imb > threshold:
            tips.append(
                "recv load is imbalanced: a send-balancing distribution "
                "alone will not remove it — consider partitioning by "
                "destination work"
            )
    if overall is not None:
        model = balance_model(overall)
        fr = overall.fractions()
        if model.dominant_region == "COMM":
            tips.append(
                "execution is COMM-bound: exploit more overlap between "
                "computation and communication, or aggregate more "
                "(larger conveyor buffers)"
            )
        if fr[:, 0].mean() > 0.3:
            tips.append("MAIN dominates: optimize message construction "
                        "and local computation in the finish body")
        if fr[:, 2].mean() > 0.3:
            tips.append("PROC dominates: optimize the message handlers")
        if model.potential_speedup > threshold:
            tips.append(
                f"perfect balance would be ~{model.potential_speedup:.1f}x "
                "faster: the distribution, not the code, is the bottleneck"
            )
    if not tips:
        tips.append("no obvious bottleneck: load is balanced and no single "
                    "region dominates")
    return tips
