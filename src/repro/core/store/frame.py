"""Columnar frame: pruned, lazy, vectorized access to archive sections.

A :class:`Frame` wraps one archive
:class:`~repro.core.store.archive.Section` and exposes the two tricks
that make multi-million-row scans cheap:

* **chunk pruning** — the footer's per-chunk ``(min, max, sum)`` stats
  (see ``docs/TRACE_STORE.md``) let a predicate like ``src == 7`` drop
  every row group whose ``[min, max]`` interval cannot contain a match,
  before any payload byte is read;
* **stats-only aggregation** — un-predicated sums (``sends``, ``bytes``)
  are answered straight from the footer sums, decoding nothing at all.

Both the query layer (:mod:`repro.core.query`) and archive-vs-archive
diffing (:mod:`repro.core.diffing`) sit on this frame, so neither
materializes full trace objects.  Archives written before the stats
extension (or with stats disabled) degrade gracefully: pruning becomes a
no-op and every read falls back to full column decoding — results are
identical either way.
"""

from __future__ import annotations

import numpy as np

from repro.core.store.archive import Section


def interval_may_match(lo: int, hi: int, op: str, value: int) -> bool:
    """Can any ``x`` in ``[lo, hi]`` satisfy ``x <op> value``?

    Conservative in exactly one direction: ``True`` means "cannot rule
    the chunk out", never "every row matches".
    """
    if op == "==":
        return lo <= value <= hi
    if op == "!=":
        return not (lo == hi == value)
    if op == "<":
        return lo < value
    if op == "<=":
        return lo <= value
    if op == ">":
        return hi > value
    if op == ">=":
        return hi >= value
    raise ValueError(f"unknown comparison operator {op!r}")


class Frame:
    """Lazy pruned view of one archive section's row groups."""

    def __init__(self, section: Section, use_stats: bool = True) -> None:
        self._section = section
        self.n_chunks = section.n_chunks
        #: Which row groups survive pruning so far.
        self.keep = np.ones(self.n_chunks, dtype=bool)
        # Pruning is only sound when every column shares the same row
        # grouping (writers guarantee this; hand-built archives might not).
        self.use_stats = bool(use_stats) and section.chunks_aligned
        self._cache: dict[str, np.ndarray] = {}

    # -- stats access ----------------------------------------------------

    def _stats(self, name: str) -> list[tuple[int, int, int]] | None:
        """Per-chunk ``(min, max, sum)`` of one column, or None if any
        chunk predates the stats extension."""
        if not self.use_stats:
            return None
        stats = [ref.stats for ref in self._section.chunk_refs(name)]
        if any(s is None for s in stats):
            return None
        return stats

    # -- pruning ---------------------------------------------------------

    def prune(self, name: str, op: str, value: int,
              divisor: int | None = None) -> bool:
        """Drop row groups where ``column <op> value`` cannot hold.

        ``divisor`` prunes on ``column // divisor`` (node-of-PE fields):
        floor division is monotone, so the divided bounds still bound the
        divided values.  Returns True when stats allowed pruning (even if
        nothing was dropped), False when the frame fell back to keeping
        everything.
        """
        stats = self._stats(name)
        if stats is None:
            return False
        for i, (lo, hi, _total) in enumerate(stats):
            if not self.keep[i]:
                continue
            if divisor is not None:
                lo, hi = lo // divisor, hi // divisor
            if not interval_may_match(lo, hi, op, value):
                self.keep[i] = False
        self._cache.clear()
        return True

    # -- column access ---------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """The column's values across surviving row groups (int64)."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        if bool(self.keep.all()):
            out = self._section.column(name)
        else:
            parts = [self._section.read_chunk(name, i)
                     for i in np.flatnonzero(self.keep)]
            out = (np.concatenate(parts) if parts
                   else np.zeros(0, dtype=np.int64))
        self._cache[name] = out
        return out

    @property
    def rows(self) -> int:
        """Row count across surviving row groups (stats not needed)."""
        if bool(self.keep.all()):
            return self._section.rows
        counts = [ref.count for ref in
                  self._section.chunk_refs(self._section.columns[0])]
        return int(sum(c for c, k in zip(counts, self.keep) if k))

    # -- stats-only aggregation ------------------------------------------

    def total(self, name: str) -> int | None:
        """Sum of one column over surviving row groups, from footer stats
        alone (no payload decode); None when stats are unavailable."""
        stats = self._stats(name)
        if stats is None:
            return None
        return int(sum(s[2] for s, k in zip(stats, self.keep) if k))

    def weighted_total(self) -> int | None:
        """Sum of ``count * size`` over surviving row groups, from the
        footer's ``chunk_bytes`` sums; None when the writer did not
        record them."""
        if not self.use_stats:
            return None
        weighted = self._section.chunk_bytes
        if weighted is None or len(weighted) != self.n_chunks:
            return None
        return int(sum(w for w, k in zip(weighted, self.keep) if k))


# ----------------------------------------------------------------------
# vectorized aggregation helpers
# ----------------------------------------------------------------------

def _bincount_exact(indices: np.ndarray, weights: np.ndarray,
                    length: int) -> np.ndarray | None:
    """Weighted bincount, or None when float64 accumulation could be
    inexact.  ``np.bincount`` sums weights in float64, which represents
    every integer up to 2**53 — bounding each bucket by
    ``len * max|weight|`` guarantees exactness without trusting floats.
    ``np.add.at`` (the alternative) is an order of magnitude slower, so
    this fast path carries the multi-million-row aggregations."""
    if len(weights) == 0:
        return np.zeros(length, dtype=np.int64)
    peak = max(abs(int(weights.min())), abs(int(weights.max())))
    if peak * len(weights) >= 2 ** 53:
        return None
    return np.bincount(indices, weights=weights,
                       minlength=length).astype(np.int64)


def group_sum(keys: np.ndarray, weights: np.ndarray,
              mask: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``weights`` per distinct key; returns ``(unique_keys, sums)``.

    ``mask`` (boolean) restricts to matching rows — applied by zeroing
    weights rather than gathering, which avoids two large copies.  Keys
    of dense-enough span take a bincount; anything else falls back to
    sort-based grouping (``np.unique`` + ``np.add.at``).
    """
    keys = np.asarray(keys)
    weights = np.asarray(weights, dtype=np.int64)
    if mask is not None:
        weights = weights * mask
    if len(keys) == 0:
        return keys[:0], weights[:0]
    lo, hi = int(keys.min()), int(keys.max())
    span = hi - lo + 1
    if span <= max(1 << 20, 4 * len(keys)):
        shifted = keys - lo
        sums = _bincount_exact(shifted, weights, span)
        if sums is not None:
            if mask is None:
                occupied = np.bincount(shifted, minlength=span) > 0
            else:
                occupied = np.bincount(
                    shifted, weights=mask, minlength=span) > 0
            present = np.flatnonzero(occupied)
            return present + lo, sums[present]
    if mask is not None:
        keys = keys[mask]
        weights = weights[mask]
    uniq, inverse = np.unique(keys, return_inverse=True)
    sums = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(sums, inverse, weights)
    return uniq, sums


def scatter_matrix(rows: np.ndarray, cols: np.ndarray, weights: np.ndarray,
                   shape: tuple[int, int]) -> np.ndarray:
    """Accumulate ``weights`` into a dense ``shape`` matrix at
    ``(rows[i], cols[i])`` — duplicate coordinates sum, which is exactly
    how streamed partial aggregates merge."""
    weights = np.asarray(weights, dtype=np.int64)
    flat = np.asarray(rows, dtype=np.int64) * shape[1] \
        + np.asarray(cols, dtype=np.int64)
    m = _bincount_exact(flat, weights, shape[0] * shape[1])
    if m is not None:
        return m.reshape(shape)
    m = np.zeros(shape, dtype=np.int64)
    np.add.at(m, (rows, cols), weights)
    return m
