"""Writing ``.aptrc`` archives: one-shot export and streaming spill.

:class:`ArchiveWriter` is the low-level append-only writer: sections are
declared with a fixed column set, then filled with one or more *chunks*
(each chunk is encoded and flushed to disk immediately), and the footer
index is written on :meth:`~ArchiveWriter.close`.

:func:`export_run` is the one-shot path: hand it in-memory trace objects
and it writes each as a single-chunk section.

:class:`TraceArchiver` is the streaming path the paper's Section VI
trace-size problem calls for: it decorates a profiler exactly like
:class:`~repro.core.live.LiveMonitor` does, accumulates *partial*
aggregates of the logical and physical traces, and spills them to the
archive every ``spill_every`` events — so a billion-send run never holds
the full trace in memory.  Readers merge the partial aggregates back
together (duplicate keys sum), producing traces identical to in-memory
recording.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

import numpy as np

from repro.conveyors.hooks import SEND_TYPES
from repro.core.store.archive import (
    FORMAT_VERSION,
    MAGIC,
    TAIL_MAGIC,
    TRAILER,
    ArchiveError,
)
from repro.core.store.codec import encode_column

#: Process-wide default for recording per-chunk stats (min/max/sum and
#: the count×size weighted sums) in the footer.  The stats feed query
#: pushdown (`docs/TRACE_STORE.md`); flip off to write archives in the
#: pre-stats footer layout (byte-identical to older writers).
WRITE_CHUNK_STATS = True


class SectionWriter:
    """Open section of an :class:`ArchiveWriter`; accepts chunks."""

    def __init__(self, writer: "ArchiveWriter", name: str,
                 columns: tuple[str, ...], attrs: dict | None) -> None:
        self._writer = writer
        self.name = name
        self.columns = columns
        self.attrs = dict(attrs or {})
        self.rows = 0
        self._chunks: dict[str, list[list]] = {c: [] for c in columns}
        self._chunk_bytes: list[int] = []
        self._closed = False

    def write_chunk(self, columns: dict) -> int:
        """Encode + flush one chunk; returns the chunk's row count.

        Every declared column must be present and all columns must have
        the same length.  Empty chunks are ignored.
        """
        if self._closed:
            raise ArchiveError(f"section {self.name!r} already ended")
        if set(columns) != set(self.columns):
            raise ArchiveError(
                f"section {self.name!r} expects columns {self.columns}, "
                f"got {tuple(sorted(columns))}"
            )
        arrays = {c: np.asarray(columns[c], dtype=np.int64).ravel()
                  for c in self.columns}
        counts = {len(a) for a in arrays.values()}
        if len(counts) > 1:
            raise ArchiveError(
                f"section {self.name!r} chunk has ragged columns: "
                + ", ".join(f"{c}={len(a)}" for c, a in arrays.items())
            )
        n = counts.pop()
        if n == 0:
            return 0
        stats = self._writer.stats
        for name in self.columns:
            arr = arrays[name]
            payload, encoding = encode_column(arr)
            offset = self._writer._append(payload)
            entry = [offset, len(payload), encoding, n]
            if stats:
                # int64 accumulation, matching the query layer's sums
                entry.append([int(arr.min()), int(arr.max()),
                              int(arr.sum(dtype=np.int64))])
            self._chunks[name].append(entry)
        if stats and "count" in arrays and "size" in arrays:
            weighted = arrays["count"] * arrays["size"]
            self._chunk_bytes.append(int(weighted.sum(dtype=np.int64)))
        self.rows += n
        return n

    def end(self, attrs: dict | None = None) -> None:
        """Finish the section, optionally merging final ``attrs``."""
        if self._closed:
            return
        if attrs:
            self.attrs.update(attrs)
        self._closed = True
        self._writer._finish_section(self)

    def _index(self) -> dict:
        index = {
            "attrs": self.attrs,
            "rows": self.rows,
            "columns": self._chunks,
        }
        if self._chunk_bytes:
            index["chunk_bytes"] = self._chunk_bytes
        return index


class ArchiveWriter:
    """Streaming writer for a ``.aptrc`` file (append-only + footer).

    ``stats`` controls whether per-chunk min/max/sum statistics are
    recorded in the footer index (``None`` → module default
    :data:`WRITE_CHUNK_STATS`).  Stats only extend the footer JSON; the
    chunk payload bytes are identical either way.
    """

    def __init__(self, path: str | Path, meta: dict | None = None,
                 stats: bool | None = None) -> None:
        self.path = Path(path)
        self.meta = dict(meta or {})
        self.stats = WRITE_CHUNK_STATS if stats is None else bool(stats)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("wb")
        self._file.write(MAGIC)
        self._pos = len(MAGIC)
        self._open: dict[str, SectionWriter] = {}
        self._done: dict[str, SectionWriter] = {}
        self._closed = False

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.close()
        else:
            self._file.close()

    # -- sections --------------------------------------------------------

    def begin_section(self, name: str, columns,
                      attrs: dict | None = None) -> SectionWriter:
        """Open a section with a fixed column set; chunks follow."""
        if self._closed:
            raise ArchiveError("archive already closed")
        if name in self._open or name in self._done:
            raise ArchiveError(f"duplicate section {name!r}")
        section = SectionWriter(self, name, tuple(columns), attrs)
        self._open[name] = section
        return section

    def add_section(self, name: str, columns: dict,
                    attrs: dict | None = None) -> SectionWriter:
        """Write a whole section from in-memory columns (one chunk)."""
        section = self.begin_section(name, tuple(columns), attrs)
        section.write_chunk(columns)
        section.end()
        return section

    def _append(self, payload: bytes) -> int:
        offset = self._pos
        self._file.write(payload)
        self._pos += len(payload)
        return offset

    def _finish_section(self, section: SectionWriter) -> None:
        self._open.pop(section.name, None)
        self._done[section.name] = section

    # -- finalization ----------------------------------------------------

    def close(self) -> Path:
        """End open sections, write the footer index, and flush."""
        if self._closed:
            return self.path
        for section in list(self._open.values()):
            section.end()
        footer = {
            "version": FORMAT_VERSION,
            "meta": self.meta,
            "sections": {n: s._index() for n, s in self._done.items()},
        }
        payload = zlib.compress(
            json.dumps(footer, separators=(",", ":")).encode("utf-8"), 6
        )
        offset = self._append(payload)
        self._file.write(TRAILER.pack(offset, len(payload)))
        self._file.write(TAIL_MAGIC)
        self._file.close()
        self._closed = True
        return self.path


# ----------------------------------------------------------------------
# one-shot export
# ----------------------------------------------------------------------

def _base_meta(logical=None, physical=None, papi=None, overall=None) -> dict:
    """Machine metadata inferred from whichever traces are present."""
    spec = None
    if logical is not None:
        spec = logical.spec
    elif papi is not None:
        spec = papi.spec
    if spec is not None:
        return {
            "nodes": spec.nodes,
            "pes_per_node": spec.pes_per_node,
            "machine_name": spec.name,
            "n_pes": spec.n_pes,
        }
    n_pes = None
    if physical is not None:
        n_pes = physical.n_pes
    elif overall is not None:
        n_pes = overall.n_pes
    if n_pes is None:
        return {}
    # no node structure known: describe the allocation as one flat node
    return {"nodes": 1, "pes_per_node": n_pes, "n_pes": n_pes}


def export_run(
    path: str | Path,
    *,
    logical=None,
    physical=None,
    papi=None,
    overall=None,
    timeline=None,
    meta: dict | None = None,
    stats: bool | None = None,
    lod: bool = False,
) -> Path:
    """Write the given traces into a single ``.aptrc`` archive.

    Any subset of the four trace kinds may be supplied; ``meta`` entries
    override the machine metadata inferred from the traces.  ``stats``
    is forwarded to :class:`ArchiveWriter`.

    ``lod=True`` additionally computes and stores the level-of-detail
    summary pyramid (:mod:`repro.core.store.lod`) at finalize —
    time-resolved when a ``timeline`` is supplied, flat otherwise.  It
    defaults off so existing writers stay byte-identical; ``timeline``
    is only a pyramid source, never a section of its own.
    """
    if logical is None and physical is None and papi is None and overall is None:
        raise ArchiveError("export_run needs at least one trace")
    full_meta = _base_meta(logical, physical, papi, overall)
    full_meta.update(meta or {})
    with ArchiveWriter(path, meta=full_meta, stats=stats) as writer:
        for name, trace in (("logical", logical), ("physical", physical),
                            ("papi", papi), ("overall", overall)):
            if trace is not None:
                columns, attrs = trace.to_columns()
                writer.add_section(name, columns, attrs)
        if lod:
            from repro.core.store.lod import (
                build_pyramid_for_export,
                write_pyramid,
            )

            pyramid = build_pyramid_for_export(
                timeline=timeline, overall=overall, physical=physical,
                logical=logical)
            if pyramid is not None:
                write_pyramid(writer, pyramid)
        return writer.path


# ----------------------------------------------------------------------
# streaming spill (profiler decorator)
# ----------------------------------------------------------------------

class TraceArchiver:
    """Spill logical + physical traces to an archive incrementally.

    Decorates an inner profiler (or ``None``) exactly like
    :class:`~repro.core.live.LiveMonitor`::

        arch = TraceArchiver("run.aptrc", spill_every=100_000)
        run_spmd(program, machine=spec, profiler=arch)
        arch.close()                       # finalizes run.aptrc

    Between spills only a *partial* aggregate (one dict entry per
    distinct route seen since the last spill) is held in memory; every
    ``spill_every`` recorded events it is encoded, appended to the
    archive, and dropped.  If the inner profiler recorded PAPI or
    overall data, those (small) traces are added at :meth:`close`.
    """

    LOGICAL_COLUMNS = ("src", "dst", "size", "count")
    PHYSICAL_COLUMNS = ("kind", "size", "src", "dst", "count")

    def __init__(self, path: str | Path, inner=None,
                 spill_every: int = 250_000, meta: dict | None = None,
                 lod: bool = False) -> None:
        if spill_every < 1:
            raise ValueError("spill_every must be >= 1")
        self.inner = inner
        self.spill_every = spill_every
        self._path = Path(path)
        self._meta = dict(meta or {})
        self._writer: ArchiveWriter | None = None
        self._hooks = None
        self._tracer = None
        self._spec = None
        self._world = None
        self._logical: dict[tuple[int, int, int], int] = {}
        self._physical: dict[tuple[int, int, int, int], int] = {}
        self._ticks: list[int] = []
        self._pending = 0
        self.spills = 0
        self._lod = bool(lod)
        self._edge_lod = None
        if self._lod:
            from repro.core.store.lod import StreamingEdgeLod

            self._edge_lod = StreamingEdgeLod()

    # -- profiler protocol -----------------------------------------------

    def attach(self, world):
        """Wire into the world; returns (hooks, tracer) like ActorProf."""
        if self._writer is not None:
            raise ArchiveError("a TraceArchiver archives exactly one run")
        if self.inner is not None:
            self._hooks, self._tracer = self.inner.attach(world)
        self._spec = world.spec
        self._world = world
        self._ticks = [0] * world.spec.n_pes
        meta = {
            "nodes": world.spec.nodes,
            "pes_per_node": world.spec.pes_per_node,
            "machine_name": world.spec.name,
            "n_pes": world.spec.n_pes,
        }
        meta.update(self._meta)
        self._writer = ArchiveWriter(self._path, meta=meta)
        self._log_section = self._writer.begin_section(
            "logical", self.LOGICAL_COLUMNS
        )
        self._phys_section = self._writer.begin_section(
            "physical", self.PHYSICAL_COLUMNS,
            attrs={
                "n_pes": world.spec.n_pes,
                "send_types": list(SEND_TYPES),
                "nodes": world.spec.nodes,
                "pes_per_node": world.spec.pes_per_node,
                "machine_name": world.spec.name,
            },
        )
        return self, self

    # -- spilling ----------------------------------------------------------

    def _maybe_spill(self) -> None:
        if self._pending >= self.spill_every:
            self.spill()

    def spill(self) -> None:
        """Flush the current partial aggregates to the archive."""
        if self._writer is None:
            raise ArchiveError("TraceArchiver is not attached to a run")
        if self._logical:
            keys = sorted(self._logical)
            self._log_section.write_chunk({
                "src": [k[0] for k in keys],
                "dst": [k[1] for k in keys],
                "size": [k[2] for k in keys],
                "count": [self._logical[k] for k in keys],
            })
            self._logical.clear()
        if self._physical:
            keys = sorted(self._physical)
            self._phys_section.write_chunk({
                "kind": [k[0] for k in keys],
                "size": [k[1] for k in keys],
                "src": [k[2] for k in keys],
                "dst": [k[3] for k in keys],
                "count": [self._physical[k] for k in keys],
            })
            self._physical.clear()
        self._pending = 0
        self.spills += 1

    def close(self) -> Path:
        """Spill the remainder, add inner PAPI/overall traces, finalize."""
        if self._writer is None:
            raise ArchiveError("TraceArchiver is not attached to a run")
        self.spill()
        self._log_section.end(attrs={
            "nodes": self._spec.nodes,
            "pes_per_node": self._spec.pes_per_node,
            "machine_name": self._spec.name,
            "sample_interval": 1,
            "ticks": list(self._ticks),
        })
        self._phys_section.end()
        papi = getattr(self.inner, "papi_trace", None)
        if papi is not None:
            columns, attrs = papi.to_columns()
            self._writer.add_section("papi", columns, attrs)
        overall = getattr(self.inner, "overall", None)
        if overall is not None:
            columns, attrs = overall.to_columns()
            self._writer.add_section("overall", columns, attrs)
        if self._lod:
            from repro.core.store.lod import build_pyramid, write_pyramid

            timeline = getattr(self.inner, "timeline", None)
            if timeline is not None and timeline.span_count():
                # the timeline carries the same net-event stream record()
                # saw, plus the region spans the streamed path lacks
                pyramid = build_pyramid(timeline)
            else:
                pyramid = self._edge_lod.to_pyramid(self._spec.n_pes)
            write_pyramid(self._writer, pyramid)
        return self._writer.close()

    def salvage(self, failure: BaseException | None = None,
                meta: dict | None = None) -> Path:
        """Finalize the archive for a run that died mid-execution.

        Because the writer is append-only and the footer is written at
        close, everything spilled before the failure is already on disk;
        salvaging just stamps the footer metadata ``degraded`` (plus the
        failure and any injected-fault schedule) and closes normally.
        The result is a fully loadable ``.aptrc``.
        """
        if self._writer is None:
            raise ArchiveError("TraceArchiver is not attached to a run")
        degraded: dict = {"degraded": True}
        if failure is not None:
            degraded["failure"] = f"{type(failure).__name__}: {failure}"
        world = self._world
        if world is not None:
            crashed = getattr(world.scheduler, "crashed", {})
            if crashed:
                degraded["crashed_pes"] = {
                    str(r): t for r, t in sorted(crashed.items())
                }
            faults = getattr(world, "faults", None)
            if faults is not None:
                degraded["fault_schedule"] = faults.schedule_rows()
        degraded.update(meta or {})
        self._writer.meta.update(degraded)
        return self.close()

    # -- RuntimeHooks (forwarding + accumulation) --------------------------

    def finish_start(self, pe: int) -> None:
        if self._hooks is not None:
            self._hooks.finish_start(pe)

    def finish_end(self, pe: int) -> None:
        if self._hooks is not None:
            self._hooks.finish_end(pe)

    def main_enter(self, pe: int) -> None:
        if self._hooks is not None:
            self._hooks.main_enter(pe)

    def main_exit(self, pe: int) -> None:
        if self._hooks is not None:
            self._hooks.main_exit(pe)

    def proc_enter(self, pe: int, mailbox: int) -> None:
        if self._hooks is not None:
            self._hooks.proc_enter(pe, mailbox)

    def proc_exit(self, pe: int, mailbox: int, n_items: int) -> None:
        if self._hooks is not None:
            self._hooks.proc_exit(pe, mailbox, n_items)

    def send(self, pe: int, mailbox: int, dst: int, nbytes: int) -> None:
        self._ticks[pe] += 1
        key = (pe, dst, nbytes)
        self._logical[key] = self._logical.get(key, 0) + 1
        self._pending += 1
        if self._hooks is not None:
            self._hooks.send(pe, mailbox, dst, nbytes)
        self._maybe_spill()

    def send_batch(self, pe: int, mailbox: int, dsts, nbytes: int) -> None:
        dsts = np.asarray(dsts)
        self._ticks[pe] += len(dsts)
        uniq, counts = np.unique(dsts, return_counts=True)
        log = self._logical
        for dst, cnt in zip(uniq.tolist(), counts.tolist()):
            key = (pe, int(dst), nbytes)
            log[key] = log.get(key, 0) + int(cnt)
        self._pending += len(dsts)
        if self._hooks is not None:
            self._hooks.send_batch(pe, mailbox, dsts, nbytes)
        self._maybe_spill()

    # -- Conveyors TraceSink ----------------------------------------------

    def record(self, send_type: str, nbytes: int, src_pe: int, dst_pe: int,
               time: int) -> None:
        kind = SEND_TYPES.index(send_type)
        key = (kind, nbytes, src_pe, dst_pe)
        self._physical[key] = self._physical.get(key, 0) + 1
        self._pending += 1
        if self._edge_lod is not None:
            self._edge_lod.add(time, src_pe, dst_pe, nbytes)
        if self._tracer is not None:
            self._tracer.record(send_type, nbytes, src_pe, dst_pe, time)
        self._maybe_spill()
