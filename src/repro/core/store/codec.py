"""Column codec for ``.aptrc`` archives: delta + varint (+ zlib).

Trace columns are integer sequences with strong local structure — sorted
source PEs, repeated packet sizes, monotone cumulative counters — so the
classic columnar recipe applies:

1. **delta**: store ``v[0], v[1]-v[0], v[2]-v[1], …`` (turns sorted or
   slowly-varying columns into tiny values),
2. **zigzag**: fold negative deltas into small unsigned ints
   (``0,-1,1,-2,… → 0,1,2,3,…``),
3. **varint**: LEB128 — 7 value bits per byte, high bit = continuation,
4. **zlib** (optional): only kept when it actually shrinks the payload.

The varint encode/decode hot paths are numpy-vectorized (masked passes
over ``frombuffer`` byte arrays); the original per-byte Python loops are
kept as ``encode_uvarints_scalar``/``decode_uvarints_scalar`` reference
oracles for the property tests, and produce byte-identical streams.

The encoding actually applied is returned as a ``+``-joined token string
(e.g. ``"delta+varint+zlib"``) and stored in the archive footer, so the
decoder never guesses.  All values must fit in a signed 64-bit integer,
matching the ``int64`` trace matrices used everywhere else in the repo.
"""

from __future__ import annotations

import zlib

import numpy as np

#: Tokens that may appear in an encoding string, in application order.
TOKENS = ("delta", "varint", "zlib")

#: Compression level used when zlib is applied (6 = zlib default).
ZLIB_LEVEL = 6


class CodecError(ValueError):
    """Raised when a column payload cannot be decoded."""


# ----------------------------------------------------------------------
# zigzag
# ----------------------------------------------------------------------

def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed int64 values onto unsigned ints (as uint64)."""
    v = values.astype(np.int64, copy=False)
    return ((v << np.int64(1)) ^ (v >> np.int64(63))).astype(np.uint64)


def unzigzag(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag`."""
    u = values.astype(np.uint64, copy=False)
    return ((u >> np.uint64(1)) ^ -(u & np.uint64(1)).astype(np.int64).astype(np.uint64)).astype(np.int64)


# ----------------------------------------------------------------------
# varint (LEB128, unsigned)
# ----------------------------------------------------------------------

def encode_uvarints_scalar(values: np.ndarray) -> bytes:
    """Per-value reference encoder (the oracle for the vectorized path)."""
    out = bytearray()
    append = out.append
    for v in values.tolist():
        while v >= 0x80:
            append((v & 0x7F) | 0x80)
            v >>= 7
        append(v)
    return bytes(out)


def decode_uvarints_scalar(data: bytes, count: int) -> np.ndarray:
    """Per-byte reference decoder (the oracle for the vectorized path)."""
    out = np.empty(count, dtype=np.uint64)
    pos = 0
    end = len(data)
    for i in range(count):
        value = 0
        shift = 0
        while True:
            if pos >= end:
                raise CodecError(
                    f"varint stream truncated at value {i} of {count}"
                )
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise CodecError(f"varint at value {i} overflows 64 bits")
        if value > 0xFFFFFFFFFFFFFFFF:
            raise CodecError(f"varint at value {i} overflows 64 bits")
        out[i] = value
    if pos != end:
        raise CodecError(
            f"varint stream has {end - pos} trailing bytes after "
            f"{count} values"
        )
    return out


#: Value thresholds where a LEB128 varint grows by one byte: a value
#: ``v`` takes ``1 + sum(v >= t for t in thresholds)`` bytes (max 10).
_WIDTH_THRESHOLDS = tuple(np.uint64(1) << np.uint64(7 * k)
                          for k in range(1, 10))


def encode_uvarints(values: np.ndarray) -> bytes:
    """Encode an array of unsigned ints as concatenated LEB128 varints.

    Vectorized: byte widths come from threshold comparisons, then one
    masked pass per byte position (≤ 10) scatters payload bytes with the
    continuation bit.  Output is byte-identical to
    :func:`encode_uvarints_scalar`.
    """
    v = np.ascontiguousarray(values, dtype=np.uint64)
    n = len(v)
    if n == 0:
        return b""
    widths = np.ones(n, dtype=np.int64)
    for t in _WIDTH_THRESHOLDS:
        widths += v >= t
    starts = np.cumsum(widths) - widths
    out = np.empty(int(starts[-1]) + int(widths[-1]), dtype=np.uint8)
    for j in range(int(widths.max())):
        live = widths > j
        payload = ((v[live] >> np.uint64(7 * j)) & np.uint64(0x7F))
        byte = payload.astype(np.uint8)
        byte[widths[live] > j + 1] |= 0x80  # continuation bit
        out[starts[live] + j] = byte
    return out.tobytes()


def decode_uvarints(data: bytes, count: int) -> np.ndarray:
    """Decode ``count`` LEB128 varints from ``data`` (uint64 array).

    Vectorized: value boundaries are the bytes with the continuation bit
    clear; payloads are gathered with one masked pass per byte position
    (≤ 10), so cost scales with the widest value actually present —
    delta+zigzag trace columns are overwhelmingly 1–2 bytes wide, and a
    pure single-byte stream short-circuits to one cast.  Accepts and
    rejects exactly the streams :func:`decode_uvarints_scalar` does.
    """
    b = np.frombuffer(data, dtype=np.uint8)
    if count == 0:
        if len(b):
            raise CodecError(
                f"varint stream has {len(b)} trailing bytes after 0 values"
            )
        return np.empty(0, dtype=np.uint64)
    is_end = (b & 0x80) == 0
    if len(b) == count and is_end.all():
        return b.astype(np.uint64)  # pure single-byte stream
    all_ends = np.flatnonzero(is_end)
    m = min(count, len(all_ends))
    ends = all_ends[:m]
    starts = np.empty(m, dtype=np.int64)
    if m:
        starts[0] = 0
        starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    payload = (b & 0x7F).astype(np.uint64)
    # Errors must surface in stream order, like the scalar decoder's
    # sequential scan: an overflowing value earlier in the stream wins
    # over truncation or trailing bytes discovered later.  > 10 bytes
    # shifts past bit 63; a 10-byte varint only has room for one payload
    # bit in its last byte.
    bad = (lengths > 10) | ((lengths == 10) & (payload[ends] > 1))
    if bad.any():
        raise CodecError(
            f"varint at value {int(np.flatnonzero(bad)[0])} overflows 64 bits"
        )
    if len(all_ends) < count:
        tail_start = int(all_ends[-1]) + 1 if len(all_ends) else 0
        if len(b) - tail_start >= 10:
            # ten continuation bytes overflow before the stream runs out
            raise CodecError(
                f"varint at value {len(all_ends)} overflows 64 bits"
            )
        raise CodecError(
            f"varint stream truncated at value {len(all_ends)} of {count}"
        )
    trailing = len(b) - int(all_ends[count - 1]) - 1
    if trailing:
        raise CodecError(
            f"varint stream has {trailing} trailing bytes after "
            f"{count} values"
        )
    out = payload[starts]
    for j in range(1, int(lengths.max())):
        live = np.flatnonzero(lengths > j)
        out[live] |= payload[starts[live] + j] << np.uint64(7 * j)
    return out


# ----------------------------------------------------------------------
# column encode / decode
# ----------------------------------------------------------------------

def encode_column(
    values, *, delta: bool = True, compress: bool = True
) -> tuple[bytes, str]:
    """Encode one integer column; returns ``(payload, encoding)``.

    ``delta`` applies first-difference transformation before zigzag +
    varint; ``compress`` additionally zlib-compresses the varint stream
    when (and only when) that makes it smaller.
    """
    arr = np.asarray(values, dtype=np.int64).ravel()
    tokens = []
    if delta and len(arr) > 1:
        work = np.empty_like(arr)
        work[0] = arr[0]
        np.subtract(arr[1:], arr[:-1], out=work[1:])
        tokens.append("delta")
    else:
        work = arr
        if delta:
            tokens.append("delta")  # trivially true for 0/1 values
    payload = encode_uvarints(zigzag(work))
    tokens.append("varint")
    if compress and len(payload) > 32:
        squeezed = zlib.compress(payload, ZLIB_LEVEL)
        if len(squeezed) < len(payload):
            payload = squeezed
            tokens.append("zlib")
    return payload, "+".join(tokens)


def decode_column(payload: bytes, encoding: str, count: int) -> np.ndarray:
    """Decode a column payload back into an int64 array of ``count``."""
    tokens = encoding.split("+") if encoding else []
    unknown = set(tokens) - set(TOKENS)
    if unknown:
        raise CodecError(f"unknown encoding tokens {sorted(unknown)!r}")
    if "varint" not in tokens:
        raise CodecError(f"unsupported encoding {encoding!r}: missing varint")
    if "zlib" in tokens:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise CodecError(f"zlib payload corrupt: {exc}") from exc
    values = unzigzag(decode_uvarints(payload, count))
    if "delta" in tokens and count > 1:
        values = np.cumsum(values, dtype=np.int64)
    return values.astype(np.int64, copy=False)
