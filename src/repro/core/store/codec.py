"""Column codec for ``.aptrc`` archives: delta + varint (+ zlib).

Trace columns are integer sequences with strong local structure — sorted
source PEs, repeated packet sizes, monotone cumulative counters — so the
classic columnar recipe applies:

1. **delta**: store ``v[0], v[1]-v[0], v[2]-v[1], …`` (turns sorted or
   slowly-varying columns into tiny values),
2. **zigzag**: fold negative deltas into small unsigned ints
   (``0,-1,1,-2,… → 0,1,2,3,…``),
3. **varint**: LEB128 — 7 value bits per byte, high bit = continuation,
4. **zlib** (optional): only kept when it actually shrinks the payload.

The encoding actually applied is returned as a ``+``-joined token string
(e.g. ``"delta+varint+zlib"``) and stored in the archive footer, so the
decoder never guesses.  All values must fit in a signed 64-bit integer,
matching the ``int64`` trace matrices used everywhere else in the repo.
"""

from __future__ import annotations

import zlib

import numpy as np

#: Tokens that may appear in an encoding string, in application order.
TOKENS = ("delta", "varint", "zlib")

#: Compression level used when zlib is applied (6 = zlib default).
ZLIB_LEVEL = 6


class CodecError(ValueError):
    """Raised when a column payload cannot be decoded."""


# ----------------------------------------------------------------------
# zigzag
# ----------------------------------------------------------------------

def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed int64 values onto unsigned ints (as uint64)."""
    v = values.astype(np.int64, copy=False)
    return ((v << np.int64(1)) ^ (v >> np.int64(63))).astype(np.uint64)


def unzigzag(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag`."""
    u = values.astype(np.uint64, copy=False)
    return ((u >> np.uint64(1)) ^ -(u & np.uint64(1)).astype(np.int64).astype(np.uint64)).astype(np.int64)


# ----------------------------------------------------------------------
# varint (LEB128, unsigned)
# ----------------------------------------------------------------------

def encode_uvarints(values: np.ndarray) -> bytes:
    """Encode an array of unsigned ints as concatenated LEB128 varints."""
    out = bytearray()
    append = out.append
    for v in values.tolist():
        while v >= 0x80:
            append((v & 0x7F) | 0x80)
            v >>= 7
        append(v)
    return bytes(out)


def decode_uvarints(data: bytes, count: int) -> np.ndarray:
    """Decode ``count`` LEB128 varints from ``data`` (uint64 array)."""
    out = np.empty(count, dtype=np.uint64)
    pos = 0
    end = len(data)
    for i in range(count):
        value = 0
        shift = 0
        while True:
            if pos >= end:
                raise CodecError(
                    f"varint stream truncated at value {i} of {count}"
                )
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise CodecError(f"varint at value {i} overflows 64 bits")
        if value > 0xFFFFFFFFFFFFFFFF:
            raise CodecError(f"varint at value {i} overflows 64 bits")
        out[i] = value
    if pos != end:
        raise CodecError(
            f"varint stream has {end - pos} trailing bytes after "
            f"{count} values"
        )
    return out


# ----------------------------------------------------------------------
# column encode / decode
# ----------------------------------------------------------------------

def encode_column(
    values, *, delta: bool = True, compress: bool = True
) -> tuple[bytes, str]:
    """Encode one integer column; returns ``(payload, encoding)``.

    ``delta`` applies first-difference transformation before zigzag +
    varint; ``compress`` additionally zlib-compresses the varint stream
    when (and only when) that makes it smaller.
    """
    arr = np.asarray(values, dtype=np.int64).ravel()
    tokens = []
    if delta and len(arr) > 1:
        work = np.empty_like(arr)
        work[0] = arr[0]
        np.subtract(arr[1:], arr[:-1], out=work[1:])
        tokens.append("delta")
    else:
        work = arr
        if delta:
            tokens.append("delta")  # trivially true for 0/1 values
    payload = encode_uvarints(zigzag(work))
    tokens.append("varint")
    if compress and len(payload) > 32:
        squeezed = zlib.compress(payload, ZLIB_LEVEL)
        if len(squeezed) < len(payload):
            payload = squeezed
            tokens.append("zlib")
    return payload, "+".join(tokens)


def decode_column(payload: bytes, encoding: str, count: int) -> np.ndarray:
    """Decode a column payload back into an int64 array of ``count``."""
    tokens = encoding.split("+") if encoding else []
    unknown = set(tokens) - set(TOKENS)
    if unknown:
        raise CodecError(f"unknown encoding tokens {sorted(unknown)!r}")
    if "varint" not in tokens:
        raise CodecError(f"unsupported encoding {encoding!r}: missing varint")
    if "zlib" in tokens:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise CodecError(f"zlib payload corrupt: {exc}") from exc
    values = unzigzag(decode_uvarints(payload, count))
    if "delta" in tokens and count > 1:
        values = np.cumsum(values, dtype=np.int64)
    return values.astype(np.int64, copy=False)
