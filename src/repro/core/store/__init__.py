""":mod:`repro.core.store` — the persistent trace store.

The paper's text formats (``PEi_send.csv``, ``physical.txt``, …) expand
one line per send, so large runs emit millions of rows that must be fully
re-parsed for every query, diff, or figure — the trace-size problem the
paper's Section VI flags.  This package provides the compact alternative:

* :mod:`~repro.core.store.codec` — per-column delta + varint encoding
  with optional zlib compression,
* :mod:`~repro.core.store.archive` — the single-file ``.aptrc`` binary
  columnar archive (header, sections, footer index) with lazy per-column
  reads,
* :mod:`~repro.core.store.writer` — streaming :class:`ArchiveWriter` and
  the :class:`TraceArchiver` profiler decorator that spills incrementally,
* :mod:`~repro.core.store.frame` — :class:`Frame`, the pruned columnar
  view that turns footer chunk stats into query pushdown,
* :mod:`~repro.core.store.registry` — the on-disk :class:`RunRegistry`
  behind ``actorprof runs list / show / rm``,
* :mod:`~repro.core.store.lod` — level-of-detail summary pyramids
  (time-bucketed per-PE/per-edge aggregates at coarsening resolutions)
  written at archive finalize or backfilled into existing archives.
"""

from repro.core.store.archive import (
    Archive,
    RunTraces,
    Section,
    load_logical,
    load_overall,
    load_papi,
    load_physical,
    load_run,
)
from repro.core.store.codec import decode_column, encode_column
from repro.core.store.frame import Frame
from repro.core.store.lod import (
    Pyramid,
    PyramidInfo,
    backfill_pyramid,
    build_pyramid,
    has_pyramid,
    pyramid_info,
    read_level,
    write_pyramid,
)
from repro.core.store.registry import RunInfo, RunRegistry
from repro.core.store.writer import ArchiveWriter, TraceArchiver, export_run

__all__ = [
    "Archive",
    "ArchiveWriter",
    "Frame",
    "Pyramid",
    "PyramidInfo",
    "RunInfo",
    "RunRegistry",
    "RunTraces",
    "Section",
    "TraceArchiver",
    "backfill_pyramid",
    "build_pyramid",
    "decode_column",
    "encode_column",
    "export_run",
    "has_pyramid",
    "load_logical",
    "load_overall",
    "load_papi",
    "load_physical",
    "load_run",
    "pyramid_info",
    "read_level",
    "write_pyramid",
]
