"""The ``.aptrc`` single-file binary columnar trace archive (reader side).

Layout::

    +----------------------------+
    | magic  "APTRC01\\n" (8 B)   |
    +----------------------------+
    | chunk payloads …           |   encoded column bytes, append-only
    +----------------------------+
    | footer  zlib(JSON)         |   run metadata + section/column index
    +----------------------------+
    | footer offset  (u64 LE)    |
    | footer length  (u32 LE)    |
    | tail magic "APTRCEND" (8 B)|
    +----------------------------+

The footer JSON indexes every section and, per column, the list of
chunks (offset, length, encoding, count) its data lives in.  A reader
therefore seeks straight to the bytes of one column of one section and
decodes nothing else — :class:`Archive` tracks exactly which columns
have been decoded (:attr:`Archive.decoded_columns`) so tests can assert
that laziness.

Sections written by :func:`repro.core.store.writer.export_run`:

=============  =====================================================
``logical``    aggregated logical sends: src, dst, size, count
``physical``   Conveyors ops: kind (code), size, src, dst, count
``papi``       sampled PAPI rows: src, dst, pkt_size, mailbox,
               num_sends, ev_0 … ev_{k-1}
``overall``    per-PE cycles: t_main, t_proc, t_total
=============  =====================================================

Chunked columns arise from streaming writers
(:class:`~repro.core.store.writer.TraceArchiver`): aggregate sections
may contain *partial* aggregates per chunk, which the trace
constructors merge by summing duplicate keys.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.logical import LogicalTrace
from repro.core.overall import OverallProfile
from repro.core.papi_trace import PAPITrace
from repro.core.physical import PhysicalTrace
from repro.machine.spec import MachineSpec

MAGIC = b"APTRC01\n"
TAIL_MAGIC = b"APTRCEND"
TRAILER = struct.Struct("<QI")  # footer offset, footer length
FORMAT_VERSION = 1

#: Conventional file suffix for trace archives.
SUFFIX = ".aptrc"


class ArchiveError(ValueError):
    """Raised when a ``.aptrc`` file is malformed or unreadable."""


@dataclass(frozen=True)
class ChunkRef:
    """Location of one encoded chunk of one column.

    ``stats`` is the optional ``(min, max, sum)`` of the chunk's decoded
    values, recorded by writers since the chunk-stats footer extension;
    archives written before it carry ``None`` and readers fall back to
    full decoding.
    """

    offset: int
    length: int
    encoding: str
    count: int
    stats: tuple[int, int, int] | None = None


class Section:
    """Lazy view of one archive section; decodes columns on demand."""

    def __init__(self, archive: "Archive", name: str, index: dict) -> None:
        self._archive = archive
        self.name = name
        self.attrs: dict = index.get("attrs", {})
        self.rows: int = int(index.get("rows", 0))
        self._chunks: dict[str, list[ChunkRef]] = {
            col: [ChunkRef(int(c[0]), int(c[1]), str(c[2]), int(c[3]),
                           tuple(int(s) for s in c[4]) if len(c) > 4 else None)
                  for c in chunks]
            for col, chunks in index.get("columns", {}).items()
        }
        raw_bytes = index.get("chunk_bytes")
        #: Per row-group ``sum(count * size)``, when the writer stored it.
        self.chunk_bytes: list[int] | None = (
            [int(w) for w in raw_bytes] if raw_bytes is not None else None
        )
        self._cache: dict[str, np.ndarray] = {}
        self._chunk_cache: dict[tuple[str, int], np.ndarray] = {}

    @property
    def columns(self) -> tuple[str, ...]:
        """Names of the columns stored in this section."""
        return tuple(self._chunks)

    @property
    def chunks_aligned(self) -> bool:
        """True when every column has the same per-chunk row counts.

        Writers always produce aligned chunks (one row group spans all
        columns); alignment is what makes chunk-level pruning sound.
        """
        counts = None
        for refs in self._chunks.values():
            these = [ref.count for ref in refs]
            if counts is None:
                counts = these
            elif these != counts:
                return False
        return True

    @property
    def n_chunks(self) -> int:
        """Number of row groups (0 for an empty section)."""
        for refs in self._chunks.values():
            return len(refs)
        return 0

    def chunk_refs(self, name: str) -> tuple[ChunkRef, ...]:
        """The chunk index entries of one column."""
        if name not in self._chunks:
            raise ArchiveError(
                f"section {self.name!r} has no column {name!r} "
                f"(have {sorted(self._chunks)})"
            )
        return tuple(self._chunks[name])

    def read_chunk(self, name: str, i: int) -> np.ndarray:
        """Read + decode one chunk of one column (cached)."""
        cached = self._chunk_cache.get((name, i))
        if cached is not None:
            return cached
        ref = self.chunk_refs(name)[i]
        out = self._archive._decode_chunk(self.name, name, ref)
        self._chunk_cache[(name, i)] = out
        return out

    def column(self, name: str) -> np.ndarray:
        """Read + decode one column (cached); int64 array of ``rows``."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        refs = self.chunk_refs(name)
        parts = [self.read_chunk(name, i) for i in range(len(refs))]
        if parts:
            out = parts[0] if len(parts) == 1 else np.concatenate(parts)
        else:
            out = np.zeros(0, dtype=np.int64)
        if len(out) != self.rows:
            raise ArchiveError(
                f"section {self.name!r} column {name!r} decodes to "
                f"{len(out)} values, expected {self.rows}"
            )
        self._cache[name] = out
        return out

    def read(self) -> dict[str, np.ndarray]:
        """Decode every column of this section."""
        return {name: self.column(name) for name in self._chunks}


class Archive:
    """Reader for a ``.aptrc`` file.

    Opening an archive reads only the fixed-size trailer and the footer
    index — no trace data.  Column bytes are fetched and decoded lazily
    through :meth:`Section.column`, and every decode is logged in
    :attr:`decoded_columns` as ``(section, column)`` pairs.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: ``(section, column)`` pairs actually decoded so far.
        self.decoded_columns: set[tuple[str, str]] = set()
        self._file = self.path.open("rb")
        try:
            self._read_footer()
        except Exception:
            self._file.close()
            raise

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "Archive":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    # -- index -----------------------------------------------------------

    def _read_footer(self) -> None:
        f = self._file
        f.seek(0, 2)
        size = f.tell()
        tail_len = TRAILER.size + len(TAIL_MAGIC)
        if size < len(MAGIC) + tail_len:
            raise ArchiveError(f"{self.path}: too small to be an archive")
        f.seek(0)
        if f.read(len(MAGIC)) != MAGIC:
            raise ArchiveError(f"{self.path}: bad magic (not a .aptrc file)")
        f.seek(size - tail_len)
        trailer = f.read(tail_len)
        if trailer[TRAILER.size:] != TAIL_MAGIC:
            raise ArchiveError(f"{self.path}: truncated (missing tail magic)")
        foot_off, foot_len = TRAILER.unpack(trailer[: TRAILER.size])
        if foot_off + foot_len > size - tail_len:
            raise ArchiveError(f"{self.path}: footer index out of bounds")
        f.seek(foot_off)
        try:
            footer = json.loads(zlib.decompress(f.read(foot_len)))
        except (zlib.error, json.JSONDecodeError) as exc:
            raise ArchiveError(f"{self.path}: footer corrupt: {exc}") from exc
        version = footer.get("version")
        if version != FORMAT_VERSION:
            raise ArchiveError(
                f"{self.path}: unsupported format version {version!r}"
            )
        self.meta: dict = footer.get("meta", {})
        self._sections: dict[str, Section] = {
            name: Section(self, name, idx)
            for name, idx in footer.get("sections", {}).items()
        }

    @property
    def sections(self) -> tuple[str, ...]:
        """Names of the sections present in this archive."""
        return tuple(self._sections)

    def has_section(self, name: str) -> bool:
        return name in self._sections

    def section(self, name: str) -> Section:
        try:
            return self._sections[name]
        except KeyError:
            raise ArchiveError(
                f"{self.path}: no section {name!r} "
                f"(have {sorted(self._sections)})"
            ) from None

    def _decode_chunk(self, section: str, column: str, ref: ChunkRef) -> np.ndarray:
        from repro.core.store.codec import decode_column

        self._file.seek(ref.offset)
        payload = self._file.read(ref.length)
        if len(payload) != ref.length:
            raise ArchiveError(
                f"{self.path}: short read in section {section!r} "
                f"column {column!r}"
            )
        self.decoded_columns.add((section, column))
        return decode_column(payload, ref.encoding, ref.count)

    # -- run metadata ----------------------------------------------------

    def spec(self) -> MachineSpec:
        """The run's :class:`MachineSpec`, from footer metadata."""
        try:
            return MachineSpec(
                nodes=int(self.meta["nodes"]),
                pes_per_node=int(self.meta["pes_per_node"]),
                name=str(self.meta.get("machine_name", "simulated-cluster")),
            )
        except KeyError as exc:
            raise ArchiveError(
                f"{self.path}: footer metadata is missing {exc}"
            ) from exc

    @property
    def n_pes(self) -> int:
        return self.spec().n_pes

    @property
    def degraded(self) -> bool:
        """True when this archive was salvaged from a failed run."""
        return bool(self.meta.get("degraded", False))


# ----------------------------------------------------------------------
# trace loaders
# ----------------------------------------------------------------------

def load_logical(archive: Archive) -> LogicalTrace:
    """Materialize the logical trace stored in ``archive``."""
    section = archive.section("logical")
    return LogicalTrace.from_columns(section.read(), section.attrs)


def load_physical(archive: Archive) -> PhysicalTrace:
    """Materialize the physical trace stored in ``archive``."""
    section = archive.section("physical")
    return PhysicalTrace.from_columns(section.read(), section.attrs)


def load_papi(archive: Archive) -> PAPITrace:
    """Materialize the PAPI region trace stored in ``archive``."""
    section = archive.section("papi")
    return PAPITrace.from_columns(section.read(), section.attrs)


def load_overall(archive: Archive) -> OverallProfile:
    """Materialize the overall profile stored in ``archive``."""
    section = archive.section("overall")
    return OverallProfile.from_columns(section.read(), section.attrs)


_LOADERS = {
    "logical": load_logical,
    "physical": load_physical,
    "papi": load_papi,
    "overall": load_overall,
}


@dataclass
class RunTraces:
    """The (optional) four trace kinds of one run, plus its metadata."""

    logical: LogicalTrace | None = None
    physical: PhysicalTrace | None = None
    papi: PAPITrace | None = None
    overall: OverallProfile | None = None
    meta: dict = field(default_factory=dict)

    def kinds(self) -> tuple[str, ...]:
        """Which trace kinds are present."""
        return tuple(
            k for k in ("logical", "physical", "papi", "overall")
            if getattr(self, k) is not None
        )

    @property
    def degraded(self) -> bool:
        """True when these traces were salvaged from a failed run."""
        return bool(self.meta.get("degraded", False))


def load_run(path: str | Path) -> RunTraces:
    """Open an archive and materialize every stored trace kind."""
    with Archive(path) as archive:
        out = RunTraces(meta=dict(archive.meta))
        for kind, loader in _LOADERS.items():
            if archive.has_section(kind):
                setattr(out, kind, loader(archive))
        return out


def is_archive(path: str | Path) -> bool:
    """Cheap check: does ``path`` look like a ``.aptrc`` archive file?"""
    path = Path(path)
    if not path.is_file():
        return False
    if path.suffix == SUFFIX:
        return True
    try:
        with path.open("rb") as f:
            return f.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
