"""On-disk registry of profiled runs (``actorprof runs …``).

Layout::

    <root>/
      manifest.json        {"version": 1, "runs": {run_id: entry, …}}
      <run_id>.aptrc       one archive per registered run

Each manifest entry records the archive's relative filename, its size,
a creation timestamp, and a copy of the archive's footer metadata so
``actorprof runs list`` never has to open the archives themselves.
Manifest writes are atomic (temp file + rename), so a crashed command
never leaves a half-written manifest.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from repro.core.store.archive import Archive, ArchiveError

MANIFEST = "manifest.json"
MANIFEST_VERSION = 1

_ID_RE = re.compile(r"[^A-Za-z0-9._-]+")


class RegistryError(ValueError):
    """Raised for unknown run ids or a corrupt registry."""


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass(frozen=True)
class RunInfo:
    """One registered run."""

    run_id: str
    path: Path
    created: str
    size_bytes: int
    meta: dict
    #: sha256 of the archive file.  Archives are written without
    #: timestamps, so two runs of the same (seed, schedule, workload)
    #: produce the SAME fingerprint — this is the registry-level
    #: reproducibility receipt ActorCheck's replay audit relies on.
    fingerprint: str = ""

    def describe(self) -> str:
        """One-line summary used by ``actorprof runs list``."""
        m = self.meta
        shape = ""
        if "nodes" in m and "pes_per_node" in m:
            shape = f"{m['nodes']}x{m['pes_per_node']} PEs"
        app = m.get("app", "")
        degraded = "[degraded]" if m.get("degraded") else ""
        finger = self.fingerprint[:12] if self.fingerprint else ""
        bits = [b for b in (app, shape, degraded, finger,
                            f"{self.size_bytes:,} B", self.created) if b]
        return f"{self.run_id:<24} " + "  ".join(bits)


class RunRegistry:
    """A directory of ``.aptrc`` archives indexed by a manifest."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- manifest ---------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST

    def _load(self) -> dict:
        if not self.manifest_path.exists():
            return {"version": MANIFEST_VERSION, "runs": {}}
        try:
            data = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(
                f"corrupt registry manifest {self.manifest_path}: {exc}"
            ) from exc
        if data.get("version") != MANIFEST_VERSION:
            raise RegistryError(
                f"unsupported manifest version {data.get('version')!r} "
                f"in {self.manifest_path}"
            )
        return data

    def _save(self, data: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.manifest_path)

    def _info(self, run_id: str, entry: dict) -> RunInfo:
        return RunInfo(
            run_id=run_id,
            path=self.root / entry["file"],
            created=entry.get("created", ""),
            size_bytes=int(entry.get("size_bytes", 0)),
            meta=entry.get("meta", {}),
            fingerprint=entry.get("fingerprint", ""),
        )

    # -- operations -------------------------------------------------------

    def add(self, archive_path: str | Path, run_id: str | None = None,
            move: bool = False) -> RunInfo:
        """Register an archive (copied — or moved — into the registry).

        ``run_id`` defaults to the archive's filename stem, uniquified
        with a numeric suffix on collision.
        """
        archive_path = Path(archive_path)
        try:
            with Archive(archive_path) as archive:
                meta = dict(archive.meta)
        except (OSError, ArchiveError) as exc:
            raise RegistryError(f"cannot register {archive_path}: {exc}") from exc
        data = self._load()
        runs = data["runs"]
        base = _ID_RE.sub("-", run_id or archive_path.stem).strip("-") or "run"
        if run_id is not None and base in runs:
            raise RegistryError(f"run id {base!r} already registered")
        candidate, n = base, 1
        while candidate in runs:
            n += 1
            candidate = f"{base}-{n}"
        run_id = candidate
        self.root.mkdir(parents=True, exist_ok=True)
        dest = self.root / f"{run_id}.aptrc"
        if move:
            shutil.move(str(archive_path), dest)
        else:
            shutil.copyfile(archive_path, dest)
        entry = {
            "file": dest.name,
            "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "size_bytes": dest.stat().st_size,
            "meta": meta,
            "fingerprint": _sha256_file(dest),
        }
        runs[run_id] = entry
        self._save(data)
        return self._info(run_id, entry)

    def list(self) -> list[RunInfo]:
        """All registered runs, sorted by id."""
        data = self._load()
        return [self._info(rid, e) for rid, e in sorted(data["runs"].items())]

    def get(self, run_id: str) -> RunInfo:
        """Look up one run by exact id."""
        data = self._load()
        try:
            return self._info(run_id, data["runs"][run_id])
        except KeyError:
            raise RegistryError(
                f"unknown run {run_id!r} (have "
                f"{sorted(data['runs']) or 'no runs'})"
            ) from None

    def resolve(self, ref: str) -> RunInfo:
        """Look up a run by exact id or unique prefix."""
        data = self._load()
        if ref in data["runs"]:
            return self._info(ref, data["runs"][ref])
        matches = [rid for rid in data["runs"] if rid.startswith(ref)]
        if len(matches) == 1:
            return self._info(matches[0], data["runs"][matches[0]])
        if not matches:
            raise RegistryError(
                f"unknown run {ref!r} (have {sorted(data['runs']) or 'no runs'})"
            )
        raise RegistryError(f"ambiguous run {ref!r}: matches {sorted(matches)}")

    def open(self, ref: str) -> Archive:
        """Open the archive of one registered run."""
        return Archive(self.resolve(ref).path)

    def remove(self, ref: str) -> RunInfo:
        """Delete a run's archive and drop it from the manifest."""
        info = self.resolve(ref)
        data = self._load()
        data["runs"].pop(info.run_id, None)
        self._save(data)
        if info.path.exists():
            info.path.unlink()
        return info


def default_registry_root() -> Path:
    """``$ACTORPROF_RUNS`` or ``~/.actorprof/runs``."""
    env = os.environ.get("ACTORPROF_RUNS")
    if env:
        return Path(env)
    return Path.home() / ".actorprof" / "runs"
