"""On-disk registry of profiled runs (``actorprof runs …``).

Layout (legacy, single shard)::

    <root>/
      manifest.json        {"version": 1, "runs": {run_id: entry, …}}
      <run_id>.aptrc       one archive per registered run

Layout (sharded, created with ``RunRegistry(root, shards=N)``)::

    <root>/
      registry.json        {"version": 1, "shards": N}
      manifest-00.json …   one manifest per shard
      .shard-00.lock …     stable lock files (never renamed)
      <run_id>.aptrc

A run id lives in exactly one shard — ``sha256(run_id) % shards`` — so
two writers registering different runs usually touch different
manifests and never contend.  Every read-modify-write (``add``,
``remove``) holds an advisory file lock on its shard, closing the
lost-update window two concurrent ``runs add`` calls used to have:
both would read the same manifest, and the second ``_save`` silently
dropped the first's entry.  The lock is taken on a *stable* side file,
not the manifest itself, because atomic manifest replacement
(temp + rename) swaps the inode a lock would be attached to.

Manifest writes stay atomic, so lock-free readers are always safe —
they see either the old or the new manifest, never a torn one.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import time
from contextlib import contextmanager
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from repro.core.store.archive import Archive, ArchiveError

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback below
    fcntl = None

MANIFEST = "manifest.json"
MANIFEST_VERSION = 1
REGISTRY_CONFIG = "registry.json"

_ID_RE = re.compile(r"[^A-Za-z0-9._-]+")


class RegistryError(ValueError):
    """Raised for unknown run ids or a corrupt registry."""


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@contextmanager
def file_lock(path: Path):
    """Hold an exclusive advisory lock on ``path`` (created if absent).

    Uses ``flock`` where available; elsewhere falls back to an
    exclusive-create spin lock on ``path + '.x'`` so the semantics (one
    holder at a time, cross-process) survive, just more slowly.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    if fcntl is not None:
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
    else:  # pragma: no cover - exercised only off-POSIX
        probe = path.with_name(path.name + ".x")
        while True:
            try:
                fd = os.open(probe, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                break
            except FileExistsError:
                time.sleep(0.01)
        try:
            yield
        finally:
            os.close(fd)
            probe.unlink(missing_ok=True)


@dataclass(frozen=True)
class RunInfo:
    """One registered run."""

    run_id: str
    path: Path
    created: str
    size_bytes: int
    meta: dict
    #: sha256 of the archive file.  Archives are written without
    #: timestamps, so two runs of the same (seed, schedule, workload)
    #: produce the SAME fingerprint — this is the registry-level
    #: reproducibility receipt ActorCheck's replay audit relies on.
    fingerprint: str = ""

    def describe(self) -> str:
        """One-line summary used by ``actorprof runs list``."""
        m = self.meta
        shape = ""
        if "nodes" in m and "pes_per_node" in m:
            shape = f"{m['nodes']}x{m['pes_per_node']} PEs"
        app = m.get("app", "")
        degraded = "[degraded]" if m.get("degraded") else ""
        finger = self.fingerprint[:12] if self.fingerprint else ""
        bits = [b for b in (app, shape, degraded, finger,
                            f"{self.size_bytes:,} B", self.created) if b]
        return f"{self.run_id:<24} " + "  ".join(bits)


class RunRegistry:
    """A directory of ``.aptrc`` archives indexed by sharded manifests.

    ``shards`` picks the manifest count when the registry is *created*;
    an existing registry's shard count is read from ``registry.json``
    (absent for legacy single-manifest registries, which keep working
    unchanged).  Passing a conflicting ``shards`` for an existing
    registry raises, since re-sharding in place would strand entries.
    """

    def __init__(self, root: str | Path, shards: int | None = None) -> None:
        self.root = Path(root)
        if shards is not None and shards < 1:
            raise RegistryError(f"shards must be >= 1: {shards}")
        existing = self._read_config()
        if existing is not None:
            if shards is not None and shards != existing:
                raise RegistryError(
                    f"registry {self.root} has {existing} shard(s); "
                    f"cannot reopen with shards={shards}"
                )
            self.shards = existing
        else:
            self.shards = shards if shards is not None else 1

    # -- manifest ---------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """The single-shard manifest path (legacy callers/tests)."""
        return self._manifest_path(0)

    def _read_config(self) -> int | None:
        config = self.root / REGISTRY_CONFIG
        if not config.exists():
            return None
        try:
            data = json.loads(config.read_text())
            return int(data["shards"])
        except (OSError, ValueError, KeyError) as exc:
            raise RegistryError(
                f"corrupt registry config {config}: {exc}"
            ) from exc

    def _write_config(self) -> None:
        if self.shards == 1:
            return  # legacy layout needs no config file
        config = self.root / REGISTRY_CONFIG
        if not config.exists():
            # per-process tmp name: two creators racing here both write
            # the same content, and neither can steal the other's tmp
            tmp = config.with_name(f".registry-{os.getpid()}.tmp")
            tmp.write_text(json.dumps(
                {"version": MANIFEST_VERSION, "shards": self.shards},
                indent=2, sort_keys=True) + "\n")
            os.replace(tmp, config)

    def shard_of(self, run_id: str) -> int:
        if self.shards == 1:
            return 0
        digest = hashlib.sha256(run_id.encode("utf-8")).hexdigest()
        return int(digest[:8], 16) % self.shards

    def _manifest_path(self, shard: int) -> Path:
        if self.shards == 1:
            return self.root / MANIFEST
        return self.root / f"manifest-{shard:02d}.json"

    def _lock_path(self, shard: int) -> Path:
        return self.root / f".shard-{shard:02d}.lock"

    def _shard_lock(self, shard: int):
        """The advisory write lock for one shard's read-modify-write."""
        return file_lock(self._lock_path(shard))

    def _load_shard(self, shard: int) -> dict:
        path = self._manifest_path(shard)
        if not path.exists():
            return {"version": MANIFEST_VERSION, "runs": {}}
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(
                f"corrupt registry manifest {path}: {exc}"
            ) from exc
        if data.get("version") != MANIFEST_VERSION:
            raise RegistryError(
                f"unsupported manifest version {data.get('version')!r} "
                f"in {path}"
            )
        return data

    def _save_shard(self, shard: int, data: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self._write_config()
        path = self._manifest_path(shard)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)

    def _all_runs(self) -> dict[str, dict]:
        merged: dict[str, dict] = {}
        for shard in range(self.shards):
            merged.update(self._load_shard(shard)["runs"])
        return merged

    def _info(self, run_id: str, entry: dict) -> RunInfo:
        return RunInfo(
            run_id=run_id,
            path=self.root / entry["file"],
            created=entry.get("created", ""),
            size_bytes=int(entry.get("size_bytes", 0)),
            meta=entry.get("meta", {}),
            fingerprint=entry.get("fingerprint", ""),
        )

    # -- operations -------------------------------------------------------

    def add(self, archive_path: str | Path, run_id: str | None = None,
            move: bool = False) -> RunInfo:
        """Register an archive (copied — or moved — into the registry).

        ``run_id`` defaults to the archive's filename stem, uniquified
        with a numeric suffix on collision.
        """
        info, _created = self.add_dedup(archive_path, run_id=run_id,
                                        move=move, dedup_identical=False)
        return info

    def add_dedup(self, archive_path: str | Path, run_id: str | None = None,
                  move: bool = False, dedup_identical: bool = True,
                  ) -> tuple[RunInfo, bool]:
        """Register an archive, deduplicating byte-identical re-uploads.

        Returns ``(info, created)``.  With ``dedup_identical``, an
        explicit ``run_id`` that already exists with the *same archive
        fingerprint* returns the existing entry (``created=False``)
        instead of raising — the idempotent-ingest contract the serve
        layer needs.  A same-id, *different*-fingerprint collision still
        raises.

        The decision is made under the target shard's file lock, so two
        concurrent identical uploads register exactly one entry.
        """
        archive_path = Path(archive_path)
        try:
            with Archive(archive_path) as archive:
                meta = dict(archive.meta)
        except (OSError, ArchiveError) as exc:
            raise RegistryError(f"cannot register {archive_path}: {exc}") from exc
        fingerprint = _sha256_file(archive_path)
        base = _ID_RE.sub("-", run_id or archive_path.stem).strip("-") or "run"
        explicit = run_id is not None
        candidate, n = base, 1
        while True:
            shard = self.shard_of(candidate)
            with self._shard_lock(shard):
                data = self._load_shard(shard)
                runs = data["runs"]
                existing = runs.get(candidate)
                if existing is None:
                    entry = self._install(archive_path, candidate, meta,
                                          fingerprint, move)
                    runs[candidate] = entry
                    self._save_shard(shard, data)
                    return self._info(candidate, entry), True
                if explicit:
                    if (dedup_identical
                            and existing.get("fingerprint") == fingerprint):
                        if move:
                            archive_path.unlink(missing_ok=True)
                        return self._info(candidate, existing), False
                    raise RegistryError(
                        f"run id {candidate!r} already registered"
                    )
            # auto ids uniquify: next candidate may hash to another
            # shard, so the lock is released and retaken per attempt
            n += 1
            candidate = f"{base}-{n}"

    def _install(self, archive_path: Path, run_id: str, meta: dict,
                 fingerprint: str, move: bool) -> dict:
        """Copy/move the archive into place and build its manifest entry."""
        self.root.mkdir(parents=True, exist_ok=True)
        dest = self.root / f"{run_id}.aptrc"
        if move:
            shutil.move(str(archive_path), dest)
        else:
            shutil.copyfile(archive_path, dest)
        return {
            "file": dest.name,
            "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "size_bytes": dest.stat().st_size,
            "meta": meta,
            "fingerprint": fingerprint,
        }

    def find_fingerprint(self, fingerprint: str) -> RunInfo | None:
        """The first registered run whose archive has this sha256, if any."""
        for rid, entry in sorted(self._all_runs().items()):
            if entry.get("fingerprint") == fingerprint:
                return self._info(rid, entry)
        return None

    def list(self) -> list[RunInfo]:
        """All registered runs, sorted by id."""
        return [self._info(rid, e)
                for rid, e in sorted(self._all_runs().items())]

    def get(self, run_id: str) -> RunInfo:
        """Look up one run by exact id."""
        runs = self._all_runs()
        try:
            return self._info(run_id, runs[run_id])
        except KeyError:
            raise RegistryError(
                f"unknown run {run_id!r} (have "
                f"{sorted(runs) or 'no runs'})"
            ) from None

    def resolve(self, ref: str) -> RunInfo:
        """Look up a run by exact id or unique prefix."""
        runs = self._all_runs()
        if ref in runs:
            return self._info(ref, runs[ref])
        matches = [rid for rid in runs if rid.startswith(ref)]
        if len(matches) == 1:
            return self._info(matches[0], runs[matches[0]])
        if not matches:
            raise RegistryError(
                f"unknown run {ref!r} (have {sorted(runs) or 'no runs'})"
            )
        raise RegistryError(f"ambiguous run {ref!r}: matches {sorted(matches)}")

    def open(self, ref: str) -> Archive:
        """Open the archive of one registered run."""
        return Archive(self.resolve(ref).path)

    def remove(self, ref: str) -> RunInfo:
        """Delete a run's archive and drop it from the manifest."""
        info = self.resolve(ref)
        shard = self.shard_of(info.run_id)
        with self._shard_lock(shard):
            data = self._load_shard(shard)
            data["runs"].pop(info.run_id, None)
            self._save_shard(shard, data)
        if info.path.exists():
            info.path.unlink()
        return info


def default_registry_root() -> Path:
    """``$ACTORPROF_RUNS`` or ``~/.actorprof/runs``."""
    env = os.environ.get("ACTORPROF_RUNS")
    if env:
        return Path(env)
    return Path.home() / ".actorprof" / "runs"
