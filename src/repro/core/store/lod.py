"""Level-of-detail (LOD) summary pyramids stored in ``.aptrc`` footers.

The Traveler insight (PAPERS.md): interactive trace navigation comes
from *precomputed aggregated interval indexes*, not raw event
rendering.  This module computes time-bucketed per-PE and per-edge
aggregates at geometrically coarsening resolutions and stores them as
two ordinary archive sections, encoded with the existing delta+varint
codec — pre-pyramid readers simply ignore the extra footer entries.

Sections
--------

``lod_pe``   — per-PE occupancy:   level, bucket, pe, t_main, t_proc, t_comm
``lod_edge`` — per-edge traffic:   level, bucket, src, dst, count, bytes

Each *level* is written as its own chunk, so the footer's per-chunk
``(min, max, sum)`` stats let :class:`~repro.core.store.frame.Frame`
prune straight to one level's payload: reading level *k* decodes
O(buckets at level k) bytes no matter how many raw events the run had.

Levels are finest-first.  Level 0 uses a power-of-two bucket width
``w0`` (the smallest power of two giving at most ``base`` buckets over
the run's horizon); level ``k`` uses ``w0 << k``.  Power-of-two widths
make every coarser bucket the exact pairwise sum of two finer ones, so
the whole pyramid is built with one pass over the events plus cheap
folds — and every level's totals are identical by construction (the
differential tests assert this against full decodes).

Archives that never saw a timeline (the usual one-shot export carries
only aggregate traces) get a degenerate *flat* pyramid: one level, one
bucket spanning the whole run, ``time_resolved=False`` in the section
attrs.  Viewport queries still work; they just cannot zoom.

:func:`backfill_pyramid` retrofits existing archives in place-or-copy:
the original data region is copied verbatim (chunk offsets stay valid,
so the pre-existing bytes are untouched), pyramid chunks are appended,
and an extended footer is written.  Backfilling is deterministic —
backfilling the same archive twice produces identical bytes.
"""

from __future__ import annotations

import json
import shutil
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.store.archive import (
    MAGIC,
    TAIL_MAGIC,
    TRAILER,
    Archive,
    ArchiveError,
)
from repro.core.store.codec import encode_column
from repro.core.store.frame import Frame

#: Section names; unknown to pre-pyramid readers, which ignore them.
PE_SECTION = "lod_pe"
EDGE_SECTION = "lod_edge"

PE_COLUMNS = ("level", "bucket", "pe", "t_main", "t_proc", "t_comm")
EDGE_COLUMNS = ("level", "bucket", "src", "dst", "count", "bytes")

#: Nominal bucket count of the finest level / the coarsest level.
DEFAULT_BASE = 1024
DEFAULT_FLOOR = 64

LOD_VERSION = 1


class LodError(ArchiveError):
    """Raised for malformed or missing pyramid sections."""


def _pow2_at_least(n: int) -> int:
    """Smallest power of two >= max(n, 1)."""
    return 1 if n <= 1 else 1 << (n - 1).bit_length()


def level_widths(horizon: int, base: int = DEFAULT_BASE,
                 floor: int = DEFAULT_FLOOR) -> list[int]:
    """Bucket widths (cycles), finest level first.

    Level 0 has at most ``base`` buckets across ``horizon``; each
    coarser level doubles the width, down to a nominal ``floor``
    buckets.  ``base`` and ``floor`` must be powers of two.
    """
    for name, v in (("base", base), ("floor", floor)):
        if v < 1 or v & (v - 1):
            raise ValueError(f"{name} must be a power of two, got {v}")
    if floor > base:
        raise ValueError(f"floor {floor} exceeds base {base}")
    w0 = _pow2_at_least(-(-max(horizon, 1) // base))
    n_levels = (base // floor).bit_length()  # log2(base/floor) + 1
    return [w0 << k for k in range(n_levels)]


@dataclass
class Pyramid:
    """In-memory pyramid: per-level sparse columns, finest first.

    ``pe_levels[k]`` / ``edge_levels[k]`` hold the level-``k`` columns
    (without the ``level`` column, which is added at write time).  The
    per-PE side may be empty (streaming writers without a timeline).
    """

    horizon: int
    n_pes: int
    widths: list[int]
    time_resolved: bool
    pe_levels: list[dict[str, np.ndarray]]
    edge_levels: list[dict[str, np.ndarray]]

    @property
    def levels(self) -> int:
        return len(self.widths)

    def buckets(self) -> list[int]:
        """Actual bucket count of each level."""
        return [-(-self.horizon // w) for w in self.widths]

    def attrs(self) -> dict:
        return {
            "lod_version": LOD_VERSION,
            "horizon": int(self.horizon),
            "n_pes": int(self.n_pes),
            "time_resolved": bool(self.time_resolved),
            "widths": [int(w) for w in self.widths],
            "buckets": [int(b) for b in self.buckets()],
        }


@dataclass(frozen=True)
class PyramidInfo:
    """Pyramid shape, read from section attrs alone (no payload decode)."""

    horizon: int
    n_pes: int
    widths: tuple[int, ...]
    buckets: tuple[int, ...]
    time_resolved: bool
    has_pe: bool
    has_edges: bool

    @property
    def levels(self) -> int:
        return len(self.widths)


# ----------------------------------------------------------------------
# building
# ----------------------------------------------------------------------

def _spread_span(row: np.ndarray, start: int, end: int, width: int) -> None:
    """Distribute the cycles of ``[start, end)`` across ``row`` buckets."""
    if end <= start:
        return
    b0 = start // width
    b1 = (end - 1) // width
    if b0 == b1:
        row[b0] += end - start
        return
    row[b0] += (b0 + 1) * width - start
    row[b1] += end - b1 * width
    if b1 > b0 + 1:
        row[b0 + 1:b1] += width


def _pe_dense_to_columns(main: np.ndarray, proc: np.ndarray,
                         comm: np.ndarray) -> dict[str, np.ndarray]:
    """Sparse (bucket-major) columns from dense (n_pes, nb) arrays."""
    occupied = (main + proc + comm).T  # (nb, n_pes): bucket-major order
    b_idx, pe_idx = np.nonzero(occupied > 0)
    return {
        "bucket": b_idx.astype(np.int64),
        "pe": pe_idx.astype(np.int64),
        "t_main": main.T[b_idx, pe_idx],
        "t_proc": proc.T[b_idx, pe_idx],
        "t_comm": comm.T[b_idx, pe_idx],
    }


def _edge_group(flat: np.ndarray, counts: np.ndarray, nbytes: np.ndarray,
                n_pes: int) -> dict[str, np.ndarray]:
    """Group (bucket*P² + src*P + dst) keys; output sorted bucket-major."""
    uniq, inverse = np.unique(flat, return_inverse=True)
    count_sums = np.bincount(inverse, weights=counts,
                             minlength=len(uniq)).astype(np.int64)
    byte_sums = np.bincount(inverse, weights=nbytes,
                            minlength=len(uniq)).astype(np.int64)
    return {
        "bucket": uniq // (n_pes * n_pes),
        "src": (uniq // n_pes) % n_pes,
        "dst": uniq % n_pes,
        "count": count_sums,
        "bytes": byte_sums,
    }


def _fold_pe(cols: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """One coarsening step on per-PE columns (bucket → bucket // 2)."""
    key = cols["bucket"] // 2 * 2 ** 32 + cols["pe"]  # pes < 2**32 always
    uniq, inverse = np.unique(key, return_inverse=True)
    out = {"bucket": uniq // 2 ** 32, "pe": uniq % 2 ** 32}
    for c in ("t_main", "t_proc", "t_comm"):
        out[c] = np.bincount(inverse, weights=cols[c],
                             minlength=len(uniq)).astype(np.int64)
    return out


def _fold_edge(cols: dict[str, np.ndarray], n_pes: int) -> dict[str, np.ndarray]:
    """One coarsening step on per-edge columns."""
    flat = (cols["bucket"] // 2) * (n_pes * n_pes) \
        + cols["src"] * n_pes + cols["dst"]
    return _edge_group(flat, cols["count"], cols["bytes"], n_pes)


def _empty_pe() -> dict[str, np.ndarray]:
    z = np.zeros(0, dtype=np.int64)
    return {"bucket": z, "pe": z, "t_main": z, "t_proc": z, "t_comm": z}


def _empty_edge() -> dict[str, np.ndarray]:
    z = np.zeros(0, dtype=np.int64)
    return {"bucket": z, "src": z, "dst": z, "count": z, "bytes": z}


def build_pyramid(timeline, *, base: int = DEFAULT_BASE,
                  floor: int = DEFAULT_FLOOR) -> Pyramid:
    """Full time-resolved pyramid from a
    :class:`~repro.core.timeline.TimelineTrace`.

    MAIN/PROC occupancy comes from region spans, T_COMM per bucket is
    the FINISH coverage minus MAIN and PROC (clipped at zero — exactly
    the paper's derived-COMM rule, per bucket), and edges come from the
    instrumented net events (the same stream the physical trace
    aggregates, so per-level edge totals match the physical section).
    """
    n_pes = timeline.n_pes
    horizon = max(timeline.end_time(), 1)
    widths = level_widths(horizon, base, floor)
    w0 = widths[0]
    nb0 = -(-horizon // w0)

    main = np.zeros((n_pes, nb0), dtype=np.int64)
    proc = np.zeros((n_pes, nb0), dtype=np.int64)
    total = np.zeros((n_pes, nb0), dtype=np.int64)
    targets = {"MAIN": main, "PROC": proc, "FINISH": total}
    for span in timeline.spans():
        row = targets.get(span.region)
        if row is not None:
            _spread_span(row[span.pe], span.start, span.end, w0)
    comm = np.maximum(total - main - proc, 0)
    pe0 = _pe_dense_to_columns(main, proc, comm)

    events = timeline.net_events()
    if events:
        times = np.fromiter((e.time for e in events), dtype=np.int64,
                            count=len(events))
        srcs = np.fromiter((e.src for e in events), dtype=np.int64,
                           count=len(events))
        dsts = np.fromiter((e.dst for e in events), dtype=np.int64,
                           count=len(events))
        sizes = np.fromiter((e.nbytes for e in events), dtype=np.int64,
                            count=len(events))
        flat = (times // w0) * (n_pes * n_pes) + srcs * n_pes + dsts
        edge0 = _edge_group(flat, np.ones(len(events), dtype=np.int64),
                            sizes, n_pes)
    else:
        edge0 = _empty_edge()

    pe_levels = [pe0]
    edge_levels = [edge0]
    for _ in widths[1:]:
        pe_levels.append(_fold_pe(pe_levels[-1]))
        edge_levels.append(_fold_edge(edge_levels[-1], n_pes))
    return Pyramid(horizon, n_pes, widths, True, pe_levels, edge_levels)


def build_flat_pyramid(*, n_pes: int, horizon: int,
                       overall=None,
                       edge_count: np.ndarray | None = None,
                       edge_bytes: np.ndarray | None = None) -> Pyramid:
    """Single-bucket pyramid from aggregate traces (no timestamps).

    ``overall`` supplies per-PE T_MAIN/T_PROC/T_COMM; the edge matrices
    (``n_pes`` × ``n_pes``) supply traffic.  Used by the backfill path
    and by one-shot exports that ran without a timeline.
    """
    horizon = max(int(horizon), 1)
    if overall is not None:
        main = np.asarray(overall.t_main, dtype=np.int64)
        proc = np.asarray(overall.t_proc, dtype=np.int64)
        comm = np.maximum(
            np.asarray(overall.t_total, dtype=np.int64) - main - proc, 0)
        pe0 = _pe_dense_to_columns(main[:, None], proc[:, None],
                                   comm[:, None])
    else:
        pe0 = _empty_pe()
    if edge_count is not None:
        edge_count = np.asarray(edge_count, dtype=np.int64)
        if edge_bytes is None:
            edge_bytes = np.zeros_like(edge_count)
        src, dst = np.nonzero(edge_count > 0)
        edge0 = {
            "bucket": np.zeros(len(src), dtype=np.int64),
            "src": src.astype(np.int64),
            "dst": dst.astype(np.int64),
            "count": edge_count[src, dst],
            "bytes": np.asarray(edge_bytes, dtype=np.int64)[src, dst],
        }
    else:
        edge0 = _empty_edge()
    return Pyramid(horizon, n_pes, [horizon], False, [pe0], [edge0])


def build_pyramid_for_export(*, timeline=None, overall=None, physical=None,
                             logical=None, base: int = DEFAULT_BASE,
                             floor: int = DEFAULT_FLOOR) -> Pyramid | None:
    """The pyramid for one run's in-memory traces, or None if no source.

    A timeline gives the full multi-level pyramid; otherwise the
    aggregate traces degrade to a flat (single-bucket) one.
    """
    if timeline is not None and (timeline.span_count() or timeline.net_events()):
        return build_pyramid(timeline, base=base, floor=floor)
    n_pes = None
    edge_count = edge_bytes = None
    if physical is not None:
        n_pes = physical.n_pes
        edge_count = physical.matrix()
        edge_bytes = physical.bytes_matrix()
    elif logical is not None:
        n_pes = logical.spec.n_pes
        edge_count = logical.matrix()
        edge_bytes = logical.bytes_matrix()
    if overall is not None:
        n_pes = overall.n_pes if n_pes is None else n_pes
    if n_pes is None:
        return None
    horizon = int(np.max(overall.t_total)) if overall is not None else 1
    return build_flat_pyramid(n_pes=n_pes, horizon=horizon, overall=overall,
                              edge_count=edge_count, edge_bytes=edge_bytes)


class StreamingEdgeLod:
    """Streaming bucketed edge accumulator for :class:`TraceArchiver`.

    Holds one dict entry per (bucket, src, dst) seen at the *current*
    bucket width; when the run outgrows ``base`` buckets the width
    doubles and the buckets fold pairwise — O(log horizon) folds total,
    so memory stays O(base × live edges) for a run of any length.
    """

    def __init__(self, base: int = DEFAULT_BASE) -> None:
        if base < 1 or base & (base - 1):
            raise ValueError(f"base must be a power of two, got {base}")
        self.base = base
        self.width = 1
        self.horizon = 0
        self._acc: dict[tuple[int, int, int], list[int]] = {}

    def add(self, t: int, src: int, dst: int, nbytes: int) -> None:
        if t >= self.horizon:
            self.horizon = t + 1
        while t // self.width >= self.base:
            self._fold()
        key = (t // self.width, src, dst)
        entry = self._acc.get(key)
        if entry is None:
            self._acc[key] = [1, nbytes]
        else:
            entry[0] += 1
            entry[1] += nbytes

    def _fold(self) -> None:
        self.width *= 2
        folded: dict[tuple[int, int, int], list[int]] = {}
        for (b, src, dst), (count, nbytes) in self._acc.items():
            key = (b // 2, src, dst)
            entry = folded.get(key)
            if entry is None:
                folded[key] = [count, nbytes]
            else:
                entry[0] += count
                entry[1] += nbytes
        self._acc = folded

    def to_pyramid(self, n_pes: int, *, floor: int = DEFAULT_FLOOR) -> Pyramid:
        """Finalize into an edge-only pyramid (empty per-PE levels)."""
        horizon = max(self.horizon, 1)
        widths = level_widths(horizon, self.base, floor)
        while self.width < widths[0]:
            self._fold()
        keys = sorted(self._acc)
        edge0 = {
            "bucket": np.array([k[0] for k in keys], dtype=np.int64),
            "src": np.array([k[1] for k in keys], dtype=np.int64),
            "dst": np.array([k[2] for k in keys], dtype=np.int64),
            "count": np.array([self._acc[k][0] for k in keys],
                              dtype=np.int64),
            "bytes": np.array([self._acc[k][1] for k in keys],
                              dtype=np.int64),
        }
        if not keys:
            edge0 = _empty_edge()
        edge_levels = [edge0]
        for _ in widths[1:]:
            edge_levels.append(_fold_edge(edge_levels[-1], n_pes))
        pe_levels = [_empty_pe() for _ in widths]
        return Pyramid(horizon, n_pes, widths, True, pe_levels, edge_levels)


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------

def write_pyramid(writer, pyramid: Pyramid) -> None:
    """Append the pyramid sections to an open
    :class:`~repro.core.store.writer.ArchiveWriter` (one chunk per
    level, so chunk stats on the ``level`` column prune level reads)."""
    attrs = pyramid.attrs()
    for name, columns, levels in (
        (PE_SECTION, PE_COLUMNS, pyramid.pe_levels),
        (EDGE_SECTION, EDGE_COLUMNS, pyramid.edge_levels),
    ):
        section = writer.begin_section(name, columns, attrs=attrs)
        for level, cols in enumerate(levels):
            n = len(cols["bucket"])
            section.write_chunk(
                {"level": np.full(n, level, dtype=np.int64), **cols})
        section.end()


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------

def has_pyramid(archive: Archive) -> bool:
    """Does this archive carry LOD pyramid sections?"""
    return archive.has_section(PE_SECTION) or archive.has_section(EDGE_SECTION)


def pyramid_info(archive: Archive) -> PyramidInfo | None:
    """Pyramid shape from section attrs alone; None when absent or
    malformed (graceful degradation: callers print "none", not a
    traceback)."""
    for name in (PE_SECTION, EDGE_SECTION):
        if not archive.has_section(name):
            continue
        attrs = archive.section(name).attrs
        try:
            widths = tuple(int(w) for w in attrs["widths"])
            buckets = tuple(int(b) for b in attrs["buckets"])
            if not widths or len(widths) != len(buckets):
                return None
            return PyramidInfo(
                horizon=int(attrs["horizon"]),
                n_pes=int(attrs["n_pes"]),
                widths=widths,
                buckets=buckets,
                time_resolved=bool(attrs["time_resolved"]),
                has_pe=archive.has_section(PE_SECTION)
                and archive.section(PE_SECTION).rows > 0,
                has_edges=archive.has_section(EDGE_SECTION)
                and archive.section(EDGE_SECTION).rows > 0,
            )
        except (KeyError, TypeError, ValueError):
            return None
    return None


def read_level(archive: Archive, kind: str, level: int) -> dict[str, np.ndarray]:
    """Decode one level's columns of one pyramid side (``pe``/``edge``).

    Rides the :class:`Frame` chunk-stat pruning: with the one-chunk-
    per-level layout only that level's payload bytes are read.
    """
    name = {"pe": PE_SECTION, "edge": EDGE_SECTION}.get(kind)
    if name is None:
        raise LodError(f"unknown pyramid side {kind!r} (want pe/edge)")
    if not archive.has_section(name):
        raise LodError(f"{archive.path}: archive has no {name!r} section "
                       "(backfill with `actorprof viz RUN --backfill`)")
    section = archive.section(name)
    columns = PE_COLUMNS if kind == "pe" else EDGE_COLUMNS
    frame = Frame(section)
    frame.prune("level", "==", level)
    levels = frame.column("level")
    mask = levels == level
    full = bool(mask.all())
    out = {}
    for c in columns[1:]:
        values = frame.column(c)
        out[c] = values if full else values[mask]
    return out


# ----------------------------------------------------------------------
# backfill
# ----------------------------------------------------------------------

def build_pyramid_from_archive(archive: Archive, *,
                               base: int = DEFAULT_BASE,
                               floor: int = DEFAULT_FLOOR) -> Pyramid:
    """A flat pyramid from an archive's aggregate sections.

    ``.aptrc`` archives store no per-event timestamps, so the backfill
    degrades to one bucket spanning the run (``time_resolved=False``);
    per-PE occupancy comes from ``overall`` and edges from ``physical``
    (falling back to ``logical``).
    """
    from repro.core.store.archive import load_overall
    from repro.core.store.frame import scatter_matrix

    n_pes = archive.n_pes
    overall = (load_overall(archive) if archive.has_section("overall")
               else None)
    edge_count = edge_bytes = None
    for name in ("physical", "logical"):
        if not archive.has_section(name):
            continue
        frame = Frame(archive.section(name))
        src, dst = frame.column("src"), frame.column("dst")
        count, size = frame.column("count"), frame.column("size")
        edge_count = scatter_matrix(src, dst, count, (n_pes, n_pes))
        edge_bytes = scatter_matrix(src, dst, count * size, (n_pes, n_pes))
        break
    horizon = int(np.max(overall.t_total)) if overall is not None else 1
    return build_flat_pyramid(n_pes=n_pes, horizon=horizon, overall=overall,
                              edge_count=edge_count, edge_bytes=edge_bytes)


def _split_archive(path: Path) -> tuple[bytes, dict]:
    """Read an archive's raw data region (magic + chunks) and footer."""
    raw = path.read_bytes()
    tail_len = TRAILER.size + len(TAIL_MAGIC)
    if len(raw) < len(MAGIC) + tail_len or not raw.startswith(MAGIC) \
            or not raw.endswith(TAIL_MAGIC):
        raise ArchiveError(f"{path}: not a .aptrc archive")
    foot_off, foot_len = TRAILER.unpack(
        raw[len(raw) - tail_len:len(raw) - len(TAIL_MAGIC)])
    if foot_off + foot_len > len(raw) - tail_len:
        raise ArchiveError(f"{path}: footer index out of bounds")
    footer = json.loads(zlib.decompress(raw[foot_off:foot_off + foot_len]))
    return raw[:foot_off], footer


def _encode_appended_sections(pyramid: Pyramid, start: int) -> tuple[bytes, dict]:
    """Encode pyramid chunks for appending at file offset ``start``.

    Mirrors :class:`SectionWriter`'s footer entry layout exactly
    (``[offset, length, encoding, count, [min, max, sum]]``) so
    backfilled and writer-emitted pyramids read identically.
    """
    attrs = pyramid.attrs()
    buf = bytearray()
    sections: dict[str, dict] = {}
    for name, columns, levels in (
        (PE_SECTION, PE_COLUMNS, pyramid.pe_levels),
        (EDGE_SECTION, EDGE_COLUMNS, pyramid.edge_levels),
    ):
        chunks: dict[str, list] = {c: [] for c in columns}
        rows = 0
        for level, cols in enumerate(levels):
            n = len(cols["bucket"])
            if n == 0:
                continue
            full = {"level": np.full(n, level, dtype=np.int64), **cols}
            for c in columns:
                arr = np.asarray(full[c], dtype=np.int64).ravel()
                payload, encoding = encode_column(arr)
                offset = start + len(buf)
                buf += payload
                chunks[c].append([offset, len(payload), encoding, n,
                                  [int(arr.min()), int(arr.max()),
                                   int(arr.sum(dtype=np.int64))]])
            rows += n
        sections[name] = {"attrs": attrs, "rows": rows, "columns": chunks}
    return bytes(buf), sections


def backfill_pyramid(path: str | Path, out: str | Path | None = None, *,
                     base: int = DEFAULT_BASE,
                     floor: int = DEFAULT_FLOOR) -> Path:
    """Add pyramid sections to an existing archive (in place by default).

    The original data region is copied byte-for-byte — existing chunk
    offsets stay valid and the pre-pyramid reader path sees the exact
    same sections — with the pyramid chunks appended and the footer
    extended.  Archives that already carry a pyramid are left unchanged
    (copied verbatim when ``out`` names a different path).
    """
    path = Path(path)
    out_path = Path(out) if out is not None else path
    data, footer = _split_archive(path)
    if PE_SECTION in footer.get("sections", {}) \
            or EDGE_SECTION in footer.get("sections", {}):
        if out_path != path:
            shutil.copyfile(path, out_path)
        return out_path
    with Archive(path) as archive:
        pyramid = build_pyramid_from_archive(archive, base=base, floor=floor)
    appended, new_sections = _encode_appended_sections(pyramid, len(data))
    footer.setdefault("sections", {}).update(new_sections)
    payload = zlib.compress(
        json.dumps(footer, separators=(",", ":")).encode("utf-8"), 6)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = out_path.with_name(out_path.name + ".lod-tmp")
    with tmp.open("wb") as f:
        f.write(data)
        f.write(appended)
        f.write(payload)
        f.write(TRAILER.pack(len(data) + len(appended), len(payload)))
        f.write(TAIL_MAGIC)
    tmp.replace(out_path)
    return out_path
