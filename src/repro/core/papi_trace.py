"""PAPI region trace: hardware counters for MAIN and PROC segments.

Section III-A: ActorProf profiles the user's code regions (MAIN = message
construction + local computation, PROC = message handling) with up to four
PAPI events, excluding Conveyors/HClib internals by placing PAPI start and
stop calls at the region boundaries.  File format (one file per PE)::

    PEi_PAPI.csv:
      source node, source PE, dst node, dst PE, pkt size, MAILBOXID,
      NUM_SENDS, <event 0>, <event 1>, ...

Each row is a sampled send: NUM_SENDS is the cumulative send count of that
PE at sampling time, and the event columns are the cumulative user-region
(MAIN + PROC) counter values — so the final row of each file carries the
per-PE totals plotted in the paper's Figures 10–11.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class PAPIRow:
    """One sampled send in the PAPI trace."""

    src_node: int
    src_pe: int
    dst_node: int
    dst_pe: int
    pkt_size: int
    mailbox: int
    num_sends: int
    values: tuple[int, ...]


class PAPITrace:
    """Recorder + container for the PAPI region trace of one run."""

    def __init__(self, spec: MachineSpec, events: tuple[str, ...]) -> None:
        self.spec = spec
        self.events = tuple(events)
        self._rows: list[list[PAPIRow]] = [[] for _ in range(spec.n_pes)]
        # final per-PE, per-region counter totals, filled by the profiler
        self.region_totals: dict[str, np.ndarray] = {
            "MAIN": np.zeros((spec.n_pes, len(self.events)), dtype=np.int64),
            "PROC": np.zeros((spec.n_pes, len(self.events)), dtype=np.int64),
        }

    # ------------------------------------------------------------------

    def record(
        self,
        src: int,
        dst: int,
        pkt_size: int,
        mailbox: int,
        num_sends: int,
        values: list[int] | tuple[int, ...],
    ) -> None:
        """Record one sampled send row."""
        self._rows[src].append(
            PAPIRow(
                src_node=self.spec.node_of(src),
                src_pe=src,
                dst_node=self.spec.node_of(dst),
                dst_pe=dst,
                pkt_size=pkt_size,
                mailbox=mailbox,
                num_sends=num_sends,
                values=tuple(int(v) for v in values),
            )
        )

    def rows(self, pe: int) -> list[PAPIRow]:
        return list(self._rows[pe])

    @property
    def n_pes(self) -> int:
        return self.spec.n_pes

    def totals_per_pe(self, event: str, regions: tuple[str, ...] = ("MAIN", "PROC")) -> np.ndarray:
        """Final user-region counter total per PE for one event.

        This is the quantity behind the paper's PAPI bar graphs
        (e.g. total PAPI_TOT_INS per PE, Figures 10–11).
        """
        if event not in self.events:
            raise KeyError(f"event {event!r} was not recorded; have {self.events}")
        col = self.events.index(event)
        out = np.zeros(self.n_pes, dtype=np.int64)
        for region in regions:
            out += self.region_totals[region][:, col]
        return out

    # ------------------------------------------------------------------
    # archive adapters (.aptrc columnar store)
    # ------------------------------------------------------------------

    def to_columns(self) -> tuple[dict[str, np.ndarray], dict]:
        """Columnar form for the ``.aptrc`` store: (columns, attrs).

        One row per sampled send, PE-major in recording order; the event
        values become one column each (``ev_0`` …).  The small per-PE
        region totals travel in the attrs.
        """
        rows = [r for pe_rows in self._rows for r in pe_rows]
        ne = len(self.events)
        columns = {
            "src": np.asarray([r.src_pe for r in rows], dtype=np.int64),
            "dst": np.asarray([r.dst_pe for r in rows], dtype=np.int64),
            "pkt_size": np.asarray([r.pkt_size for r in rows], dtype=np.int64),
            "mailbox": np.asarray([r.mailbox for r in rows], dtype=np.int64),
            "num_sends": np.asarray([r.num_sends for r in rows], dtype=np.int64),
        }
        for i in range(ne):
            columns[f"ev_{i}"] = np.asarray(
                [r.values[i] for r in rows], dtype=np.int64
            )
        attrs = {
            "nodes": self.spec.nodes,
            "pes_per_node": self.spec.pes_per_node,
            "machine_name": self.spec.name,
            "events": list(self.events),
            "main_totals": self.region_totals["MAIN"].tolist(),
            "proc_totals": self.region_totals["PROC"].tolist(),
        }
        return columns, attrs

    @classmethod
    def from_columns(cls, columns: dict, attrs: dict) -> "PAPITrace":
        """Rebuild a trace from archive columns (inverse of to_columns)."""
        spec = MachineSpec(
            nodes=int(attrs["nodes"]),
            pes_per_node=int(attrs["pes_per_node"]),
            name=str(attrs.get("machine_name", "simulated-cluster")),
        )
        events = tuple(str(e) for e in attrs["events"])
        trace = cls(spec, events)
        event_cols = [columns[f"ev_{i}"].tolist() for i in range(len(events))]
        n_pes = spec.n_pes
        for i, (src, dst, pkt, mb, ns) in enumerate(zip(
            columns["src"].tolist(), columns["dst"].tolist(),
            columns["pkt_size"].tolist(), columns["mailbox"].tolist(),
            columns["num_sends"].tolist(),
        )):
            if not (0 <= src < n_pes and 0 <= dst < n_pes):
                raise ValueError(
                    f"archived PAPI row has PE pair ({src}, {dst}) out of "
                    f"range for n_pes={n_pes}"
                )
            trace.record(src, dst, pkt, mb, ns, [col[i] for col in event_cols])
        for region, key in (("MAIN", "main_totals"), ("PROC", "proc_totals")):
            totals = attrs.get(key)
            if totals is not None:
                trace.region_totals[region] = np.asarray(totals, dtype=np.int64)
        return trace

    # ------------------------------------------------------------------

    def write(self, directory: str | Path) -> list[Path]:
        """Write ``PEi_PAPI.csv`` per PE; returns the paths written."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        header = (
            "# source node, source PE, dst node, dst PE, pkt size, "
            "MAILBOXID, NUM_SENDS, " + ", ".join(self.events) + "\n"
        )
        paths = []
        for pe in range(self.n_pes):
            path = directory / f"PE{pe}_PAPI.csv"
            with path.open("w") as f:
                f.write(header)
                for r in self._rows[pe]:
                    vals = ",".join(str(v) for v in r.values)
                    f.write(
                        f"{r.src_node},{r.src_pe},{r.dst_node},{r.dst_pe},"
                        f"{r.pkt_size},{r.mailbox},{r.num_sends},{vals}\n"
                    )
            paths.append(path)
        return paths


def parse_papi_dir(directory: str | Path, n_pes: int) -> PAPITrace:
    """Parse a directory of ``PEi_PAPI.csv`` files back into a trace.

    Region totals are not stored in the CSV; after parsing,
    ``totals_per_pe`` is reconstructed from each PE's final row.

    Malformed input — non-integer fields, rows whose column count does not
    match the event header (a mixed-schema file), PE indices outside
    ``[0, n_pes)``, or headers that disagree across PEs — raises
    :class:`ValueError` with a ``path:line`` prefix pointing at the first
    offending row.
    """
    if n_pes < 1:
        raise ValueError(f"n_pes must be >= 1, got {n_pes}")
    directory = Path(directory)
    events: tuple[str, ...] | None = None
    header_origin = ""
    all_rows: list[list[tuple]] = []
    max_node = 0
    for pe in range(n_pes):
        path = directory / f"PE{pe}_PAPI.csv"
        if not path.exists():
            raise FileNotFoundError(f"missing PAPI trace file {path}")
        rows: list[tuple] = []
        with path.open() as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    cols = [c.strip() for c in line.lstrip("#").split(",")]
                    evs = tuple(c for c in cols if c.startswith("PAPI_"))
                    if events is None:
                        events = evs
                        header_origin = f"{path}:{lineno}"
                    elif events != evs:
                        raise ValueError(
                            f"{path}:{lineno}: PAPI event header {evs} "
                            f"disagrees with {events} from {header_origin}"
                        )
                    continue
                if events is None:
                    raise ValueError(
                        f"{path}:{lineno}: PAPI data row before any event "
                        f"header (expected a '# …' header line first)"
                    )
                try:
                    parts = [int(x) for x in line.split(",")]
                except ValueError:
                    raise ValueError(
                        f"{path}:{lineno}: malformed PAPI trace line: "
                        f"{line!r} (all fields must be integers)"
                    ) from None
                expected = 7 + len(events)
                if len(parts) != expected:
                    raise ValueError(
                        f"{path}:{lineno}: PAPI row has {len(parts)} fields "
                        f"but the header at {header_origin} implies "
                        f"{expected} (7 fixed + {len(events)} events) — "
                        f"mixed-schema file?"
                    )
                for label, val in (("source", parts[1]),
                                   ("destination", parts[3])):
                    if not 0 <= val < n_pes:
                        raise ValueError(
                            f"{path}:{lineno}: {label} PE {val} out of "
                            f"range for n_pes={n_pes}"
                        )
                rows.append(tuple(parts))
                max_node = max(max_node, parts[0], parts[2])
        all_rows.append(rows)
    if events is None:
        raise ValueError(f"no PAPI event header found in any file under {directory}")
    nodes = max_node + 1
    ppn = n_pes // nodes if n_pes % nodes == 0 else n_pes
    spec = MachineSpec(n_pes // ppn, ppn)
    trace = PAPITrace(spec, events)
    for pe, rows in enumerate(all_rows):
        for parts in rows:
            (_sn, src, _dn, dst, pkt, mb, ns), vals = parts[:7], parts[7:]
            trace.record(src, dst, pkt, mb, ns, vals)
        if rows:
            # last row carries the cumulative totals; attribute to MAIN for
            # bar-graph reconstruction (region split is not in the CSV)
            trace.region_totals["MAIN"][pe, :] = rows[-1][7:]
    return trace
