"""Communication heatmaps (logical and physical traces).

Mirrors the paper's mosaic-style heatmaps: a source-PE × destination-PE
grid colored by number of sends, with the last column showing each PE's
total sends and the last row each PE's total recvs.  Cell tooltips carry
the exact counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import heat_with_totals
from repro.core.viz.palette import normalize, sequential
from repro.core.viz.svg import Canvas

_CELL = 22
_GAP = 2
_MARGIN_LEFT = 90
_MARGIN_TOP = 70
_MARGIN_RIGHT = 120
_MARGIN_BOTTOM = 40


def heatmap_svg(
    matrix: np.ndarray,
    title: str = "Communication heatmap",
    log_scale: bool = True,
    show_totals: bool = True,
    xlabel: str = "destination PE",
    ylabel: str = "source PE",
) -> str:
    """Render a communication matrix as a mosaic heatmap SVG.

    ``show_totals`` appends the total-send column / total-recv row (they
    are color-normalized separately so they don't wash out the grid).
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"square matrix required, got shape {matrix.shape}")
    n = matrix.shape[0]
    full = heat_with_totals(matrix) if show_totals else matrix
    cells = n + (1 if show_totals else 0)
    grid_w = cells * (_CELL + _GAP)
    width = _MARGIN_LEFT + grid_w + _MARGIN_RIGHT
    height = _MARGIN_TOP + grid_w + _MARGIN_BOTTOM
    cv = Canvas(width, height)
    cv.text(width / 2, 28, title, size=15, anchor="middle", bold=True)
    cv.text(_MARGIN_LEFT + grid_w / 2, _MARGIN_TOP - 28, xlabel, size=11, anchor="middle")
    cv.text(18, _MARGIN_TOP + grid_w / 2, ylabel, size=11, anchor="middle", rotate=-90)

    body_norm = normalize(matrix, log=log_scale)
    totals_col = full[:n, n] if show_totals else None
    totals_row = full[n, :n] if show_totals else None
    col_norm = normalize(totals_col, log=log_scale) if show_totals else None
    row_norm = normalize(totals_row, log=log_scale) if show_totals else None

    def cell_xy(row: int, col: int) -> tuple[float, float]:
        return (
            _MARGIN_LEFT + col * (_CELL + _GAP),
            _MARGIN_TOP + row * (_CELL + _GAP),
        )

    for row in range(n):
        for col in range(n):
            x, y = cell_xy(row, col)
            v = int(matrix[row, col])
            cv.rect(
                x, y, _CELL, _CELL,
                fill=sequential(body_norm[row, col]) if v else "#f2f2f2",
                title=f"PE{row} → PE{col}: {v} sends",
            )
    if show_totals:
        for row in range(n):
            x, y = cell_xy(row, n)
            cv.rect(
                x + 4, y, _CELL, _CELL,
                fill=sequential(col_norm[row]),
                title=f"PE{row} total sends: {int(totals_col[row])}",
            )
        for col in range(n):
            x, y = cell_xy(n, col)
            cv.rect(
                x, y + 4, _CELL, _CELL,
                fill=sequential(row_norm[col]),
                title=f"PE{col} total recvs: {int(totals_row[col])}",
            )
        xs, ys = cell_xy(n, n)
        cv.text(xs + 4, ys + _CELL - 4, "Σ", size=12)

    # axis tick labels (decimated if crowded)
    step = 1 if n <= 20 else max(1, n // 16)
    for i in range(0, n, step):
        x, y = cell_xy(0, i)
        cv.text(x + _CELL / 2, _MARGIN_TOP - 8, str(i), size=9, anchor="middle")
        x, y = cell_xy(i, 0)
        cv.text(_MARGIN_LEFT - 8, y + _CELL / 2 + 3, str(i), size=9, anchor="end")
    if show_totals:
        x, _ = cell_xy(0, n)
        cv.text(x + 4 + _CELL / 2, _MARGIN_TOP - 8, "send", size=9, anchor="middle")
        _, y = cell_xy(n, 0)
        cv.text(_MARGIN_LEFT - 8, y + 4 + _CELL / 2 + 3, "recv", size=9, anchor="end")

    # color scale legend
    lx = _MARGIN_LEFT + grid_w + 24
    for i in range(40):
        cv.rect(lx, _MARGIN_TOP + (39 - i) * 3, 14, 3, fill=sequential(i / 39))
    vmax = int(matrix.max())
    cv.text(lx + 20, _MARGIN_TOP + 8, f"{vmax}", size=9)
    cv.text(lx + 20, _MARGIN_TOP + 122, "0", size=9)
    scale_note = "log scale" if log_scale else "linear"
    cv.text(lx, _MARGIN_TOP + 140, scale_note, size=8)
    return cv.to_string()


_ASCII_RAMP = " .:-=+*#%@"


def ascii_heatmap(matrix: np.ndarray, log_scale: bool = True, max_width: int = 64) -> str:
    """Terminal rendering of a communication matrix.

    Each cell is one character from a 10-step density ramp; matrices wider
    than ``max_width`` are decimated by summing blocks.
    """
    matrix = np.asarray(matrix, dtype=float)
    n = matrix.shape[0]
    if n > max_width:
        factor = -(-n // max_width)  # ceil division
        pad = (-n) % factor
        padded = np.pad(matrix, ((0, pad), (0, pad)))
        k = padded.shape[0] // factor
        matrix = padded.reshape(k, factor, k, factor).sum(axis=(1, 3))
        n = k
    norm = normalize(matrix, log=log_scale)
    lines = []
    header = "    " + "".join(str(j % 10) for j in range(n))
    lines.append(header)
    for i in range(n):
        row = "".join(
            _ASCII_RAMP[min(int(norm[i, j] * (len(_ASCII_RAMP) - 1) + 0.5),
                            len(_ASCII_RAMP) - 1)]
            for j in range(n)
        )
        lines.append(f"{i:>3} {row}")
    return "\n".join(lines)
