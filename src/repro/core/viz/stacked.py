"""Stacked bar graphs for the overall T_MAIN/T_COMM/T_PROC breakdown.

The paper's Figures 12–13: one stacked bar per PE, in absolute cycles or
relative (fractions of T_TOTAL).  Region colors echo Figure 1's coding
(MAIN blue, PROC red).
"""

from __future__ import annotations

import numpy as np

from repro.core.overall import OverallProfile
from repro.core.viz.palette import REGION_COLORS
from repro.core.viz.svg import Canvas

_PLOT_H = 240
_MARGIN_LEFT = 96
_MARGIN_TOP = 56
_MARGIN_BOTTOM = 60

_REGIONS = ("MAIN", "COMM", "PROC")


def stacked_bar_graph(profile: OverallProfile, relative: bool = False,
                      title: str | None = None) -> str:
    """Render the per-PE overall breakdown as stacked bars.

    ``relative=True`` normalizes each bar to its PE's T_TOTAL (the paper
    shows both variants for every configuration).
    """
    n = profile.n_pes
    if title is None:
        title = ("Relative" if relative else "Absolute") + " overall profiling"
    parts = np.stack(
        [profile.t_main, profile.t_comm(), profile.t_proc], axis=1
    ).astype(float)
    if relative:
        totals = profile.t_total.astype(float)
        totals[totals == 0] = 1.0
        parts = parts / totals[:, None]
        vmax = 1.0
    else:
        vmax = float(profile.t_total.max()) or 1.0
    bar_w = max(10, min(36, 520 // n))
    gap = max(3, bar_w // 4)
    width = _MARGIN_LEFT + n * (bar_w + gap) + 150
    height = _MARGIN_TOP + _PLOT_H + _MARGIN_BOTTOM
    cv = Canvas(width, height)
    cv.text(width / 2, 26, title, size=15, anchor="middle", bold=True)
    ylabel = "fraction of T_TOTAL" if relative else "rdtsc cycles"
    cv.text(16, _MARGIN_TOP + _PLOT_H / 2, ylabel, size=11, anchor="middle", rotate=-90)
    cv.text(_MARGIN_LEFT + n * (bar_w + gap) / 2, height - 14, "PE", size=11,
            anchor="middle")

    axis_x = _MARGIN_LEFT - 8
    cv.line(axis_x, _MARGIN_TOP, axis_x, _MARGIN_TOP + _PLOT_H, stroke="#404040")
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = _MARGIN_TOP + _PLOT_H * (1 - frac)
        v = frac * vmax
        label = f"{v:.2f}" if relative else f"{v:,.0f}"
        cv.line(axis_x - 4, y, axis_x, y, stroke="#404040")
        cv.text(axis_x - 7, y + 3, label, size=9, anchor="end")

    for pe in range(n):
        x = _MARGIN_LEFT + pe * (bar_w + gap)
        y = _MARGIN_TOP + _PLOT_H
        for r, region in enumerate(_REGIONS):
            v = parts[pe, r]
            h = _PLOT_H * v / vmax
            y -= h
            if relative:
                tip = f"PE{pe} T_{region}: {v:.1%}"
            else:
                tip = f"PE{pe} T_{region}: {v:,.0f} cycles"
            cv.rect(x, y, bar_w, max(h, 0.0), fill=REGION_COLORS[region], title=tip)
        step = 1 if n <= 24 else max(1, n // 16)
        if pe % step == 0:
            cv.text(x + bar_w / 2, _MARGIN_TOP + _PLOT_H + 16, str(pe), size=9,
                    anchor="middle")

    # legend
    lx = _MARGIN_LEFT + n * (bar_w + gap) + 16
    for r, region in enumerate(_REGIONS):
        ly = _MARGIN_TOP + 18 * r
        cv.rect(lx, ly - 9, 10, 10, fill=REGION_COLORS[region])
        cv.text(lx + 14, ly, f"T_{region}", size=10)
    return cv.to_string()
