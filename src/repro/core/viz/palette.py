"""Color utilities: sequential colormap + categorical palette.

The sequential map interpolates viridis-like anchor colors (dark purple →
teal → yellow), perceptually ordered so heatmap magnitudes read correctly.
"""

from __future__ import annotations

import numpy as np

#: Viridis-like anchors, dark → bright.
_SEQ_ANCHORS = (
    (68, 1, 84),
    (59, 82, 139),
    (33, 145, 140),
    (94, 201, 98),
    (253, 231, 37),
)

#: Categorical series colors (stacked bars, violins, multi-series bars).
CATEGORICAL = (
    "#4c78a8",  # blue
    "#f58518",  # orange
    "#54a24b",  # green
    "#e45756",  # red
    "#72b7b2",  # teal
    "#b279a2",  # purple
    "#ff9da6",  # pink
    "#9d755d",  # brown
)

#: Region colors used throughout the overall-breakdown charts, chosen to
#: echo the paper's Figure 1 (MAIN = blue, PROC = red).
REGION_COLORS = {"MAIN": "#4c78a8", "COMM": "#bab0ac", "PROC": "#e45756"}


def lerp(a: float, b: float, t: float) -> float:
    return a + (b - a) * t


def sequential(t: float) -> str:
    """Map t ∈ [0, 1] to a hex color along the sequential map."""
    t = min(1.0, max(0.0, float(t)))
    pos = t * (len(_SEQ_ANCHORS) - 1)
    i = min(int(pos), len(_SEQ_ANCHORS) - 2)
    frac = pos - i
    r = lerp(_SEQ_ANCHORS[i][0], _SEQ_ANCHORS[i + 1][0], frac)
    g = lerp(_SEQ_ANCHORS[i][1], _SEQ_ANCHORS[i + 1][1], frac)
    b = lerp(_SEQ_ANCHORS[i][2], _SEQ_ANCHORS[i + 1][2], frac)
    return f"#{int(round(r)):02x}{int(round(g)):02x}{int(round(b)):02x}"


def normalize(values: np.ndarray, log: bool = False) -> np.ndarray:
    """Scale values to [0, 1] for color mapping (optionally log1p)."""
    values = np.asarray(values, dtype=float)
    if log:
        values = np.log1p(np.maximum(values, 0.0))
    vmax = values.max() if values.size else 0.0
    if vmax <= 0:
        return np.zeros_like(values)
    return values / vmax


def categorical(i: int) -> str:
    """The i-th categorical series color (cycled)."""
    return CATEGORICAL[i % len(CATEGORICAL)]
