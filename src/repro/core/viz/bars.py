"""Bar graphs: per-PE values (the paper's PAPI counter figures).

``bar_graph`` renders one value per PE — e.g. total PAPI_TOT_INS — and is
the chart used to spot stragglers (Figures 10–11).  ``grouped_bar_graph``
places multiple series side by side (e.g. four PAPI counters in one run,
the ``-lp`` flag).
"""

from __future__ import annotations

import numpy as np

from repro.core.viz.palette import categorical
from repro.core.viz.svg import Canvas

_PLOT_H = 240
_MARGIN_LEFT = 86
_MARGIN_TOP = 56
_MARGIN_BOTTOM = 60


def _y_axis(cv: Canvas, vmax: float, log_scale: bool) -> None:
    axis_x = _MARGIN_LEFT - 8
    cv.line(axis_x, _MARGIN_TOP, axis_x, _MARGIN_TOP + _PLOT_H, stroke="#404040")
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = _MARGIN_TOP + _PLOT_H * (1 - frac)
        if log_scale:
            v = np.expm1(frac * np.log1p(vmax))
        else:
            v = frac * vmax
        cv.line(axis_x - 4, y, axis_x, y, stroke="#404040")
        cv.text(axis_x - 7, y + 3, f"{v:,.0f}", size=9, anchor="end")


def _bar_height(v: float, vmax: float, log_scale: bool) -> float:
    if vmax <= 0 or v <= 0:
        return 0.0
    if log_scale:
        return _PLOT_H * np.log1p(v) / np.log1p(vmax)
    return _PLOT_H * v / vmax


def bar_graph(values: np.ndarray, title: str = "Per-PE values",
              ylabel: str = "value", xlabel: str = "PE",
              log_scale: bool = False, highlight_max: bool = True) -> str:
    """One bar per PE; the maximum bar is emphasized when requested."""
    values = np.asarray(values, dtype=float)
    n = values.size
    if n == 0:
        raise ValueError("need at least one value")
    bar_w = max(10, min(36, 520 // n))
    gap = max(3, bar_w // 4)
    width = _MARGIN_LEFT + n * (bar_w + gap) + 50
    height = _MARGIN_TOP + _PLOT_H + _MARGIN_BOTTOM
    cv = Canvas(width, height)
    cv.text(width / 2, 26, title, size=15, anchor="middle", bold=True)
    cv.text(16, _MARGIN_TOP + _PLOT_H / 2, ylabel, size=11, anchor="middle", rotate=-90)
    cv.text(_MARGIN_LEFT + n * (bar_w + gap) / 2, height - 14, xlabel, size=11,
            anchor="middle")
    vmax = values.max()
    _y_axis(cv, vmax, log_scale)
    imax = int(values.argmax())
    for i, v in enumerate(values):
        h = _bar_height(v, vmax, log_scale)
        x = _MARGIN_LEFT + i * (bar_w + gap)
        color = "#e45756" if (highlight_max and i == imax and n > 1) else "#4c78a8"
        cv.rect(x, _MARGIN_TOP + _PLOT_H - h, bar_w, max(h, 0.5), fill=color,
                title=f"PE{i}: {v:,.0f}")
        step = 1 if n <= 24 else max(1, n // 16)
        if i % step == 0:
            cv.text(x + bar_w / 2, _MARGIN_TOP + _PLOT_H + 16, str(i), size=9,
                    anchor="middle")
    return cv.to_string()


def grouped_bar_graph(series: dict[str, np.ndarray], title: str = "Per-PE counters",
                      xlabel: str = "PE", log_scale: bool = True) -> str:
    """Multiple series per PE, side by side (one color per series).

    Series are normalized per series (each to its own max) because PAPI
    counters span orders of magnitude; tooltips carry raw values.
    """
    if not series:
        raise ValueError("need at least one series")
    names = list(series)
    arrays = [np.asarray(series[k], dtype=float) for k in names]
    n = arrays[0].size
    if any(a.size != n for a in arrays):
        raise ValueError("all series must have one value per PE")
    k = len(names)
    bar_w = max(4, min(16, 520 // (n * k)))
    group_w = k * bar_w + 6
    width = _MARGIN_LEFT + n * group_w + 170
    height = _MARGIN_TOP + _PLOT_H + _MARGIN_BOTTOM
    cv = Canvas(width, height)
    cv.text(width / 2, 26, title, size=15, anchor="middle", bold=True)
    cv.text(_MARGIN_LEFT + n * group_w / 2, height - 14, xlabel, size=11,
            anchor="middle")
    for s, (name, arr) in enumerate(zip(names, arrays)):
        vmax = arr.max()
        for i, v in enumerate(arr):
            h = _bar_height(v, vmax, log_scale)
            x = _MARGIN_LEFT + i * group_w + s * bar_w
            cv.rect(x, _MARGIN_TOP + _PLOT_H - h, bar_w - 1, max(h, 0.5),
                    fill=categorical(s), title=f"PE{i} {name}: {v:,.0f}")
        # legend
        ly = _MARGIN_TOP + 16 * s
        lx = _MARGIN_LEFT + n * group_w + 16
        cv.rect(lx, ly - 9, 10, 10, fill=categorical(s))
        cv.text(lx + 14, ly, name, size=10)
    step = 1 if n <= 24 else max(1, n // 16)
    for i in range(0, n, step):
        x = _MARGIN_LEFT + i * group_w + group_w / 2
        cv.text(x, _MARGIN_TOP + _PLOT_H + 16, str(i), size=9, anchor="middle")
    cv.line(_MARGIN_LEFT - 8, _MARGIN_TOP, _MARGIN_LEFT - 8, _MARGIN_TOP + _PLOT_H,
            stroke="#404040")
    note = "bars normalized per series" + (", log scale" if log_scale else "")
    cv.text(_MARGIN_LEFT, height - 34, note, size=8, fill="#808080")
    return cv.to_string()
