"""ActorProf visualization (Section III-D).

Heatmaps, quartile violin plots, bar graphs and stacked bar graphs —
"inspired by CrayPat's Mosaic Report" — rendered to standalone SVG files
(and ASCII for terminals).  The drawing backend is implemented from
scratch on :class:`~repro.core.viz.svg.Canvas`; the original tool used
matplotlib, which is unavailable here (see DESIGN.md substitutions).
"""

from repro.core.viz.bars import bar_graph, grouped_bar_graph
from repro.core.viz.heatmap import ascii_heatmap, heatmap_svg
from repro.core.viz.lodviews import (
    lod_gantt_svg,
    lod_heatmap_svg,
    lod_timeline_svg,
    viz_html,
)
from repro.core.viz.stacked import stacked_bar_graph
from repro.core.viz.svg import Canvas
from repro.core.viz.violin import violin_svg

__all__ = [
    "Canvas",
    "ascii_heatmap",
    "bar_graph",
    "grouped_bar_graph",
    "heatmap_svg",
    "lod_gantt_svg",
    "lod_heatmap_svg",
    "lod_timeline_svg",
    "stacked_bar_graph",
    "violin_svg",
    "viz_html",
]
