"""A minimal SVG document builder.

Only what the ActorProf charts need: rectangles, lines, text, polygons and
grouping, emitted as standalone SVG 1.1 with a white background.  All
coordinates are user units (pixels).
"""

from __future__ import annotations

import html
from pathlib import Path


def _fmt(v: float) -> str:
    """Compact numeric formatting for attribute values."""
    return f"{v:.2f}".rstrip("0").rstrip(".")


class Canvas:
    """An append-only SVG canvas."""

    def __init__(self, width: float, height: float, background: str = "#ffffff") -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"canvas must have positive size, got {width}x{height}")
        self.width = width
        self.height = height
        self._body: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # ------------------------------------------------------------------

    def rect(self, x: float, y: float, w: float, h: float, fill: str = "#000000",
             stroke: str = "none", stroke_width: float = 1.0, opacity: float = 1.0,
             title: str | None = None) -> None:
        """Axis-aligned rectangle; ``title`` adds a hover tooltip."""
        attrs = (
            f'x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" height="{_fmt(h)}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{_fmt(stroke_width)}"'
        )
        if opacity != 1.0:
            attrs += f' opacity="{_fmt(opacity)}"'
        if title:
            self._body.append(
                f"<rect {attrs}><title>{html.escape(title)}</title></rect>"
            )
        else:
            self._body.append(f"<rect {attrs}/>")

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "#000000", stroke_width: float = 1.0,
             dash: str | None = None) -> None:
        attrs = (
            f'x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" y2="{_fmt(y2)}" '
            f'stroke="{stroke}" stroke-width="{_fmt(stroke_width)}"'
        )
        if dash:
            attrs += f' stroke-dasharray="{dash}"'
        self._body.append(f"<line {attrs}/>")

    def text(self, x: float, y: float, content: str, size: float = 12,
             anchor: str = "start", fill: str = "#202020",
             rotate: float | None = None, bold: bool = False) -> None:
        """Text anchored at (x, y); ``anchor`` in start/middle/end."""
        attrs = (
            f'x="{_fmt(x)}" y="{_fmt(y)}" font-size="{_fmt(size)}" '
            f'text-anchor="{anchor}" fill="{fill}" '
            f'font-family="Helvetica, Arial, sans-serif"'
        )
        if bold:
            attrs += ' font-weight="bold"'
        if rotate is not None:
            attrs += f' transform="rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"'
        self._body.append(f"<text {attrs}>{html.escape(content)}</text>")

    def polygon(self, points: list[tuple[float, float]], fill: str = "#000000",
                stroke: str = "none", stroke_width: float = 1.0,
                opacity: float = 1.0) -> None:
        pts = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        attrs = (
            f'points="{pts}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{_fmt(stroke_width)}"'
        )
        if opacity != 1.0:
            attrs += f' opacity="{_fmt(opacity)}"'
        self._body.append(f"<polygon {attrs}/>")

    def circle(self, cx: float, cy: float, r: float, fill: str = "#000000",
               stroke: str = "none", stroke_width: float = 1.0) -> None:
        self._body.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{_fmt(stroke_width)}"/>'
        )

    # ------------------------------------------------------------------

    def to_string(self) -> str:
        header = (
            '<?xml version="1.0" encoding="UTF-8"?>\n'
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_fmt(self.width)}" '
            f'height="{_fmt(self.height)}" viewBox="0 0 {_fmt(self.width)} '
            f'{_fmt(self.height)}">'
        )
        return header + "\n" + "\n".join(self._body) + "\n</svg>\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_string())
        return path
