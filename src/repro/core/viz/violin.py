"""Quartile violin plots for send/recv distributions.

The paper's Figures 5 and 7: one violin per sample (e.g. "cyclic sends",
"cyclic recvs", "range sends", "range recvs"), showing a kernel-density
silhouette, the median as a white dot, a quartile box, and the maximum
outlier at the silhouette's tip.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import QuartileStats
from repro.core.viz.palette import categorical
from repro.core.viz.svg import Canvas

_PLOT_H = 260
_VIOLIN_W = 90
_MARGIN = 60


def kde_density(values: np.ndarray, points: int = 64) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian kernel density estimate on a regular grid.

    Returns (grid, density).  Bandwidth follows Scott's rule with a floor
    so near-constant samples still render a visible blob.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot estimate density of an empty sample")
    lo, hi = values.min(), values.max()
    spread = hi - lo
    std = values.std()
    bw = max(std * values.size ** (-1 / 5), spread / 50.0, 1e-9)
    grid = np.linspace(lo - 2 * bw, hi + 2 * bw, points)
    diffs = (grid[:, None] - values[None, :]) / bw
    dens = np.exp(-0.5 * diffs**2).sum(axis=1) / (values.size * bw * np.sqrt(2 * np.pi))
    return grid, dens


def violin_svg(samples: dict[str, np.ndarray], title: str = "Violin plot",
               ylabel: str = "count") -> str:
    """Render one violin per named sample."""
    if not samples:
        raise ValueError("need at least one sample")
    names = list(samples)
    arrays = [np.asarray(samples[k], dtype=float) for k in names]
    vmax = max(a.max() for a in arrays)
    vmin = min(a.min() for a in arrays)
    if vmax == vmin:
        vmax = vmin + 1.0
    n = len(names)
    width = _MARGIN * 2 + n * (_VIOLIN_W + 30)
    height = _PLOT_H + 110
    cv = Canvas(width, height)
    cv.text(width / 2, 26, title, size=15, anchor="middle", bold=True)
    cv.text(16, 50 + _PLOT_H / 2, ylabel, size=11, anchor="middle", rotate=-90)

    def y_of(v: float) -> float:
        return 50 + _PLOT_H * (1 - (v - vmin) / (vmax - vmin))

    # y-axis with ticks
    axis_x = _MARGIN - 10
    cv.line(axis_x, 50, axis_x, 50 + _PLOT_H, stroke="#404040")
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        v = vmin + frac * (vmax - vmin)
        y = y_of(v)
        cv.line(axis_x - 4, y, axis_x, y, stroke="#404040")
        cv.text(axis_x - 7, y + 3, f"{v:,.0f}", size=9, anchor="end")

    for i, (name, values) in enumerate(zip(names, arrays)):
        cx = _MARGIN + 20 + i * (_VIOLIN_W + 30) + _VIOLIN_W / 2
        color = categorical(i)
        grid, dens = kde_density(values)
        dmax = dens.max() or 1.0
        half = dens / dmax * (_VIOLIN_W / 2)
        right = [(cx + h, y_of(g)) for g, h in zip(grid, half)]
        left = [(cx - h, y_of(g)) for g, h in zip(grid[::-1], half[::-1])]
        cv.polygon(right + left, fill=color, opacity=0.55, stroke=color)
        stats = QuartileStats.of(values)
        # quartile box (thick bar) and whisker
        cv.line(cx, y_of(stats.minimum), cx, y_of(stats.maximum), stroke="#303030")
        cv.rect(cx - 4, y_of(stats.q3), 8, max(1.0, y_of(stats.q1) - y_of(stats.q3)),
                fill="#303030",
                title=f"{name}: q1={stats.q1:.0f} median={stats.median:.0f} q3={stats.q3:.0f}")
        # median: white dot (as the paper describes)
        cv.circle(cx, y_of(stats.median), 4, fill="#ffffff", stroke="#303030",
                  stroke_width=1.2)
        # maximum outlier marker at the top of the shape
        cv.circle(cx, y_of(stats.maximum), 2.4, fill="#303030")
        cv.text(cx, 50 + _PLOT_H + 20, name, size=10, anchor="middle")
        cv.text(cx, 50 + _PLOT_H + 36, f"max={stats.maximum:,.0f}", size=8,
                anchor="middle", fill="#606060")
    return cv.to_string()
