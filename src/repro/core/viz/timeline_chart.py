"""Execution timeline and utilization charts (Legion-Prof-style views).

Rendered from a :class:`~repro.core.timeline.TimelineTrace`:

* :func:`timeline_svg` — one lane per PE, MAIN/PROC spans as colored
  blocks over the COMM background, network events as ticks.
* :func:`utilization_svg` — per-PE occupancy (MAIN+PROC fraction) over
  time buckets, as a PE × time heat strip.
"""

from __future__ import annotations

import numpy as np

from repro.core.timeline import TimelineTrace
from repro.core.viz.palette import REGION_COLORS, normalize, sequential
from repro.core.viz.svg import Canvas

_LANE_H = 18
_LANE_GAP = 4
_MARGIN_LEFT = 60
_MARGIN_TOP = 50
_WIDTH = 900


def timeline_svg(timeline: TimelineTrace, title: str = "Execution timeline",
                 max_spans: int = 20_000) -> str:
    """Render per-PE region lanes.  Spans beyond ``max_spans`` are skipped
    uniformly to bound SVG size."""
    horizon = max(timeline.end_time(), 1)
    n = timeline.n_pes
    height = _MARGIN_TOP + n * (_LANE_H + _LANE_GAP) + 60
    cv = Canvas(_WIDTH, height)
    cv.text(_WIDTH / 2, 26, title, size=15, anchor="middle", bold=True)
    plot_w = _WIDTH - _MARGIN_LEFT - 30

    def x_of(t: int) -> float:
        return _MARGIN_LEFT + plot_w * t / horizon

    total_spans = timeline.span_count()
    stride = max(1, total_spans // max_spans)
    for pe in range(n):
        y = _MARGIN_TOP + pe * (_LANE_H + _LANE_GAP)
        cv.rect(_MARGIN_LEFT, y, plot_w, _LANE_H, fill=REGION_COLORS["COMM"],
                opacity=0.35)
        cv.text(_MARGIN_LEFT - 6, y + _LANE_H - 5, f"PE{pe}", size=9, anchor="end")
        for i, span in enumerate(timeline.spans(pe)):
            if span.region == "FINISH" or i % stride:
                continue
            x0, x1 = x_of(span.start), x_of(span.end)
            cv.rect(x0, y, max(x1 - x0, 0.6), _LANE_H,
                    fill=REGION_COLORS.get(span.region, "#888888"),
                    title=f"PE{pe} {span.region}: [{span.start}, {span.end})")
    # network event ticks under each source lane
    for ev in timeline.net_events():
        y = _MARGIN_TOP + ev.src * (_LANE_H + _LANE_GAP)
        cv.line(x_of(ev.time), y + _LANE_H, x_of(ev.time), y + _LANE_H + 3,
                stroke="#303030")
    # time axis
    axis_y = _MARGIN_TOP + n * (_LANE_H + _LANE_GAP) + 10
    cv.line(_MARGIN_LEFT, axis_y, _MARGIN_LEFT + plot_w, axis_y, stroke="#404040")
    for frac in (0, 0.25, 0.5, 0.75, 1.0):
        x = _MARGIN_LEFT + plot_w * frac
        cv.line(x, axis_y, x, axis_y + 4, stroke="#404040")
        cv.text(x, axis_y + 16, f"{int(horizon * frac):,}", size=8, anchor="middle")
    cv.text(_MARGIN_LEFT + plot_w / 2, axis_y + 32, "cycles (rdtsc)", size=10,
            anchor="middle")
    # legend
    for i, region in enumerate(("MAIN", "COMM", "PROC")):
        lx = _MARGIN_LEFT + 90 * i
        cv.rect(lx, 32, 10, 10, fill=REGION_COLORS[region],
                opacity=0.35 if region == "COMM" else 1.0)
        cv.text(lx + 14, 41, region, size=9)
    return cv.to_string()


def utilization_svg(timeline: TimelineTrace, buckets: int = 120,
                    title: str = "PE utilization over time") -> str:
    """Render a PE × time occupancy strip (MAIN+PROC fraction per bucket)."""
    if buckets < 1:
        raise ValueError("buckets must be positive")
    horizon = max(timeline.end_time(), 1)
    bucket_cycles = max(1, -(-horizon // buckets))
    n = timeline.n_pes
    rows = np.zeros((n, buckets))
    for pe in range(n):
        u = timeline.utilization(pe, bucket_cycles)
        rows[pe, : min(buckets, len(u))] = u[:buckets]
    cell_w = max(4, (900 - _MARGIN_LEFT - 40) // buckets)
    height = _MARGIN_TOP + n * (_LANE_H + 2) + 50
    width = _MARGIN_LEFT + buckets * cell_w + 40
    cv = Canvas(width, height)
    cv.text(width / 2, 26, title, size=15, anchor="middle", bold=True)
    norm = normalize(rows)
    for pe in range(n):
        y = _MARGIN_TOP + pe * (_LANE_H + 2)
        cv.text(_MARGIN_LEFT - 6, y + _LANE_H - 5, f"PE{pe}", size=9, anchor="end")
        for b in range(buckets):
            cv.rect(_MARGIN_LEFT + b * cell_w, y, cell_w, _LANE_H,
                    fill=sequential(norm[pe, b]),
                    title=f"PE{pe} bucket {b}: {rows[pe, b]:.0%} busy")
    cv.text(_MARGIN_LEFT, height - 14,
            f"bucket = {bucket_cycles:,} cycles; bright = busy (MAIN+PROC)",
            size=9, fill="#606060")
    return cv.to_string()
