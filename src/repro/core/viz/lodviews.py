"""LOD-backed viewport renders (the `/runs/{id}/viz/*` views).

These render from :mod:`repro.core.lod` aggregates only — never from
raw event columns — so an SVG for a billion-send run costs the same as
one for a thousand-send run: O(viewport resolution).

* :func:`lod_gantt_svg` — per-PE lanes, each bucket a stacked
  MAIN/PROC/COMM segment proportional to occupancy.
* :func:`lod_timeline_svg` — machine-wide stacked occupancy bars over
  time (utilization profile).
* :func:`lod_heatmap_svg` — the communication matrix over the
  viewport, reusing :func:`~repro.core.viz.heatmap.heatmap_svg`.
* :func:`viz_html` — standalone HTML wrapping the three views, with
  pan/zoom controls that refetch from a running ``actorprof serve``.
"""

from __future__ import annotations

import html
import json

from repro.core.lod import EdgeWindow, PeSeries
from repro.core.viz.heatmap import heatmap_svg
from repro.core.viz.palette import REGION_COLORS
from repro.core.viz.svg import Canvas

_LANE_H = 18
_LANE_GAP = 4
_MARGIN_LEFT = 60
_MARGIN_TOP = 50
_WIDTH = 900

_REGIONS = ("MAIN", "PROC", "COMM")


def _axis(cv: Canvas, axis_y: float, plot_w: float, t0: int, t1: int) -> None:
    cv.line(_MARGIN_LEFT, axis_y, _MARGIN_LEFT + plot_w, axis_y,
            stroke="#404040")
    for frac in (0, 0.25, 0.5, 0.75, 1.0):
        x = _MARGIN_LEFT + plot_w * frac
        cv.line(x, axis_y, x, axis_y + 4, stroke="#404040")
        cv.text(x, axis_y + 16, f"{int(t0 + (t1 - t0) * frac):,}",
                size=8, anchor="middle")
    cv.text(_MARGIN_LEFT + plot_w / 2, axis_y + 32, "cycles (rdtsc)",
            size=10, anchor="middle")


def _legend(cv: Canvas) -> None:
    for i, region in enumerate(_REGIONS):
        lx = _MARGIN_LEFT + 90 * i
        cv.rect(lx, 32, 10, 10, fill=REGION_COLORS[region])
        cv.text(lx + 14, 41, region, size=9)


def lod_gantt_svg(series: PeSeries, title: str = "LOD gantt") -> str:
    """Per-PE lanes; each bucket cell splits into MAIN/PROC/COMM
    segments sized by their share of the bucket width."""
    vp = series.viewport
    n_pes, nb = series.occ.shape[0], vp.buckets
    height = _MARGIN_TOP + n_pes * (_LANE_H + _LANE_GAP) + 60
    cv = Canvas(_WIDTH, height)
    cv.text(_WIDTH / 2, 26,
            f"{title} [level {vp.level}, {vp.width:,} cycles/bucket]",
            size=15, anchor="middle", bold=True)
    _legend(cv)
    plot_w = _WIDTH - _MARGIN_LEFT - 30
    cell_w = plot_w / nb
    for pe in range(n_pes):
        y = _MARGIN_TOP + pe * (_LANE_H + _LANE_GAP)
        cv.rect(_MARGIN_LEFT, y, plot_w, _LANE_H, fill="#f0f0f0")
        cv.text(_MARGIN_LEFT - 6, y + _LANE_H - 5, f"PE{pe}", size=9,
                anchor="end")
        for b in range(nb):
            main, proc, comm = (int(v) for v in series.occ[pe, b])
            if not (main or proc or comm):
                continue
            x = _MARGIN_LEFT + b * cell_w
            tip = (f"PE{pe} bucket {vp.b0 + b}: "
                   f"MAIN {main:,} / PROC {proc:,} / COMM {comm:,}")
            for value, region in ((main, "MAIN"), (proc, "PROC"),
                                  (comm, "COMM")):
                if value <= 0:
                    continue
                w = cell_w * min(value / vp.width, 1.0)
                cv.rect(x, y, max(w, 0.4), _LANE_H,
                        fill=REGION_COLORS[region], title=tip)
                x += w
    _axis(cv, _MARGIN_TOP + n_pes * (_LANE_H + _LANE_GAP) + 10,
          plot_w, vp.t0, vp.t1)
    return cv.to_string()


def lod_timeline_svg(series: PeSeries, title: str = "LOD timeline") -> str:
    """Machine-wide occupancy profile: one stacked bar per bucket, the
    full bar height meaning every PE busy for the whole bucket."""
    vp = series.viewport
    n_pes, nb = series.occ.shape[0], vp.buckets
    plot_h = 160
    height = _MARGIN_TOP + plot_h + 60
    cv = Canvas(_WIDTH, height)
    cv.text(_WIDTH / 2, 26,
            f"{title} [level {vp.level}, {vp.width:,} cycles/bucket]",
            size=15, anchor="middle", bold=True)
    _legend(cv)
    plot_w = _WIDTH - _MARGIN_LEFT - 30
    cell_w = plot_w / nb
    base_y = _MARGIN_TOP + plot_h
    capacity = max(n_pes * vp.width, 1)
    totals = series.occ.sum(axis=0)  # (nb, 3)
    cv.line(_MARGIN_LEFT, _MARGIN_TOP, _MARGIN_LEFT, base_y, stroke="#404040")
    for frac in (0.5, 1.0):
        y = base_y - plot_h * frac
        cv.line(_MARGIN_LEFT - 4, y, _MARGIN_LEFT, y, stroke="#404040")
        cv.text(_MARGIN_LEFT - 8, y + 3, f"{frac:.0%}", size=8, anchor="end")
    for b in range(nb):
        main, proc, comm = (int(v) for v in totals[b])
        if not (main or proc or comm):
            continue
        x = _MARGIN_LEFT + b * cell_w
        y = base_y
        tip = (f"bucket {vp.b0 + b}: MAIN {main:,} / PROC {proc:,} / "
               f"COMM {comm:,} of {capacity:,} PE-cycles")
        for value, region in ((main, "MAIN"), (proc, "PROC"), (comm, "COMM")):
            if value <= 0:
                continue
            h = plot_h * min(value / capacity, 1.0)
            y -= h
            cv.rect(x, y, max(cell_w - 0.5, 0.4), h,
                    fill=REGION_COLORS[region], title=tip)
    _axis(cv, base_y + 10, plot_w, vp.t0, vp.t1)
    return cv.to_string()


def lod_heatmap_svg(window: EdgeWindow, title: str = "LOD heatmap",
                    use_bytes: bool = False) -> str:
    """Communication matrix over the viewport (messages or bytes)."""
    vp = window.viewport
    matrix = window.bytes if use_bytes else window.count
    unit = "bytes" if use_bytes else "messages"
    return heatmap_svg(
        matrix,
        title=f"{title} [{vp.t0:,}..{vp.t1:,}) {unit}",
        xlabel="destination PE", ylabel="source PE")


def viz_html(views: dict[str, str], *, run_label: str,
             horizon: int, server: str | None = None,
             run_id: str | None = None, res: dict[str, int] | None = None) -> str:
    """Standalone HTML page embedding the rendered views.

    With ``server``/``run_id`` set, pan/zoom buttons refetch each view
    from the live ``/runs/{id}/viz/{view}`` endpoints; without a server
    the page is a static snapshot.
    """
    def inline(svg: str) -> str:
        # strip the XML declaration: invalid inside an HTML body
        if svg.startswith("<?xml"):
            svg = svg.split("?>", 1)[1].lstrip()
        return svg

    sections = "\n".join(
        f'<section><h2>{html.escape(name)}</h2>'
        f'<div class="view" id="view-{html.escape(name)}">{inline(svg)}</div>'
        f'</section>'
        for name, svg in views.items())
    controls = script = ""
    if server and run_id:
        config = json.dumps({
            "server": server.rstrip("/"),
            "run": run_id,
            "horizon": int(horizon),
            "views": list(views),
            "res": res or {},
        })
        controls = ('<nav><button data-op="out">zoom out</button>'
                    '<button data-op="in">zoom in</button>'
                    '<button data-op="left">&larr; pan</button>'
                    '<button data-op="right">pan &rarr;</button>'
                    '<button data-op="reset">reset</button>'
                    '<span id="window"></span></nav>')
        script = """
<script>
const cfg = %s;
let t0 = 0, t1 = cfg.horizon;
async function refresh() {
  document.getElementById('window').textContent =
    ` [${t0.toLocaleString()} .. ${t1.toLocaleString()})`;
  for (const view of cfg.views) {
    const res = cfg.res[view] ? `&res=${cfg.res[view]}` : '';
    const url = `${cfg.server}/runs/${cfg.run}/viz/${view}?t0=${t0}&t1=${t1}${res}`;
    const reply = await fetch(url);
    if (reply.ok) {
      document.getElementById(`view-${view}`).innerHTML = await reply.text();
    }
  }
}
document.querySelectorAll('nav button').forEach(btn =>
  btn.addEventListener('click', () => {
    const span = t1 - t0, quarter = Math.max(Math.floor(span / 4), 1);
    switch (btn.dataset.op) {
      case 'in': t0 += quarter; t1 -= quarter; break;
      case 'out': t0 -= span; t1 += span; break;
      case 'left': t0 -= quarter; t1 -= quarter; break;
      case 'right': t0 += quarter; t1 += quarter; break;
      case 'reset': t0 = 0; t1 = cfg.horizon; break;
    }
    t0 = Math.max(t0, 0); t1 = Math.min(t1, cfg.horizon);
    if (t1 - t0 < 1) { t0 = 0; t1 = cfg.horizon; }
    refresh();
  }));
</script>""" % config
    return f"""<!doctype html>
<html><head><meta charset="utf-8">
<title>actorprof viz — {html.escape(run_label)}</title>
<style>
body {{ font-family: sans-serif; margin: 1.5em; }}
nav {{ margin-bottom: 1em; }} nav button {{ margin-right: .4em; }}
section {{ margin-bottom: 2em; }} h2 {{ font-size: 1.05em; color: #333; }}
.view svg {{ border: 1px solid #ddd; max-width: 100%; }}
</style></head>
<body>
<h1>actorprof viz — {html.escape(run_label)}</h1>
{controls}
{sections}
{script}
</body></html>
"""
