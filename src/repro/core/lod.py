"""Viewport queries over LOD summary pyramids.

:mod:`repro.core.store.lod` builds and persists the pyramids; this
module answers the question the viz layer actually asks: *given a
viewport ``[t0, t1)`` and a target resolution, which level do I read
and what are its aggregates?*  The level-selection rule (documented in
``docs/VIZ.md``) is:

    pick the **coarsest** level whose bucket count across the viewport
    is still >= the requested resolution; if even the finest level has
    fewer buckets than requested, use the finest level.

That keeps every response O(resolution): zooming in drops to finer
levels (drill-down refinement), zooming out climbs to coarser ones,
and the decoded payload never exceeds ~2x the requested resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.store.archive import Archive
from repro.core.store.lod import (
    LodError,
    Pyramid,
    PyramidInfo,
    pyramid_info,
    read_level,
)

#: Default viewport resolutions (buckets across the window) per view.
DEFAULT_RES = {"gantt": 96, "heatmap": 16, "timeline": 120}


@dataclass(frozen=True)
class Viewport:
    """A bucket-aligned window at one pyramid level."""

    level: int
    width: int        # bucket width (cycles) at this level
    b0: int           # first bucket index (inclusive)
    b1: int           # last bucket index (exclusive)
    t0: int           # snapped window start (b0 * width)
    t1: int           # snapped window end (min(b1 * width, horizon))

    @property
    def buckets(self) -> int:
        return self.b1 - self.b0


@dataclass(frozen=True)
class PeSeries:
    """Per-PE occupancy over a viewport: ``occ[pe, bucket] = (main,
    proc, comm)`` cycles, dense (zeros where the pyramid is sparse)."""

    viewport: Viewport
    occ: np.ndarray   # (n_pes, buckets, 3) int64


@dataclass(frozen=True)
class EdgeWindow:
    """Communication-matrix aggregates over a viewport."""

    viewport: Viewport
    count: np.ndarray  # (n_pes, n_pes) int64 message counts
    bytes: np.ndarray  # (n_pes, n_pes) int64 payload bytes


class LodView:
    """Level-picking reader over a pyramid (archive-backed or in-memory).

    Archive-backed views decode exactly one level chunk per query via
    :func:`~repro.core.store.lod.read_level`; the raw event sections
    are never touched (the decode-spy tests assert this).
    """

    def __init__(self, info: PyramidInfo, reader) -> None:
        self.info = info
        self._reader = reader  # (kind, level) -> columns dict

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_archive(cls, archive: Archive) -> "LodView":
        info = pyramid_info(archive)
        if info is None:
            raise LodError(
                f"{archive.path}: no LOD pyramid sections "
                "(backfill with `actorprof viz RUN --backfill`)")
        return cls(info, lambda kind, level: read_level(archive, kind, level))

    @classmethod
    def from_pyramid(cls, pyramid: Pyramid) -> "LodView":
        info = PyramidInfo(
            horizon=pyramid.horizon,
            n_pes=pyramid.n_pes,
            widths=tuple(pyramid.widths),
            buckets=tuple(pyramid.buckets()),
            time_resolved=pyramid.time_resolved,
            has_pe=any(len(c["bucket"]) for c in pyramid.pe_levels),
            has_edges=any(len(c["bucket"]) for c in pyramid.edge_levels),
        )
        levels = {"pe": pyramid.pe_levels, "edge": pyramid.edge_levels}

        def reader(kind: str, level: int):
            return levels[kind][level]

        return cls(info, reader)

    # -- level selection ------------------------------------------------

    @property
    def horizon(self) -> int:
        return self.info.horizon

    @property
    def n_pes(self) -> int:
        return self.info.n_pes

    def clamp(self, t0: int | None, t1: int | None) -> tuple[int, int]:
        """Normalize a raw window to ``0 <= t0 < t1 <= horizon``."""
        lo = 0 if t0 is None else max(int(t0), 0)
        hi = self.horizon if t1 is None else min(int(t1), self.horizon)
        if hi <= lo:
            lo, hi = 0, self.horizon
        return lo, hi

    def select_level(self, t0: int, t1: int, res: int) -> int:
        """Coarsest level with >= ``res`` buckets across ``[t0, t1)``."""
        span = max(int(t1) - int(t0), 1)
        res = max(int(res), 1)
        for level in range(self.info.levels - 1, -1, -1):
            if -(-span // self.info.widths[level]) >= res:
                return level
        return 0

    def viewport(self, t0: int | None = None, t1: int | None = None,
                 res: int = 96) -> Viewport:
        """Snap a window to bucket boundaries of the selected level."""
        lo, hi = self.clamp(t0, t1)
        level = self.select_level(lo, hi, res)
        width = self.info.widths[level]
        b0 = lo // width
        b1 = min(-(-hi // width), self.info.buckets[level])
        if b1 <= b0:
            b1 = b0 + 1
        return Viewport(level=level, width=width, b0=b0, b1=b1,
                        t0=b0 * width, t1=min(b1 * width, self.horizon))

    # -- aggregates -----------------------------------------------------

    def pe_series(self, t0: int | None = None, t1: int | None = None,
                  res: int = 96) -> PeSeries:
        """Dense per-PE MAIN/PROC/COMM occupancy over the viewport."""
        vp = self.viewport(t0, t1, res)
        cols = self._reader("pe", vp.level)
        occ = np.zeros((self.n_pes, vp.buckets, 3), dtype=np.int64)
        bucket = np.asarray(cols["bucket"], dtype=np.int64)
        mask = (bucket >= vp.b0) & (bucket < vp.b1)
        if mask.any():
            b = bucket[mask] - vp.b0
            pe = np.asarray(cols["pe"], dtype=np.int64)[mask]
            for i, name in enumerate(("t_main", "t_proc", "t_comm")):
                occ[pe, b, i] = np.asarray(cols[name], dtype=np.int64)[mask]
        return PeSeries(viewport=vp, occ=occ)

    def edge_window(self, t0: int | None = None, t1: int | None = None,
                    res: int = 16) -> EdgeWindow:
        """Communication count/bytes matrices over the viewport."""
        vp = self.viewport(t0, t1, res)
        cols = self._reader("edge", vp.level)
        n = self.n_pes
        count = np.zeros((n, n), dtype=np.int64)
        nbytes = np.zeros((n, n), dtype=np.int64)
        bucket = np.asarray(cols["bucket"], dtype=np.int64)
        mask = (bucket >= vp.b0) & (bucket < vp.b1)
        if mask.any():
            src = np.asarray(cols["src"], dtype=np.int64)[mask]
            dst = np.asarray(cols["dst"], dtype=np.int64)[mask]
            np.add.at(count, (src, dst),
                      np.asarray(cols["count"], dtype=np.int64)[mask])
            np.add.at(nbytes, (src, dst),
                      np.asarray(cols["bytes"], dtype=np.int64)[mask])
        return EdgeWindow(viewport=vp, count=count, bytes=nbytes)

    def refine(self, vp: Viewport, bucket: int, res: int = 96) -> Viewport:
        """Drill down into one bucket of a prior viewport.

        Returns the viewport covering ``[bucket*width, (bucket+1)*width)``
        at whatever finer level the selection rule picks — the pan/zoom
        HTML uses exactly this to refine on click.
        """
        lo = bucket * vp.width
        hi = min((bucket + 1) * vp.width, self.horizon)
        return self.viewport(lo, hi, res)


def open_lod(archive: Archive) -> LodView:
    """Archive-backed :class:`LodView`; falls back to building a flat
    in-memory pyramid when the archive predates LOD sections."""
    info = pyramid_info(archive)
    if info is not None:
        return LodView.from_archive(archive)
    from repro.core.store.lod import build_pyramid_from_archive
    return LodView.from_pyramid(build_pyramid_from_archive(archive))
