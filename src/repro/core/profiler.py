"""The ActorProf profiler: runtime hooks + trace collection.

One :class:`ActorProf` instance profiles one :func:`~repro.hclib.run_spmd`
run.  ``attach(world)`` wires it into the runtime's hook points and into
Conveyors' physical-trace seam; after the run the four trace objects are
available as attributes and :meth:`write_traces` emits the paper's file
set (``PEi_send.csv``, ``PEi_PAPI.csv``, ``overall.txt``, ``physical.txt``).

Region measurement follows the paper:

* cycle times come from the simulated ``rdtsc`` (never an OS timer),
* MAIN and PROC are measured directly; COMM is derived,
* PAPI counters are started/stopped at region boundaries so Conveyors and
  HClib internals are excluded from the user-region counts.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.conveyors.hooks import TraceSink
from repro.core.flags import ProfileFlags
from repro.core.logical import LogicalTrace
from repro.core.overall import OverallProfile
from repro.core.papi_trace import PAPITrace
from repro.core.physical import PhysicalTrace
from repro.core.timeline import TimelineTrace
from repro.papi import PAPI, EventSet
from repro.sim.errors import SimulationError


class _PEProfState:
    """Per-PE measurement state."""

    __slots__ = (
        "finish_start_tsc",
        "finish_depth",
        "main_start_tsc",
        "proc_start_tsc",
        "es_main",
        "es_proc",
        "user_totals",
        "num_sends",
        "region",
    )

    def __init__(self, n_events: int) -> None:
        self.finish_start_tsc = 0
        self.finish_depth = 0
        self.main_start_tsc = 0
        self.proc_start_tsc = 0
        self.es_main: EventSet | None = None
        self.es_proc: EventSet | None = None
        self.user_totals = [0] * n_events
        self.num_sends: dict[int, int] = {}
        self.region = "COMM"


class ActorProf:
    """Profiling and visualization framework for FA-BSP execution.

    Parameters
    ----------
    flags:
        Which capabilities to enable; defaults to everything on
        (:meth:`ProfileFlags.all`).
    """

    def __init__(self, flags: ProfileFlags | None = None) -> None:
        self.flags = flags or ProfileFlags.all()
        self.world = None
        self.logical: LogicalTrace | None = None
        self.papi_trace: PAPITrace | None = None
        self.overall: OverallProfile | None = None
        self.physical: PhysicalTrace | None = None
        self.timeline: TimelineTrace | None = None
        self._pe_state: list[_PEProfState] = []
        self._papi_on = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, world) -> tuple[object | None, TraceSink | None]:
        """Wire into a World; returns (runtime hooks, physical tracer)."""
        if self.world is not None:
            raise SimulationError("an ActorProf instance profiles exactly one run")
        self.world = world
        spec = world.spec
        flags = self.flags
        n_events = len(flags.papi_events)
        self._papi_on = flags.enable_trace and n_events > 0
        if flags.enable_trace:
            self.logical = LogicalTrace(
                spec, sample_interval=flags.logical_sample_interval
            )
            self.papi_trace = PAPITrace(spec, flags.papi_events)
        if flags.enable_tcomm_profiling:
            self.overall = OverallProfile(spec.n_pes)
        if flags.enable_trace_physical:
            self.physical = PhysicalTrace(spec.n_pes, spec=spec)
        if flags.enable_timeline:
            self.timeline = TimelineTrace(
                spec.n_pes, max_spans_per_pe=flags.timeline_max_spans
            )
        self._pe_state = [_PEProfState(n_events) for _ in range(spec.n_pes)]
        if self._papi_on:
            for pe, st in enumerate(self._pe_state):
                papi = PAPI(world.shmem.perf[pe])
                st.es_main = papi.create_eventset()
                st.es_main.add_events(flags.papi_events)
                st.es_proc = papi.create_eventset()
                st.es_proc.add_events(flags.papi_events)
        hooks = (
            self
            if flags.enable_trace or flags.enable_tcomm_profiling
            or flags.enable_timeline
            else None
        )
        # ActorProf itself is the Conveyors trace sink so one record call
        # can feed both the physical trace and the timeline.
        tracer = self if (self.physical is not None or self.timeline is not None) else None
        return hooks, tracer

    # ------------------------------------------------------------------
    # Conveyors TraceSink implementation
    # ------------------------------------------------------------------

    def record(self, send_type: str, nbytes: int, src_pe: int, dst_pe: int,
               time: int) -> None:
        """Receive one instrumented Conveyors operation."""
        if self.physical is not None:
            self.physical.record(send_type, nbytes, src_pe, dst_pe, time)
        if self.timeline is not None:
            self.timeline.add_net_event(time, send_type, src_pe, dst_pe, nbytes)

    def _rdtsc(self, pe: int) -> int:
        return self.world.shmem.perf[pe].rdtsc()

    # ------------------------------------------------------------------
    # RuntimeHooks implementation
    # ------------------------------------------------------------------

    def finish_start(self, pe: int) -> None:
        st = self._pe_state[pe]
        # Nested finish scopes measure only the outermost span, so
        # T_TOTAL never double-counts.
        if st.finish_depth == 0:
            st.finish_start_tsc = self._rdtsc(pe)
        st.finish_depth += 1

    def finish_end(self, pe: int) -> None:
        st = self._pe_state[pe]
        st.finish_depth -= 1
        if st.finish_depth > 0:
            return
        if self.overall is not None:
            self.overall.add_total(pe, self._rdtsc(pe) - st.finish_start_tsc)
        if self.timeline is not None:
            self.timeline.add_span(pe, "FINISH", st.finish_start_tsc,
                                   self._rdtsc(pe))
        if self.papi_trace is not None:
            # Summary row (mailbox = -1): final user-region counter totals,
            # including PROC work done during the finish drain after the
            # last send — so offline consumers of PEi_PAPI.csv see the
            # true per-PE totals in the file's last line.
            total_sends = sum(st.num_sends.values())
            self.papi_trace.record(
                pe, pe, 0, -1, total_sends, self._live_user_counters(st)
            )

    def main_enter(self, pe: int) -> None:
        st = self._pe_state[pe]
        st.region = "MAIN"
        st.main_start_tsc = self._rdtsc(pe)
        if st.es_main is not None:
            st.es_main.start()

    def main_exit(self, pe: int) -> None:
        st = self._pe_state[pe]
        st.region = "COMM"
        if self.overall is not None:
            self.overall.add_main(pe, self._rdtsc(pe) - st.main_start_tsc)
        if self.timeline is not None:
            self.timeline.add_span(pe, "MAIN", st.main_start_tsc, self._rdtsc(pe))
        if st.es_main is not None and st.es_main.running:
            vals = st.es_main.stop()
            st.user_totals = [t + v for t, v in zip(st.user_totals, vals)]
            if self.papi_trace is not None:
                self.papi_trace.region_totals["MAIN"][pe, :] += vals

    def proc_enter(self, pe: int, mailbox: int) -> None:
        st = self._pe_state[pe]
        st.region = "PROC"
        st.proc_start_tsc = self._rdtsc(pe)
        if st.es_proc is not None:
            st.es_proc.start()

    def proc_exit(self, pe: int, mailbox: int, n_items: int) -> None:
        st = self._pe_state[pe]
        st.region = "COMM"
        if self.overall is not None:
            self.overall.add_proc(pe, self._rdtsc(pe) - st.proc_start_tsc)
        if self.timeline is not None:
            self.timeline.add_span(pe, "PROC", st.proc_start_tsc,
                                   self._rdtsc(pe), mailbox=mailbox)
        if st.es_proc is not None and st.es_proc.running:
            vals = st.es_proc.stop()
            st.user_totals = [t + v for t, v in zip(st.user_totals, vals)]
            if self.papi_trace is not None:
                self.papi_trace.region_totals["PROC"][pe, :] += vals

    def send(self, pe: int, mailbox: int, dst: int, nbytes: int) -> None:
        st = self._pe_state[pe]
        if self.logical is not None:
            self.logical.record(pe, dst, nbytes)
        n = st.num_sends.get(mailbox, 0) + 1
        st.num_sends[mailbox] = n
        if self.papi_trace is not None and n % self.flags.papi_sample_interval == 0:
            self.papi_trace.record(
                pe, dst, nbytes, mailbox, n, self._live_user_counters(st)
            )

    def send_batch(self, pe: int, mailbox: int, dsts: np.ndarray, nbytes: int) -> None:
        st = self._pe_state[pe]
        if self.logical is not None:
            self.logical.record_batch(pe, dsts, nbytes)
        n = st.num_sends.get(mailbox, 0) + len(dsts)
        st.num_sends[mailbox] = n
        if self.papi_trace is not None and len(dsts) > 0:
            # one sampled row per batch, stamped with the batch's last dst
            self.papi_trace.record(
                pe, int(dsts[-1]), nbytes, mailbox, n, self._live_user_counters(st)
            )

    # ------------------------------------------------------------------

    def _live_user_counters(self, st: _PEProfState) -> list[int]:
        """Cumulative user-region counters including the open region."""
        totals = list(st.user_totals)
        if st.region == "MAIN" and st.es_main is not None and st.es_main.running:
            live = st.es_main.read()
        elif st.region == "PROC" and st.es_proc is not None and st.es_proc.running:
            live = st.es_proc.read()
        else:
            live = [0] * len(totals)
        return [t + v for t, v in zip(totals, live)]

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------

    def write_traces(self, directory: str | Path) -> dict[str, object]:
        """Write every enabled trace to ``directory``.

        Returns a mapping of trace name → written path(s).
        """
        written: dict[str, object] = {}
        if self.logical is not None:
            written["logical"] = self.logical.write(directory)
        if self.papi_trace is not None:
            written["papi"] = self.papi_trace.write(directory)
        if self.overall is not None:
            written["overall"] = self.overall.write(directory)
        if self.physical is not None:
            written["physical"] = self.physical.write(directory)
        if self.timeline is not None:
            from repro.core.export import write_chrome_trace, write_otf

            directory = Path(directory)
            written["chrome_trace"] = write_chrome_trace(
                self.timeline, self.world.spec, directory / "trace.json"
            )
            written["otf"] = write_otf(self.timeline, self.world.spec, directory)
        return written

    def export_archive(self, path: str | Path,
                       meta: dict | None = None, *,
                       lod: bool = False) -> Path:
        """Write every enabled trace into one ``.aptrc`` archive.

        The compact binary alternative to :meth:`write_traces`; ``meta``
        entries (app name, scale, …) land in the archive footer.
        ``lod=True`` also stores the level-of-detail summary pyramid
        (time-resolved when the timeline was enabled); the default stays
        off so existing export bytes are unchanged.
        """
        from repro.core.store import export_run

        full_meta = {"papi_events": list(self.flags.papi_events)}
        full_meta.update(meta or {})
        return export_run(
            path,
            logical=self.logical,
            physical=self.physical,
            papi=self.papi_trace,
            overall=self.overall,
            timeline=self.timeline,
            meta=full_meta,
            lod=lod,
        )

    def _degraded_meta(self, failure: BaseException | None) -> dict:
        """Footer metadata describing how a failed run went down."""
        degraded: dict = {"degraded": True}
        if failure is not None:
            degraded["failure"] = f"{type(failure).__name__}: {failure}"
        world = self.world
        if world is not None:
            crashed = getattr(world.scheduler, "crashed", {})
            if crashed:
                degraded["crashed_pes"] = {
                    str(r): t for r, t in sorted(crashed.items())
                }
            faults = getattr(world, "faults", None)
            if faults is not None:
                degraded["fault_schedule"] = faults.schedule_rows()
        return degraded

    def salvage_archive(self, path: str | Path, failure: BaseException | None = None,
                        meta: dict | None = None, *, lod: bool = False) -> Path:
        """Export whatever was traced before a failed run into ``path``.

        The graceful-degradation path: when the profiled run raised
        (an injected crash, a broken collective, a deadlock), every
        trace collected up to the failure is still in memory — write it
        out as a ``.aptrc`` whose footer marks the run ``degraded`` and
        records the failure plus the injected-fault schedule.  Surviving
        PEs' data is intact and the archive loads, queries, and diffs
        like any other.
        """
        degraded = self._degraded_meta(failure)
        degraded.update(meta or {})
        return self.export_archive(path, meta=degraded, lod=lod)
