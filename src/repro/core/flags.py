"""Profiling configuration: the compile-flag equivalents.

The paper enables each ActorProf capability with a compile flag on the
user application; here the same switches are runtime configuration:

=========================  ===============================
Paper compile flag          :class:`ProfileFlags` field
=========================  ===============================
``-DENABLE_TRACE``          ``enable_trace``
``-DENABLE_TCOMM_PROFILING``  ``enable_tcomm_profiling``
``-DENABLE_TRACE_PHYSICAL``   ``enable_trace_physical``
=========================  ===============================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.papi.eventset import MAX_EVENTS
from repro.papi.events import is_preset

#: The counters used in the paper's case study (Section III-A).
DEFAULT_PAPI_EVENTS: tuple[str, ...] = ("PAPI_TOT_INS", "PAPI_LST_INS")


@dataclass(frozen=True)
class ProfileFlags:
    """Which ActorProf capabilities are compiled in.

    Attributes
    ----------
    enable_trace:
        Logical trace (``PEi_send.csv``) + PAPI region trace
        (``PEi_PAPI.csv``).  Paper flag ``-DENABLE_TRACE``.
    enable_tcomm_profiling:
        Overall T_MAIN/T_COMM/T_PROC breakdown (``overall.txt``).  Paper
        flag ``-DENABLE_TCOMM_PROFILING``.
    enable_trace_physical:
        Conveyors-level physical trace (``physical.txt``).  Paper flag
        ``-DENABLE_TRACE_PHYSICAL``.
    papi_events:
        Preset events recorded for the MAIN/PROC regions; at most
        four (PAPI limitation cited by the paper).
    enable_timeline:
        Timestamped region spans + network events for OTF / Google Trace
        Event export (the paper's Section VI future work).
    papi_sample_interval:
        Record one ``PEi_PAPI.csv`` row every N sends (1 = every send,
        like the paper; larger values bound trace size for huge runs —
        the trace-size problem the paper's Section VI discusses).
    logical_sample_interval:
        Record every N-th logical send per PE (deterministic stratified
        sampling; Section VI trace-size management).  ``estimated_matrix``
        rescales samples back to population estimates.
    timeline_max_spans:
        Per-PE cap on recorded timeline spans (tail-drop with a counter).
    """

    enable_trace: bool = False
    enable_tcomm_profiling: bool = False
    enable_trace_physical: bool = False
    enable_timeline: bool = False
    papi_events: tuple[str, ...] = DEFAULT_PAPI_EVENTS
    papi_sample_interval: int = 1
    logical_sample_interval: int = 1
    timeline_max_spans: int = 100_000

    def __post_init__(self) -> None:
        if len(self.papi_events) > MAX_EVENTS:
            raise ValueError(
                f"at most {MAX_EVENTS} concurrent PAPI events (got "
                f"{len(self.papi_events)}) — PAPI limitation, paper §III-A"
            )
        for ev in self.papi_events:
            if not is_preset(ev):
                raise ValueError(f"unknown PAPI event {ev!r}")
        if self.papi_sample_interval < 1:
            raise ValueError("papi_sample_interval must be >= 1")
        if self.logical_sample_interval < 1:
            raise ValueError("logical_sample_interval must be >= 1")
        if self.timeline_max_spans < 1:
            raise ValueError("timeline_max_spans must be >= 1")

    @property
    def any_enabled(self) -> bool:
        return (
            self.enable_trace
            or self.enable_tcomm_profiling
            or self.enable_trace_physical
            or self.enable_timeline
        )

    @classmethod
    def all(cls, papi_events: tuple[str, ...] = DEFAULT_PAPI_EVENTS,
            papi_sample_interval: int = 1,
            enable_timeline: bool = False) -> "ProfileFlags":
        """Every paper capability enabled (the common case-study setup).

        The timeline (a future-work extension, not part of the paper's
        three compile flags) stays opt-in.
        """
        return cls(
            enable_trace=True,
            enable_tcomm_profiling=True,
            enable_trace_physical=True,
            enable_timeline=enable_timeline,
            papi_events=papi_events,
            papi_sample_interval=papi_sample_interval,
        )
