"""Plain-text reports (terminal-friendly companions to the SVG charts)."""

from __future__ import annotations

import numpy as np

from repro.core.analysis import (
    OverallSummary,
    QuartileStats,
    imbalance_ratio,
    send_recv_stats,
)
from repro.core.logical import LogicalTrace
from repro.core.overall import OverallProfile
from repro.core.papi_trace import PAPITrace
from repro.core.physical import PhysicalTrace
from repro.core.viz.heatmap import ascii_heatmap


def ascii_bar(value: float, vmax: float, width: int = 40) -> str:
    """A proportional text bar of at most ``width`` characters."""
    if vmax <= 0:
        return ""
    n = int(round(width * value / vmax))
    return "█" * n


def _stats_line(name: str, st: QuartileStats) -> str:
    return (
        f"  {name:<6} min={st.minimum:,.0f} q1={st.q1:,.0f} "
        f"median={st.median:,.0f} q3={st.q3:,.0f} max={st.maximum:,.0f} "
        f"mean={st.mean:,.1f}"
    )


def mosaic_report(trace: LogicalTrace, title: str = "Logical trace") -> str:
    """CrayPat-mosaic-style text report of a logical trace."""
    m = trace.matrix()
    stats = send_recv_stats(trace)
    lines = [
        f"== {title} ==",
        f"total messages: {trace.total_sends():,}",
        f"send imbalance (max/mean): {imbalance_ratio(trace.sends_per_pe()):.2f}",
        f"recv imbalance (max/mean): {imbalance_ratio(trace.recvs_per_pe()):.2f}",
        _stats_line("sends", stats["sends"]),
        _stats_line("recvs", stats["recvs"]),
        "",
        "communication matrix (source rows × destination columns):",
        ascii_heatmap(m),
    ]
    return "\n".join(lines)


def physical_report(trace: PhysicalTrace, title: str = "Physical trace") -> str:
    """Per-send-type breakdown of the Conveyors-level trace."""
    lines = [f"== {title} ==", f"total operations: {trace.total_operations():,}"]
    by_type = trace.counts_by_type()
    for kind in ("local_send", "nonblock_send", "nonblock_progress"):
        n = by_type.get(kind, 0)
        nbytes = int(trace.bytes_matrix(kind).sum())
        lines.append(f"  {kind:<18} {n:>8,} ops  {nbytes:>12,} bytes")
    lines.append("")
    lines.append("buffer matrix (all send types):")
    lines.append(ascii_heatmap(trace.matrix()))
    return "\n".join(lines)


def overall_report(profile: OverallProfile, title: str = "Overall profiling") -> str:
    """Per-PE T_MAIN/T_COMM/T_PROC table with proportional bars."""
    summary = OverallSummary.of(profile)
    lines = [
        f"== {title} ==",
        f"mean fractions: MAIN={summary.mean_main_frac:.1%} "
        f"COMM={summary.mean_comm_frac:.1%} PROC={summary.mean_proc_frac:.1%}",
        f"max T_TOTAL: {summary.max_total_cycles:,} cycles",
        "",
        f"{'PE':>4} {'T_MAIN':>12} {'T_COMM':>12} {'T_PROC':>12} {'T_TOTAL':>12}  breakdown",
    ]
    vmax = float(profile.t_total.max()) or 1.0
    comm = profile.t_comm()
    for pe in range(profile.n_pes):
        m, c, p = profile.absolute(pe)
        total = int(profile.t_total[pe])
        width = int(round(40 * total / vmax)) or 1
        mm = int(round(width * m / total)) if total else 0
        pp = int(round(width * p / total)) if total else 0
        cc = max(0, width - mm - pp)
        bar = "M" * mm + "c" * cc + "P" * pp
        lines.append(
            f"{pe:>4} {m:>12,} {c:>12,} {p:>12,} {total:>12,}  {bar}"
        )
    _ = comm  # (kept for symmetry; c above comes from profile.absolute)
    return "\n".join(lines)


def whatif_report(report: dict, title: str = "What-if analysis") -> str:
    """Text rendering of a :func:`repro.whatif.run_whatif` report dict."""
    analysis = report["analysis"]
    baseline = report["baseline"]
    cp = analysis["critical_path"]
    lines = [
        f"== {title}: {report['workload_name']} ==",
        f"T_TOTAL {baseline['t_total']:,}  work {analysis['work']:,}  "
        f"span {analysis['span']:,}  "
        f"avg parallelism {analysis['avg_parallelism']:.2f}"
        + ("" if analysis["prediction_exact"] else "  (span approximate)"),
        "",
        "critical path by category:",
    ]
    vmax = max((r["cycles"] for r in cp["by_category"]), default=1) or 1
    for row in cp["by_category"]:
        lines.append(
            f"  {row['target']:<12} {row['cycles']:>12,} "
            f"({row['share_pct']:5.1f}%)  {ascii_bar(row['cycles'], vmax, 24)}"
        )
    if cp["by_mailbox"]:
        lines.append("critical-path PROC cycles by mailbox:")
        for row in cp["by_mailbox"]:
            lines.append(
                f"  mailbox:{row['mailbox']:<4} {row['cycles']:>12,}"
            )
    if cp["by_pe"]:
        lines.append("critical-path busy cycles by PE:")
        for row in cp["by_pe"]:
            lines.append(f"  pe:{row['pe']:<9} {row['cycles']:>12,}")
    if cp["top_edges"]:
        lines.append("hottest critical-path transfer edges:")
        for row in cp["top_edges"]:
            lines.append(
                f"  PE{row['src_pe']} -> PE{row['dst_pe']}: "
                f"{row['cycles']:,} cycles over {row['transfers']} transfers"
            )
    lines += [
        "",
        "predicted T_TOTAL if one target's cost were scaled (best first):",
    ]
    for row in report["predictions"]:
        target = f"{row['target']}={row['factor']:g}x"
        lines.append(
            f"  {target:<20} -> {row['predicted_t_total']:>12,} "
            f"({row['predicted_speedup']:.3f}x, "
            f"{row['predicted_delta_pct']:+.1f}%)"
        )
    if report["points"]:
        lines += ["", "replayed points:"]
        for row in report["points"]:
            scales = " ".join(
                f"{t}={f:g}x" for t, f in row["scales"].items()) or "1x"
            if "error" in row:
                lines.append(f"  {scales:<32} FAILED: {row['error']}")
                continue
            extra = ""
            if "prediction_error_pct" in row:
                extra = (f"  predicted {row['predicted_t_total']:,} "
                         f"(err {row['prediction_error_pct']:+.2f}%)")
            mark = "" if row["result_matches_baseline"] else "  RESULT DIVERGED"
            lines.append(
                f"  {scales:<32} T_TOTAL {row['totals']['t_total']:>12,} "
                f"({row['speedup']:.3f}x){extra}{mark}"
            )
    return "\n".join(lines)


def papi_report(trace: PAPITrace, event: str | None = None,
                title: str = "PAPI region profiling") -> str:
    """Per-PE counter totals as text bars (one chart per event)."""
    events = [event] if event else list(trace.events)
    lines = [f"== {title} =="]
    for ev in events:
        totals = trace.totals_per_pe(ev)
        vmax = float(totals.max()) or 1.0
        lines.append(f"\n{ev} (user regions MAIN+PROC):")
        for pe, v in enumerate(totals):
            lines.append(f"  PE{pe:<3} {int(v):>14,} {ascii_bar(v, vmax)}")
        lines.append(
            f"  imbalance (max/mean): {imbalance_ratio(totals):.2f}"
        )
    return "\n".join(lines)
