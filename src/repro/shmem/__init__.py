"""Simulated OpenSHMEM.

A functional, timed simulation of the subset of OpenSHMEM that the FA-BSP
stack uses:

* symmetric heap allocation (:class:`~repro.shmem.heap.SymmetricArray`),
* remote memory access — blocking ``put``/``get``, non-blocking
  ``putmem_nbi`` with ``quiet``/``fence`` completion,
* ``shmem_ptr`` shared-memory access between PEs on the same node,
* collectives — ``barrier_all``, ``broadcast``, ``allreduce``, ``alltoall``.

The runtime is SPMD: every PE executes the same program and reaches
collectives collectively.  All operations charge cycles through the PE's
:class:`~repro.machine.perf.PerfCore`, and every call is appended to an
optional call log that tests and the physical tracer can inspect.
"""

from repro.shmem.heap import SymmetricArray, SymmetricHeap
from repro.shmem.runtime import ShmemCall, ShmemContext, ShmemRuntime

__all__ = [
    "ShmemCall",
    "ShmemContext",
    "ShmemRuntime",
    "SymmetricArray",
    "SymmetricHeap",
]
