"""Symmetric heap: identically-shaped allocations on every PE.

In OpenSHMEM, ``shmem_malloc`` is a collective: every PE allocates the same
size and the returned addresses are "symmetric" — the same offset on every
PE, so a remote PE can be addressed by (symmetric address, rank).  Here the
equivalent is :class:`SymmetricArray`: handle number ``i`` refers to the
``i``-th collective allocation, and indexes a per-PE numpy array.
"""

from __future__ import annotations

import numpy as np

from repro.sim.errors import SimulationError


class SymmetricArray:
    """Handle to one collective allocation across all PEs.

    Obtained from :meth:`SymmetricHeap.alloc` (via
    :meth:`~repro.shmem.runtime.ShmemContext.malloc` in SPMD code).  The
    handle itself is shared; ``local(rank)`` returns rank's backing array.
    """

    def __init__(self, alloc_id: int, shape: tuple[int, ...], dtype: np.dtype, n_pes: int):
        self.alloc_id = alloc_id
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self._backing: list[np.ndarray | None] = [None] * n_pes

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * self.itemsize

    def local(self, rank: int) -> np.ndarray:
        """The backing array on PE ``rank`` (allocated lazily, zero-filled)."""
        arr = self._backing[rank]
        if arr is None:
            arr = np.zeros(self.shape, dtype=self.dtype)
            self._backing[rank] = arr
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SymmetricArray(id={self.alloc_id}, shape={self.shape}, "
            f"dtype={self.dtype})"
        )


class SymmetricHeap:
    """Allocation bookkeeping shared by all PEs.

    SPMD programs call ``malloc`` symmetrically: the ``k``-th allocation on
    every PE must agree on shape and dtype, mirroring the collective
    semantics of ``shmem_malloc``.  Divergent calls raise
    :class:`~repro.sim.errors.SimulationError` — that is a genuine SPMD
    bug worth failing loudly on.
    """

    def __init__(self, n_pes: int) -> None:
        self.n_pes = n_pes
        self._allocs: list[SymmetricArray] = []
        self._next_id: list[int] = [0] * n_pes  # per-PE allocation cursor

    def alloc(self, rank: int, shape: tuple[int, ...] | int, dtype) -> SymmetricArray:
        """Record PE ``rank``'s next symmetric allocation and return it."""
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise ValueError(f"negative dimension in shape {shape}")
        dtype = np.dtype(dtype)
        idx = self._next_id[rank]
        self._next_id[rank] += 1
        if idx < len(self._allocs):
            arr = self._allocs[idx]
            if arr.shape != shape or arr.dtype != dtype:
                raise SimulationError(
                    f"symmetric allocation #{idx} diverged: PE {rank} asked for "
                    f"{shape}/{dtype} but an earlier PE allocated "
                    f"{arr.shape}/{arr.dtype}"
                )
            return arr
        if idx != len(self._allocs):  # pragma: no cover - cursor invariant
            raise SimulationError("symmetric heap cursor out of sync")
        arr = SymmetricArray(idx, shape, dtype, self.n_pes)
        self._allocs.append(arr)
        return arr

    def n_allocations(self) -> int:
        return len(self._allocs)
