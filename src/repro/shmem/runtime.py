"""The simulated OpenSHMEM runtime and per-PE context.

:class:`ShmemRuntime` owns global state (heap, collective rendezvous,
call log); :class:`ShmemContext` is the per-PE handle SPMD programs and the
Conveyors layer call into.  All timing flows through the PE's
:class:`~repro.machine.perf.PerfCore`.

Completion semantics of the non-blocking path mirror the real API:

* ``putmem_nbi`` charges only the issue cost on the caller and records the
  transfer's completion time; the payload's remote visibility time is
  returned so the caller (Conveyors) can stamp arrivals.
* ``quiet`` blocks the caller until **all** of its outstanding non-blocking
  puts — to every destination — have completed, exactly the semantics the
  paper leans on when explaining why SKaMPI-style measurement of
  ``shmem_quiet`` does not fit Conveyors.
* ``fence`` only orders; in this simulator (single sequenced delivery per
  pair) it charges a token cost and clears nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.machine.cost import CostModel
from repro.machine.network import NetworkModel
from repro.machine.perf import PerfCore
from repro.machine.spec import MachineSpec
from repro.shmem.heap import SymmetricArray, SymmetricHeap
from repro.sim.clock import advance_all_to, collect_now
from repro.sim.errors import SimulationError
from repro.sim.scheduler import CoopScheduler, WaitChannel

#: Reduction operators accepted by :meth:`ShmemContext.allreduce`.
_REDUCERS: dict[str, Callable[[list[Any]], Any]] = {
    "sum": lambda vals: int(np.sum(vals)) if np.isscalar(vals[0]) else np.sum(vals, axis=0),
    "max": lambda vals: max(vals) if np.isscalar(vals[0]) else np.max(vals, axis=0),
    "min": lambda vals: min(vals) if np.isscalar(vals[0]) else np.min(vals, axis=0),
}


@dataclass(frozen=True)
class ShmemCall:
    """One entry in the runtime's call log (for tests and tracing)."""

    op: str
    src: int
    dst: int
    nbytes: int
    time: int


class _Rendezvous:
    """State for one in-flight collective instance.

    ``wake`` is the :class:`~repro.sim.scheduler.WaitChannel` non-last
    arrivers register with; the releasing PE notifies it so blocked
    participants are re-examined exactly once.  (The other way out of the
    wait — a participant crashing — is an event firing, which dirties every
    predicated-blocked PE by itself.)
    """

    __slots__ = ("kind", "arrived", "released", "result", "release_time", "wake")

    def __init__(self, kind: str, wake: WaitChannel) -> None:
        self.kind = kind
        self.arrived: dict[int, Any] = {}
        self.released = False
        self.result: Any = None
        self.release_time = 0
        self.wake = wake


class ShmemRuntime:
    """Global state of the simulated OpenSHMEM job."""

    def __init__(
        self,
        scheduler: CoopScheduler,
        spec: MachineSpec,
        cost: CostModel | None = None,
        log_calls: bool = False,
    ) -> None:
        if scheduler.n_pes != spec.n_pes:
            raise ValueError(
                f"scheduler has {scheduler.n_pes} PEs but machine spec has {spec.n_pes}"
            )
        self.scheduler = scheduler
        self.spec = spec
        self.cost = cost or CostModel()
        self.network = NetworkModel(spec, self.cost)
        self.heap = SymmetricHeap(spec.n_pes)
        self.perf: list[PerfCore] = [
            PerfCore(scheduler.clocks[r], self.cost) for r in range(spec.n_pes)
        ]
        self.contexts: list[ShmemContext] = [
            ShmemContext(self, r) for r in range(spec.n_pes)
        ]
        self.log_calls = log_calls
        self.calls: list[ShmemCall] = []
        # pshmem-style interposition: observers see every SHMEM call as it
        # happens (the OpenSHMEM Profiling Interface the paper's Section
        # V-B proposes, analogous to MPI's PMPI).
        self._observers: list[Callable[[ShmemCall], None]] = []
        # collective rendezvous, keyed by per-PE collective sequence number
        self._coll_seq = [0] * spec.n_pes
        self._coll: dict[int, _Rendezvous] = {}
        # outstanding non-blocking puts per PE: completion times
        self._pending_nbi: list[list[int]] = [[] for _ in range(spec.n_pes)]
        #: Optional ``(rank, start, end, reason)`` callback fired when a PE
        #: stalls inside :meth:`ShmemContext.quiet` waiting on its own
        #: outstanding puts.  Observation only — never charges cycles.
        self.wait_sink: Callable[[int, int, int, str], None] | None = None
        #: Optional ``(kind, seq, arrivals, release_time)`` callback fired by
        #: the last arriver of a collective, with ``arrivals`` mapping each
        #: participant rank to its pre-release arrival clock.
        self.coll_sink: Callable[[str, int, dict[int, int], int], None] | None = None

    # ------------------------------------------------------------------

    def log(self, op: str, src: int, dst: int, nbytes: int) -> None:
        if not self.log_calls and not self._observers:
            return
        call = ShmemCall(op, src, dst, nbytes, self.scheduler.clocks[src].now)
        if self.log_calls:
            self.calls.append(call)
        for obs in self._observers:
            obs(call)

    def register_observer(self, observer: Callable[[ShmemCall], None]) -> None:
        """Attach a pshmem-style call observer (sees every SHMEM call)."""
        self._observers.append(observer)

    def unregister_observer(self, observer: Callable[[ShmemCall], None]) -> None:
        self._observers.remove(observer)

    def rendezvous(self, rank: int, kind: str, value: Any, combine: Callable[[dict[int, Any]], Any]) -> Any:
        """Generic blocking collective.

        Every PE calls with the same ``kind`` at the same collective
        sequence point; the last arriver combines all contributed values,
        stamps everyone's clock with the release time, and releases the
        group.  Returns the combined result.
        """
        seq = self._coll_seq[rank]
        self._coll_seq[rank] += 1
        state = self._coll.get(seq)
        if state is None:
            state = _Rendezvous(kind, self.scheduler.channel())
            self._coll[seq] = state
        elif state.kind != kind:
            raise SimulationError(
                f"collective mismatch at sequence {seq}: PE {rank} called "
                f"{kind!r} but an earlier PE called {state.kind!r}"
            )
        state.arrived[rank] = value
        if len(state.arrived) == self.spec.n_pes:
            # All participants have arrived, so `arrived` covers every rank:
            # snapshot the whole clock set vectorized for the release max.
            latest = int(collect_now(self.scheduler.clocks).max())
            state.release_time = latest + self.cost.collective_cycles(self.spec.n_pes)
            state.result = combine(state.arrived)
            state.released = True
            state.wake.notify()
            if self.coll_sink is not None:
                arrivals = {
                    r: self.scheduler.clocks[r].now for r in state.arrived
                }
                self.coll_sink(kind, seq, arrivals, state.release_time)
            advance_all_to(self.scheduler.clocks, state.release_time)
            del self._coll[seq]
        else:
            # Crash awareness: a participant killed by an injected fault
            # can never arrive, so waiting for it would wedge the run.
            # Detect that eagerly (and mid-wait, via the predicate) and
            # fail with an attributable message instead of a deadlock.
            def broken() -> bool:
                return any(r not in state.arrived for r in self.scheduler.crashed)

            if not broken():
                self.scheduler.block(
                    rank,
                    predicate=lambda: state.released or broken(),
                    reason=f"collective {kind} #{seq}",
                    channels=(state.wake,),
                )
            if not state.released:
                missing = sorted(
                    r for r in self.scheduler.crashed if r not in state.arrived
                )
                raise SimulationError(
                    f"collective {kind} #{seq} can never complete: "
                    f"PE(s) {missing} crashed before arriving (injected fault)"
                )
        return state.result


class ShmemContext:
    """Per-PE OpenSHMEM API surface.

    SPMD programs receive one of these per rank.  Methods are named after
    their OpenSHMEM counterparts (minus the ``shmem_`` prefix) with
    Pythonic array semantics.
    """

    def __init__(self, runtime: ShmemRuntime, rank: int) -> None:
        self.runtime = runtime
        self.rank = rank
        self.perf = runtime.perf[rank]

    # --- identity ------------------------------------------------------

    @property
    def my_pe(self) -> int:
        """This PE's rank (``shmem_my_pe``)."""
        return self.rank

    @property
    def n_pes(self) -> int:
        """Job size (``shmem_n_pes``)."""
        return self.runtime.spec.n_pes

    @property
    def spec(self) -> MachineSpec:
        return self.runtime.spec

    # --- symmetric heap --------------------------------------------------

    def malloc(self, shape, dtype=np.int64) -> SymmetricArray:
        """Collective symmetric allocation (``shmem_malloc``)."""
        self.perf.work(ins=60, loads=10, stores=10)
        return self.runtime.heap.alloc(self.rank, shape, dtype)

    def mine(self, arr: SymmetricArray) -> np.ndarray:
        """This PE's local backing of a symmetric array."""
        return arr.local(self.rank)

    def ptr(self, arr: SymmetricArray, target_pe: int) -> np.ndarray | None:
        """``shmem_ptr``: direct load/store access to a same-node PE's copy.

        Returns None for PEs on other nodes, like the real API.
        """
        if not self.runtime.spec.same_node(self.rank, target_pe):
            return None
        self.perf.work(ins=6, loads=2)
        return arr.local(target_pe)

    # --- RMA --------------------------------------------------------------

    def put(self, arr: SymmetricArray, values, target_pe: int, offset: int = 0) -> None:
        """Blocking put of ``values`` into ``arr`` on ``target_pe``."""
        values = np.asarray(values, dtype=arr.dtype)
        nbytes = int(values.nbytes)
        dst = arr.local(target_pe)
        flat = dst.reshape(-1)
        flat[offset : offset + values.size] = values.reshape(-1)
        cycles = self.runtime.network.transfer_cycles(self.rank, target_pe, nbytes)
        self.perf.work(ins=20, loads=4, stores=4, extra_cycles=cycles)
        self.runtime.log("shmem_put", self.rank, target_pe, nbytes)

    def get(self, arr: SymmetricArray, target_pe: int, offset: int = 0, count: int | None = None) -> np.ndarray:
        """Blocking get of ``count`` elements from ``arr`` on ``target_pe``."""
        src = arr.local(target_pe).reshape(-1)
        if count is None:
            count = src.size - offset
        out = src[offset : offset + count].copy()
        nbytes = int(out.nbytes)
        # A get pays the round trip.
        cycles = 2 * self.runtime.network.transfer_cycles(self.rank, target_pe, nbytes)
        self.perf.work(ins=20, loads=4, stores=4, extra_cycles=cycles)
        self.runtime.log("shmem_get", self.rank, target_pe, nbytes)
        return out

    def putmem_nbi(self, arr: SymmetricArray, values, target_pe: int, offset: int = 0) -> int:
        """Non-blocking put; returns the remote-visibility (completion) time.

        The data lands in the target's backing immediately (simulator), but
        the *logical* completion — what ``quiet`` waits on and when the
        receiver may observe it — is the returned cycle.
        """
        values = np.asarray(values, dtype=arr.dtype)
        dst = arr.local(target_pe).reshape(-1)
        dst[offset : offset + values.size] = values.reshape(-1)
        return self.putmem_nbi_raw(target_pe, int(values.nbytes))

    def putmem_nbi_raw(self, target_pe: int, nbytes: int) -> int:
        """Timing/accounting half of ``shmem_putmem_nbi`` (no payload).

        Used by layers (Conveyors) that move payloads through their own
        queues but must preserve SHMEM call timing and ``quiet`` semantics.
        """
        issue = self.runtime.network.issue_cycles(self.rank, target_pe, nbytes)
        self.perf.work(ins=30, loads=6, stores=6, extra_cycles=issue)
        completion = self.runtime.network.arrival_time(
            self.rank, target_pe, nbytes, self.perf.clock.now
        )
        self.runtime._pending_nbi[self.rank].append(completion)
        self.runtime.log("shmem_putmem_nbi", self.rank, target_pe, nbytes)
        return completion

    def quiet(self) -> int:
        """``shmem_quiet``: wait for completion of ALL outstanding nbi puts.

        Returns the cycles spent waiting (excluding the fixed call cost).
        """
        pending = self.runtime._pending_nbi[self.rank]
        target = max(pending, default=0)
        self.perf.work(ins=15, loads=3, extra_cycles=self.runtime.cost.quiet_base_cycles)
        waited = self.perf.stall_until(target)
        pending.clear()
        if waited > 0 and self.runtime.wait_sink is not None:
            now = self.perf.clock.now
            self.runtime.wait_sink(self.rank, now - waited, now, "quiet")
        self.runtime.log("shmem_quiet", self.rank, self.rank, 0)
        return waited

    def fence(self) -> None:
        """``shmem_fence``: order puts per destination (token cost only)."""
        self.perf.work(ins=10, extra_cycles=50)
        self.runtime.log("shmem_fence", self.rank, self.rank, 0)

    def pending_put_count(self) -> int:
        """Number of outstanding non-blocking puts (diagnostic)."""
        return len(self.runtime._pending_nbi[self.rank])

    def put_signal(self, target_pe: int) -> int:
        """The small signalling ``shmem_put`` used after ``quiet``.

        Returns the signal's arrival time at the target.
        """
        self.perf.work(ins=12, stores=2, extra_cycles=self.runtime.cost.signal_put_cycles)
        arrival = self.runtime.network.arrival_time(
            self.rank, target_pe, 8, self.perf.clock.now
        )
        self.runtime.log("shmem_put", self.rank, target_pe, 8)
        return arrival

    def local_memcpy(self, nbytes: int) -> int:
        """Charge an intra-node ``std::memcpy`` (via ``shmem_ptr``).

        Returns cycles charged.
        """
        self.runtime.log("memcpy", self.rank, self.rank, nbytes)
        return self.perf.memcpy(nbytes)

    # --- atomics -------------------------------------------------------

    def atomic_add(self, arr: SymmetricArray, value: int, target_pe: int,
                   offset: int = 0) -> None:
        """``shmem_atomic_add``: remote add without fetching."""
        target = arr.local(target_pe).reshape(-1)
        target[offset] += value
        cycles = self.runtime.network.transfer_cycles(self.rank, target_pe, arr.itemsize)
        self.perf.work(ins=15, loads=2, stores=2, extra_cycles=cycles)
        self.runtime.log("shmem_atomic_add", self.rank, target_pe, arr.itemsize)

    def atomic_fetch_add(self, arr: SymmetricArray, value: int, target_pe: int,
                         offset: int = 0) -> int:
        """``shmem_atomic_fetch_add``: remote fetch-and-add (round trip)."""
        target = arr.local(target_pe).reshape(-1)
        old = int(target[offset])
        target[offset] += value
        cycles = 2 * self.runtime.network.transfer_cycles(
            self.rank, target_pe, arr.itemsize
        )
        self.perf.work(ins=18, loads=3, stores=2, extra_cycles=cycles)
        self.runtime.log("shmem_atomic_fetch_add", self.rank, target_pe, arr.itemsize)
        return old

    def atomic_compare_swap(self, arr: SymmetricArray, cond: int, value: int,
                            target_pe: int, offset: int = 0) -> int:
        """``shmem_atomic_compare_swap``: CAS returning the old value."""
        target = arr.local(target_pe).reshape(-1)
        old = int(target[offset])
        if old == cond:
            target[offset] = value
        cycles = 2 * self.runtime.network.transfer_cycles(
            self.rank, target_pe, arr.itemsize
        )
        self.perf.work(ins=20, loads=3, stores=2, branches=1, extra_cycles=cycles)
        self.runtime.log("shmem_atomic_compare_swap", self.rank, target_pe, arr.itemsize)
        return old

    def wait_until(self, arr: SymmetricArray, offset: int, predicate) -> None:
        """``shmem_wait_until``: block until ``predicate(local_value)``.

        The predicate is evaluated over this PE's own copy (the usual
        flag-polling idiom); remote writers use puts/atomics to satisfy it.
        """
        mine = arr.local(self.rank).reshape(-1)
        self.perf.work(ins=10, loads=2)
        self.runtime.scheduler.wait_until(
            self.rank,
            predicate=lambda: bool(predicate(int(mine[offset]))),
            reason="shmem_wait_until",
        )
        self.runtime.log("shmem_wait_until", self.rank, self.rank, arr.itemsize)

    # --- collectives -------------------------------------------------------

    def barrier_all(self) -> None:
        """``shmem_barrier_all``."""
        self.perf.work(ins=20, extra_cycles=self.runtime.cost.barrier_cycles)
        self.runtime.rendezvous(self.rank, "barrier", None, lambda a: None)
        self.runtime.log("shmem_barrier_all", self.rank, self.rank, 0)

    def broadcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``value`` from ``root``; other PEs pass anything."""

        def combine(arrived: dict[int, Any]) -> Any:
            return arrived[root]

        self.perf.work(ins=30, loads=5, stores=5)
        return self.runtime.rendezvous(self.rank, f"broadcast:{root}", value, combine)

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """All-reduce a scalar or ndarray with ``op`` in {sum, max, min}."""
        reducer = _REDUCERS.get(op)
        if reducer is None:
            raise ValueError(f"unknown allreduce op {op!r}; want one of {sorted(_REDUCERS)}")

        def combine(arrived: dict[int, Any]) -> Any:
            return reducer([arrived[r] for r in sorted(arrived)])

        self.perf.work(ins=40, loads=8, stores=8)
        return self.runtime.rendezvous(self.rank, f"allreduce:{op}", value, combine)

    def exscan(self, value: int, op: str = "sum") -> int:
        """Exclusive prefix reduction over ranks (rank 0 gets the identity).

        The staple collective of bale kernels (e.g. assigning global slots
        from per-PE counts).  Only ``sum`` is supported.
        """
        if op != "sum":
            raise ValueError(f"exscan supports only 'sum', got {op!r}")
        rank = self.rank

        def combine(arrived: dict[int, Any]) -> Any:
            prefix: dict[int, int] = {}
            running = 0
            for r in sorted(arrived):
                prefix[r] = running
                running += arrived[r]
            return prefix

        self.perf.work(ins=35, loads=6, stores=6)
        prefixes = self.runtime.rendezvous(self.rank, "exscan:sum", int(value), combine)
        return prefixes[rank]

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """All-to-all exchange: PE ``p`` receives ``[contrib[j][p] for j]``."""
        if len(values) != self.n_pes:
            raise ValueError(
                f"alltoall needs exactly n_pes={self.n_pes} values, got {len(values)}"
            )
        rank = self.rank

        def combine(arrived: dict[int, Any]) -> Any:
            # result is the full matrix; each PE slices its column below
            return {r: list(v) for r, v in arrived.items()}

        self.perf.work(ins=50, loads=10, stores=10)
        matrix = self.runtime.rendezvous(self.rank, "alltoall", list(values), combine)
        return [matrix[j][rank] for j in range(self.n_pes)]
