"""Acceptance tests for the ActorCheck audit loop.

The two headline requirements: a deterministic workload passes a
multi-schedule audit, and a planted handler-order race is flagged as
*confirmed* nondeterminism naming the two divergent schedules.
"""

import pytest

from repro.check import HistogramWorkload, audit
from repro.check.workloads import GeneratedWorkload, ProgramSpec
from repro.machine.spec import MachineSpec
from repro.sim.faults import EdgeFault, FaultPlan


def _small_histogram(seed=0):
    return HistogramWorkload(updates=120, table_size=16,
                             machine=MachineSpec(1, 4), seed=seed)


def _racy_workload(seed=0):
    spec = ProgramSpec(mailboxes=2, payload_words=(2, 2), sends_per_pe=48,
                       planted_race=True)
    return GeneratedWorkload(spec, machine=MachineSpec(1, 4), seed=seed,
                             name="racy")


@pytest.fixture(scope="module")
def clean_report():
    return audit(_small_histogram(), schedules=4)


@pytest.fixture(scope="module")
def racy_report():
    return audit(_racy_workload(), schedules=4, store_equivalence=False)


def test_clean_workload_passes(clean_report):
    assert clean_report.verdict == "pass"
    assert clean_report.exit_code == 0
    assert clean_report.confirmed == []
    assert clean_report.violations == []


def test_clean_audit_replays_are_byte_identical(clean_report):
    assert len(clean_report.replays) == 2  # schedule 0 and one jittered
    assert all(r["identical"] for r in clean_report.replays)


def test_clean_audit_reports_benign_reordering(clean_report):
    # jittered schedules shuffle physical buffering, so archives differ —
    # but only benignly
    assert clean_report.benign


def test_audit_one_outcome_per_schedule(clean_report):
    assert len(clean_report.outcomes) == 4
    assert [o.schedule.index for o in clean_report.outcomes] == [0, 1, 2, 3]


def test_report_round_trips_to_dict(clean_report):
    d = clean_report.to_dict()
    assert d["verdict"] == "pass"
    assert d["exit_code"] == 0
    assert len(d["outcomes"]) == 4
    assert "byte-identical" in clean_report.render()


def test_planted_race_is_confirmed(racy_report):
    """The acceptance criterion: the race is CONFIRMED, not benign."""
    assert racy_report.verdict == "nondeterminism"
    assert racy_report.exit_code == 4
    assert racy_report.confirmed


def test_planted_race_names_two_divergent_schedules(racy_report):
    div = racy_report.confirmed[0]
    assert div.kind == "result"
    a, b = div.schedules
    assert a != b
    assert a == "0"  # diffed against the default-schedule baseline
    rendered = racy_report.render()
    assert f"CONFIRMED [result] schedules {a} vs {b}" in rendered


def test_planted_race_keeps_logical_trace_invariant(racy_report):
    """The race corrupts only the result — sends stay schedule-invariant,
    so the classifier must not blame the logical trace."""
    kinds = {d.kind for d in racy_report.confirmed}
    assert "logical-trace" not in kinds
    assert "replay" not in kinds  # each schedule is still bit-stable


def test_audit_rejects_zero_schedules():
    with pytest.raises(ValueError, match="at least one schedule"):
        audit(_small_histogram(), schedules=0)


def test_audit_rejects_crash_plans():
    plan = FaultPlan.single_crash(pe=1, at_cycle=1000)
    with pytest.raises(ValueError, match="crashes cannot be audited"):
        audit(_small_histogram(), schedules=2, fault_plan=plan)


def test_audit_composes_with_nonfatal_fault_plan(tmp_path):
    """A delay/duplicate plan is deterministic per seed, so the audited
    workload must still pass under it."""
    plan = FaultPlan(edges=(EdgeFault(duplicate=0.2, delay=0.3,
                                      delay_cycles=500),), seed=7)
    report = audit(_small_histogram(), schedules=2,
                   out_dir=tmp_path / "arch", store_equivalence=False,
                   fault_plan=plan)
    assert report.verdict == "pass"
    assert all(r["identical"] for r in report.replays)
    assert (tmp_path / "arch" / "s0.aptrc").exists()
