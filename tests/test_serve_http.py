"""Unit tests for the hand-rolled HTTP/1.1 layer (`repro.serve.http`)."""

import asyncio

import pytest

from repro.serve.http import (
    HttpError,
    TruncatedBody,
    iter_body,
    read_body,
    read_request,
    response_bytes,
)


def run(fn):
    """Call ``fn`` inside a fresh running loop (3.11 wants StreamReader
    construction to happen while a loop is running) and await its result."""
    async def go():
        return await fn()
    return asyncio.run(go())


def reader_for(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def parse(data: bytes):
    return run(lambda: read_request(reader_for(data)))


def test_parse_request_line_and_headers():
    req = parse(b"GET /runs?limit=5&x=%20a HTTP/1.1\r\n"
                b"Host: h\r\nX-Thing:  padded \r\n\r\n")
    assert req.method == "GET"
    assert req.path == "/runs"
    assert req.params == {"limit": "5", "x": " a"}
    assert req.headers["x-thing"] == "padded"
    assert not req.has_body
    assert req.body_consumed
    assert req.keep_alive()


def test_path_is_unquoted_and_defaults_to_root():
    assert parse(b"GET /runs/my%20run HTTP/1.1\r\n\r\n").path == "/runs/my run"
    assert parse(b"GET ?x=1 HTTP/1.1\r\n\r\n").path == "/"


def test_clean_eof_returns_none():
    assert parse(b"") is None


def test_partial_head_is_truncation():
    with pytest.raises(TruncatedBody):
        parse(b"GET / HTTP/1.1\r\nHost")


def test_malformed_request_line_and_header():
    with pytest.raises(HttpError, match="request line"):
        parse(b"GETGETGET\r\n\r\n")
    with pytest.raises(HttpError, match="header line"):
        parse(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n")


def test_connection_close_and_http10():
    assert not parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive()
    assert not parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive()
    assert parse(b"GET / HTTP/1.0\r\n"
                 b"Connection: keep-alive\r\n\r\n").keep_alive()


def test_bad_content_length():
    # rejected while parsing the head (has_body consults the length)
    with pytest.raises(HttpError, match="Content-Length"):
        parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")


def body_of(wire: bytes, max_bytes: int = 1 << 20) -> bytes:
    async def go():
        reader = reader_for(wire)
        req = await read_request(reader)
        assert not req.body_consumed
        data = await read_body(reader, req, max_bytes)
        assert req.body_consumed
        return data
    return run(go)


def test_content_length_body():
    assert body_of(b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello") == b"hello"


def test_content_length_truncated():
    with pytest.raises(TruncatedBody):
        body_of(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhel")


def test_chunked_body_with_trailer():
    wire = (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"4\r\nwiki\r\n5\r\npedia\r\n0\r\n"
            b"X-Trailer: t\r\n\r\n")
    assert body_of(wire) == b"wikipedia"


def test_chunked_truncated_mid_chunk():
    wire = (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"ff\r\nonly-a-few-bytes")
    with pytest.raises(TruncatedBody):
        body_of(wire)


def test_chunked_missing_terminator():
    wire = (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"4\r\nwikiXX5\r\npedia\r\n0\r\n\r\n")
    with pytest.raises(HttpError, match="CRLF"):
        body_of(wire)


def test_chunked_bad_size_line():
    wire = (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"zz\r\nxx\r\n0\r\n\r\n")
    with pytest.raises(HttpError, match="chunk size"):
        body_of(wire)


def test_body_size_limit_enforced_while_streaming():
    # the limit must cut the stream off as soon as it is crossed, not
    # after the body is buffered
    wire = (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"5\r\naaaaa\r\n5\r\nbbbbb\r\n0\r\n\r\n")

    async def go():
        reader = reader_for(wire)
        req = await read_request(reader)
        seen = []
        with pytest.raises(HttpError) as excinfo:
            async for chunk in iter_body(reader, req, max_bytes=7):
                seen.append(chunk)
        assert excinfo.value.status == 413
        return seen

    assert run(go) == [b"aaaaa"]  # second chunk never materialized


def test_content_length_over_limit_rejected_before_reading():
    wire = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100
    with pytest.raises(HttpError) as excinfo:
        body_of(wire, max_bytes=10)
    assert excinfo.value.status == 413


def test_response_bytes_shape():
    wire = response_bytes(429, b'{"error": "slow down"}',
                          headers={"Retry-After": "1"})
    text = wire.decode()
    assert text.startswith("HTTP/1.1 429 Too Many Requests\r\n")
    assert "Retry-After: 1\r\n" in text
    assert "Content-Length: 22\r\n" in text
    assert text.endswith('\r\n\r\n{"error": "slow down"}')
