"""Tests for guarded mailboxes (the Selector model's defining feature)."""

import numpy as np
import pytest

from repro.hclib import Selector, run_spmd
from repro.machine import MachineSpec
from repro.sim import PEFailure


def test_guard_defers_processing_until_enabled():
    """Mailbox 1 only processes after mailbox 0's 'header' arrived —
    the classic guarded-mailbox ordering idiom."""
    order = {}

    def program(ctx):
        log = []
        state = {"header_seen": False}
        s = Selector(ctx, mailboxes=2, payload_words=1)

        def on_header(payload, src):
            state["header_seen"] = True
            log.append(("header", payload))

        def on_data(payload, src):
            # the guard guarantees the header was processed first
            assert state["header_seen"]
            log.append(("data", payload))

        s.mb[0].process = on_header
        s.mb[1].process = on_data
        s.mb[1].guard = lambda: state["header_seen"]
        with ctx.finish():
            s.start()
            # send data BEFORE the header: guard must hold it back
            s.send(1, 100 + ctx.my_pe, (ctx.my_pe + 1) % ctx.n_pes)
            s.send(0, 7, (ctx.my_pe + 1) % ctx.n_pes)
            s.done(0)
            s.done(1)
        order[ctx.my_pe] = log
        return len(log)

    res = run_spmd(program, machine=MachineSpec(1, 4))
    assert res.results == [2] * 4
    for log in order.values():
        assert log[0][0] == "header"
        assert log[1][0] == "data"


def test_guard_true_behaves_like_no_guard():
    counts = {}

    def program(ctx):
        n = [0]
        s = Selector(ctx, mailboxes=1, payload_words=1)
        s.mb[0].process = lambda p, src: n.__setitem__(0, n[0] + 1)
        s.mb[0].guard = lambda: True
        with ctx.finish():
            s.start()
            for i in range(5):
                s.send(0, i, (ctx.my_pe + i) % ctx.n_pes)
            s.done(0)
        counts[ctx.my_pe] = n[0]
        return n[0]

    res = run_spmd(program, machine=MachineSpec(1, 4))
    assert sum(res.results) == 20


def test_guard_flipped_by_remote_put_unblocks_drain():
    """A guard over a symmetric flag written by another PE wakes the
    blocked drain when the put lands."""

    def program(ctx):
        flag = ctx.shmem.malloc(1, np.int64)
        handled = [0]
        s = Selector(ctx, mailboxes=1, payload_words=1)
        s.mb[0].process = lambda p, src: handled.__setitem__(0, handled[0] + 1)
        s.mb[0].guard = lambda: int(ctx.shmem.mine(flag)[0]) == 1
        with ctx.finish():
            s.start()
            s.send(0, 1, (ctx.my_pe + 1) % ctx.n_pes)
            s.done(0)
            # enable everyone's guard from MAIN (before drain blocks)
            ctx.shmem.put(flag, [1], (ctx.my_pe + 1) % ctx.n_pes)
        return handled[0]

    res = run_spmd(program, machine=MachineSpec(1, 4))
    assert sum(res.results) == 4


def test_permanently_false_guard_deadlocks_cleanly():
    def program(ctx):
        s = Selector(ctx, mailboxes=1, payload_words=1)
        s.mb[0].process = lambda p, src: None
        s.mb[0].guard = lambda: False
        with ctx.finish():
            s.start()
            s.send(0, 1, (ctx.my_pe + 1) % ctx.n_pes)
            s.done(0)

    with pytest.raises(PEFailure) as ei:
        run_spmd(program, machine=MachineSpec(1, 2))
    assert "deadlock" in str(ei.value).lower()


def test_guard_with_batch_handler():
    def program(ctx):
        total = [0]
        gate = [False]
        s = Selector(ctx, mailboxes=2, payload_words=1)
        s.mb[0].process = lambda p, src: gate.__setitem__(0, True)
        s.mb[1].process_batch = lambda payloads, srcs: total.__setitem__(
            0, total[0] + len(payloads))
        s.mb[1].guard = lambda: gate[0]
        with ctx.finish():
            s.start()
            dsts = np.arange(8) % ctx.n_pes
            s.send_batch(1, dsts, np.zeros(8, dtype=np.int64))
            s.send(0, 1, (ctx.my_pe + 1) % ctx.n_pes)
            s.done(0)
            s.done(1)
        return total[0]

    res = run_spmd(program, machine=MachineSpec(2, 2))
    assert sum(res.results) == 8 * 4
