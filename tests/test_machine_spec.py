"""Unit tests for the machine/cluster specification."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import MachineSpec


def test_basic_shape():
    spec = MachineSpec(2, 16)
    assert spec.n_pes == 32
    assert spec.nodes == 2
    assert spec.pes_per_node == 16


def test_invalid_shapes_rejected():
    with pytest.raises(ValueError):
        MachineSpec(0, 4)
    with pytest.raises(ValueError):
        MachineSpec(2, 0)


def test_node_of_is_node_major():
    spec = MachineSpec(2, 16)
    assert spec.node_of(0) == 0
    assert spec.node_of(15) == 0
    assert spec.node_of(16) == 1
    assert spec.node_of(31) == 1


def test_local_index():
    spec = MachineSpec(2, 16)
    assert spec.local_index(0) == 0
    assert spec.local_index(17) == 1


def test_pe_at_inverts_node_of_local_index():
    spec = MachineSpec(3, 5)
    for pe in range(spec.n_pes):
        assert spec.pe_at(spec.node_of(pe), spec.local_index(pe)) == pe


def test_same_node():
    spec = MachineSpec(2, 4)
    assert spec.same_node(0, 3)
    assert not spec.same_node(3, 4)


def test_node_pes():
    spec = MachineSpec(2, 4)
    assert list(spec.node_pes(1)) == [4, 5, 6, 7]


def test_out_of_range_checks():
    spec = MachineSpec(2, 4)
    with pytest.raises(ValueError):
        spec.node_of(8)
    with pytest.raises(ValueError):
        spec.node_of(-1)
    with pytest.raises(ValueError):
        spec.pe_at(2, 0)
    with pytest.raises(ValueError):
        spec.pe_at(0, 4)
    with pytest.raises(ValueError):
        spec.node_pes(2)


def test_perlmutter_like_defaults():
    spec = MachineSpec.perlmutter_like()
    assert (spec.nodes, spec.pes_per_node) == (1, 16)
    spec2 = MachineSpec.perlmutter_like(2)
    assert spec2.n_pes == 32


@given(st.integers(1, 8), st.integers(1, 32))
def test_mapping_partitions_all_pes(nodes, ppn):
    spec = MachineSpec(nodes, ppn)
    seen = set()
    for node in range(nodes):
        for pe in spec.node_pes(node):
            assert spec.node_of(pe) == node
            seen.add(pe)
    assert seen == set(range(spec.n_pes))
