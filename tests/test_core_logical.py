"""Tests for the logical trace recorder and its file format."""

import numpy as np
import pytest

from repro.core.logical import LogicalTrace, parse_logical_dir
from repro.machine import MachineSpec


def make_trace():
    trace = LogicalTrace(MachineSpec(2, 2))
    trace.record(0, 1, 8)
    trace.record(0, 1, 8)
    trace.record(0, 3, 16)
    trace.record(2, 0, 8)
    return trace


def test_matrix_counts():
    m = make_trace().matrix()
    assert m[0, 1] == 2
    assert m[0, 3] == 1
    assert m[2, 0] == 1
    assert m.sum() == 4


def test_bytes_matrix():
    b = make_trace().bytes_matrix()
    assert b[0, 1] == 16
    assert b[0, 3] == 16
    assert b[2, 0] == 8


def test_totals():
    t = make_trace()
    assert t.sends_per_pe().tolist() == [3, 0, 1, 0]
    assert t.recvs_per_pe().tolist() == [1, 2, 0, 1]
    assert t.total_sends() == 4


def test_record_batch_equals_scalar():
    spec = MachineSpec(1, 4)
    a = LogicalTrace(spec)
    b = LogicalTrace(spec)
    dsts = np.array([1, 2, 1, 3, 1, 0])
    for d in dsts:
        a.record(0, int(d), 8)
    b.record_batch(0, dsts, 8)
    assert np.array_equal(a.matrix(), b.matrix())


def test_record_batch_empty():
    t = LogicalTrace(MachineSpec(1, 2))
    t.record_batch(0, np.array([], dtype=np.int64), 8)
    assert t.total_sends() == 0


def test_write_and_parse_roundtrip(tmp_path):
    t = make_trace()
    paths = t.write(tmp_path)
    assert len(paths) == 4
    assert (tmp_path / "PE0_send.csv").exists()
    parsed = parse_logical_dir(tmp_path, 4)
    assert np.array_equal(parsed.matrix(), t.matrix())
    assert np.array_equal(parsed.bytes_matrix(), t.bytes_matrix())
    # node mapping survives the roundtrip
    assert parsed.spec.nodes == 2


def test_csv_format_matches_paper(tmp_path):
    t = make_trace()
    t.write(tmp_path)
    lines = (tmp_path / "PE0_send.csv").read_text().strip().splitlines()
    assert lines[0].startswith("#")
    # "source node, source PE, destination node, destination PE, msg size"
    assert lines[1] == "0,0,0,1,8"
    assert lines.count("0,0,0,1,8") == 2
    assert "0,0,1,3,16" in lines


def test_parse_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        parse_logical_dir(tmp_path, 2)


def test_parse_malformed_line_raises(tmp_path):
    (tmp_path / "PE0_send.csv").write_text("1,2,3\n")
    with pytest.raises(ValueError):
        parse_logical_dir(tmp_path, 1)


def test_parse_error_reports_file_and_line(tmp_path):
    (tmp_path / "PE0_send.csv").write_text("# header\n0,0,0,0,8\n0,zero,0,0,8\n")
    with pytest.raises(ValueError, match=r"PE0_send\.csv:3: malformed"):
        parse_logical_dir(tmp_path, 1)


def test_parse_wrong_field_count_reports_line(tmp_path):
    (tmp_path / "PE0_send.csv").write_text("0,0,0,0,8,9\n")
    with pytest.raises(ValueError, match=r":1: .*expected 5 fields, got 6"):
        parse_logical_dir(tmp_path, 1)


def test_parse_rejects_out_of_range_source_pe(tmp_path):
    (tmp_path / "PE0_send.csv").write_text("0,7,0,0,8\n")
    (tmp_path / "PE1_send.csv").write_text("")
    with pytest.raises(ValueError,
                       match=r":1: source PE 7 out of range for n_pes=2"):
        parse_logical_dir(tmp_path, 2)


def test_parse_rejects_out_of_range_destination_pe(tmp_path):
    (tmp_path / "PE0_send.csv").write_text("0,0,1,-1,8\n")
    (tmp_path / "PE1_send.csv").write_text("")
    with pytest.raises(ValueError,
                       match=r"destination PE -1 out of range for n_pes=2"):
        parse_logical_dir(tmp_path, 2)


def test_parse_requires_positive_n_pes(tmp_path):
    with pytest.raises(ValueError, match="n_pes"):
        parse_logical_dir(tmp_path, 0)
