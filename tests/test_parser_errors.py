"""Error-path tests for the three trace parsers.

Every malformed input must fail with an actionable ``path:line``-prefixed
message — truncated rows, out-of-range PEs, mixed schemas — never a bare
``ValueError: invalid literal``.
"""

import pytest

from repro.core.logical import parse_logical_dir
from repro.core.papi_trace import PAPITrace, parse_papi_dir
from repro.core.physical import parse_physical_file
from repro.machine.spec import MachineSpec

# ----------------------------------------------------------------------
# logical (PEi_send.csv)
# ----------------------------------------------------------------------


def _write_logical(tmp_path, pe0_lines, n_pes=2):
    for pe in range(n_pes):
        lines = pe0_lines if pe == 0 else ["0,1,0,0,8"]
        (tmp_path / f"PE{pe}_send.csv").write_text(
            "# src node, src pe, dst node, dst pe, size\n"
            + "\n".join(lines) + "\n"
        )
    return tmp_path


def test_logical_missing_file(tmp_path):
    (tmp_path / "PE0_send.csv").write_text("0,0,0,1,8\n")
    with pytest.raises(FileNotFoundError, match="PE1_send.csv"):
        parse_logical_dir(tmp_path, 2)


def test_logical_truncated_row(tmp_path):
    _write_logical(tmp_path, ["0,0,0,1"])
    with pytest.raises(ValueError, match=r"PE0_send\.csv:2: .*expected 5"):
        parse_logical_dir(tmp_path, 2)


def test_logical_non_integer_field(tmp_path):
    _write_logical(tmp_path, ["0,zero,0,1,8"])
    with pytest.raises(ValueError, match=r"PE0_send\.csv:2: malformed"):
        parse_logical_dir(tmp_path, 2)


def test_logical_out_of_range_pe(tmp_path):
    _write_logical(tmp_path, ["0,0,0,7,8"])
    with pytest.raises(ValueError,
                       match=r"PE0_send\.csv:2: destination PE 7 out of range"):
        parse_logical_dir(tmp_path, 2)


def test_logical_rejects_bad_n_pes(tmp_path):
    with pytest.raises(ValueError, match="n_pes must be >= 1"):
        parse_logical_dir(tmp_path, 0)


# ----------------------------------------------------------------------
# physical (physical.txt)
# ----------------------------------------------------------------------


def _write_physical(tmp_path, lines):
    path = tmp_path / "physical.txt"
    path.write_text("# kind, bytes, src, dst\n" + "\n".join(lines) + "\n")
    return path


def test_physical_truncated_row(tmp_path):
    path = _write_physical(tmp_path, ["BUFFER,512,0"])
    with pytest.raises(ValueError, match=r"physical\.txt:2: .*expected 4"):
        parse_physical_file(path)


def test_physical_unknown_send_type(tmp_path):
    path = _write_physical(tmp_path, ["CARRIER_PIGEON,512,0,1"])
    with pytest.raises(ValueError,
                       match=r"physical\.txt:2: unknown physical send type"):
        parse_physical_file(path)


def test_physical_non_integer_size(tmp_path):
    path = _write_physical(tmp_path, ["local_send,big,0,1"])
    with pytest.raises(ValueError, match=r"physical\.txt:2: .*integers"):
        parse_physical_file(path)


def test_physical_out_of_range_pe(tmp_path):
    path = _write_physical(tmp_path, ["local_send,512,0,9"])
    with pytest.raises(ValueError,
                       match=r"physical\.txt:2: destination PE 9 out of range"):
        parse_physical_file(path, n_pes=4)


# ----------------------------------------------------------------------
# PAPI (PEi_PAPI.csv)
# ----------------------------------------------------------------------

EVENTS = ("PAPI_TOT_INS", "PAPI_L1_DCM")


def _write_papi(tmp_path, n_pes=2):
    """A valid two-PE PAPI trace to corrupt per-test."""
    trace = PAPITrace(MachineSpec(1, n_pes), EVENTS)
    trace.record(0, 1, 64, 0, 3, (100, 5))
    trace.record(1, 0, 64, 0, 2, (80, 4))
    trace.write(tmp_path)
    return tmp_path


def test_papi_round_trips_when_clean(tmp_path):
    _write_papi(tmp_path)
    trace = parse_papi_dir(tmp_path, 2)
    assert trace.events == EVENTS


def test_papi_missing_file(tmp_path):
    _write_papi(tmp_path)
    (tmp_path / "PE1_PAPI.csv").unlink()
    with pytest.raises(FileNotFoundError, match="PE1_PAPI.csv"):
        parse_papi_dir(tmp_path, 2)


def test_papi_rejects_bad_n_pes(tmp_path):
    with pytest.raises(ValueError, match="n_pes must be >= 1"):
        parse_papi_dir(tmp_path, 0)


def test_papi_non_integer_field(tmp_path):
    _write_papi(tmp_path)
    with (tmp_path / "PE0_PAPI.csv").open("a") as f:
        f.write("0,0,0,1,64,0,oops,1,2\n")
    with pytest.raises(ValueError,
                       match=r"PE0_PAPI\.csv:3: malformed PAPI trace line"):
        parse_papi_dir(tmp_path, 2)


def test_papi_mixed_schema_row(tmp_path):
    _write_papi(tmp_path)
    with (tmp_path / "PE0_PAPI.csv").open("a") as f:
        f.write("0,0,0,1,64,0,1,100,5,999\n")  # one event value too many
    with pytest.raises(ValueError,
                       match=r"PE0_PAPI\.csv:3: PAPI row has 10 fields.*"
                             r"mixed-schema"):
        parse_papi_dir(tmp_path, 2)


def test_papi_out_of_range_pe(tmp_path):
    _write_papi(tmp_path)
    with (tmp_path / "PE1_PAPI.csv").open("a") as f:
        f.write("0,5,0,1,64,0,1,100,5\n")
    with pytest.raises(ValueError,
                       match=r"PE1_PAPI\.csv:3: source PE 5 out of range"):
        parse_papi_dir(tmp_path, 2)


def test_papi_inconsistent_headers_name_both_files(tmp_path):
    _write_papi(tmp_path)
    pe1 = tmp_path / "PE1_PAPI.csv"
    pe1.write_text(pe1.read_text().replace("PAPI_L1_DCM", "PAPI_L2_DCM"))
    with pytest.raises(ValueError, match=r"PE1_PAPI\.csv:1: .*disagrees "
                                         r"with .*PE0_PAPI\.csv:1"):
        parse_papi_dir(tmp_path, 2)


def test_papi_data_before_header(tmp_path):
    _write_papi(tmp_path)
    pe0 = tmp_path / "PE0_PAPI.csv"
    lines = pe0.read_text().splitlines()
    pe0.write_text("\n".join(lines[1:] + [lines[0]]) + "\n")
    with pytest.raises(ValueError,
                       match=r"PE0_PAPI\.csv:1: PAPI data row before"):
        parse_papi_dir(tmp_path, 2)
