"""Unit tests for the network model."""

import pytest

from repro.machine import CostModel, MachineSpec, NetworkModel


def make_net(nodes=2, ppn=4, **cost) -> NetworkModel:
    return NetworkModel(MachineSpec(nodes, ppn), CostModel().scaled(**cost))


def test_locality():
    net = make_net()
    assert net.is_local(0, 3)
    assert not net.is_local(0, 4)


def test_local_transfer_is_memcpy_cost():
    net = make_net()
    assert net.transfer_cycles(0, 1, 512) == net.cost.memcpy_cycles(512)


def test_remote_transfer_is_network_cost():
    net = make_net()
    assert net.transfer_cycles(0, 4, 512) == net.cost.net_transfer_cycles(512)


def test_remote_more_expensive_than_local():
    net = make_net()
    assert net.transfer_cycles(0, 4, 1024) > net.transfer_cycles(0, 1, 1024)


def test_issue_cycles_local_is_full_copy():
    net = make_net()
    assert net.issue_cycles(0, 1, 512) == net.cost.memcpy_cycles(512)


def test_issue_cycles_remote_is_constant():
    """Non-blocking put issue cost does not scale with payload."""
    net = make_net()
    assert net.issue_cycles(0, 4, 8) == net.issue_cycles(0, 4, 1 << 20)


def test_arrival_time():
    net = make_net()
    t = net.arrival_time(0, 4, 100, issued_at=1000)
    assert t == 1000 + net.cost.net_transfer_cycles(100)


def test_negative_size_rejected():
    net = make_net()
    with pytest.raises(ValueError):
        net.transfer_cycles(0, 1, -1)
