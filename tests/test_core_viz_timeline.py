"""Tests for the timeline/utilization charts."""

import pytest

from repro.core.timeline import TimelineTrace
from repro.core.viz.timeline_chart import timeline_svg, utilization_svg


def make_timeline():
    tl = TimelineTrace(2)
    tl.add_span(0, "MAIN", 0, 400)
    tl.add_span(0, "PROC", 500, 700, mailbox=0)
    tl.add_span(0, "FINISH", 0, 1000)
    tl.add_span(1, "MAIN", 100, 300)
    tl.add_net_event(450, "local_send", 0, 1, 128)
    tl.add_net_event(650, "nonblock_send", 1, 0, 64)
    return tl


def test_timeline_svg_structure():
    s = timeline_svg(make_timeline(), title="T")
    assert "<svg" in s
    assert "PE0" in s and "PE1" in s
    assert "PE0 MAIN: [0, 400)" in s
    assert "PE0 PROC: [500, 700)" in s
    # FINISH spans are background, not drawn as blocks
    assert "FINISH" not in s
    assert "cycles (rdtsc)" in s


def test_timeline_svg_empty_timeline():
    s = timeline_svg(TimelineTrace(1))
    assert "<svg" in s


def test_timeline_decimation_bounds_size():
    tl = TimelineTrace(1)
    for i in range(5000):
        tl.add_span(0, "MAIN", 2 * i, 2 * i + 1)
    s = timeline_svg(tl, max_spans=100)
    # far fewer rects than spans
    assert s.count("<rect") < 1000


def test_utilization_svg():
    s = utilization_svg(make_timeline(), buckets=10)
    assert "<svg" in s
    assert "busy" in s
    assert "PE1" in s
    with pytest.raises(ValueError):
        utilization_svg(make_timeline(), buckets=0)
