"""Unit and integration tests for the simulated OpenSHMEM runtime."""

import numpy as np
import pytest

from repro.machine import CostModel, MachineSpec
from repro.shmem import ShmemRuntime
from repro.sim import CoopScheduler, PEFailure
from repro.sim.errors import SimulationError


def run_spmd(spec: MachineSpec, body, *, log_calls=False, cost=None):
    """Run an SPMD body over a fresh shmem runtime; returns the runtime."""
    sched = CoopScheduler(spec.n_pes)
    rt = ShmemRuntime(sched, spec, cost=cost, log_calls=log_calls)
    sched.run(lambda rank: body(rt.contexts[rank]))
    return rt


def test_spec_mismatch_rejected():
    with pytest.raises(ValueError):
        ShmemRuntime(CoopScheduler(3), MachineSpec(1, 4))


def test_identity_properties():
    seen = {}

    def body(ctx):
        seen[ctx.my_pe] = ctx.n_pes

    run_spmd(MachineSpec(1, 4), body)
    assert seen == {0: 4, 1: 4, 2: 4, 3: 4}


def test_put_writes_remote_array():
    out = {}

    def body(ctx):
        arr = ctx.malloc(ctx.n_pes, np.int64)
        ctx.barrier_all()
        ctx.put(arr, [ctx.my_pe * 10], 0, offset=ctx.my_pe)
        ctx.barrier_all()
        if ctx.my_pe == 0:
            out["data"] = ctx.mine(arr).tolist()

    run_spmd(MachineSpec(1, 4), body)
    assert out["data"] == [0, 10, 20, 30]


def test_get_reads_remote_array():
    out = {}

    def body(ctx):
        arr = ctx.malloc(4, np.int64)
        ctx.mine(arr)[:] = ctx.my_pe + 1
        ctx.barrier_all()
        if ctx.my_pe == 3:
            out["got"] = ctx.get(arr, 1).tolist()

    run_spmd(MachineSpec(2, 2), body)
    assert out["got"] == [2, 2, 2, 2]


def test_ptr_same_node_gives_view_other_node_none():
    out = {}

    def body(ctx):
        arr = ctx.malloc(2, np.int64)
        ctx.mine(arr)[:] = ctx.my_pe
        ctx.barrier_all()
        if ctx.my_pe == 0:
            same = ctx.ptr(arr, 1)  # same node (2 PEs/node)
            other = ctx.ptr(arr, 2)  # next node
            out["same"] = None if same is None else same.tolist()
            out["other"] = other

    run_spmd(MachineSpec(2, 2), body)
    assert out["same"] == [1, 1]
    assert out["other"] is None


def test_putmem_nbi_then_quiet_waits_for_completion():
    waits = {}

    def body(ctx):
        arr = ctx.malloc(64, np.int64)
        ctx.barrier_all()
        if ctx.my_pe == 0:
            before = ctx.perf.clock.now
            ctx.putmem_nbi(arr, np.arange(64), 3, offset=0)
            issue_done = ctx.perf.clock.now
            waited = ctx.quiet()
            waits["issue"] = issue_done - before
            waits["waited"] = waited
            waits["pending_after"] = ctx.pending_put_count()
        ctx.barrier_all()

    rt = run_spmd(MachineSpec(2, 2), body)
    # Non-blocking issue is much cheaper than the transfer itself.
    assert waits["issue"] < rt.cost.net_transfer_cycles(64 * 8)
    assert waits["waited"] > 0
    assert waits["pending_after"] == 0


def test_quiet_with_nothing_pending_is_cheap():
    out = {}

    def body(ctx):
        if ctx.my_pe == 0:
            out["waited"] = ctx.quiet()

    run_spmd(MachineSpec(1, 2), body)
    assert out["waited"] == 0


def test_nbi_put_data_lands():
    out = {}

    def body(ctx):
        arr = ctx.malloc(4, np.int64)
        ctx.barrier_all()
        if ctx.my_pe == 1:
            ctx.putmem_nbi(arr, [9, 9, 9, 9], 0)
            ctx.quiet()
        ctx.barrier_all()
        if ctx.my_pe == 0:
            out["data"] = ctx.mine(arr).tolist()

    run_spmd(MachineSpec(1, 2), body)
    assert out["data"] == [9, 9, 9, 9]


def test_call_log_records_operations():
    def body(ctx):
        arr = ctx.malloc(2, np.int64)
        ctx.barrier_all()
        ctx.put(arr, [1], (ctx.my_pe + 1) % ctx.n_pes)
        ctx.barrier_all()

    rt = run_spmd(MachineSpec(1, 2), body, log_calls=True)
    ops = [c.op for c in rt.calls]
    assert "shmem_put" in ops
    assert "shmem_barrier_all" in ops


def test_call_log_disabled_by_default():
    def body(ctx):
        ctx.barrier_all()

    rt = run_spmd(MachineSpec(1, 2), body)
    assert rt.calls == []


def test_fence_charges_and_logs():
    def body(ctx):
        ctx.fence()

    rt = run_spmd(MachineSpec(1, 2), body, log_calls=True)
    assert sum(1 for c in rt.calls if c.op == "shmem_fence") == 2


def test_local_memcpy_charges_cycles():
    out = {}

    def body(ctx):
        t0 = ctx.perf.clock.now
        ctx.local_memcpy(4096)
        out[ctx.my_pe] = ctx.perf.clock.now - t0

    rt = run_spmd(MachineSpec(1, 1), body)
    assert out[0] == rt.cost.memcpy_cycles(4096)
