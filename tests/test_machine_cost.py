"""Unit tests for the cost model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.machine import CostModel


def test_ins_cycles_scales_with_cpi():
    cm = CostModel(cpi=2.0)
    assert cm.ins_cycles(100) == 200


def test_memcpy_has_base_plus_per_byte():
    cm = CostModel(memcpy_base_cycles=100, memcpy_cycles_per_byte=0.5)
    assert cm.memcpy_cycles(0) == 100
    assert cm.memcpy_cycles(200) == 200


def test_net_transfer_latency_dominates_small_messages():
    cm = CostModel()
    small = cm.net_transfer_cycles(8)
    big = cm.net_transfer_cycles(8192)
    assert small >= cm.net_latency_cycles
    assert big > small


def test_network_much_more_expensive_than_memcpy():
    """The relative ordering the figures depend on: net >> memcpy."""
    cm = CostModel()
    nbytes = 1024
    assert cm.net_transfer_cycles(nbytes) > 4 * cm.memcpy_cycles(nbytes)


def test_collective_cycles_scale_with_pes():
    cm = CostModel()
    assert cm.collective_cycles(32) > cm.collective_cycles(2)


def test_scaled_overrides_fields():
    cm = CostModel().scaled(net_latency_cycles=1)
    assert cm.net_latency_cycles == 1
    # untouched fields keep defaults
    assert cm.cpi == CostModel().cpi


def test_frozen():
    import dataclasses

    import pytest

    cm = CostModel()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cm.cpi = 3.0  # type: ignore[misc]


@given(st.integers(0, 10**7))
def test_costs_monotone_in_bytes(nbytes):
    cm = CostModel()
    assert cm.memcpy_cycles(nbytes + 64) >= cm.memcpy_cycles(nbytes)
    assert cm.net_transfer_cycles(nbytes + 64) >= cm.net_transfer_cycles(nbytes)
