"""Golden what-if reports.

``tests/golden/whatif_*.json`` pin the full report of
:func:`repro.whatif.run_whatif` — critical-path breakdown, ranked
predictions, and replayed speedup points — for the two case-study
workloads at fixed seeds.  The tests rebuild each report from scratch
and assert *byte identity* of the JSON serialization the CLI writes, so
any drift in the DAG reconstruction, the critical-path weights, the
prediction math, or the replay engine shows up here first.

Regenerate (only after an intentional behaviour change) with::

    PYTHONPATH=src python tests/test_whatif_golden.py
"""

import json
from pathlib import Path

import pytest

from repro.check.workloads import HistogramWorkload, TriangleWorkload
from repro.machine.spec import MachineSpec
from repro.whatif import Scales, run_whatif

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

GOLDEN_WORKLOADS = {
    "whatif_histogram": lambda: HistogramWorkload(
        updates=200, table_size=32, machine=MachineSpec(2, 2), seed=0),
    "whatif_triangle": lambda: TriangleWorkload(
        scale=6, distribution="cyclic", machine=MachineSpec(2, 2), seed=0),
}


def _build_report(name: str) -> dict:
    return run_whatif(
        GOLDEN_WORKLOADS[name](),
        scale_sets=[Scales({"proc": 0.5})],
        sweeps=[("net.latency", [0.5, 2.0])],
    )


def _serialize(report: dict) -> str:
    # exactly what `actorprof whatif --report` writes
    return json.dumps(report, indent=2) + "\n"


@pytest.mark.parametrize("name", sorted(GOLDEN_WORKLOADS))
def test_rebuilt_report_is_byte_identical_to_golden(name):
    golden = GOLDEN_DIR / f"{name}.json"
    assert golden.exists(), (
        f"missing golden report {golden}; regenerate with "
        f"`PYTHONPATH=src python {Path(__file__).name}`"
    )
    rebuilt = _serialize(_build_report(name))
    assert rebuilt == golden.read_text(), (
        f"rebuilt {name} report differs from {golden} — the DAG "
        f"reconstruction, prediction math, or replay engine drifted; if "
        f"intentional, regenerate the goldens and call it out in the "
        f"changelog"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_WORKLOADS))
def test_golden_report_invariants(name):
    """The pinned reports must themselves satisfy the whatif contract."""
    report = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    analysis = report["analysis"]
    assert analysis["prediction_exact"] is True
    assert analysis["span"] == report["baseline"]["t_total"]
    assert analysis["span"] <= analysis["work"]
    # the report ranks at least one mailbox and one transfer edge as a
    # bottleneck (the ISSUE's acceptance bar)
    assert analysis["critical_path"]["by_mailbox"]
    assert analysis["critical_path"]["top_edges"]
    assert report["exit_code"] == 0
    for point in report["points"]:
        assert point["result_matches_baseline"] is True
    # 2x PROC speedup prediction within 5% of its replay
    proc_point = next(p for p in report["points"]
                      if p["scales"] == {"proc": 0.5})
    assert abs(proc_point["prediction_error_pct"]) <= 5.0


def _regenerate() -> None:
    for name in sorted(GOLDEN_WORKLOADS):
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(_serialize(_build_report(name)))
        print(f"wrote {path}")


if __name__ == "__main__":
    _regenerate()
