"""Property-based tests for ActorCheck (hypothesis).

Small example counts: every example re-executes a simulated actor
program, so these lean on the deterministic substream derivation doing
the heavy lifting rather than on volume.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.policies import JitterPolicy, make_schedules
from repro.check.workloads import GeneratedWorkload, ProgramSpec, generate_spec
from repro.machine.spec import MachineSpec

seeds = st.integers(0, 2**32 - 1)


@settings(max_examples=25, deadline=None)
@given(seeds, st.integers(0, 50))
def test_generated_specs_always_validate(seed, index):
    spec = generate_spec(seed, index)  # ProgramSpec.__post_init__ validates
    assert spec == generate_spec(seed, index)


@settings(max_examples=25, deadline=None)
@given(seeds, st.integers(1, 12))
def test_schedule_plans_are_well_formed(seed, k):
    plans = make_schedules(seed, k)
    assert len(plans) == k
    assert not plans[0].jitter
    assert all(p.jitter for p in plans[1:])
    assert all(p.root_seed == seed for p in plans)
    # every plan rebuilds an equivalent policy from (seed, index) alone
    for p in plans[1:]:
        ranks = list(range(6))
        assert p.policy().tie_break(0, ranks) == \
            JitterPolicy(seed, p.index).tie_break(0, ranks)


@settings(max_examples=25, deadline=None)
@given(seeds, st.lists(st.integers(0, 31), min_size=1, max_size=8,
                       unique=True))
def test_jitter_choices_are_always_legal(seed, ranks):
    pol = JitterPolicy(seed, 1)
    assert pol.tie_break(0, ranks) in ranks
    assert sorted(pol.flush_order(0, ranks)) == sorted(ranks)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2**20),
    mailboxes=st.integers(1, 2),
    sends=st.integers(8, 24),
    mult=st.integers(1, 2).map(lambda n: n * 2 + 1),  # odd
)
def test_generated_programs_are_schedule_invariant(seed, mailboxes, sends,
                                                   mult):
    """Any correct-by-construction program yields the same result and
    logical trace under the default and a jittered schedule."""
    import tempfile
    from pathlib import Path

    spec = ProgramSpec(mailboxes=mailboxes,
                       payload_words=(2,) * mailboxes,
                       sends_per_pe=sends, mult=mult)
    wl = GeneratedWorkload(spec, machine=MachineSpec(1, 2), seed=seed)
    plans = make_schedules(seed, 2)
    with tempfile.TemporaryDirectory(prefix="actorcheck-prop-") as tmp:
        out = Path(tmp)
        base = wl.run(plans[0], out / "s0.aptrc")
        jittered = wl.run(plans[1], out / "s1.aptrc")
    assert base.result_fingerprint == jittered.result_fingerprint
    assert base.logical_fingerprint == jittered.logical_fingerprint
