"""Tests for R-MAT generation, lower-triangular matrices and distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    BlockDistribution,
    CyclicDistribution,
    LowerTriangular,
    RangeDistribution,
    erdos_renyi_edges,
    graph500_input,
    make_distribution,
    rmat_edges,
)


# ---------------------------------------------------------------- R-MAT


def test_rmat_edge_count_and_range():
    scale = 8
    edges = rmat_edges(scale, edge_factor=4, seed=1)
    assert edges.shape == (4 * 2**scale, 2)
    assert edges.min() >= 0
    assert edges.max() < 2**scale


def test_rmat_reproducible():
    a = rmat_edges(6, seed=42)
    b = rmat_edges(6, seed=42)
    assert np.array_equal(a, b)
    c = rmat_edges(6, seed=43)
    assert not np.array_equal(a, c)


def test_rmat_invalid_params():
    with pytest.raises(ValueError):
        rmat_edges(0)
    with pytest.raises(ValueError):
        rmat_edges(4, edge_factor=0)
    with pytest.raises(ValueError):
        rmat_edges(4, a=0.9, b=0.9, c=0.9)


def test_rmat_power_law_skew():
    """graph500 parameters concentrate edges on low vertex ids — the
    skew behind every imbalance in the paper's figures."""
    edges = rmat_edges(10, edge_factor=16, seed=0)
    n = 2**10
    counts = np.bincount(edges.ravel(), minlength=n)
    low = counts[: n // 8].sum()
    assert low > counts.sum() / 8 * 2  # ≥2× over-representation


def test_graph500_input_is_strictly_lower_triangular_and_unique():
    edges = graph500_input(8, seed=3)
    assert (edges[:, 0] > edges[:, 1]).all()
    assert len(np.unique(edges, axis=0)) == len(edges)


def test_erdos_renyi_exact_count_and_uniqueness():
    edges = erdos_renyi_edges(50, 300, seed=0)
    assert edges.shape == (300, 2)
    assert (edges[:, 0] > edges[:, 1]).all()
    assert len(np.unique(edges, axis=0)) == 300


def test_erdos_renyi_bounds():
    with pytest.raises(ValueError):
        erdos_renyi_edges(1, 0)
    with pytest.raises(ValueError):
        erdos_renyi_edges(4, 10)  # K_4 has 6 edges
    edges = erdos_renyi_edges(4, 6, seed=0)  # the complete graph
    assert len(edges) == 6


# ---------------------------------------------------- LowerTriangular


def tri_graph():
    # triangle 0-1-2 plus pendant edge 3-0
    return LowerTriangular.from_edges(np.array([[1, 0], [2, 0], [2, 1], [3, 0]]))


def test_matrix_basic_accessors():
    L = tri_graph()
    assert L.n_vertices == 4
    assert L.nnz == 4
    assert L.neighbors(2).tolist() == [0, 1]
    assert L.row_degrees().tolist() == [0, 1, 2, 1]


def test_has_edge_scalar_and_vector():
    L = tri_graph()
    assert L.has_edge(2, 1)
    assert not L.has_edge(3, 1)
    got = L.has_edges(np.array([2, 2, 3, 1]), np.array([0, 1, 1, 0]))
    assert got.tolist() == [True, True, False, True]


def test_has_edges_empty_queries_and_matrix():
    L = tri_graph()
    assert L.has_edges(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0
    empty = LowerTriangular.from_edges(np.empty((0, 2)), n_vertices=5)
    assert not empty.has_edges(np.array([3]), np.array([1]))[0]


def test_not_lower_triangular_rejected():
    with pytest.raises(ValueError):
        LowerTriangular.from_edges(np.array([[0, 1]]))
    with pytest.raises(ValueError):
        LowerTriangular.from_edges(np.array([[1, 1]]))


def test_triangle_count_reference_known_graphs():
    assert tri_graph().triangle_count_reference() == 1
    # K4 has 4 triangles
    k4 = LowerTriangular.from_edges(
        np.array([[1, 0], [2, 0], [2, 1], [3, 0], [3, 1], [3, 2]])
    )
    assert k4.triangle_count_reference() == 4
    # path graph has none
    path = LowerTriangular.from_edges(np.array([[1, 0], [2, 1], [3, 2]]))
    assert path.triangle_count_reference() == 0


def test_triangle_count_matches_networkx():
    nx = pytest.importorskip("networkx")
    edges = graph500_input(7, edge_factor=8, seed=5)
    L = LowerTriangular.from_edges(edges)
    g = nx.Graph()
    g.add_nodes_from(range(L.n_vertices))
    g.add_edges_from(edges.tolist())
    expected = sum(nx.triangles(g).values()) // 3
    assert L.triangle_count_reference() == expected


# ------------------------------------------------------ distributions


def test_cyclic_ownership():
    d = CyclicDistribution(10, 4)
    assert d.owner(0) == 0 and d.owner(5) == 1 and d.owner(7) == 3
    assert d.local_rows(1).tolist() == [1, 5, 9]
    d.check()


def test_block_ownership():
    d = BlockDistribution(10, 3)
    d.check()
    sizes = [len(d.local_rows(p)) for p in range(3)]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1


def test_range_balances_nnz():
    edges = graph500_input(8, seed=2)
    L = LowerTriangular.from_edges(edges)
    d = RangeDistribution.from_graph(L, 8)
    d.check()
    deg = L.row_degrees()
    per_pe = np.array([deg[d.local_rows(p)].sum() for p in range(8)])
    # each PE within 50% of the ideal share (power-law rows are chunky)
    ideal = L.nnz / 8
    assert per_pe.sum() == L.nnz
    assert per_pe.max() <= 2.0 * ideal


def test_range_is_contiguous_and_ordered():
    edges = graph500_input(7, seed=1)
    L = LowerTriangular.from_edges(edges)
    d = RangeDistribution.from_graph(L, 4)
    prev_end = 0
    for pe in range(4):
        rows = d.local_rows(pe)
        if len(rows):
            assert rows[0] == prev_end
            assert np.array_equal(rows, np.arange(rows[0], rows[-1] + 1))
            prev_end = rows[-1] + 1
    assert prev_end == L.n_vertices


def test_range_owner_monotone_nondecreasing():
    """Range ownership is monotone in row index — the property behind the
    paper's (L) observation."""
    edges = graph500_input(7, seed=9)
    L = LowerTriangular.from_edges(edges)
    d = RangeDistribution.from_graph(L, 8)
    owners = d.owner_array(np.arange(L.n_vertices))
    assert (np.diff(owners) >= 0).all()


def test_make_distribution():
    L = tri_graph()
    assert make_distribution("cyclic", L, 2).name == "cyclic"
    assert make_distribution("range", L, 2).name == "range"
    assert make_distribution("block", L, 2).name == "block"
    with pytest.raises(ValueError):
        make_distribution("hash", L, 2)


def test_distribution_validation():
    with pytest.raises(ValueError):
        CyclicDistribution(10, 0)
    with pytest.raises(ValueError):
        CyclicDistribution(-1, 2)


@settings(max_examples=30)
@given(st.integers(2, 200), st.integers(1, 16))
def test_cyclic_and_block_partition_property(n_rows, n_pes):
    for dist in (CyclicDistribution(n_rows, n_pes), BlockDistribution(n_rows, n_pes)):
        owners = dist.owner_array(np.arange(n_rows))
        assert owners.min() >= 0 and owners.max() < n_pes
        counts = np.bincount(owners, minlength=n_pes)
        assert counts.max() - counts.min() <= 1  # both are balanced by rows
        dist.check()


@settings(max_examples=20)
@given(st.integers(4, 9), st.integers(1, 16), st.integers(0, 5))
def test_range_partition_property(scale, n_pes, seed):
    edges = graph500_input(scale, edge_factor=4, seed=seed)
    L = LowerTriangular.from_edges(edges)
    d = RangeDistribution.from_graph(L, n_pes)
    d.check()
    owners = d.owner_array(np.arange(L.n_vertices))
    assert (np.diff(owners) >= 0).all()
