"""Tests for the run-comparison (diffing) module and CLI --compare."""

import numpy as np
import pytest

from repro.core.diffing import (
    LogicalDiff,
    OverallDiff,
    PhysicalDiff,
    compare_report,
)
from repro.core.logical import LogicalTrace
from repro.core.overall import OverallProfile
from repro.core.physical import PhysicalTrace
from repro.machine import MachineSpec


def make_logical(hot: bool):
    t = LogicalTrace(MachineSpec(1, 4))
    if hot:
        for _ in range(12):
            t.record(0, 1, 8)
    else:
        for src in range(4):
            for _ in range(3):
                t.record(src, (src + 1) % 4, 8)
    return t


def test_logical_diff():
    d = LogicalDiff.of(make_logical(True), make_logical(False))
    assert d.total_sends_a == d.total_sends_b == 12
    assert d.max_sends_ratio == pytest.approx(4.0)  # 12 vs 3
    assert d.send_imbalance_a == pytest.approx(4.0)
    assert d.send_imbalance_b == pytest.approx(1.0)
    assert d.moved_messages > 0


def test_logical_diff_different_shapes():
    a = LogicalTrace(MachineSpec(1, 2))
    a.record(0, 1, 8)
    b = make_logical(False)
    d = LogicalDiff.of(a, b)
    assert d.moved_messages == -1  # incomparable shapes flagged


def make_overall(fast: bool):
    p = OverallProfile(2)
    scale = 1 if fast else 3
    for pe in range(2):
        p.add_main(pe, 10 * scale)
        p.add_proc(pe, 20 * scale)
        p.add_total(pe, 100 * scale)
    return p


def test_overall_diff():
    d = OverallDiff.of(make_overall(False), make_overall(True))
    assert d.total_ratio == pytest.approx(3.0)
    assert d.comm_share_a == pytest.approx(0.7)
    assert d.comm_share_b == pytest.approx(0.7)


def test_physical_diff():
    a = PhysicalTrace(2)
    a.record("local_send", 100, 0, 1, 0)
    a.record("nonblock_send", 200, 0, 1, 0)
    b = PhysicalTrace(2)
    b.record("local_send", 50, 1, 0, 0)
    d = PhysicalDiff.of(a, b)
    assert d.ops_a == {"local_send": 1, "nonblock_send": 1}
    assert d.ops_b == {"local_send": 1}
    assert d.bytes_ratio == pytest.approx(6.0)


def test_compare_report_text():
    text = compare_report(
        "cyclic", "range",
        logical=LogicalDiff.of(make_logical(True), make_logical(False)),
        overall=OverallDiff.of(make_overall(False), make_overall(True)),
        physical=None,
    )
    assert "comparing 'cyclic' (A) vs 'range' (B)" in text
    assert "hottest-sender ratio 4.00x" in text
    assert "A slower" in text


def test_compare_report_empty():
    assert "no comparable traces" in compare_report("a", "b")


def test_cli_compare(tmp_path, capsys):
    """End-to-end: two profiled runs diffed through the CLI."""
    from repro.core import ActorProf, ProfileFlags
    from repro.core.cli import main
    from repro.experiments.casestudy import case_study_graph
    from repro.apps.triangle import count_triangles

    graph = case_study_graph(6)
    dirs = {}
    for dist in ("cyclic", "range"):
        ap = ActorProf(ProfileFlags.all(papi_sample_interval=64))
        count_triangles(graph, MachineSpec(2, 4), dist, profiler=ap)
        d = tmp_path / dist
        ap.write_traces(d)
        dirs[dist] = d
    rc = main([str(dirs["cyclic"]), "--num-pes", "8", "-l", "-s", "-p",
               "--compare", str(dirs["range"]), "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "== comparing" in out
    assert "total-time ratio A/B" in out
    assert "physical ops (A vs B)" in out


def test_cli_compare_missing_dir(tmp_path, capsys):
    from repro.core.cli import main

    rc = main([str(tmp_path), "--num-pes", "4", "-l",
               "--compare", str(tmp_path / "nope")])
    assert rc == 2
