"""Property-based tests: .aptrc encode→decode round-trips exactly.

Hypothesis drives random machine shapes and random trace contents
through `export_run` → `load_run`, checking that every stored quantity
survives bit-for-bit — the logical matrix, physical records of all three
send kinds, PAPI rows, and the overall cycle totals, including the
``T_MAIN + T_COMM + T_PROC == T_TOTAL`` identity.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.conveyors.hooks import SEND_TYPES
from repro.core.logical import LogicalTrace
from repro.core.overall import OverallProfile
from repro.core.papi_trace import PAPITrace
from repro.core.physical import PhysicalTrace
from repro.core.store.codec import decode_column, encode_column
from repro.core.store.writer import export_run
from repro.core.store.archive import load_run
from repro.machine import MachineSpec

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

EVENTS = ("PAPI_TOT_INS", "PAPI_LST_INS", "PAPI_L1_DCM", "PAPI_BR_MSP")


@st.composite
def machine_specs(draw):
    return MachineSpec(draw(st.integers(1, 3)), draw(st.integers(1, 5)))


@st.composite
def logical_traces(draw):
    spec = draw(machine_specs())
    trace = LogicalTrace(spec, sample_interval=draw(st.integers(1, 4)))
    pes = st.integers(0, spec.n_pes - 1)
    entries = draw(st.lists(
        st.tuples(pes, pes, st.integers(1, 1024), st.integers(1, 50)),
        max_size=40,
    ))
    for src, dst, size, count in entries:
        key = (dst, size)
        trace._counts[src][key] = trace._counts[src].get(key, 0) + count
    trace._ticks = draw(st.lists(st.integers(0, 10_000),
                                 min_size=spec.n_pes, max_size=spec.n_pes))
    return trace


@st.composite
def physical_traces(draw):
    n_pes = draw(st.integers(1, 12))
    trace = PhysicalTrace(n_pes)
    pes = st.integers(0, n_pes - 1)
    entries = draw(st.lists(
        st.tuples(st.sampled_from(SEND_TYPES), st.integers(1, 1 << 20),
                  pes, pes, st.integers(1, 99)),
        max_size=40,
    ))
    for kind, nbytes, src, dst, count in entries:
        key = (kind, nbytes, src, dst)
        trace._counts[key] = trace._counts.get(key, 0) + count
    return trace


@st.composite
def papi_traces(draw):
    spec = draw(machine_specs())
    events = tuple(EVENTS[: draw(st.integers(1, 4))])
    trace = PAPITrace(spec, events)
    pes = st.integers(0, spec.n_pes - 1)
    counters = st.integers(0, 2**48)
    rows = draw(st.lists(
        st.tuples(pes, pes, st.integers(0, 4096), st.integers(-1, 3),
                  st.integers(0, 10**9),
                  st.lists(counters, min_size=len(events),
                           max_size=len(events))),
        max_size=30,
    ))
    for src, dst, pkt, mailbox, num_sends, values in rows:
        trace.record(src, dst, pkt, mailbox, num_sends, values)
    for region in ("MAIN", "PROC"):
        trace.region_totals[region] = np.asarray(draw(st.lists(
            st.lists(counters, min_size=len(events), max_size=len(events)),
            min_size=spec.n_pes, max_size=spec.n_pes,
        )), dtype=np.int64).reshape(spec.n_pes, len(events))
    return trace


@st.composite
def overall_profiles(draw):
    n_pes = draw(st.integers(1, 12))
    prof = OverallProfile(n_pes)
    cycles = st.integers(0, 2**40)
    for pe in range(n_pes):
        main, proc, comm = draw(cycles), draw(cycles), draw(cycles)
        prof.add_main(pe, main)
        prof.add_proc(pe, proc)
        prof.add_total(pe, main + proc + comm)
    return prof


@given(st.lists(st.integers(-(2**62), 2**62), max_size=300),
       st.booleans(), st.booleans())
@SETTINGS
def test_codec_roundtrip_exact(values, delta, compress):
    payload, encoding = encode_column(values, delta=delta, compress=compress)
    assert decode_column(payload, encoding, len(values)).tolist() == values


@given(logical_traces())
@SETTINGS
def test_logical_roundtrip(tmp_path, trace):
    path = export_run(tmp_path / "l.aptrc", logical=trace)
    got = load_run(path).logical
    assert got._counts == trace._counts
    assert got._ticks == trace._ticks
    assert got.sample_interval == trace.sample_interval
    assert got.spec == trace.spec
    assert (got.matrix() == trace.matrix()).all()
    assert (got.estimated_matrix() == trace.estimated_matrix()).all()


@given(physical_traces())
@SETTINGS
def test_physical_roundtrip(tmp_path, trace):
    path = export_run(tmp_path / "p.aptrc", physical=trace)
    got = load_run(path).physical
    assert got._counts == trace._counts
    assert got.n_pes == trace.n_pes
    assert got.counts_by_type() == trace.counts_by_type()
    for kind in SEND_TYPES:
        assert (got.bytes_matrix(kind) == trace.bytes_matrix(kind)).all()


@given(papi_traces())
@SETTINGS
def test_papi_roundtrip(tmp_path, trace):
    path = export_run(tmp_path / "pp.aptrc", papi=trace)
    got = load_run(path).papi
    assert got.events == trace.events
    assert got.spec == trace.spec
    for pe in range(trace.n_pes):
        assert got.rows(pe) == trace.rows(pe)
    for region in ("MAIN", "PROC"):
        assert (got.region_totals[region]
                == trace.region_totals[region]).all()


@given(overall_profiles())
@SETTINGS
def test_overall_roundtrip_preserves_identity(tmp_path, prof):
    path = export_run(tmp_path / "o.aptrc", overall=prof)
    got = load_run(path).overall
    assert (got.t_main == prof.t_main).all()
    assert (got.t_proc == prof.t_proc).all()
    assert (got.t_total == prof.t_total).all()
    # the paper's invariant: T_MAIN + T_COMM + T_PROC == T_TOTAL
    for pe in range(got.n_pes):
        m, c, p = got.absolute(pe)
        assert m + c + p == int(got.t_total[pe])
    assert (got.t_comm() == prof.t_comm()).all()


@given(logical_traces(), physical_traces(), overall_profiles())
@SETTINGS
def test_combined_archive_roundtrip(tmp_path, logical, physical, overall):
    path = export_run(tmp_path / "all.aptrc", logical=logical,
                      physical=physical, overall=overall)
    traces = load_run(path)
    assert traces.logical._counts == logical._counts
    assert traces.physical._counts == physical._counts
    assert (traces.overall.t_total == overall.t_total).all()
