"""Tests for the influence-spread application."""

import numpy as np
import pytest

from repro.apps.influence import (
    _hash01,
    influence_spread,
    reference_spread,
    select_seeds,
)
from repro.graphs import LowerTriangular, graph500_input
from repro.machine import MachineSpec


@pytest.fixture(scope="module")
def graph():
    return LowerTriangular.from_edges(graph500_input(7, edge_factor=8, seed=1))


def test_hash01_deterministic_and_symmetric():
    assert _hash01(3, 7, 0, 0) == _hash01(7, 3, 0, 0)
    assert _hash01(3, 7, 0, 0) != _hash01(3, 7, 1, 0)
    assert _hash01(3, 7, 0, 0) != _hash01(3, 7, 0, 1)
    vals = [_hash01(i, i + 1, 0, 0) for i in range(1000)]
    assert all(0 <= v < 1 for v in vals)
    # roughly uniform
    assert 0.4 < float(np.mean(vals)) < 0.6


@pytest.mark.parametrize("machine", [MachineSpec(1, 4), MachineSpec(2, 4)])
def test_distributed_matches_serial(graph, machine):
    res = influence_spread(graph, [0, 3], rounds=3, machine=machine, p=0.08)
    expected = reference_spread(graph, [0, 3], 3, 0.08)
    assert np.array_equal(res.per_round, expected)
    assert res.spread == pytest.approx(expected.mean())


def test_distribution_does_not_change_cascades(graph):
    m = MachineSpec(1, 8)
    a = influence_spread(graph, [1], rounds=2, machine=m, p=0.1,
                         distribution="cyclic")
    b = influence_spread(graph, [1], rounds=2, machine=m, p=0.1,
                         distribution="range")
    assert np.array_equal(a.per_round, b.per_round)


def test_p_zero_only_activates_seeds(graph):
    res = influence_spread(graph, [0, 1, 2], rounds=2,
                           machine=MachineSpec(1, 2), p=0.0)
    assert res.per_round.tolist() == [3, 3]


def test_p_one_reaches_component(graph):
    """p=1 activates the source's whole connected component."""
    from repro.apps.bfs import reference_bfs

    res = influence_spread(graph, [0], rounds=1, machine=MachineSpec(1, 4), p=1.0)
    component = int((reference_bfs(graph, 0) >= 0).sum())
    assert res.per_round[0] == component


def test_more_seeds_never_reduce_spread(graph):
    m = MachineSpec(1, 4)
    one = influence_spread(graph, [0], rounds=2, machine=m, p=0.1)
    two = influence_spread(graph, [0, 9], rounds=2, machine=m, p=0.1)
    assert (two.per_round >= one.per_round).all()


def test_salt_changes_cascades(graph):
    m = MachineSpec(1, 4)
    a = influence_spread(graph, [0], rounds=1, machine=m, p=0.1, salt=0)
    b = influence_spread(graph, [0], rounds=1, machine=m, p=0.1, salt=1)
    assert not np.array_equal(a.per_round, b.per_round)


def test_argument_validation(graph):
    m = MachineSpec(1, 2)
    with pytest.raises(ValueError):
        influence_spread(graph, [0], rounds=0, machine=m)
    with pytest.raises(ValueError):
        influence_spread(graph, [0], rounds=1, machine=m, p=1.5)
    with pytest.raises(ValueError):
        influence_spread(graph, [graph.n_vertices], rounds=1, machine=m)
    with pytest.raises(ValueError):
        select_seeds(graph, 0, 1, m)


def test_greedy_selection_improves_over_first_pick(graph):
    m = MachineSpec(1, 4)
    seeds, spread = select_seeds(graph, 2, rounds=2, machine=m, p=0.05,
                                 candidates=[0, 1, 8])
    assert len(seeds) == 2
    assert len(set(seeds)) == 2
    single = influence_spread(graph, seeds[:1], rounds=2, machine=m, p=0.05)
    assert spread >= single.spread
