"""Tests for the ``actorprof`` CLI."""

import numpy as np
import pytest

from repro.core import ActorProf, ProfileFlags
from repro.core.cli import main
from repro.hclib import Actor, run_spmd
from repro.machine import MachineSpec


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    """One profiled run whose traces feed every CLI test."""
    path = tmp_path_factory.mktemp("traces")
    ap = ActorProf(ProfileFlags.all())

    class A(Actor):
        def __init__(self, ctx, arr):
            super().__init__(ctx)
            self.arr = arr

        def process(self, idx, sender):
            self.arr[idx] += 1

    def program(ctx):
        arr = np.zeros(8, dtype=np.int64)
        a = A(ctx, arr)
        with ctx.finish():
            a.start()
            for i in range(30):
                a.send(int(ctx.rng.integers(0, 8)),
                       int(ctx.rng.integers(0, ctx.n_pes)))
            a.done()
        return int(arr.sum())

    run_spmd(program, machine=MachineSpec(2, 4), profiler=ap, seed=4)
    ap.write_traces(path)
    return path


def test_logical_flag(trace_dir, tmp_path, capsys):
    rc = main([str(trace_dir), "--num-pes", "8", "-l", "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "logical_heatmap.svg").exists()
    out = capsys.readouterr().out
    assert "Logical trace" in out
    assert "total messages: 240" in out


def test_physical_flag(trace_dir, tmp_path, capsys):
    rc = main([str(trace_dir), "--num-pes", "8", "-p", "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "physical_heatmap.svg").exists()
    assert (tmp_path / "physical_heatmap_local_send.svg").exists()
    out = capsys.readouterr().out
    assert "local_send" in out and "nonblock_send" in out


def test_overall_flag(trace_dir, tmp_path, capsys):
    rc = main([str(trace_dir), "--num-pes", "8", "-s", "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "overall_absolute.svg").exists()
    assert (tmp_path / "overall_relative.svg").exists()
    assert "mean fractions" in capsys.readouterr().out


def test_papi_flag(trace_dir, tmp_path, capsys):
    rc = main([str(trace_dir), "--num-pes", "8", "-lp", "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "papi_bars.svg").exists()
    assert "PAPI_TOT_INS" in capsys.readouterr().out


def test_violin_option(trace_dir, tmp_path):
    rc = main([str(trace_dir), "--num-pes", "8", "-l", "-p", "--violin",
               "--out", str(tmp_path), "--quiet"])
    assert rc == 0
    assert (tmp_path / "logical_violin.svg").exists()
    assert (tmp_path / "physical_violin.svg").exists()


def test_all_flags_together(trace_dir, tmp_path, capsys):
    rc = main([str(trace_dir), "--num-pes", "8", "-l", "-lp", "-s", "-p",
               "--out", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "wrote:" in out


def test_quiet_suppresses_reports(trace_dir, tmp_path, capsys):
    rc = main([str(trace_dir), "--num-pes", "8", "-l", "--quiet",
               "--out", str(tmp_path)])
    assert rc == 0
    assert capsys.readouterr().out == ""


def test_no_flags_is_an_error(trace_dir, capsys):
    rc = main([str(trace_dir), "--num-pes", "8"])
    assert rc == 2
    assert "nothing to do" in capsys.readouterr().err


def test_missing_dir_is_an_error(tmp_path, capsys):
    rc = main([str(tmp_path / "nope"), "--num-pes", "8", "-l"])
    assert rc == 2


def test_timeline_flag(tmp_path):
    """-t renders timeline + utilization charts from trace.json."""
    import numpy as np

    from repro.core import ActorProf, ProfileFlags
    from repro.hclib import Actor, run_spmd
    from repro.machine import MachineSpec

    ap = ActorProf(ProfileFlags.all(enable_timeline=True))

    class A(Actor):
        def __init__(self, ctx, arr):
            super().__init__(ctx)
            self.arr = arr

        def process(self, idx, sender):
            self.arr[idx] += 1

    def program(ctx):
        arr = np.zeros(4, dtype=np.int64)
        a = A(ctx, arr)
        with ctx.finish():
            a.start()
            for i in range(10):
                a.send(i % 4, (ctx.my_pe + i) % ctx.n_pes)
            a.done()
        return int(arr.sum())

    run_spmd(program, machine=MachineSpec(2, 2), profiler=ap, seed=1)
    trace_dir = tmp_path / "traces"
    ap.write_traces(trace_dir)
    out = tmp_path / "charts"
    rc = main([str(trace_dir), "--num-pes", "4", "-t", "--out", str(out), "--quiet"])
    assert rc == 0
    assert (out / "timeline.svg").exists()
    assert (out / "utilization.svg").exists()


def test_timeline_flag_missing_trace_json(trace_dir, capsys):
    rc = main([str(trace_dir), "--num-pes", "8", "-t"])
    assert rc == 2
    assert "trace.json" in capsys.readouterr().err


def test_chrome_roundtrip_preserves_timeline(tmp_path):
    """timeline_from_chrome inverts write_chrome_trace (span/event counts)."""
    from repro.core.export import timeline_from_chrome, write_chrome_trace
    from repro.core.timeline import TimelineTrace
    from repro.machine import MachineSpec

    tl = TimelineTrace(4)
    tl.add_span(0, "MAIN", 0, 2000)
    tl.add_span(1, "PROC", 500, 900, mailbox=2)
    tl.add_net_event(100, "nonblock_send", 0, 2, 512)
    spec = MachineSpec(2, 2)
    path = write_chrome_trace(tl, spec, tmp_path / "t.json", clock_ghz=2.0)
    loaded, _spec2 = timeline_from_chrome(path)
    assert loaded.span_count() == 2
    assert len(loaded.net_events()) == 1
    span = loaded.spans(1, "PROC")[0]
    assert span.mailbox == 2
    assert span.start == 500 and span.end == 900
    ev = loaded.net_events()[0]
    assert (ev.src, ev.dst, ev.nbytes, ev.kind) == (0, 2, 512, "nonblock_send")


def test_query_option(trace_dir, capsys):
    rc = main([str(trace_dir), "--num-pes", "8",
               "--query", "logical: sends group by src top 2",
               "--query", "physical: ops where kind == local_send"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[logical] sends group by src top 2" in out
    assert "[physical] ops where kind == local_send" in out


def test_query_option_bad_target(trace_dir, capsys):
    rc = main([str(trace_dir), "--num-pes", "8", "--query", "sends"])
    assert rc == 2
    assert "bad --query" in capsys.readouterr().err


def test_query_option_bad_expr(trace_dir, capsys):
    rc = main([str(trace_dir), "--num-pes", "8",
               "--query", "logical: frobnicate"])
    assert rc == 2
    assert "query failed" in capsys.readouterr().err


def test_console_script_entry_point(trace_dir, tmp_path):
    """The installed `actorprof` module runs as a subprocess end to end."""
    import subprocess
    import sys

    r = subprocess.run(
        [sys.executable, "-m", "repro.core.cli", str(trace_dir),
         "--num-pes", "8", "-l", "--quiet", "--out", str(tmp_path)],
        capture_output=True, text=True, timeout=120,
    )
    assert r.returncode == 0, r.stderr
    assert (tmp_path / "logical_heatmap.svg").exists()


def test_physical_node_hotspot_chart(trace_dir, tmp_path):
    """-p also emits a node-level heatmap when the run used >1 node."""
    rc = main([str(trace_dir), "--num-pes", "8", "-p", "--quiet",
               "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "physical_heatmap_nodes.svg").exists()
    content = (tmp_path / "physical_heatmap_nodes.svg").read_text()
    assert "node-level hotspots" in content


# ----------------------------------------------------------------------
# `actorprof faults` + `actorprof run`
# ----------------------------------------------------------------------

def test_faults_template_and_check(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    assert main(["faults", "template", str(plan_path)]) == 0
    assert plan_path.exists()
    assert main(["faults", "check", str(plan_path), "--num-pes", "4"]) == 0
    out = capsys.readouterr().out
    assert "fault plan" in out and "valid for 4 PEs" in out
    # the default template crashes PE 1, so a 1-PE job rejects it
    assert main(["faults", "check", str(plan_path), "--num-pes", "1"]) == 2
    assert "out of range" in capsys.readouterr().err


def test_faults_template_custom_crash(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    assert main(["faults", "template", str(plan_path),
                 "--crash", "2:5000", "--drop", "0.25"]) == 0
    from repro.sim import FaultPlan

    plan = FaultPlan.load(plan_path)
    assert plan.crashes[0].pe == 2 and plan.crashes[0].at_cycle == 5000
    assert plan.edges[0].drop == 0.25
    assert main(["faults", "template", str(plan_path), "--crash", "bogus"]) == 2
    assert "PE:CYCLE" in capsys.readouterr().err


def test_faults_check_rejects_bad_plan(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"typo": 1}')
    assert main(["faults", "check", str(bad)]) == 2
    assert "unknown fault plan key" in capsys.readouterr().err


def test_run_healthy_exports_archive(tmp_path, capsys):
    out = tmp_path / "run.aptrc"
    rc = main(["run", "histogram", "--updates", "500", "--table-size", "128",
               "-o", str(out)])
    assert rc == 0
    assert out.exists()
    assert "updates delivered" in capsys.readouterr().out


def test_run_crash_salvages_degraded_archive(tmp_path, capsys):
    from repro.core.store.archive import load_run
    from repro.sim import FaultPlan

    plan_path = tmp_path / "crash.json"
    FaultPlan.single_crash(1, 50_000).save(plan_path)
    out = tmp_path / "crashed.aptrc"
    rc = main(["run", "histogram", "--updates", "500", "--table-size", "128",
               "--fault-plan", str(plan_path), "-o", str(out)])
    assert rc == 3  # failed but salvaged
    captured = capsys.readouterr()
    assert "salvaged degraded traces" in captured.err
    traces = load_run(out)
    assert traces.degraded
    assert traces.meta["crashed_pes"] == {"1": 50000}
    # without an archive path the failure is reported but nothing salvaged
    rc = main(["run", "histogram", "--updates", "500", "--table-size", "128",
               "--fault-plan", str(plan_path)])
    assert rc == 1


def test_run_rejects_misfit_plan(tmp_path, capsys):
    from repro.sim import FaultPlan

    plan_path = tmp_path / "crash.json"
    FaultPlan.single_crash(9, 1_000).save(plan_path)
    rc = main(["run", "histogram", "--fault-plan", str(plan_path)])
    assert rc == 2
    assert "does not fit" in capsys.readouterr().err
