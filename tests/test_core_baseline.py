"""Tests for the conventional/PSHMEM baseline profilers (paper §V-B)."""

import numpy as np
import pytest

from repro.apps.triangle import count_triangles
from repro.core import ActorProf, ProfileFlags
from repro.core.baseline import (
    ConventionalProfiler,
    PShmemProfiler,
    coverage_report,
)
from repro.graphs import LowerTriangular, graph500_input
from repro.hclib import run_spmd
from repro.machine import MachineSpec
from repro.shmem.runtime import ShmemCall


def test_observer_filtering_unit():
    conv = ConventionalProfiler()
    conv._observe(ShmemCall("shmem_put", 0, 1, 100, 0))
    conv._observe(ShmemCall("shmem_putmem_nbi", 0, 1, 900, 0))
    conv._observe(ShmemCall("memcpy", 0, 0, 500, 0))
    assert conv.profile.total_bytes() == 100
    assert conv.ground_truth.total_bytes() == 1500
    assert conv.byte_coverage() == pytest.approx(100 / 1500)
    assert conv.missed_ops() == {"shmem_putmem_nbi": 1, "memcpy": 1}


def test_pshmem_sees_nonblocking():
    psh = PShmemProfiler()
    psh._observe(ShmemCall("shmem_putmem_nbi", 0, 1, 900, 0))
    psh._observe(ShmemCall("memcpy", 0, 0, 100, 0))
    assert psh.byte_coverage() == pytest.approx(0.9)
    assert psh.missed_ops() == {"memcpy": 1}


def test_empty_run_full_coverage_by_convention():
    assert ConventionalProfiler().byte_coverage() == 1.0


def test_double_attach_rejected():
    conv = ConventionalProfiler()

    class FakeRuntime:
        def register_observer(self, fn):
            pass

    conv.attach(FakeRuntime())
    with pytest.raises(RuntimeError):
        conv.attach(FakeRuntime())


@pytest.fixture(scope="module")
def profiled_triangle():
    graph = LowerTriangular.from_edges(graph500_input(7, edge_factor=8, seed=2))
    conv, psh = ConventionalProfiler(), PShmemProfiler()
    ap = ActorProf(ProfileFlags(enable_trace_physical=True))
    res = count_triangles(graph, MachineSpec(2, 4), "cyclic",
                          profiler=ap, shmem_observers=[conv, psh])
    return conv, psh, ap, res


def test_conventional_profiler_misses_the_traffic(profiled_triangle):
    """The paper's §V-B argument, quantified: conventional tools see
    almost none of the payload an FA-BSP run actually moves."""
    conv, psh, ap, _ = profiled_triangle
    assert conv.byte_coverage() < 0.10
    assert "shmem_putmem_nbi" in conv.missed_ops()
    assert "memcpy" in conv.missed_ops()
    # the PSHMEM wrapper recovers the non-blocking puts...
    assert psh.byte_coverage() > conv.byte_coverage()
    assert "shmem_putmem_nbi" not in psh.missed_ops()
    # ...but still misses the shmem_ptr memcpy path entirely
    assert "memcpy" in psh.missed_ops()
    assert psh.byte_coverage() < 1.0


def test_ground_truth_agrees_with_physical_trace(profiled_triangle):
    """Conveyors' instrumented ops and the observed SHMEM calls line up:
    one nbi put per nonblock_send, one memcpy per local_send."""
    conv, _psh, ap, _ = profiled_triangle
    by_type = ap.physical.counts_by_type()
    assert conv.ground_truth.calls.get("shmem_putmem_nbi", 0) == by_type.get("nonblock_send", 0)
    assert conv.ground_truth.calls.get("memcpy", 0) == by_type.get("local_send", 0)
    # nonblock_progress = quiet + signalling put
    assert conv.ground_truth.calls.get("shmem_quiet", 0) >= 1


def test_coverage_report_text(profiled_triangle):
    conv, psh, _, _ = profiled_triangle
    text = coverage_report(conv, psh)
    assert "conventional" in text
    assert "PSHMEM" in text
    assert "ActorProf" in text


def test_observers_do_not_change_results():
    graph = LowerTriangular.from_edges(graph500_input(6, edge_factor=8, seed=0))
    machine = MachineSpec(1, 4)
    plain = count_triangles(graph, machine, "cyclic")
    observed = count_triangles(graph, machine, "cyclic",
                               shmem_observers=[ConventionalProfiler()])
    assert plain.triangles == observed.triangles
    assert plain.run.clocks == observed.run.clocks


def test_unregister_observer():
    from repro.shmem import ShmemRuntime
    from repro.sim import CoopScheduler

    spec = MachineSpec(1, 2)
    seen = []

    def run(with_unregister):
        sched = CoopScheduler(spec.n_pes)
        rt = ShmemRuntime(sched, spec)
        obs = seen.append
        rt.register_observer(obs)
        if with_unregister:
            rt.unregister_observer(obs)
        sched.run(lambda rank: rt.contexts[rank].barrier_all())

    seen.clear()
    run(with_unregister=False)
    assert len(seen) == 2
    seen.clear()
    run(with_unregister=True)
    assert seen == []
