"""Tests for the .aptrc archive writer/reader and trace round trips."""

import numpy as np
import pytest

from repro.core import ActorProf, ProfileFlags
from repro.core.logical import LogicalTrace
from repro.core.overall import OverallProfile
from repro.core.papi_trace import PAPITrace
from repro.core.physical import PhysicalTrace
from repro.core.query import run_query
from repro.core.store.archive import (
    Archive,
    ArchiveError,
    is_archive,
    load_logical,
    load_overall,
    load_papi,
    load_physical,
    load_run,
)
from repro.core.store.writer import ArchiveWriter, export_run
from repro.hclib import Actor, run_spmd
from repro.machine import MachineSpec


# ----------------------------------------------------------------------
# low-level writer/reader
# ----------------------------------------------------------------------

def test_empty_archive_roundtrip(tmp_path):
    path = ArchiveWriter(tmp_path / "empty.aptrc", meta={"app": "x"}).close()
    with Archive(path) as archive:
        assert archive.meta == {"app": "x"}
        assert archive.sections == ()


def test_section_roundtrip(tmp_path):
    with ArchiveWriter(tmp_path / "a.aptrc") as w:
        w.add_section("s", {"x": [1, 2, 3], "y": [-1, 0, 1]},
                      attrs={"k": "v"})
    with Archive(tmp_path / "a.aptrc") as archive:
        section = archive.section("s")
        assert section.rows == 3
        assert set(section.columns) == {"x", "y"}
        assert section.attrs == {"k": "v"}
        assert section.column("x").tolist() == [1, 2, 3]
        assert section.column("y").tolist() == [-1, 0, 1]


def test_chunked_section_concatenates(tmp_path):
    with ArchiveWriter(tmp_path / "a.aptrc") as w:
        s = w.begin_section("s", ("x",))
        s.write_chunk({"x": [1, 2]})
        s.write_chunk({"x": []})          # empty chunks are dropped
        s.write_chunk({"x": [3]})
        s.end(attrs={"done": 1})
    with Archive(tmp_path / "a.aptrc") as archive:
        section = archive.section("s")
        assert section.rows == 3
        assert section.column("x").tolist() == [1, 2, 3]
        assert section.attrs == {"done": 1}


def test_interleaved_sections(tmp_path):
    with ArchiveWriter(tmp_path / "a.aptrc") as w:
        s1 = w.begin_section("one", ("x",))
        s2 = w.begin_section("two", ("y",))
        s1.write_chunk({"x": [1]})
        s2.write_chunk({"y": [10, 20]})
        s1.write_chunk({"x": [2]})
        # close() ends any still-open sections
    with Archive(tmp_path / "a.aptrc") as archive:
        assert archive.section("one").column("x").tolist() == [1, 2]
        assert archive.section("two").column("y").tolist() == [10, 20]


def test_ragged_chunk_rejected(tmp_path):
    with ArchiveWriter(tmp_path / "a.aptrc") as w:
        s = w.begin_section("s", ("x", "y"))
        with pytest.raises(ArchiveError, match="ragged"):
            s.write_chunk({"x": [1, 2], "y": [1]})
        w.close()


def test_wrong_columns_rejected(tmp_path):
    with ArchiveWriter(tmp_path / "a.aptrc") as w:
        s = w.begin_section("s", ("x",))
        with pytest.raises(ArchiveError, match="expects columns"):
            s.write_chunk({"z": [1]})
        w.close()


def test_duplicate_section_rejected(tmp_path):
    with ArchiveWriter(tmp_path / "a.aptrc") as w:
        w.add_section("s", {"x": [1]})
        with pytest.raises(ArchiveError, match="duplicate"):
            w.begin_section("s", ("x",))


def test_missing_section_and_column_raise(tmp_path):
    with ArchiveWriter(tmp_path / "a.aptrc") as w:
        w.add_section("s", {"x": [1]})
    with Archive(tmp_path / "a.aptrc") as archive:
        with pytest.raises(ArchiveError, match="no section"):
            archive.section("nope")
        with pytest.raises(ArchiveError, match="no column"):
            archive.section("s").column("nope")


def test_not_an_archive_raises(tmp_path):
    bogus = tmp_path / "bogus.aptrc"
    bogus.write_text("this is not an archive, it only dresses like one")
    with pytest.raises(ArchiveError, match="magic"):
        Archive(bogus)
    assert not is_archive(tmp_path / "missing.aptrc")
    assert not is_archive(tmp_path)


def test_truncated_archive_raises(tmp_path):
    with ArchiveWriter(tmp_path / "a.aptrc") as w:
        w.add_section("s", {"x": list(range(100))})
    data = (tmp_path / "a.aptrc").read_bytes()
    clipped = tmp_path / "clipped.aptrc"
    clipped.write_bytes(data[:-5])
    with pytest.raises(ArchiveError, match="truncated|too small"):
        Archive(clipped)


def test_is_archive_by_suffix_and_magic(tmp_path):
    path = ArchiveWriter(tmp_path / "a.aptrc").close()
    assert is_archive(path)
    renamed = tmp_path / "disguised.bin"
    renamed.write_bytes(path.read_bytes())
    assert is_archive(renamed)  # magic sniffing, not just the suffix


# ----------------------------------------------------------------------
# laziness
# ----------------------------------------------------------------------

def test_open_decodes_nothing(tmp_path):
    with ArchiveWriter(tmp_path / "a.aptrc") as w:
        w.add_section("s", {"x": [1, 2], "y": [3, 4]})
    with Archive(tmp_path / "a.aptrc") as archive:
        assert archive.decoded_columns == set()
        archive.section("s")           # getting a handle decodes nothing
        assert archive.decoded_columns == set()
        archive.section("s").column("y")
        assert archive.decoded_columns == {("s", "y")}


def test_column_decode_is_cached(tmp_path):
    with ArchiveWriter(tmp_path / "a.aptrc") as w:
        w.add_section("s", {"x": [1, 2]})
    with Archive(tmp_path / "a.aptrc") as archive:
        a = archive.section("s").column("x")
        b = archive.section("s").column("x")
        assert a is b


# ----------------------------------------------------------------------
# whole-run export / load
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def profiled_run(tmp_path_factory):
    """One profiled run and its exported archive."""
    ap = ActorProf(ProfileFlags.all())

    class A(Actor):
        def __init__(self, ctx, arr):
            super().__init__(ctx)
            self.arr = arr

        def process(self, idx, sender):
            self.arr[idx] += 1

    def program(ctx):
        arr = np.zeros(8, dtype=np.int64)
        a = A(ctx, arr)
        with ctx.finish():
            a.start()
            for i in range(50):
                a.send(int(ctx.rng.integers(0, 8)),
                       int(ctx.rng.integers(0, ctx.n_pes)))
            a.done()
        return int(arr.sum())

    run_spmd(program, machine=MachineSpec(2, 4), profiler=ap, seed=11)
    path = tmp_path_factory.mktemp("store") / "run.aptrc"
    ap.export_archive(path, meta={"app": "cli-fixture", "scale": 0})
    return ap, path


def test_export_archive_meta(profiled_run):
    _ap, path = profiled_run
    with Archive(path) as archive:
        assert archive.meta["app"] == "cli-fixture"
        assert archive.meta["nodes"] == 2
        assert archive.meta["pes_per_node"] == 4
        assert archive.spec().n_pes == 8
        assert set(archive.sections) == {"logical", "physical", "papi",
                                         "overall"}


def test_logical_roundtrip_exact(profiled_run):
    ap, path = profiled_run
    with Archive(path) as archive:
        got = load_logical(archive)
    assert got._counts == ap.logical._counts
    assert got._ticks == ap.logical._ticks
    assert got.sample_interval == ap.logical.sample_interval
    assert got.spec == ap.logical.spec
    assert (got.matrix() == ap.logical.matrix()).all()
    assert (got.bytes_matrix() == ap.logical.bytes_matrix()).all()


def test_physical_roundtrip_exact(profiled_run):
    ap, path = profiled_run
    with Archive(path) as archive:
        got = load_physical(archive)
    assert got._counts == ap.physical._counts
    assert got.n_pes == ap.physical.n_pes
    assert (got.matrix() == ap.physical.matrix()).all()
    assert got.counts_by_type() == ap.physical.counts_by_type()


def test_papi_roundtrip_exact(profiled_run):
    ap, path = profiled_run
    with Archive(path) as archive:
        got = load_papi(archive)
    assert got.events == ap.papi_trace.events
    assert got.spec == ap.papi_trace.spec
    for pe in range(got.n_pes):
        assert got.rows(pe) == ap.papi_trace.rows(pe)
    for region in ("MAIN", "PROC"):
        assert (got.region_totals[region]
                == ap.papi_trace.region_totals[region]).all()


def test_overall_roundtrip_exact(profiled_run):
    ap, path = profiled_run
    with Archive(path) as archive:
        got = load_overall(archive)
    assert (got.t_main == ap.overall.t_main).all()
    assert (got.t_proc == ap.overall.t_proc).all()
    assert (got.t_total == ap.overall.t_total).all()
    assert (got.t_comm() == ap.overall.t_comm()).all()


def test_load_run_collects_all_kinds(profiled_run):
    _ap, path = profiled_run
    traces = load_run(path)
    assert traces.kinds() == ("logical", "physical", "papi", "overall")
    assert traces.meta["app"] == "cli-fixture"


def test_export_run_subset(tmp_path):
    overall = OverallProfile(4)
    overall.add_main(0, 10)
    overall.add_total(0, 100)
    path = export_run(tmp_path / "o.aptrc", overall=overall)
    traces = load_run(path)
    assert traces.kinds() == ("overall",)
    assert traces.meta["n_pes"] == 4


def test_export_run_needs_a_trace(tmp_path):
    with pytest.raises(ArchiveError, match="at least one trace"):
        export_run(tmp_path / "x.aptrc")


# ----------------------------------------------------------------------
# archive-backed queries: identical results, column-pruned reads
# ----------------------------------------------------------------------

QUERIES_LOGICAL = [
    "sends",
    "bytes",
    "sends where src == 0",
    "sends where src_node != dst_node",
    "bytes where size >= 8 group by src",
    "sends group by dst top 3",
    "sends where dst == src",
]

QUERIES_PHYSICAL = [
    "ops",
    "bytes",
    "ops where kind == local_send",
    "ops where kind != nonblock_progress group by kind",
    "bytes group by dst top 2",
    "ops where kind == no_such_kind",
]


@pytest.mark.parametrize("query", QUERIES_LOGICAL)
def test_archive_query_matches_in_memory_logical(profiled_run, query):
    ap, path = profiled_run
    with Archive(path) as archive:
        assert run_query(archive.section("logical"), query) \
            == run_query(ap.logical, query)


@pytest.mark.parametrize("query", QUERIES_PHYSICAL)
def test_archive_query_matches_in_memory_physical(profiled_run, query):
    ap, path = profiled_run
    with Archive(path) as archive:
        assert run_query(archive.section("physical"), query) \
            == run_query(ap.physical, query)


def test_query_reads_only_needed_columns(profiled_run):
    """The acceptance criterion: untouched sections stay un-decoded."""
    _ap, path = profiled_run
    with Archive(path) as archive:
        assert run_query(archive.section("logical"), "sends") > 0
        assert run_query(archive.section("logical"), "bytes") > 0
        # un-predicated aggregates are answered from footer chunk sums:
        # no payload bytes decoded at all
        assert archive.decoded_columns == set()
        run_query(archive.section("logical"), "sends where src == 0")
        assert archive.decoded_columns == {("logical", "count"),
                                           ("logical", "src")}
        # physical / papi / overall sections were never touched
        touched_sections = {s for s, _c in archive.decoded_columns}
        assert touched_sections == {"logical"}


def test_pushdown_off_matches_pushdown_on(profiled_run):
    _ap, path = profiled_run
    with Archive(path) as archive:
        for target, queries in (("logical", QUERIES_LOGICAL),
                                ("physical", QUERIES_PHYSICAL)):
            for query in queries:
                section = archive.section(target)
                assert run_query(section, query, pushdown=False) \
                    == run_query(section, query)


def test_query_on_archive_object_is_an_error(profiled_run):
    from repro.core.query import QueryError

    _ap, path = profiled_run
    with Archive(path) as archive:
        with pytest.raises(QueryError, match="section"):
            run_query(archive, "sends")


def test_kind_field_missing_on_logical_section(profiled_run):
    from repro.core.query import QueryError

    _ap, path = profiled_run
    with Archive(path) as archive:
        with pytest.raises(QueryError, match="does not exist"):
            run_query(archive.section("logical"), "sends where kind == local_send")


# ----------------------------------------------------------------------
# heatmap parity (acceptance criterion)
# ----------------------------------------------------------------------

def test_heatmap_svg_identical_from_archive(profiled_run):
    from repro.core.viz.heatmap import heatmap_svg

    ap, path = profiled_run
    traces = load_run(path)
    assert heatmap_svg(traces.logical.matrix()) \
        == heatmap_svg(ap.logical.matrix())
    assert heatmap_svg(traces.physical.matrix()) \
        == heatmap_svg(ap.physical.matrix())
