"""Tests for the on-disk run registry behind `actorprof runs`."""

import json

import pytest

from repro.core.overall import OverallProfile
from repro.core.store.registry import (
    RegistryError,
    RunRegistry,
    default_registry_root,
)
from repro.core.store.writer import export_run


@pytest.fixture()
def archive(tmp_path):
    overall = OverallProfile(4)
    overall.add_main(1, 7)
    overall.add_total(1, 50)
    return export_run(tmp_path / "sample.aptrc", overall=overall,
                      meta={"app": "demo"})


def test_add_and_list(tmp_path, archive):
    registry = RunRegistry(tmp_path / "reg")
    info = registry.add(archive)
    assert info.run_id == "sample"
    assert info.path.exists()
    assert info.meta["app"] == "demo"
    assert info.size_bytes == info.path.stat().st_size
    assert [i.run_id for i in registry.list()] == ["sample"]
    # the source archive was copied, not moved
    assert archive.exists()


def test_add_move(tmp_path, archive):
    registry = RunRegistry(tmp_path / "reg")
    registry.add(archive, move=True)
    assert not archive.exists()


def test_add_with_explicit_id_and_collision(tmp_path, archive):
    registry = RunRegistry(tmp_path / "reg")
    registry.add(archive, run_id="night-run")
    with pytest.raises(RegistryError, match="already registered"):
        registry.add(archive, run_id="night-run")
    # auto ids uniquify instead
    assert registry.add(archive).run_id == "sample"
    assert registry.add(archive).run_id == "sample-2"


def test_id_sanitization(tmp_path, archive):
    registry = RunRegistry(tmp_path / "reg")
    info = registry.add(archive, run_id="scale 16 / cyclic!")
    assert info.run_id == "scale-16-cyclic"


def test_get_resolve_and_prefix(tmp_path, archive):
    registry = RunRegistry(tmp_path / "reg")
    registry.add(archive, run_id="cyclic-1n")
    registry.add(archive, run_id="cyclic-2n")
    registry.add(archive, run_id="range-1n")
    assert registry.get("range-1n").run_id == "range-1n"
    assert registry.resolve("ra").run_id == "range-1n"
    with pytest.raises(RegistryError, match="ambiguous"):
        registry.resolve("cyclic")
    with pytest.raises(RegistryError, match="unknown run"):
        registry.get("nope")
    with pytest.raises(RegistryError, match="unknown run"):
        registry.resolve("nope")


def test_open_registered_archive(tmp_path, archive):
    registry = RunRegistry(tmp_path / "reg")
    registry.add(archive, run_id="r")
    with registry.open("r") as opened:
        assert opened.meta["app"] == "demo"
        assert opened.has_section("overall")


def test_remove(tmp_path, archive):
    registry = RunRegistry(tmp_path / "reg")
    info = registry.add(archive, run_id="gone")
    assert registry.remove("gone").run_id == "gone"
    assert not info.path.exists()
    assert registry.list() == []


def test_manifest_survives_reopen(tmp_path, archive):
    RunRegistry(tmp_path / "reg").add(archive, run_id="persisted")
    fresh = RunRegistry(tmp_path / "reg")
    assert [i.run_id for i in fresh.list()] == ["persisted"]


def test_empty_registry_lists_nothing(tmp_path):
    assert RunRegistry(tmp_path / "empty").list() == []


def test_corrupt_manifest_raises(tmp_path, archive):
    registry = RunRegistry(tmp_path / "reg")
    registry.add(archive)
    registry.manifest_path.write_text("{ not json")
    with pytest.raises(RegistryError, match="corrupt"):
        registry.list()


def test_unsupported_manifest_version(tmp_path):
    root = tmp_path / "reg"
    root.mkdir()
    (root / "manifest.json").write_text(json.dumps({"version": 99, "runs": {}}))
    with pytest.raises(RegistryError, match="version"):
        RunRegistry(root).list()


def test_add_non_archive_rejected(tmp_path):
    bogus = tmp_path / "bogus.aptrc"
    bogus.write_text("nope")
    with pytest.raises(RegistryError, match="cannot register"):
        RunRegistry(tmp_path / "reg").add(bogus)


def test_default_registry_root_env(tmp_path, monkeypatch):
    monkeypatch.setenv("ACTORPROF_RUNS", str(tmp_path / "custom"))
    assert default_registry_root() == tmp_path / "custom"
    monkeypatch.delenv("ACTORPROF_RUNS")
    assert default_registry_root().name == "runs"


def test_describe_mentions_shape(tmp_path, archive):
    registry = RunRegistry(tmp_path / "reg")
    info = registry.add(archive, run_id="r")
    line = info.describe()
    assert "r" in line and "1x4 PEs" in line
