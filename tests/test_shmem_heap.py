"""Unit tests for the symmetric heap."""

import numpy as np
import pytest

from repro.shmem import SymmetricHeap
from repro.sim.errors import SimulationError


def test_same_allocation_index_shares_handle():
    heap = SymmetricHeap(4)
    handles = [heap.alloc(r, 10, np.int64) for r in range(4)]
    assert all(h is handles[0] for h in handles)


def test_local_backing_is_per_pe_and_zeroed():
    heap = SymmetricHeap(2)
    arr = heap.alloc(0, 5, np.int64)
    heap.alloc(1, 5, np.int64)
    arr.local(0)[:] = 7
    assert arr.local(1).tolist() == [0, 0, 0, 0, 0]
    assert arr.local(0).tolist() == [7] * 5


def test_divergent_shapes_rejected():
    heap = SymmetricHeap(2)
    heap.alloc(0, 10, np.int64)
    with pytest.raises(SimulationError):
        heap.alloc(1, 11, np.int64)


def test_divergent_dtypes_rejected():
    heap = SymmetricHeap(2)
    heap.alloc(0, 10, np.int64)
    with pytest.raises(SimulationError):
        heap.alloc(1, 10, np.float64)


def test_multiple_allocations_tracked_in_order():
    heap = SymmetricHeap(2)
    a0 = heap.alloc(0, 10, np.int64)
    b0 = heap.alloc(0, (3, 3), np.float64)
    a1 = heap.alloc(1, 10, np.int64)
    b1 = heap.alloc(1, (3, 3), np.float64)
    assert a0 is a1 and b0 is b1
    assert heap.n_allocations() == 2


def test_int_shape_normalized_to_tuple():
    heap = SymmetricHeap(1)
    arr = heap.alloc(0, 4, np.int32)
    assert arr.shape == (4,)
    assert arr.nbytes == 16
    assert arr.itemsize == 4


def test_negative_shape_rejected():
    heap = SymmetricHeap(1)
    with pytest.raises(ValueError):
        heap.alloc(0, -1, np.int64)


def test_2d_allocation():
    heap = SymmetricHeap(1)
    arr = heap.alloc(0, (2, 8), np.int64)
    assert arr.local(0).shape == (2, 8)
