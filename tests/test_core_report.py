"""Tests for the plain-text report module."""

import numpy as np

from repro.core.logical import LogicalTrace
from repro.core.overall import OverallProfile
from repro.core.papi_trace import PAPITrace
from repro.core.physical import PhysicalTrace
from repro.core.report import (
    ascii_bar,
    mosaic_report,
    overall_report,
    papi_report,
    physical_report,
)
from repro.machine import MachineSpec


def test_ascii_bar():
    assert ascii_bar(10, 10, width=4) == "████"
    assert ascii_bar(5, 10, width=4) == "██"
    assert ascii_bar(0, 10) == ""
    assert ascii_bar(5, 0) == ""


def test_mosaic_report_contents():
    trace = LogicalTrace(MachineSpec(1, 4))
    for _ in range(12):
        trace.record(0, 1, 8)
    trace.record(2, 3, 8)
    text = mosaic_report(trace, "My trace")
    assert "== My trace ==" in text
    assert "total messages: 13" in text
    assert "imbalance" in text
    assert "median" in text
    # the heatmap body is present (header row of column indices)
    assert "0123" in text


def test_physical_report_contents():
    trace = PhysicalTrace(4)
    trace.record("local_send", 128, 0, 1, 0)
    trace.record("nonblock_send", 256, 1, 2, 0)
    text = physical_report(trace)
    assert "total operations: 2" in text
    assert "local_send" in text and "nonblock_send" in text
    assert "128" in text and "256" in text


def test_overall_report_contents():
    p = OverallProfile(2)
    p.add_main(0, 100)
    p.add_proc(0, 100)
    p.add_total(0, 1000)
    p.add_main(1, 50)
    p.add_proc(1, 50)
    p.add_total(1, 500)
    text = overall_report(p)
    assert "mean fractions" in text
    assert "max T_TOTAL: 1,000 cycles" in text
    # bars encode regions with M/c/P characters
    assert "M" in text and "c" in text and "P" in text
    assert "   0" in text and "   1" in text


def test_papi_report_single_and_all_events():
    trace = PAPITrace(MachineSpec(1, 2), ("PAPI_TOT_INS", "PAPI_LST_INS"))
    trace.region_totals["MAIN"][0] = [100, 40]
    trace.region_totals["MAIN"][1] = [50, 20]
    all_text = papi_report(trace)
    assert "PAPI_TOT_INS" in all_text and "PAPI_LST_INS" in all_text
    one_text = papi_report(trace, event="PAPI_TOT_INS")
    assert "PAPI_LST_INS" not in one_text
    assert "imbalance" in one_text
    assert "100" in one_text
