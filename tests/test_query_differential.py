"""Differential tests: one query language, four equivalent evaluators.

Every valid query must return identical results on

1. the in-memory trace objects (row-walk over aggregated routes),
2. a stats-carrying archive with pushdown (chunk pruning + footer sums),
3. the same archive with ``pushdown=False`` (full column decode),
4. a stat-less archive (pre-extension footer; full-decode fallback),

including multi-chunk archives whose sections hold *partial* aggregates
with duplicate route keys.  Hypothesis drives random traces and a
grammar walk over the query surface.

The second half pins the vectorized varint codec to its scalar oracle:
byte-identical encodes, identical decodes, and identical rejection of
truncated / trailing / overflowing streams — including the 10-byte
encodings at the top of the uint64 range.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.conveyors.hooks import SEND_TYPES
from repro.core.logical import LogicalTrace
from repro.core.physical import PhysicalTrace
from repro.core.query import run_query
from repro.core.store.archive import Archive
from repro.core.store.codec import (
    CodecError,
    decode_uvarints,
    decode_uvarints_scalar,
    encode_uvarints,
    encode_uvarints_scalar,
)
from repro.core.store.writer import ArchiveWriter, export_run
from repro.machine.spec import MachineSpec

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


# ----------------------------------------------------------------------
# trace + query strategies
# ----------------------------------------------------------------------

@st.composite
def machine_specs(draw):
    return MachineSpec(draw(st.integers(1, 3)), draw(st.integers(1, 4)))


@st.composite
def traced_runs(draw):
    """A (logical, physical) pair over one machine, with shared routes."""
    spec = draw(machine_specs())
    logical = LogicalTrace(spec)
    physical = PhysicalTrace(spec.n_pes, spec=spec)
    pes = st.integers(0, spec.n_pes - 1)
    rows = draw(st.lists(
        st.tuples(pes, pes, st.integers(1, 64), st.integers(1, 20),
                  st.sampled_from(SEND_TYPES)),
        min_size=1, max_size=40,
    ))
    for src, dst, size, count, kind in rows:
        key = (dst, size)
        logical._counts[src][key] = logical._counts[src].get(key, 0) + count
        pkey = (kind, size, src, dst)
        physical._counts[pkey] = physical._counts.get(pkey, 0) + count
    return spec, logical, physical


_LOGICAL_FIELDS = ("src", "dst", "size", "src_node", "dst_node")
_PHYSICAL_FIELDS = ("src", "dst", "size", "kind", "src_node", "dst_node")
_OPS = ("==", "!=", "<", "<=", ">", ">=")


@st.composite
def queries(draw, fields):
    """A grammar walk: metric [where ...] [group by f] [top N]."""
    parts = [draw(st.sampled_from(("sends", "bytes", "ops")))]
    conds = []
    for _ in range(draw(st.integers(0, 2))):
        fld = draw(st.sampled_from(fields))
        if fld == "kind":
            op = draw(st.sampled_from(("==", "!=")))
            value = draw(st.sampled_from(SEND_TYPES + ("no_such_kind",)))
        else:
            op = draw(st.sampled_from(_OPS))
            if draw(st.booleans()):
                value = draw(st.sampled_from(
                    tuple(f for f in fields if f != "kind")))
            else:
                value = draw(st.integers(-2, 12))
        conds.append(f"{fld} {op} {value}")
    if conds:
        parts.append("where " + " and ".join(conds))
    if draw(st.booleans()):
        parts.append(f"group by {draw(st.sampled_from(fields))}")
        if draw(st.booleans()):
            parts.append(f"top {draw(st.integers(1, 4))}")
    return " ".join(parts)


def _export_chunked(path, name, columns_of, attrs, rows, n_chunks, stats):
    """Write one section in ``n_chunks`` row groups (partial aggregates)."""
    with ArchiveWriter(path, meta=attrs, stats=stats) as writer:
        section = writer.begin_section(name, tuple(columns_of), attrs=attrs)
        bounds = np.linspace(0, len(rows), n_chunks + 1).astype(int)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if lo == hi:
                continue
            section.write_chunk({
                col: [r[i] for r in rows[lo:hi]]
                for i, col in enumerate(columns_of)
            })
        section.end()
    return path


@given(traced_runs(), st.data())
@SETTINGS
def test_differential_logical(tmp_path, run, data):
    spec, logical, physical = run
    query = data.draw(queries(_LOGICAL_FIELDS))
    expected = run_query(logical, query)

    flavors = {
        "stats": export_run(tmp_path / "s.aptrc", logical=logical),
        "nostats": export_run(tmp_path / "n.aptrc", logical=logical,
                              stats=False),
    }
    # multi-chunk: the same routes split across row groups
    rows = [(src, dst, size, n)
            for src, counts in enumerate(logical._counts)
            for (dst, size), n in sorted(counts.items())]
    if rows:
        attrs = {"nodes": spec.nodes, "pes_per_node": spec.pes_per_node,
                 "n_pes": spec.n_pes}
        flavors["chunked"] = _export_chunked(
            tmp_path / "c.aptrc", "logical", ("src", "dst", "size", "count"),
            attrs, rows, n_chunks=3, stats=True)

    for label, path in flavors.items():
        with Archive(path) as archive:
            section = archive.section("logical")
            for pushdown in (True, False):
                got = run_query(section, query, pushdown=pushdown)
                assert got == expected, (label, pushdown, query)


@given(traced_runs(), st.data())
@SETTINGS
def test_differential_physical(tmp_path, run, data):
    spec, logical, physical = run
    query = data.draw(queries(_PHYSICAL_FIELDS))
    expected = run_query(physical, query)
    flavors = {
        "stats": export_run(tmp_path / "s.aptrc", physical=physical),
        "nostats": export_run(tmp_path / "n.aptrc", physical=physical,
                              stats=False),
    }
    for label, path in flavors.items():
        with Archive(path) as archive:
            section = archive.section("physical")
            for pushdown in (True, False):
                got = run_query(section, query, pushdown=pushdown)
                assert got == expected, (label, pushdown, query)


def test_pruning_skips_chunks_but_not_answers(tmp_path):
    """A selective predicate decodes fewer row groups under pushdown."""
    rows = [(src, dst, 8, 1) for src in range(64) for dst in range(4)]
    attrs = {"nodes": 1, "pes_per_node": 64, "n_pes": 64}
    path = _export_chunked(tmp_path / "p.aptrc", "logical",
                           ("src", "dst", "size", "count"), attrs,
                           rows, n_chunks=8, stats=True)
    decodes = {True: 0, False: 0}
    results = {}
    for pushdown in (True, False):
        with Archive(path) as archive:
            real = archive._decode_chunk

            def counting(*args, _real=real, _p=pushdown, **kw):
                decodes[_p] += 1
                return _real(*args, **kw)

            archive._decode_chunk = counting
            results[pushdown] = run_query(
                archive.section("logical"),
                "sends where src == 3 group by dst", pushdown=pushdown)
    assert results[True] == results[False]
    assert results[True] == [(d, 1) for d in range(4)]
    # src == 3 lives in 1 of 8 row groups; pushdown reads only that one
    assert decodes[True] < decodes[False]


# ----------------------------------------------------------------------
# vectorized varint codec vs scalar oracle
# ----------------------------------------------------------------------

uint64s = st.integers(0, 2**64 - 1)

#: Width-boundary values: first/last value of every varint byte width,
#: including the 10-byte encodings at the top of the range.
BOUNDARY = sorted({0, 1} | {
    v for k in range(1, 10) for v in
    ((1 << (7 * k)) - 1, 1 << (7 * k), (1 << (7 * k)) + 1)
} | {2**63 - 1, 2**63, 2**64 - 1})


@given(st.lists(uint64s, max_size=200))
@SETTINGS
def test_vectorized_encode_is_byte_identical(values):
    arr = np.asarray(values, dtype=np.uint64)
    assert encode_uvarints(arr) == encode_uvarints_scalar(arr)


@given(st.lists(uint64s, max_size=200))
@SETTINGS
def test_vectorized_decode_matches_scalar(values):
    arr = np.asarray(values, dtype=np.uint64)
    payload = encode_uvarints_scalar(arr)
    got = decode_uvarints(payload, len(values))
    oracle = decode_uvarints_scalar(payload, len(values))
    assert got.dtype == oracle.dtype == np.uint64
    assert got.tolist() == oracle.tolist() == values


def test_boundary_values_roundtrip():
    arr = np.asarray(BOUNDARY, dtype=np.uint64)
    payload = encode_uvarints(arr)
    assert payload == encode_uvarints_scalar(arr)
    assert decode_uvarints(payload, len(BOUNDARY)).tolist() == BOUNDARY


@given(st.binary(max_size=64), st.integers(0, 16))
@SETTINGS
def test_decode_accepts_and_rejects_exactly_like_scalar(data, count):
    """Arbitrary byte soup: both decoders agree on accept/reject and,
    when rejecting, on the error message."""
    try:
        oracle = decode_uvarints_scalar(data, count)
        oracle_err = None
    except CodecError as exc:
        oracle, oracle_err = None, str(exc)
    try:
        got = decode_uvarints(data, count)
        got_err = None
    except CodecError as exc:
        got, got_err = None, str(exc)
    assert got_err == oracle_err
    if oracle is not None:
        assert got.tolist() == oracle.tolist()


@pytest.mark.parametrize("stream,count,message", [
    (b"\x80", 1, "truncated"),                  # continuation, then EOF
    (b"\x01\x01", 1, "trailing"),               # one value, extra byte
    (b"\x01", 0, "trailing"),                   # zero values, data present
    (b"\x80" * 10 + b"\x01", 1, "overflows"),   # 11-byte varint
    (b"\x80" * 9 + b"\x02", 1, "overflows"),    # 10 bytes, payload > 1 bit
    # stream-order precedence: an overflow earlier in the stream wins
    # over truncation / trailing bytes discovered later
    (b"\x80" * 9 + b"\x02", 2, "overflows"),    # value 0 overflows, 1 missing
    (b"\x80" * 10, 1, "overflows"),             # unfinished 10-byte run
    (b"\x01" + b"\x80" * 10 + b"\x01\x05", 2, "overflows"),  # + trailing
])
def test_malformed_streams_rejected(stream, count, message):
    for decoder in (decode_uvarints, decode_uvarints_scalar):
        with pytest.raises(CodecError, match=message):
            decoder(stream, count)


def test_ten_byte_varint_top_bit():
    # 2**63 needs the 10th byte's single payload bit — legal and exact
    payload = encode_uvarints(np.asarray([2**63], dtype=np.uint64))
    assert len(payload) == 10
    assert decode_uvarints(payload, 1).tolist() == [2**63]
