"""Property-based tests across the whole FA-BSP stack.

Hypothesis drives random machine shapes, topologies, buffer sizes and
message multisets through the histogram workload, checking the invariants
the trace products rely on: conservation (every send is processed exactly
once), trace/result consistency, and determinism.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.conveyors import ConveyorConfig
from repro.core import ActorProf, ProfileFlags
from repro.hclib import Actor, run_spmd
from repro.machine import MachineSpec


class CountingActor(Actor):
    def __init__(self, ctx, arr, cfg):
        super().__init__(ctx, conveyor_config=cfg)
        self.arr = arr

    def process(self, idx, sender):
        self.arr[idx] += 1


def run_histogram(nodes, ppn, topology, buffer_items, n_msgs, seed,
                  flags=None, self_send_bypass=False):
    spec = MachineSpec(nodes, ppn)
    cfg = ConveyorConfig(buffer_items=buffer_items, topology=topology,
                         self_send_bypass=self_send_bypass)
    ap = ActorProf(flags) if flags else None

    def program(ctx):
        arr = np.zeros(8, dtype=np.int64)
        a = CountingActor(ctx, arr, cfg)
        dsts = ctx.rng.integers(0, ctx.n_pes, n_msgs)
        idxs = ctx.rng.integers(0, 8, n_msgs)
        with ctx.finish():
            a.start()
            for d, i in zip(dsts, idxs):
                a.send(int(i), int(d))
            a.done()
        return int(arr.sum())

    res = run_spmd(program, machine=spec, seed=seed, profiler=ap,
                   conveyor_config=cfg)
    return spec, res, ap


machines = st.tuples(st.integers(1, 3), st.integers(1, 6))
topologies = st.sampled_from(["auto", "linear", "mesh"])


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    machines,
    topologies,
    st.integers(1, 32),
    st.integers(0, 40),
    st.integers(0, 10_000),
)
def test_conservation_across_shapes(machine, topology, buffer_items, n_msgs, seed):
    """Every message sent is processed exactly once, whatever the shape."""
    nodes, ppn = machine
    spec, res, _ = run_histogram(nodes, ppn, topology, buffer_items, n_msgs, seed)
    assert sum(res.results) == n_msgs * spec.n_pes


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(machines, st.integers(1, 16), st.integers(1, 30), st.integers(0, 1000))
def test_traces_consistent_with_results(machine, buffer_items, n_msgs, seed):
    """Logical totals == processed messages; physical payload bytes cover
    at least the logical payload bytes routed off-PE."""
    nodes, ppn = machine
    flags = ProfileFlags.all()
    spec, res, ap = run_histogram(nodes, ppn, "auto", buffer_items, n_msgs,
                                  seed, flags=flags)
    total = n_msgs * spec.n_pes
    assert ap.logical.total_sends() == total
    assert int(ap.logical.recvs_per_pe().sum()) == total
    assert sum(res.results) == total
    # every physical op is one of the three instrumented kinds
    assert set(ap.physical.counts_by_type()) <= {
        "local_send", "nonblock_send", "nonblock_progress"}
    # physical wire bytes >= logical payload bytes (headers + envelopes)
    if total:
        phys_payload = int(
            ap.physical.bytes_matrix("local_send").sum()
            + ap.physical.bytes_matrix("nonblock_send").sum()
        )
        assert phys_payload >= int(ap.logical.bytes_matrix().sum())


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(machines, st.integers(1, 8), st.integers(1, 25), st.integers(0, 100))
def test_determinism_property(machine, buffer_items, n_msgs, seed):
    nodes, ppn = machine
    _, res1, _ = run_histogram(nodes, ppn, "auto", buffer_items, n_msgs, seed)
    _, res2, _ = run_histogram(nodes, ppn, "auto", buffer_items, n_msgs, seed)
    assert res1.results == res2.results
    assert res1.clocks == res2.clocks


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(machines, st.integers(1, 25), st.integers(0, 50))
def test_self_send_bypass_preserves_answers(machine, n_msgs, seed):
    nodes, ppn = machine
    _, res_a, _ = run_histogram(nodes, ppn, "auto", 8, n_msgs, seed,
                                self_send_bypass=False)
    _, res_b, _ = run_histogram(nodes, ppn, "auto", 8, n_msgs, seed,
                                self_send_bypass=True)
    assert res_a.results == res_b.results


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(machines, st.integers(0, 30), st.integers(0, 50))
def test_clock_identity_overall(machine, n_msgs, seed):
    """T_MAIN + T_COMM + T_PROC == T_TOTAL on arbitrary runs."""
    nodes, ppn = machine
    _, _, ap = run_histogram(nodes, ppn, "auto", 8, n_msgs, seed,
                             flags=ProfileFlags(enable_tcomm_profiling=True))
    ov = ap.overall
    assert np.array_equal(ov.t_main + ov.t_comm() + ov.t_proc, ov.t_total)
    assert (ov.t_comm() >= 0).all()
