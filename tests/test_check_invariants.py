"""Tests for ActorCheck's trace-invariant engine.

A clean run must produce zero violations; each check must fire when its
artifact is tampered with in the way it guards against.
"""

from dataclasses import replace
from types import SimpleNamespace

import numpy as np
import pytest

from repro.check.invariants import (
    check_monotone_clocks,
    check_region_identity,
    check_send_conservation,
    check_store_equivalence,
    run_invariants,
)
from repro.check.policies import make_schedules
from repro.check.workloads import GeneratedWorkload, ProgramSpec
from repro.machine.spec import MachineSpec


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """One clean audited run every tampering test starts from."""
    wl = GeneratedWorkload(
        ProgramSpec(mailboxes=2, payload_words=(2, 2), sends_per_pe=40),
        machine=MachineSpec(1, 4), seed=3,
    )
    out = tmp_path_factory.mktemp("inv") / "clean.aptrc"
    return wl.run(make_schedules(3, 1)[0], out)


def test_clean_run_has_no_violations(artifacts):
    assert run_invariants(artifacts) == []


# ----------------------------------------------------------------------
# send conservation
# ----------------------------------------------------------------------

def test_tampered_receipts_fire(artifacts):
    bad = artifacts.receipts.copy()
    bad[0, 1] += 1
    art = replace(artifacts, receipts=bad)
    violations = check_send_conservation(art)
    assert any("handler receipts disagree" in v.detail for v in violations)
    assert all(v.invariant == "send-conservation" for v in violations)


def test_lost_pull_fires(artifacts):
    stats = [dict(g) for g in artifacts.group_stats]
    stats[0]["pulls"] -= 1
    art = replace(artifacts, group_stats=stats)
    violations = check_send_conservation(art)
    assert any("pushes !=" in v.detail for v in violations)


def test_phantom_push_fires(artifacts):
    stats = [dict(g) for g in artifacts.group_stats]
    stats[0]["pushes"] += 5
    stats[0]["pulls"] += 5
    art = replace(artifacts, group_stats=stats)
    violations = check_send_conservation(art)
    assert any("logical trace records" in v.detail for v in violations)


def test_wrong_receive_totals_fire(artifacts):
    totals = list(artifacts.received_per_pe)
    totals[0] += 1
    art = replace(artifacts, received_per_pe=totals)
    violations = check_send_conservation(art)
    assert any("column sums" in v.detail for v in violations)


# ----------------------------------------------------------------------
# region identity and clocks (synthetic artifacts: only the fields the
# checks read are populated)
# ----------------------------------------------------------------------

def _synthetic(t_main, t_proc, t_total, clocks):
    overall = SimpleNamespace(
        t_main=np.array(t_main, dtype=np.int64),
        t_proc=np.array(t_proc, dtype=np.int64),
        t_total=np.array(t_total, dtype=np.int64),
    )
    return SimpleNamespace(profiler=SimpleNamespace(overall=overall),
                           clocks=list(clocks))


def test_region_identity_holds_on_sane_numbers():
    art = _synthetic([10, 20], [5, 5], [20, 30], [20, 30])
    assert check_region_identity(art) == []
    assert check_monotone_clocks(art) == []


def test_negative_region_time_fires():
    art = _synthetic([-1, 0], [0, 0], [10, 10], [10, 10])
    violations = check_region_identity(art)
    assert any("negative region time" in v.detail for v in violations)


def test_main_plus_proc_exceeding_total_fires():
    art = _synthetic([8, 0], [8, 0], [10, 10], [10, 10])
    violations = check_region_identity(art)
    assert any("T_COMM would be negative" in v.detail for v in violations)


def test_tolerance_forgives_small_overshoot():
    art = _synthetic([6, 0], [5, 0], [10, 10], [11, 10])
    assert check_region_identity(art) != []
    assert check_region_identity(art, tolerance=0.2) == []


def test_backwards_clock_fires():
    art = _synthetic([1], [1], [5], [-3])
    violations = check_monotone_clocks(art)
    assert any("ran backwards" in v.detail for v in violations)


def test_total_exceeding_clock_fires():
    art = _synthetic([1], [1], [50], [10])
    violations = check_monotone_clocks(art)
    assert any("exceeds the final" in v.detail for v in violations)


# ----------------------------------------------------------------------
# store equivalence
# ----------------------------------------------------------------------

def test_store_equivalence_clean(artifacts):
    assert check_store_equivalence(artifacts) == []


def test_store_equivalence_detects_archive_drift(artifacts):
    # record one extra logical send AFTER the archive was exported: the
    # in-memory matrix no longer matches the archived one
    logical = artifacts.profiler.logical
    logical.record(0, 1, 8)
    try:
        violations = check_store_equivalence(artifacts)
        assert any("logical matrix does not" in v.detail for v in violations)
    finally:
        # undo the tamper so the module-scoped fixture stays clean
        key = (1, 8)
        logical._counts[0][key] -= 1
        if not logical._counts[0][key]:
            del logical._counts[0][key]
        logical._ticks[0] -= 1
