"""Tests for the overall T_MAIN/T_COMM/T_PROC profile."""

import numpy as np
import pytest

from repro.core.overall import OverallProfile, parse_overall_file


def make_profile():
    p = OverallProfile(2)
    p.add_main(0, 100)
    p.add_proc(0, 50)
    p.add_total(0, 1000)
    p.add_main(1, 10)
    p.add_proc(1, 200)
    p.add_total(1, 500)
    return p


def test_comm_is_derived():
    p = make_profile()
    assert p.t_comm().tolist() == [850, 290]


def test_absolute_ordering_is_main_comm_proc():
    p = make_profile()
    assert p.absolute(0) == (100, 850, 50)


def test_relative_fractions():
    p = make_profile()
    rm, rc, rp = p.relative(0)
    assert rm == pytest.approx(0.1)
    assert rc == pytest.approx(0.85)
    assert rp == pytest.approx(0.05)
    assert rm + rc + rp == pytest.approx(1.0)


def test_relative_zero_total():
    p = OverallProfile(1)
    assert p.relative(0) == (0.0, 0.0, 0.0)


def test_fractions_matrix_shape():
    assert make_profile().fractions().shape == (2, 3)


def test_accumulation_across_finishes():
    p = OverallProfile(1)
    for _ in range(3):
        p.add_main(0, 10)
        p.add_total(0, 100)
    assert p.t_main[0] == 30
    assert p.t_total[0] == 300


def test_file_format_matches_paper(tmp_path):
    p = make_profile()
    path = p.write(tmp_path)
    text = path.read_text()
    assert "Absolute [PE0] TCOMM_PROFILING (100, 850, 50)" in text
    assert "Relative [PE0] TCOMM_PROFILING (0.100000, 0.850000, 0.050000)" in text
    assert "Absolute [PE1] TCOMM_PROFILING (10, 290, 200)" in text


def test_write_parse_roundtrip(tmp_path):
    p = make_profile()
    p.write(tmp_path)
    parsed = parse_overall_file(tmp_path)
    assert np.array_equal(parsed.t_main, p.t_main)
    assert np.array_equal(parsed.t_proc, p.t_proc)
    assert np.array_equal(parsed.t_total, p.t_total)


def test_parse_empty_file_raises(tmp_path):
    (tmp_path / "overall.txt").write_text("junk\n")
    with pytest.raises(ValueError):
        parse_overall_file(tmp_path)
